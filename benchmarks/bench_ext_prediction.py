"""EXTENSION — VIA-style history-based relay prediction.

VIA (cited by the paper) observed that even when history-based prediction
misses the optimal relay, the optimum is usually among the top few
predictions.  We train on all campaign rounds but the last and evaluate on
the last: hit-rate of the oracle-best relay within the top-k predictions,
and fraction of the oracle improvement captured.
"""

from __future__ import annotations

from repro.core.oracle import evaluate_prediction
from repro.core.types import RelayType


def test_history_based_prediction(benchmark, result, report_sink):
    def run():
        return {k: evaluate_prediction(result, RelayType.COR, k) for k in (1, 3, 5)}

    scores = benchmark(run)
    lines = [f"{'k':>3} {'evaluated':>10} {'hit-rate':>9} {'captured gain':>14}"]
    for k, score in scores.items():
        lines.append(
            f"{k:>3} {score.evaluated:>10} {100 * score.hit_rate:>8.1f}% "
            f"{100 * score.captured_gain_frac:>13.1f}%"
        )
    lines.append(
        "\n(VIA's observation: the optimal relay is likely within the top "
        "few predicted relays)"
    )
    report_sink("ext_prediction", "\n".join(lines))

    assert scores[5].hit_rate >= scores[1].hit_rate
    if scores[3].evaluated >= 10:
        assert scores[3].captured_gain_frac > 0.3


def test_prediction_beats_random(benchmark, result, report_sink):
    """The learned ranking must outperform picking k random improving-pool
    relays, otherwise history carries no signal."""
    import numpy as np

    from repro.core.oracle import RelayPredictor

    predictor = RelayPredictor(RelayType.COR)
    for rnd in result.rounds[:-1]:
        for obs in rnd.observations:
            predictor.observe(obs)
    pool = sorted(
        {
            idx
            for rnd in result.rounds[:-1]
            for obs in rnd.observations
            for idx, _ in obs.improving_by_type.get(RelayType.COR, ())
        }
    )
    rng = np.random.default_rng(5)

    def run():
        predicted_hits = random_hits = evaluated = 0
        for obs in result.rounds[-1].observations:
            entries = dict(obs.improving_by_type.get(RelayType.COR, ()))
            if not entries or not predictor.has_history(obs):
                continue
            evaluated += 1
            if set(predictor.predict(obs, 3)) & set(entries):
                predicted_hits += 1
            random_pick = rng.choice(pool, size=min(3, len(pool)), replace=False)
            if set(int(x) for x in random_pick) & set(entries):
                random_hits += 1
        return evaluated, predicted_hits, random_hits

    evaluated, predicted_hits, random_hits = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report_sink(
        "ext_prediction_vs_random",
        f"evaluated pairs: {evaluated}\n"
        f"top-3 prediction finds an improving relay: {predicted_hits}\n"
        f"3 random pool relays find an improving relay: {random_hits}",
    )
    if evaluated >= 20:
        assert predicted_hits >= random_hits
