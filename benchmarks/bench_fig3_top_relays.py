"""FIG3 — % of total cases improved vs number of top relays.

Paper (Fig. 3): the COR curve rises steeply (heavy hitters) — 10 CORs in 6
facilities already cover 58% of total cases (~75% of COR's improved
cases); RAR curves rise smoothly and need >>100 relays for their top
coverage.  We regenerate the four curves and assert COR's early dominance.
"""

from __future__ import annotations

from repro.analysis.ranking import TopRelayAnalysis
from repro.core.types import RELAY_TYPE_ORDER, RelayType

CHECKPOINTS = (1, 5, 10, 20, 50, 100)


def test_fig3_top_relays(benchmark, result, report_sink):
    analysis = benchmark(TopRelayAnalysis, result)

    curves = {t: dict(analysis.fig3_curve(t, max_n=100)) for t in RELAY_TYPE_ORDER}
    header = f"{'top-N':>6} " + " ".join(f"{t.value:>10}" for t in RELAY_TYPE_ORDER)
    lines = [header]
    for n in CHECKPOINTS:
        lines.append(
            f"{n:>6} "
            + " ".join(f"{curves[t].get(n, 0.0):>9.1f}%" for t in RELAY_TYPE_ORDER)
        )
    top10_facilities = analysis.facilities_of_top(10)
    lines.append(
        f"\ntop-10 COR relays sit in {len(top10_facilities)} facilities "
        "(paper: ~6 facilities covering 58% of total cases)"
    )
    report_sink("fig3_top_relays", "\n".join(lines))

    # COR dominates at small N (the heavy-hitter shape)
    for n in (5, 10, 20):
        for other in (RelayType.PLR, RelayType.RAR_EYE, RelayType.RAR_OTHER):
            assert curves[RelayType.COR][n] > curves[other][n]
    # COR's top-10 captures most of its full coverage
    cor_all = analysis.coverage_of_top(RelayType.COR, analysis.num_ranked(RelayType.COR))
    assert curves[RelayType.COR][10] / 100.0 >= 0.5 * cor_all
