"""TXT-MED — in-text medians and redundancy.

Paper: median improvements 12-14 ms across types; COR/RAR_other exceed
100 ms in ~6% of improved cases; the median number of improving relays
per pair is 8 COR / 3 PLR / 2 RAR_other / 2 RAR_eye (high COR
redundancy); on cases where both improve, COR's best path is within
5-10 ms of RAR_other's.
"""

from __future__ import annotations

from repro.analysis.improvements import ImprovementAnalysis
from repro.core.types import RELAY_TYPE_ORDER, RelayType

PAPER_NUM_IMPROVING = {
    RelayType.COR: 8,
    RelayType.PLR: 3,
    RelayType.RAR_OTHER: 2,
    RelayType.RAR_EYE: 2,
}


def test_medians_and_redundancy(benchmark, result, report_sink):
    analysis = benchmark(ImprovementAnalysis, result)

    lines = [
        f"{'type':>10} {'median_ms':>10} {'>100ms%':>8} {'n_improving':>12} {'paper_n':>8}"
    ]
    for relay_type in RELAY_TYPE_ORDER:
        med = analysis.median_improvement(relay_type)
        gt100 = analysis.fraction_above(relay_type, 100.0)
        n_imp = analysis.median_num_improving(relay_type)
        lines.append(
            f"{relay_type.value:>10} {med:>10.1f} {100 * gt100:>7.1f}% "
            f"{n_imp:>12.1f} {PAPER_NUM_IMPROVING[relay_type]:>8}"
        )
    gap = analysis.best_type_gap_ms(RelayType.COR, RelayType.RAR_OTHER)
    lines.append(
        f"\nmedian stitched-RTT gap COR vs RAR_other on jointly-improved "
        f"cases: {gap:.1f} ms (paper: 5-10 ms)"
    )
    report_sink("text_medians", "\n".join(lines))

    # same order of magnitude as the paper's 12-14 ms
    for relay_type in (RelayType.COR, RelayType.RAR_OTHER):
        med = analysis.median_improvement(relay_type)
        assert 5.0 <= med <= 80.0
    # COR redundancy dominates
    cor_n = analysis.median_num_improving(RelayType.COR)
    for other in (RelayType.RAR_OTHER, RelayType.RAR_EYE):
        assert cor_n >= analysis.median_num_improving(other)


def test_high_responsiveness(benchmark, result, report_sink):
    """Paper: ~84% of node-pair destinations answered >=3 pings/round."""

    def responsiveness():
        # observed pairs vs scheduled pairs per round
        fracs = []
        for rnd in result.rounds:
            n = len(rnd.endpoint_ids)
            scheduled = n * (n - 1) // 2
            fracs.append(len(rnd.observations) / scheduled)
        return fracs

    fracs = benchmark(responsiveness)
    text = "\n".join(
        f"round {i}: {100 * f:.1f}% of endpoint pairs yielded valid medians"
        for i, f in enumerate(fracs)
    ) + "\n(paper: ~84% of destinations responsive)"
    report_sink("text_responsiveness", text)
    assert all(f > 0.7 for f in fracs)
