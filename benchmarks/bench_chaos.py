"""CHAOS — serving quality while a fault timeline unfolds.

Runs the ``relay-outage`` preset (40% of the colo+PlanetLab pools dark
for rounds 2-3) on the tiny 8-country world and replays Zipf traffic
against the churn-aware service between round ingests.  Three questions
are recorded into ``BENCH_chaos.json`` at the repo root:

* does the health filter hold the availability floor through the outage
  (``liveness_rounds=1`` vs the filter-off baseline)?
* how does the stale-answer rate grow with the retention window
  (:func:`repro.analysis.chaos.degradation_curve` over ``max_rounds``)?
* what sustained queries/sec does the faulted replay achieve?

Run standalone with ``python benchmarks/bench_chaos.py`` or via pytest
with the other benches.  ``--smoke --budget-factor F [--json-out PATH]``
replays the faulted campaign once and exits non-zero if the availability
floor breaks or the wall clock exceeds F times the recorded run — CI's
chaos-smoke guard.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import pathlib
import sys
import time

if importlib.util.find_spec("repro") is None:  # bare checkout: src layout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import MeasurementCampaign, build_world
from repro.analysis.chaos import DEFAULT_WINDOWS, degradation_curve
from repro.scenarios import get_scenario, scenario_with
from repro.timeline import ChaosConfig, chaos_replay

SEED = 11
COUNTRIES = 8
SCENARIO = "relay-outage"
QUERIES_PER_ROUND = 20_000
AVAILABILITY_FLOOR = 0.99

_OUT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_chaos.json"


def _build_faulted_history():
    """Run the relay-outage preset campaign on the tiny world."""
    scenario = scenario_with(get_scenario(SCENARIO), countries=COUNTRIES)
    world = build_world(seed=SEED, config=scenario.world)
    campaign = MeasurementCampaign(world, scenario.campaign)
    return campaign.run(), campaign.timeline


def _chaos_config(**overrides) -> ChaosConfig:
    defaults = dict(queries_per_round=QUERIES_PER_ROUND, seed=SEED)
    defaults.update(overrides)
    return ChaosConfig(**defaults)


def run_bench() -> dict:
    """Replay the faulted campaign; record floors, curve and throughput."""
    start = time.perf_counter()
    result, timeline = _build_faulted_history()
    history_s = time.perf_counter() - start

    start = time.perf_counter()
    guarded = chaos_replay(result, timeline, _chaos_config(liveness_rounds=1))
    replay_s = time.perf_counter() - start
    # the baseline that shows why the filter exists: same traffic, same
    # retention window, relay-health tracking off
    unguarded = chaos_replay(result, timeline, _chaos_config(liveness_rounds=None))
    curve = degradation_curve(
        result, timeline, config=_chaos_config(liveness_rounds=None)
    )

    qps = [r["queries_per_s"] for r in guarded["rounds"] if r["queries_per_s"]]
    report = {
        "workload": (
            f"{SCENARIO} preset, {COUNTRIES}-country world, seed {SEED}; "
            f"{QUERIES_PER_ROUND} queries replayed per ingested round"
        ),
        "history": {
            "build_s": round(history_s, 3),
            "rounds": len(result.rounds),
            "total_cases": result.total_cases,
            "relays_registered": len(result.registry),
        },
        "replay_wall_s": round(replay_s, 3),
        "queries_per_s_min": min(qps) if qps else None,
        "guarded": guarded["summary"],
        "unguarded": unguarded["summary"],
        "availability_by_round": {
            "guarded": [r["availability"] for r in guarded["rounds"]],
            "unguarded": [r["availability"] for r in unguarded["rounds"]],
        },
        "dead_relays_by_round": [r["dead_relays"] for r in guarded["rounds"]],
        "degradation_curve": curve,
    }
    _OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_smoke(budget_factor: float, json_out: str | None = None) -> int:
    """One guarded replay checked against the floor and recorded wall clock.

    The budget is ``budget_factor x`` the recorded replay wall plus a 2 s
    grace (the history build is excluded — the campaign engine has its own
    drift guard).  Fails if the availability floor breaks, stale answers
    leak past the health filter, or the replay is too slow.
    """
    recorded = json.loads(_OUT_PATH.read_text())
    budget = budget_factor * recorded["replay_wall_s"] + 2.0

    result, timeline = _build_faulted_history()
    start = time.perf_counter()
    report = chaos_replay(result, timeline, _chaos_config(liveness_rounds=1))
    elapsed = time.perf_counter() - start
    summary = report["summary"]
    floor_ok = summary["min_availability"] >= AVAILABILITY_FLOOR
    ok = floor_ok and elapsed <= budget
    print(
        f"chaos smoke: {summary['total_queries']} queries over "
        f"{summary['replayed_rounds']} faulted rounds in {elapsed:.3f} s "
        f"(budget {budget:.3f} s = {budget_factor}x recorded "
        f"{recorded['replay_wall_s']} s + 2 s grace); min availability "
        f"{summary['min_availability']} (floor {AVAILABILITY_FLOOR}), "
        f"stale-answer rate {summary['overall_stale_answer_rate']} -> "
        f"{'OK' if ok else 'FAIL'}"
    )
    if json_out is not None:
        outcome = {
            "scenario": SCENARIO,
            "wall_clock_s": round(elapsed, 3),
            "budget_s": round(budget, 3),
            "budget_factor": budget_factor,
            "availability_floor": AVAILABILITY_FLOOR,
            "summary": summary,
            "ok": ok,
        }
        pathlib.Path(json_out).write_text(json.dumps(outcome, indent=2) + "\n")
    return 0 if ok else 1


def test_chaos_bench(report_sink):
    report = run_bench()
    guarded = report["guarded"]
    unguarded = report["unguarded"]
    curve_lines = "\n".join(
        f"  max_rounds={entry['max_rounds']}: availability "
        f"{entry['min_availability']}, stale rate "
        f"{entry['overall_stale_answer_rate']}"
        for entry in report["degradation_curve"]
    )
    report_sink(
        "chaos_bench",
        f"workload: {report['workload']}\n"
        f"history build: {report['history']['build_s']:.2f} s "
        f"({report['history']['total_cases']} cases)\n"
        f"guarded (liveness_rounds=1): min availability "
        f"{guarded['min_availability']}, stale rate "
        f"{guarded['overall_stale_answer_rate']}, "
        f"{report['queries_per_s_min']:,} queries/s floor\n"
        f"unguarded baseline: min availability "
        f"{unguarded['min_availability']}, stale rate "
        f"{unguarded['overall_stale_answer_rate']}\n"
        f"stale-answer rate vs retention window (filter off):\n{curve_lines}\n"
        f"(written to {_OUT_PATH.name})",
    )
    # the acceptance floors: the health filter must hold availability
    # through the outage and beat the unguarded baseline
    assert guarded["min_availability"] >= AVAILABILITY_FLOOR
    assert guarded["overall_stale_answer_rate"] <= 0.01
    assert unguarded["min_availability"] <= guarded["min_availability"]
    # the curve must cover the standard windows and the unbounded window
    # must be at least as stale as the shortest one (retention keeps the
    # dead around)
    assert len(report["degradation_curve"]) == len(DEFAULT_WINDOWS)
    first, last = report["degradation_curve"][0], report["degradation_curve"][-1]
    assert last["overall_stale_answer_rate"] >= first["overall_stale_answer_rate"]
    # the faulted replay must still sustain batched throughput
    assert report["queries_per_s_min"] >= 100_000


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="one guarded replay checked against the recorded wall clock",
    )
    parser.add_argument(
        "--budget-factor", type=float, default=3.0,
        help="smoke budget as a multiple of the recorded replay wall",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the smoke outcome as JSON (CI's chaos-smoke artifact)",
    )
    cli_args = parser.parse_args()
    if cli_args.smoke:
        sys.exit(run_smoke(cli_args.budget_factor, cli_args.json_out))
    print(json.dumps(run_bench(), indent=2))
