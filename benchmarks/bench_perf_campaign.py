"""PERF — wall-clock of the measurement engine on the full-world campaign.

Times the standard 6-round full-world campaign (seed 11, the same workload
the analysis benches share) plus a multi-seed sweep — cold (every worker
builds its world from scratch) and against a world-snapshot cache
(populate, then all-hits; see :mod:`repro.core.worldcache`) — and writes
``BENCH_campaign.json`` at the repo root so future PRs have a perf
trajectory to compare against.  Five frozen reference points precede the
current engine, all measured with this same protocol: scalar (PR 0 seed),
vectorized (PR 1), fabric (PR 2), columnar (PR 3) and pair-grid (PR 4).
The current engine adds batched stitching (per-endpoint identity codes
gathered per pair, campaign-interned country comparison) and world-snapshot
caching on top of the pair-grid pipeline.

Peak RSS of the process (``resource.getrusage``) is recorded alongside the
wall clock: the columnar table must not regress memory against the object
lists it replaced.

Run standalone with ``python benchmarks/bench_perf_campaign.py`` or via
pytest with the other benches.  ``--smoke --rounds N --budget-factor F
[--max-rss-mb M] [--json-out PATH]`` runs one N-round campaign and exits
non-zero if it takes more than F times the recorded current wall clock
pro-rated to N rounds, or if peak RSS exceeds M MB — CI's benchmark-drift
guard, which uploads the ``--json-out`` summary as a build artifact.
``--sweep-smoke --world-cache DIR [--sweep-budget-s S]`` runs the 4-seed
sweep once against a snapshot cache: CI invokes it twice with the same
DIR, budgeting only the second (all-hits) invocation.  Snapshot files the
run maps read-only are subtracted from peak RSS before the ceiling check —
they are shared page cache, not campaign working set.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import pathlib
import resource
import sys
import tempfile
import time

if importlib.util.find_spec("repro") is None:  # bare checkout: src layout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import (
    CampaignConfig,
    MeasurementCampaign,
    SweepRequest,
    build_world,
    run_sweep,
)

SEED = 11
ROUNDS = 6
REPEATS = 5  #: best-of-N wall clock; each repetition is cold (fresh world)

SWEEP_SEEDS = (11, 12, 13, 14)
SWEEP_ROUNDS = 2
SWEEP_WORKERS = 4

#: Pre-vectorization engine, measured with this harness (commit fc11ff1):
#: 6-round full-world campaign, seed 11.  Feasibility checks counted from a
#: profiled run (796,950 `is_feasible` calls per round).
BASELINE = {
    "engine": "scalar (pre-vectorization)",
    "wall_clock_s": 17.99,
    "pings": 1_018_500,
    "pings_per_s": 56_615,
    "feasibility_checks": 4_781_700,
    "feasibility_checks_per_s": 265_797,
}

#: PR 1 engine (vectorized pings + matrix feasibility, lazy scalar routing),
#: measured with this harness (commit f1691a9) on the same workload.
VECTORIZED = {
    "engine": "vectorized (NumPy delay matrices + batched pings)",
    "wall_clock_s": 3.423,
    "pings": 1_032_780,
    "pings_per_s": 301_696,
    "feasibility_checks": 4_938_675,
    "feasibility_checks_per_s": 1_442_690,
}

#: PR 2 engine (precomputed routing fabric + attachment delay grid, per-pair
#: PairObservation packaging), re-measured with this harness (commit 1998ceb)
#: on the machine that recorded the PR 3 numbers — the frozen reference the
#: columnar pipeline is compared against.  Peak RSS is the object-list
#: memory ceiling the table must stay under.
FABRIC = {
    "engine": "fabric (precomputed tables + attachment delay grid, object packaging)",
    "wall_clock_s": 2.174,
    "fabric_build_s": 0.408,
    "pings": 1_032_780,
    "pings_per_s": 475_059,
    "feasibility_checks": 4_938_675,
    "feasibility_checks_per_s": 2_271_700,
    "peak_rss_mb": 361.2,
}

#: PR 3 engine (columnar observation tables, token-keyed pair cache, fused
#: RNG blocks), re-measured with this harness (commit 593516a) — the frozen
#: reference the grid-indexed pair resolution is compared against.
COLUMNAR = {
    "engine": "columnar (structure-of-arrays observation tables on the routing fabric)",
    "wall_clock_s": 1.129,
    "fabric_build_s": 0.341,
    "pings": 1_018_920,
    "pings_per_s": 902_506,
    "feasibility_checks": 4_858_980,
    "feasibility_checks_per_s": 4_303_834,
    "peak_rss_mb": 319.3,
}

#: PR 4 engine (grid-indexed per-round base/skew matrices replacing the
#: per-leg pair-cache loop), re-measured with this harness (commit 3988ee0)
#: — the frozen reference the batched-stitch engine is compared against.
PAIR_GRID = {
    "engine": "pair-grid (grid-indexed base/skew matrices on the columnar pipeline)",
    "wall_clock_s": 0.95,
    "fabric_build_s": 0.401,
    "pings": 1_018_920,
    "pings_per_s": 1_072_778,
    "feasibility_checks": 4_858_980,
    "feasibility_checks_per_s": 5_115_816,
    "peak_rss_mb": 310.4,
}

_OUT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_campaign.json"


def _peak_rss_mb() -> float:
    """Peak resident set size of this process in MB.

    ``ru_maxrss`` is kilobytes on Linux but *bytes* on macOS.
    """
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return maxrss / (1024.0 * 1024.0)
    return maxrss / 1024.0


def _run_campaign(rounds: int) -> tuple[float, float, object, object]:
    """One cold campaign run: (fabric_build_s, total_s, result, world)."""
    world = build_world(seed=SEED)
    campaign = MeasurementCampaign(world, CampaignConfig(num_rounds=rounds))
    t0 = time.perf_counter()
    world.ensure_routing_fabric()
    fabric_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    result = campaign.run()
    return fabric_s, time.perf_counter() - t0 + fabric_s, result, world


def run_bench() -> dict:
    """Time the campaign cold (best of REPEATS) plus one sweep; assemble the report."""
    elapsed = float("inf")
    fabric_s = float("inf")
    for _ in range(REPEATS):
        build_s, total_s, result, world = _run_campaign(ROUNDS)
        if total_s < elapsed:
            elapsed, fabric_s = total_s, build_s

    # the Sec 2.4 bound is evaluated for every (measured pair, round relay)
    feasibility_checks = sum(
        len(rnd.direct_medians)
        * sum(len(idx) for idx in rnd.relay_indices_by_type.values())
        for rnd in result.rounds
    )
    current = {
        "engine": (
            "batched-stitch (fused identity gathers + interned country codes "
            "on snapshot-cacheable worlds)"
        ),
        "wall_clock_s": round(elapsed, 3),
        "fabric_build_s": round(fabric_s, 3),
        "pings": result.total_pings,
        "pings_per_s": int(result.total_pings / elapsed),
        "feasibility_checks": feasibility_checks,
        "feasibility_checks_per_s": int(feasibility_checks / elapsed),
        "rounds": ROUNDS,
        "seed": SEED,
        "pairs_observed": sum(r.table.num_cases for r in result.rounds),
        "improving_entries": int(result.table.imp_indptr[-1]),
        "routing_destinations": len(world.campaign_destination_asns()),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }

    # the cold sweep keeps the world-build wall on record; the cache runs
    # measure the snapshot layer (populate = build + capture, hit = restore)
    sweep_artifact = run_sweep(
        SweepRequest.from_scenario(
            "baseline",
            seeds=SWEEP_SEEDS,
            rounds=SWEEP_ROUNDS,
            workers=SWEEP_WORKERS,
            use_world_cache=False,
        )
    )
    with tempfile.TemporaryDirectory(prefix="repro-world-cache-") as cache_dir:
        cached_config = SweepRequest.from_scenario(
            "baseline",
            seeds=SWEEP_SEEDS,
            rounds=SWEEP_ROUNDS,
            workers=SWEEP_WORKERS,
            world_cache=cache_dir,
        )
        t0 = time.perf_counter()
        run_sweep(cached_config)
        populate_s = time.perf_counter() - t0
        # all-hits wall clock, best of 2 (same best-of protocol as the
        # campaign: pool startup noise dwarfs the restore itself)
        hit_artifact = min(
            (run_sweep(cached_config) for _ in range(2)),
            key=lambda a: a["timing"]["wall_clock_s"],
        )
        snapshot_bytes = sum(
            p.stat().st_size for p in pathlib.Path(cache_dir).glob("*.npz")
        )
    deterministic_match = json.dumps(
        {k: v for k, v in sweep_artifact.items() if k != "timing"}, sort_keys=True
    ) == json.dumps(
        {k: v for k, v in hit_artifact.items() if k != "timing"}, sort_keys=True
    )
    sweep = {
        "workload": sweep_artifact["workload"],
        "seeds": list(SWEEP_SEEDS),
        "rounds": SWEEP_ROUNDS,
        "workers": SWEEP_WORKERS,
        "wall_clock_s": sweep_artifact["timing"]["wall_clock_s"],
        "per_seed_s": sweep_artifact["timing"]["per_seed_s"],
        "world_build_s": sweep_artifact["timing"]["world_build_s"],
        "campaign_s": sweep_artifact["timing"]["campaign_s"],
        "total_pings": sum(m["total_pings"] for m in sweep_artifact["per_seed"]),
        "snapshot_cache": {
            "populate_wall_clock_s": round(populate_s, 3),
            "hit_wall_clock_s": hit_artifact["timing"]["wall_clock_s"],
            "hit_per_seed_s": hit_artifact["timing"]["per_seed_s"],
            "hit_world_build_s": hit_artifact["timing"]["world_build_s"],
            "hit_campaign_s": hit_artifact["timing"]["campaign_s"],
            "snapshot_mb": round(snapshot_bytes / 1e6, 1),
            "deterministic_match": deterministic_match,
        },
    }

    report = {
        "workload": f"{ROUNDS}-round full-world campaign, seed {SEED}",
        "protocol": f"best of {REPEATS} cold runs (fresh world per run)",
        "baseline": BASELINE,
        "vectorized": VECTORIZED,
        "fabric": FABRIC,
        "columnar": COLUMNAR,
        "pair_grid": PAIR_GRID,
        "current": current,
        "speedup": round(BASELINE["wall_clock_s"] / elapsed, 2),
        "speedup_vs_vectorized": round(VECTORIZED["wall_clock_s"] / elapsed, 2),
        "speedup_vs_fabric": round(FABRIC["wall_clock_s"] / elapsed, 2),
        "speedup_vs_columnar": round(COLUMNAR["wall_clock_s"] / elapsed, 2),
        "speedup_vs_pair_grid": round(PAIR_GRID["wall_clock_s"] / elapsed, 2),
        "sweep": sweep,
    }
    _OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_smoke(
    rounds: int,
    budget_factor: float,
    max_rss_mb: float | None = None,
    json_out: str | None = None,
) -> int:
    """One campaign run checked against the recorded wall clock, pro-rated.

    The budget is ``budget_factor x`` the recorded current wall clock
    scaled to ``rounds``, plus a 2 s grace for fixed per-run costs (world
    build amortisation, fabric precompute) that do not scale with rounds.
    ``max_rss_mb`` additionally bounds the process's peak RSS — CI runs the
    6-round campaign against the object-list ceiling so the columnar table
    can never silently regress memory.  ``json_out`` writes the outcome as
    machine-readable JSON (CI uploads it as the benchmark-drift artifact).
    Returns a process exit code.
    """
    recorded = json.loads(_OUT_PATH.read_text())["current"]
    budget = budget_factor * recorded["wall_clock_s"] * rounds / recorded["rounds"] + 2.0
    _, elapsed, result, _world = _run_campaign(rounds)
    ok = elapsed <= budget
    print(
        f"smoke: {rounds}-round campaign took {elapsed:.2f} s "
        f"(budget {budget:.2f} s = {budget_factor}x pro-rated recorded "
        f"{recorded['wall_clock_s']} s / {recorded['rounds']} rounds + 2 s grace); "
        f"{result.total_pings} pings -> {'OK' if ok else 'TOO SLOW'}"
    )
    rss = _peak_rss_mb()
    rss_ok = True
    if max_rss_mb is not None:
        rss_ok = rss <= max_rss_mb
        print(
            f"smoke: peak RSS {rss:.1f} MB (budget {max_rss_mb:.1f} MB) -> "
            f"{'OK' if rss_ok else 'TOO MUCH MEMORY'}"
        )
        ok = ok and rss_ok
    if json_out is not None:
        summary = {
            "rounds": rounds,
            "wall_clock_s": round(elapsed, 3),
            "budget_s": round(budget, 3),
            "budget_factor": budget_factor,
            "recorded_wall_clock_s": recorded["wall_clock_s"],
            "recorded_engine": recorded["engine"],
            "wall_ok": elapsed <= budget,
            "peak_rss_mb": round(rss, 1),
            "max_rss_mb": max_rss_mb,
            "rss_ok": rss_ok,
            "pings": result.total_pings,
            "ok": ok,
        }
        pathlib.Path(json_out).write_text(json.dumps(summary, indent=2) + "\n")
    return 0 if ok else 1


def run_sweep_smoke(
    world_cache: str | None,
    budget_s: float | None = None,
    max_rss_mb: float | None = None,
    json_out: str | None = None,
) -> int:
    """One 4-seed sweep against a snapshot cache, checked against a budget.

    CI calls this twice with the same ``world_cache`` directory: the first
    invocation populates the cache (unbudgeted — it pays the world builds
    plus the captures), the second must land every seed on a snapshot hit
    and beat ``budget_s``.  Peak RSS is compared to ``max_rss_mb`` *after*
    subtracting the cache directory's snapshot bytes: read-only mmapped
    snapshot pages are reclaimable page cache shared across workers, not
    campaign working set, so they are excluded from the ceiling accounting.
    Returns a process exit code.
    """
    config = SweepRequest.from_scenario(
        "baseline",
        seeds=SWEEP_SEEDS,
        rounds=SWEEP_ROUNDS,
        workers=SWEEP_WORKERS,
        world_cache=world_cache,
    )
    t0 = time.perf_counter()
    artifact = run_sweep(config)
    elapsed = time.perf_counter() - t0
    ok = True
    if budget_s is not None:
        ok = elapsed <= budget_s
    print(
        f"sweep smoke: {artifact['workload']} took {elapsed:.2f} s"
        + (f" (budget {budget_s:.2f} s)" if budget_s is not None else "")
        + f"; world_build_s={artifact['timing']['world_build_s']} "
        f"campaign_s={artifact['timing']['campaign_s']} -> "
        f"{'OK' if ok else 'TOO SLOW'}"
    )
    rss = _peak_rss_mb()
    cache_mb = 0.0
    if world_cache is not None:
        cache_mb = sum(
            p.stat().st_size for p in pathlib.Path(world_cache).glob("*.npz")
        ) / (1024.0 * 1024.0)
    rss_adj = max(0.0, rss - cache_mb)
    rss_ok = True
    if max_rss_mb is not None:
        rss_ok = rss_adj <= max_rss_mb
        print(
            f"sweep smoke: peak RSS {rss:.1f} MB - {cache_mb:.1f} MB mapped "
            f"snapshots = {rss_adj:.1f} MB (budget {max_rss_mb:.1f} MB) -> "
            f"{'OK' if rss_ok else 'TOO MUCH MEMORY'}"
        )
        ok = ok and rss_ok
    if json_out is not None:
        summary = {
            "workload": artifact["workload"],
            "wall_clock_s": round(elapsed, 3),
            "budget_s": budget_s,
            "wall_ok": budget_s is None or elapsed <= budget_s,
            "world_cache": world_cache,
            "world_build_s": artifact["timing"]["world_build_s"],
            "campaign_s": artifact["timing"]["campaign_s"],
            "peak_rss_mb": round(rss, 1),
            "cache_snapshot_mb": round(cache_mb, 1),
            "peak_rss_minus_cache_mb": round(rss_adj, 1),
            "max_rss_mb": max_rss_mb,
            "rss_ok": rss_ok,
            "ok": ok,
        }
        pathlib.Path(json_out).write_text(json.dumps(summary, indent=2) + "\n")
    return 0 if ok else 1


def test_perf_campaign(report_sink):
    report = run_bench()
    current = report["current"]
    report_sink(
        "perf_campaign",
        f"workload: {report['workload']}\n"
        f"baseline (scalar engine): {BASELINE['wall_clock_s']:.2f} s, "
        f"{BASELINE['pings_per_s']:,} pings/s\n"
        f"PR 1 (vectorized engine): {VECTORIZED['wall_clock_s']:.2f} s, "
        f"{VECTORIZED['pings_per_s']:,} pings/s\n"
        f"PR 2 (fabric engine): {FABRIC['wall_clock_s']:.2f} s, "
        f"{FABRIC['pings_per_s']:,} pings/s, {FABRIC['peak_rss_mb']:.0f} MB peak RSS\n"
        f"PR 3 (columnar engine): {COLUMNAR['wall_clock_s']:.2f} s, "
        f"{COLUMNAR['pings_per_s']:,} pings/s, {COLUMNAR['peak_rss_mb']:.0f} MB peak RSS\n"
        f"PR 4 (pair-grid engine): {PAIR_GRID['wall_clock_s']:.2f} s, "
        f"{PAIR_GRID['pings_per_s']:,} pings/s, {PAIR_GRID['peak_rss_mb']:.0f} MB peak RSS\n"
        f"current (batched-stitch engine): {current['wall_clock_s']:.2f} s "
        f"(fabric build {current['fabric_build_s']:.2f} s, "
        f"{current['routing_destinations']} destinations), "
        f"{current['pings_per_s']:,} pings/s, "
        f"{current['feasibility_checks_per_s']:,} feasibility checks/s, "
        f"{current['peak_rss_mb']:.0f} MB peak RSS\n"
        f"speedup: {report['speedup']:.1f}x vs scalar, "
        f"{report['speedup_vs_vectorized']:.2f}x vs vectorized, "
        f"{report['speedup_vs_fabric']:.2f}x vs fabric, "
        f"{report['speedup_vs_columnar']:.2f}x vs columnar, "
        f"{report['speedup_vs_pair_grid']:.2f}x vs pair-grid\n"
        f"sweep: {report['sweep']['workload']} in {report['sweep']['wall_clock_s']:.2f} s "
        f"cold / {report['sweep']['snapshot_cache']['hit_wall_clock_s']:.2f} s on "
        f"snapshot-cache hits ({report['sweep']['workers']} workers, "
        f"{report['sweep']['snapshot_cache']['snapshot_mb']:.0f} MB of snapshots) "
        f"(written to {_OUT_PATH.name})",
    )
    # the pair-grid engine must stay well ahead of every recorded engine —
    # including the PR 3 columnar reference, which the ISSUE's acceptance
    # criterion targets at < 1.0 s (>= 1.13x) — and must not regress the
    # object-list memory ceiling; the margins absorb machine noise without
    # masking real regressions
    assert report["speedup"] >= 4.5
    assert report["speedup_vs_vectorized"] >= 1.2
    assert report["speedup_vs_fabric"] >= 1.3
    assert report["speedup_vs_columnar"] >= 1.13
    assert report["speedup_vs_pair_grid"] >= 1.1
    assert current["peak_rss_mb"] <= FABRIC["peak_rss_mb"]
    assert current["pings"] > 0
    # the snapshot cache must make the 4-seed sweep an actual shortcut —
    # all-hits under the ROADMAP's 2 s target and byte-identical to the
    # cold build (the deterministic artifact sections compare equal)
    cache = report["sweep"]["snapshot_cache"]
    assert cache["deterministic_match"]
    assert cache["hit_wall_clock_s"] < 2.0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="one timed run checked against the recorded wall clock",
    )
    parser.add_argument("--rounds", type=int, default=1, help="smoke-run rounds")
    parser.add_argument(
        "--budget-factor", type=float, default=3.0,
        help="smoke budget as a multiple of the pro-rated recorded wall clock",
    )
    parser.add_argument(
        "--max-rss-mb", type=float, default=None,
        help="also fail the smoke run if peak RSS exceeds this many MB",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the smoke outcome as JSON (CI's drift-guard artifact)",
    )
    parser.add_argument(
        "--sweep-smoke", action="store_true",
        help="run the 4-seed sweep once against --world-cache and check "
             "--sweep-budget-s (CI runs it twice: populate, then all-hits)",
    )
    parser.add_argument(
        "--world-cache", default=None, metavar="DIR",
        help="world-snapshot cache directory for --sweep-smoke",
    )
    parser.add_argument(
        "--sweep-budget-s", type=float, default=None,
        help="fail --sweep-smoke if the sweep takes longer than this",
    )
    cli_args = parser.parse_args()
    if cli_args.sweep_smoke:
        sys.exit(
            run_sweep_smoke(
                cli_args.world_cache,
                cli_args.sweep_budget_s,
                cli_args.max_rss_mb,
                cli_args.json_out,
            )
        )
    if cli_args.smoke:
        sys.exit(
            run_smoke(
                cli_args.rounds,
                cli_args.budget_factor,
                cli_args.max_rss_mb,
                cli_args.json_out,
            )
        )
    print(json.dumps(run_bench(), indent=2))
