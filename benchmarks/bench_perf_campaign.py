"""PERF — wall-clock of the measurement engine on the full-world campaign.

Times the standard 6-round full-world campaign (seed 11, the same workload
the analysis benches share) and writes ``BENCH_campaign.json`` at the repo
root so future PRs have a perf trajectory to compare against.  The recorded
baseline is the pre-vectorization scalar engine (per-packet ``sample_rtt_ms``
calls, per-(pair, relay) Python feasibility loop, per-candidate haversine in
the path walker) measured with this same protocol on the same machine.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_perf_campaign.py``
or via pytest with the other benches.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro import CampaignConfig, MeasurementCampaign, build_world

SEED = 11
ROUNDS = 6
REPEATS = 5  #: best-of-N wall clock; each repetition is cold (fresh world)

#: Pre-vectorization engine, measured with this harness (commit fc11ff1):
#: 6-round full-world campaign, seed 11.  Feasibility checks counted from a
#: profiled run (796,950 `is_feasible` calls per round).
BASELINE = {
    "engine": "scalar (pre-vectorization)",
    "wall_clock_s": 17.99,
    "pings": 1_018_500,
    "pings_per_s": 56_615,
    "feasibility_checks": 4_781_700,
    "feasibility_checks_per_s": 265_797,
}

_OUT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_campaign.json"


def run_bench() -> dict:
    """Time the campaign cold (best of REPEATS) and assemble the report."""
    elapsed = float("inf")
    for _ in range(REPEATS):
        world = build_world(seed=SEED)
        campaign = MeasurementCampaign(world, CampaignConfig(num_rounds=ROUNDS))
        start = time.perf_counter()
        result = campaign.run()
        elapsed = min(elapsed, time.perf_counter() - start)

    # the Sec 2.4 bound is evaluated for every (measured pair, round relay)
    feasibility_checks = sum(
        len(rnd.direct_medians)
        * sum(len(idx) for idx in rnd.relay_indices_by_type.values())
        for rnd in result.rounds
    )
    current = {
        "engine": "vectorized (NumPy delay matrices + batched pings)",
        "wall_clock_s": round(elapsed, 3),
        "pings": result.total_pings,
        "pings_per_s": int(result.total_pings / elapsed),
        "feasibility_checks": feasibility_checks,
        "feasibility_checks_per_s": int(feasibility_checks / elapsed),
        "rounds": ROUNDS,
        "seed": SEED,
        "pairs_observed": sum(len(r.observations) for r in result.rounds),
    }
    report = {
        "workload": f"{ROUNDS}-round full-world campaign, seed {SEED}",
        "protocol": f"best of {REPEATS} cold runs (fresh world per run)",
        "baseline": BASELINE,
        "current": current,
        "speedup": round(BASELINE["wall_clock_s"] / elapsed, 2),
    }
    _OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_perf_campaign(report_sink):
    report = run_bench()
    current = report["current"]
    report_sink(
        "perf_campaign",
        f"workload: {report['workload']}\n"
        f"baseline (scalar engine): {BASELINE['wall_clock_s']:.2f} s, "
        f"{BASELINE['pings_per_s']:,} pings/s\n"
        f"current (vectorized engine): {current['wall_clock_s']:.2f} s, "
        f"{current['pings_per_s']:,} pings/s, "
        f"{current['feasibility_checks_per_s']:,} feasibility checks/s\n"
        f"speedup: {report['speedup']:.1f}x (written to {_OUT_PATH.name})",
    )
    # the vectorized engine must stay well ahead of the scalar baseline;
    # the margin absorbs machine noise without masking real regressions
    assert report["speedup"] >= 3.0
    assert current["pings"] > 0


if __name__ == "__main__":
    print(json.dumps(run_bench(), indent=2))
