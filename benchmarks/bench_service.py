"""PERF — sustained query throughput of the serving layer.

Times the online side of the system on the tiny serving workload (the
same 8-country, 3-round history ``repro serve-bench`` defaults to):
directory compilation from the campaign result, one incremental round
ingest, the ``.npz`` snapshot round-trip, a Zipf-shaped traffic replay
measuring sustained batched queries/sec, and the sharded multi-process
cluster (1 vs 2 workers, scored on CPU-clock critical paths — see
``benchmarks/README.md`` for why wall clocks cannot measure scale-out on
shared-core CI hosts).  Writes ``BENCH_service.json`` at the repo root so
future PRs have a serving-side perf trajectory next to the engine's
``BENCH_campaign.json``.

Run standalone with ``python benchmarks/bench_service.py`` or via pytest
with the other benches.  ``--smoke --queries N --budget-factor F
[--json-out PATH]`` compiles the directory and replays N queries,
exiting non-zero if compile + replay exceed F times the recorded wall
clocks (replay pro-rated to N queries) — CI's service-bench guard.
"""

from __future__ import annotations

import argparse
import importlib.util
import io
import json
import pathlib
import sys
import time

if importlib.util.find_spec("repro") is None:  # bare checkout: src layout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import CampaignConfig, MeasurementCampaign, build_world
from repro.service import (
    NUM_SHARDS,
    ClusterService,
    LoadgenConfig,
    ShortcutService,
    replay,
)
from repro.topology.config import TopologyConfig
from repro.world import WorldConfig

SEED = 11
COUNTRIES = 8
ROUNDS = 3
QUERIES = 200_000
BATCH_SIZE = 1024
REPEATS = 3  #: best-of-N for the timed sections (history built once)
LIVENESS_ROUNDS = 2  #: health window of the churn-aware degradation leg
CLUSTER_REPEATS = 5  #: interleaved 1-/2-worker replays for the scale-out ratio
CLUSTER_BATCH_SIZE = 8192  #: bigger batches amortize the front's serial CPU

_OUT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_service.json"


def _build_history():
    """The tiny-world campaign history the service compiles from."""
    world = build_world(
        seed=SEED,
        config=WorldConfig(topology=TopologyConfig(country_limit=COUNTRIES)),
    )
    campaign = MeasurementCampaign(world, CampaignConfig(num_rounds=ROUNDS))
    return campaign.run()


def run_bench() -> dict:
    """Time compile / ingest / snapshot / replay; write the report."""
    start = time.perf_counter()
    result = _build_history()
    history_s = time.perf_counter() - start

    compile_s = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        service = ShortcutService.from_result(result)
        compile_s = min(compile_s, time.perf_counter() - start)

    # incremental ingest: a service warm on all but the last round folds
    # the last round in (what an operator pays per new measurement round)
    ingest_s = float("inf")
    for _ in range(REPEATS):
        warm = ShortcutService.from_result(result, rounds=result.rounds[:-1])
        start = time.perf_counter()
        ingest_stats = warm.ingest_round(result.rounds[-1])
        ingest_s = min(ingest_s, time.perf_counter() - start)

    buffer = io.BytesIO()
    start = time.perf_counter()
    service.save(buffer)
    save_s = time.perf_counter() - start
    snapshot_bytes = len(buffer.getvalue())
    buffer.seek(0)
    start = time.perf_counter()
    restored = ShortcutService.load(buffer)
    restore_s = time.perf_counter() - start
    snapshot_ok = (
        restored.directory.block_signature() == service.directory.block_signature()
    )

    config = LoadgenConfig(num_queries=QUERIES, batch_size=BATCH_SIZE)
    best = None
    for _ in range(REPEATS):
        stats = replay(service, config)
        if best is None or stats["wall_clock_s"] < best["wall_clock_s"]:
            best = stats

    # churn-aware leg: the same stream against a liveness-enabled service,
    # recording the health path's degradation counters (stale answers,
    # evictions, tier fallbacks) and its cost next to the health-off
    # replay.  A fresh service per repeat keeps the cumulative counters
    # comparable across runs.
    live_best = live_service = None
    for _ in range(REPEATS):
        candidate = ShortcutService.from_result(
            result, liveness_rounds=LIVENESS_ROUNDS
        )
        stats = replay(candidate, config)
        if live_best is None or stats["wall_clock_s"] < live_best["wall_clock_s"]:
            live_best, live_service = stats, candidate
    degradation_report = {
        "liveness_rounds": LIVENESS_ROUNDS,
        "dead_relays": live_service.dead_relay_count(),
        "queries_per_s": live_best["queries_per_s"],
        "health_cost_pct": round(
            100.0
            * (live_best["wall_clock_s"] - best["wall_clock_s"])
            / best["wall_clock_s"],
            1,
        ),
        "tier_counts": live_best["tier_counts"],
        "counters": live_best.degradation,
    }

    # sharded multi-process cluster: the same stream against 1 worker and
    # 2 workers, scored on CPU-clock critical paths (front CPU + slowest
    # worker's busy clock), so the scale-out is measurable on a single
    # shared core.  The legs' repeats are interleaved and scored on the
    # summed paths — CPU-frequency drift between sequential legs would
    # otherwise swamp the ratio.  Answers must be byte-identical to the
    # in-process service's at the same batch size (the replay digest
    # hashes per-batch, so the baseline must share the cluster's batch).
    cluster_config = LoadgenConfig(
        num_queries=QUERIES, batch_size=CLUSTER_BATCH_SIZE
    )
    digests = {replay(service, cluster_config).answers_digest}
    paths: dict[int, list[dict]] = {1: [], 2: []}
    with ClusterService.from_service(service, workers=1) as c1, \
            ClusterService.from_service(service, workers=2) as c2:
        for _ in range(CLUSTER_REPEATS):
            for workers, cluster in ((1, c1), (2, c2)):
                stats = replay(cluster, cluster_config)
                digests.add(stats.answers_digest)
                paths[workers].append(stats.scale_out)
    cluster_legs: dict[int, dict] = {}
    for workers, runs in paths.items():
        total_path = sum(r["critical_path_s"] for r in runs)
        cluster_legs[workers] = {
            "aggregate_queries_per_s": int(QUERIES * len(runs) / total_path),
            "critical_path_s": round(total_path, 6),
            "critical_path_min_s": round(
                min(r["critical_path_s"] for r in runs), 6
            ),
            "front_cpu_s": round(sum(r["front_cpu_s"] for r in runs), 6),
            "max_worker_busy_s": round(
                sum(r["max_worker_busy_s"] for r in runs), 6
            ),
        }
    agg_1 = cluster_legs[1]["aggregate_queries_per_s"]
    agg_2 = cluster_legs[2]["aggregate_queries_per_s"]
    speedup = round(agg_2 / agg_1, 3)
    cluster_report = {
        "num_shards": NUM_SHARDS,
        "batch_size": CLUSTER_BATCH_SIZE,
        "protocol": (
            f"{CLUSTER_REPEATS} interleaved replays per worker count, "
            "scored on summed CPU-clock critical paths "
            "(front CPU + slowest worker busy CPU)"
        ),
        "single_worker": cluster_legs[1],
        "two_workers": cluster_legs[2],
        "speedup": speedup,
        "efficiency": round(speedup / 2, 3),
        "digest_match": len(digests) == 1,
    }

    report = {
        "workload": (
            f"{COUNTRIES}-country world, seed {SEED}, {ROUNDS}-round history; "
            f"{QUERIES} queries in {BATCH_SIZE}-batches"
        ),
        "protocol": f"best of {REPEATS} runs per timed section",
        "history": {
            "build_s": round(history_s, 3),
            "total_cases": result.total_cases,
            "rounds": len(result.rounds),
            "relays_registered": len(result.registry),
        },
        "compile_s": round(compile_s, 4),
        "ingest_round_s": round(ingest_s, 4),
        "ingest_touched_lanes": ingest_stats["touched_lanes"],
        "snapshot": {
            "bytes": snapshot_bytes,
            "save_s": round(save_s, 4),
            "restore_s": round(restore_s, 4),
            "roundtrip_ok": snapshot_ok,
        },
        "directory": service.stats(),
        "replay": best.as_dict(),
        "degradation": degradation_report,
        "cluster": cluster_report,
    }
    _OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_smoke(
    queries: int, budget_factor: float, json_out: str | None = None
) -> int:
    """Compile + replay checked against the recorded wall clocks.

    The budget is ``budget_factor x`` (recorded compile + recorded replay
    wall pro-rated to ``queries``) plus a 2 s grace for fixed costs; the
    history build is excluded from the budget (the campaign engine has its
    own drift guard).  Returns a process exit code.
    """
    recorded = json.loads(_OUT_PATH.read_text())
    replay_budget = (
        recorded["replay"]["wall_clock_s"] * queries / recorded["replay"]["queries"]
    )
    budget = budget_factor * (recorded["compile_s"] + replay_budget) + 2.0

    result = _build_history()
    start = time.perf_counter()
    service = ShortcutService.from_result(result)
    stats = replay(
        service, LoadgenConfig(num_queries=queries, batch_size=BATCH_SIZE)
    )
    elapsed = time.perf_counter() - start
    ok = elapsed <= budget and stats["relay_answer_frac"] > 0.0
    print(
        f"smoke: compile + {queries}-query replay took {elapsed:.3f} s "
        f"(budget {budget:.3f} s = {budget_factor}x recorded compile "
        f"{recorded['compile_s']} s + pro-rated replay + 2 s grace); "
        f"{stats['queries_per_s']:,} queries/s -> {'OK' if ok else 'TOO SLOW'}"
    )
    if json_out is not None:
        summary = {
            "queries": queries,
            "wall_clock_s": round(elapsed, 3),
            "budget_s": round(budget, 3),
            "budget_factor": budget_factor,
            "queries_per_s": stats["queries_per_s"],
            "relay_answer_frac": stats["relay_answer_frac"],
            "tier_counts": stats["tier_counts"],
            "ok": ok,
        }
        pathlib.Path(json_out).write_text(json.dumps(summary, indent=2) + "\n")
    return 0 if ok else 1


def test_service_bench(report_sink):
    report = run_bench()
    best = report["replay"]
    cluster = report["cluster"]
    report_sink(
        "perf_service",
        f"workload: {report['workload']}\n"
        f"history build: {report['history']['build_s']:.2f} s "
        f"({report['history']['total_cases']} cases)\n"
        f"compile: {report['compile_s'] * 1000:.1f} ms, incremental ingest: "
        f"{report['ingest_round_s'] * 1000:.1f} ms "
        f"({report['ingest_touched_lanes']} touched lanes)\n"
        f"snapshot: {report['snapshot']['bytes']} bytes, save "
        f"{report['snapshot']['save_s'] * 1000:.1f} ms, restore "
        f"{report['snapshot']['restore_s'] * 1000:.1f} ms\n"
        f"replay: {best['queries']} queries -> {best['queries_per_s']:,} "
        f"queries/s ({100 * best['relay_answer_frac']:.1f}% relay answers)\n"
        f"degradation (liveness={report['degradation']['liveness_rounds']}): "
        f"{report['degradation']['counters']['candidates_evicted']} evicted, "
        f"{report['degradation']['counters']['fallback_country']} country "
        f"fallbacks, health cost "
        f"{report['degradation']['health_cost_pct']}%\n"
        f"cluster: 1 worker "
        f"{cluster['single_worker']['aggregate_queries_per_s']:,.0f} q/s, "
        f"2 workers "
        f"{cluster['two_workers']['aggregate_queries_per_s']:,.0f} q/s "
        f"(speedup {cluster['speedup']}x, efficiency {cluster['efficiency']}) "
        f"(written to {_OUT_PATH.name})",
    )
    # the acceptance floor: the tiny world must sustain >= 100k batched
    # queries/sec with a healthy answer rate and a clean snapshot
    assert best["queries_per_s"] >= 100_000
    assert best["relay_answer_frac"] >= 0.5
    assert report["snapshot"]["roundtrip_ok"]
    # incremental ingest must be cheaper than a full compile
    assert report["ingest_round_s"] <= report["compile_s"]
    # the cluster must answer byte-identically and scale: the recorded
    # target is >= 1.6x at 2 workers, asserted here with flake headroom
    assert cluster["digest_match"]
    assert cluster["speedup"] >= 1.3


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="compile + replay checked against the recorded wall clocks",
    )
    parser.add_argument("--queries", type=int, default=10_000, help="smoke queries")
    parser.add_argument(
        "--budget-factor", type=float, default=3.0,
        help="smoke budget as a multiple of the recorded wall clocks",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the smoke outcome as JSON (CI's service-bench artifact)",
    )
    cli_args = parser.parse_args()
    if cli_args.smoke:
        sys.exit(run_smoke(cli_args.queries, cli_args.budget_factor, cli_args.json_out))
    print(json.dumps(run_bench(), indent=2))
