"""TXT-SYM — ping direction symmetry.

Paper (Sec 2.5): for ~80% of endpoint pairs, the RTT measured from one
side differs from the other side's by at most 5%, and the signed
difference averages out to ~0% under randomised direction selection.
"""

from __future__ import annotations

from repro.analysis.symmetry import SymmetryAnalysis


def test_ping_direction_symmetry(benchmark, campaign, report_sink):
    pairs = benchmark.pedantic(
        campaign.measure_direction_symmetry, args=(0,), rounds=1, iterations=1
    )
    analysis = SymmetryAnalysis(pairs)
    within5 = analysis.fraction_within(0.05)
    mean_signed = analysis.mean_signed_difference()
    report_sink(
        "text_symmetry",
        f"pairs measured bidirectionally: {len(pairs)}\n"
        f"within 5%: {100 * within5:.1f}% (paper: ~80%)\n"
        f"mean signed difference: {100 * mean_signed:+.2f}% (paper: ~0%)",
    )
    assert 0.6 <= within5 <= 1.0
    assert abs(mean_signed) < 0.05
