"""EXTENSION — is one relay enough? (Han et al. / Le et al.)

The paper restricts itself to 1-relay paths, citing prior findings that a
single relay captures nearly all multi-relay gains.  This bench verifies
the claim inside the simulation: best 1-relay vs best 2-relay overlay path
over base RTTs for sampled endpoint pairs and Colo relays.
"""

from __future__ import annotations

from repro.analysis.multihop import two_relay_study
from repro.core.colo import ColoRelayPipeline
from repro.core.config import CampaignConfig
from repro.core.eyeballs import EyeballSelector


def test_one_relay_is_enough(benchmark, world, report_sink):
    cfg = CampaignConfig(max_countries=20)
    rng = world.seeds.rng("bench.multihop")
    endpoints = [p.node.endpoint for p in EyeballSelector(world, cfg).sample_endpoints(rng)]
    relays = [r.node.endpoint for r in ColoRelayPipeline(world, cfg).sample_relays(rng)]

    study = benchmark.pedantic(
        two_relay_study,
        args=(world.latency, endpoints, relays, rng),
        kwargs={"max_pairs": 80, "max_relays": 25},
        rounds=1,
        iterations=1,
    )
    report_sink(
        "ext_multihop",
        f"pairs compared: {study.pairs}\n"
        f"1-relay improves: {study.one_relay_improved}; "
        f"2-relay improves: {study.two_relay_improved}\n"
        f"median extra gain of a 2nd relay: {study.extra_gain_ms_median:.2f} ms\n"
        f"pairs where 1 relay captures >=90% of the 2-relay gain: "
        f"{100 * study.one_relay_captures_frac:.1f}% "
        "(prior work: one relay is adequate)",
    )
    assert study.one_relay_captures_frac >= 0.5
    assert study.extra_gain_ms_median < 10.0
