"""TXT-CC — Changing countries and paths + VoIP thresholds.

Paper: the best third-country COR improves 75% of cases vs 50% for relays
sharing a country with an endpoint; 74% of pairs are intercontinental;
19% of direct paths exceed 320 ms, falling to 11% with COR relays.
"""

from __future__ import annotations

from repro.analysis.countries import CountryChangeAnalysis
from repro.analysis.voip import VoipAnalysis
from repro.core.types import RELAY_TYPE_ORDER, RelayType


def test_country_change_and_voip(benchmark, result, report_sink):
    def analyse():
        countries = CountryChangeAnalysis(result)
        voip = VoipAnalysis(result)
        return countries, voip

    countries, voip = benchmark(analyse)

    lines = [f"{'type':>10} {'diff-cc rate':>13} {'same-cc rate':>13} (paper COR: 75% vs 50%)"]
    for relay_type in RELAY_TYPE_ORDER:
        rates = countries.group_rates(relay_type)
        diff = f"{100 * rates.different_rate:.1f}%" if rates.different_rate else "n/a"
        same = f"{100 * rates.same_rate:.1f}%" if rates.same_rate else "n/a"
        lines.append(f"{relay_type.value:>10} {diff:>13} {same:>13}")
    inter = countries.intercontinental_fraction()
    lines.append(f"\nintercontinental pairs: {100 * inter:.1f}% (paper: 74%)")
    direct_poor = voip.direct_poor_fraction()
    relayed_poor = voip.relayed_poor_fraction(RelayType.COR)
    lines.append(
        f"direct paths > 320 ms: {100 * direct_poor:.1f}% (paper: 19%); "
        f"with best COR: {100 * relayed_poor:.1f}% (paper: 11%)"
    )
    report_sink("text_country_change", "\n".join(lines))

    cor = countries.group_rates(RelayType.COR)
    assert cor.different_rate > cor.same_rate
    assert inter > 0.5
    assert relayed_poor < direct_poor
