"""EXTENSION — submarine-cable landing-point proximity (future work iii).

The paper's conclusions propose correlating latency with the proximity of
endpoints/relays to submarine cable landing points.  We split the
campaign's intercontinental pairs by whether both endpoints sit within
500 km of a landing station and compare direct RTTs and Colo-relay
benefit.
"""

from __future__ import annotations

from repro.analysis.cables import CableProximityAnalysis
from repro.core.types import RelayType


def test_cable_proximity(benchmark, result, report_sink):
    analysis = CableProximityAnalysis(result, threshold_km=500.0)
    report = benchmark(analysis.report, RelayType.COR)

    report_sink(
        "ext_cables",
        f"threshold: both endpoints within {report.threshold_km:.0f} km of a "
        "landing point\n"
        f"near pairs: {report.near_pairs}  (median direct RTT "
        f"{report.near_direct_median_ms:.0f} ms, COR improves "
        f"{100 * report.near_improved_rate:.1f}%)\n"
        f"far pairs:  {report.far_pairs}  (median direct RTT "
        f"{report.far_direct_median_ms:.0f} ms, COR improves "
        f"{100 * report.far_improved_rate:.1f}%)",
    )
    assert report.near_pairs > 0 and report.far_pairs > 0
    # coastal-hub endpoints ride shorter intercontinental paths
    assert report.near_direct_median_ms <= report.far_direct_median_ms * 1.3
