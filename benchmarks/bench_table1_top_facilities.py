"""TAB1 — Facilities of the top-20 Colo relays.

Paper (Table 1): the top-20 CORs map to 10 facilities, 4 of them in
PeeringDB's top-10 by colocated networks; every one hosts >=22 networks,
attaches to >=2 IXPs and offers (or colocates) cloud services; all sit in
major metros.  We regenerate the table with the same feature columns.
"""

from __future__ import annotations

from repro.analysis.facilities import FacilityTable
from repro.geo.cities import city as city_of


def test_table1_top_facilities(benchmark, result, world, report_sink):
    table = FacilityTable(result, world)
    rows = benchmark(table.rows, 20)

    report_sink("table1_top_facilities", table.render(20))

    assert rows, "table must not be empty"
    assert len(rows) <= 20
    # every listed facility is a well-connected hub facility
    for row in rows:
        assert city_of(row.city_key).is_hub
        assert row.num_networks >= 5
    # most offer cloud services (paper: all)
    cloudy = sum(1 for row in rows if row.cloud_services)
    assert cloudy / len(rows) >= 0.5
    # some are PeeringDB top-10 facilities (paper: 4 of 10)
    assert any(row.pdb_top10 for row in rows)
    # ranked by the frequency of their relays: percentages non-increasing
    pcts = [row.pct_improved_cases for row in rows]
    assert pcts[0] == max(pcts)
