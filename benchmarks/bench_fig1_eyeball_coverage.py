"""FIG1 — Number of covered ASes/countries vs cutoff user coverage.

Paper (Fig. 1): both series fall with the cutoff; at 10% coverage 494 ASes
in 223 countries qualify; above ~30% the two lines converge (one AS per
country).  We regenerate the same two series from the synthetic APNIC
dataset; absolute counts scale with the generated world.
"""

from __future__ import annotations

CUTOFFS = [float(c) for c in range(0, 101, 5)]


def test_fig1_eyeball_coverage(benchmark, world, report_sink):
    curve = benchmark(world.apnic.fig1_curve, CUTOFFS)

    lines = [f"{'cutoff%':>8} {'#ASes':>7} {'#countries':>11}"]
    for cutoff, num_ases, num_countries in curve:
        lines.append(f"{cutoff:>8.0f} {num_ases:>7} {num_countries:>11}")
    at10 = next((a, c) for cut, a, c in curve if cut == 10.0)
    lines.append(
        f"\nat 10% cutoff: {at10[0]} ASes / {at10[1]} countries "
        "(paper: 494 ASes / 223 countries at its scale)"
    )
    report_sink("fig1_eyeball_coverage", "\n".join(lines))

    # shape assertions: monotone decreasing, convergence at high cutoffs
    ases = [a for _, a, _ in curve]
    countries = [c for _, _, c in curve]
    assert ases == sorted(ases, reverse=True)
    assert all(a >= c for a, c in zip(ases, countries))
    high = [(a, c) for cut, a, c in curve if cut >= 60.0]
    assert all(a <= c * 1.2 + 1 for a, c in high), "lines must converge"
