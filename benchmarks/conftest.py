"""Shared benchmark fixtures.

The benchmarks regenerate every figure and table of the paper against a
full-scale world.  The campaign (6 rounds here vs the paper's 45; scaling
is linear and the shapes stabilise after a few rounds) runs once per
session; each bench then times its analysis and prints the reproduced
series, also writing them under ``benchmarks/results/`` so EXPERIMENTS.md
can cite them.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import CampaignConfig, MeasurementCampaign, build_world

BENCH_SEED = 11
BENCH_ROUNDS = 6

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def world():
    """The full default world every bench runs against."""
    return build_world(seed=BENCH_SEED)


@pytest.fixture(scope="session")
def campaign(world):
    """The (already-constructed) campaign object."""
    return MeasurementCampaign(world, CampaignConfig(num_rounds=BENCH_ROUNDS))


@pytest.fixture(scope="session")
def result(campaign):
    """The campaign result shared by all analysis benches."""
    return campaign.run()


@pytest.fixture(scope="session")
def report_sink():
    """Write a named report both to stdout and benchmarks/results/."""
    _RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        print(f"\n===== {name} =====\n{text}")
        (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return write
