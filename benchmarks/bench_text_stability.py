"""TXT-STAB — stability over time.

Paper: per round, COR improves >75% of cases, RAR_other >50%, PLR/RAR_eye
<50%; the coefficient of variation of per-pair median RTTs across rounds
is below 10% for 90% of pairs ("stable, usable overlays").
"""

from __future__ import annotations

from repro.analysis.stability import StabilityAnalysis
from repro.core.types import RELAY_TYPE_ORDER, RelayType


def test_stability_over_time(benchmark, result, report_sink):
    analysis = benchmark(StabilityAnalysis, result, 2)

    lines = ["per-round improved fraction:"]
    header = f"{'round':>6} " + " ".join(f"{t.value:>10}" for t in RELAY_TYPE_ORDER)
    lines.append(header)
    series = {
        t: dict(analysis.per_round_improved_fractions(t)) for t in RELAY_TYPE_ORDER
    }
    for rnd in sorted(series[RelayType.COR]):
        lines.append(
            f"{rnd:>6} "
            + " ".join(f"{100 * series[t][rnd]:>9.1f}%" for t in RELAY_TYPE_ORDER)
        )
    cvs = analysis.all_cvs()
    below = sum(1 for cv in cvs if cv < 0.10) / len(cvs) if cvs else float("nan")
    lines.append(
        f"\nrecurring pairs: {len(cvs)}; CV<10% for {100 * below:.1f}% of them "
        "(paper: 90%); max CV "
        f"{max(cvs):.2f} (paper: <=0.40)" if cvs else "\nno recurring pairs"
    )
    report_sink("text_stability", "\n".join(lines))

    # per-round consistency: COR leads in every round
    for rnd in series[RelayType.COR]:
        assert series[RelayType.COR][rnd] > series[RelayType.RAR_EYE][rnd]
        assert series[RelayType.COR][rnd] > series[RelayType.PLR][rnd]
    assert cvs, "some pairs must recur across rounds"
    assert below > 0.6
