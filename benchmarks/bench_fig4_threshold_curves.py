"""FIG4 — % of total cases improved vs improvement threshold, top-10/all.

Paper (Fig. 4): top-10 COR beats the top-10 of every other type and tracks
the RAR_other-ALL curve; with only the top-10 CORs ~20% of all pairs gain
more than 20 ms; the PLR top-10/all gap is minimal (~5%).  We regenerate
all eight series.
"""

from __future__ import annotations

from repro.analysis.ranking import TopRelayAnalysis
from repro.core.types import RELAY_TYPE_ORDER, RelayType

THRESHOLDS = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 75.0, 100.0]


def test_fig4_threshold_curves(benchmark, result, report_sink):
    analysis = TopRelayAnalysis(result)

    def build_curves():
        out = {}
        for relay_type in RELAY_TYPE_ORDER:
            out[(relay_type, "TOP10")] = dict(
                analysis.fig4_curve(relay_type, THRESHOLDS, top_n=10)
            )
            out[(relay_type, "ALL")] = dict(analysis.fig4_curve(relay_type, THRESHOLDS))
        return out

    curves = benchmark(build_curves)

    lines = []
    header = f"{'series':>16} " + " ".join(f">{int(t):>3}ms" for t in THRESHOLDS)
    lines.append(header)
    for relay_type in RELAY_TYPE_ORDER:
        for variant in ("TOP10", "ALL"):
            series = curves[(relay_type, variant)]
            lines.append(
                f"{relay_type.value + '-' + variant:>16} "
                + " ".join(f"{series[t]:>5.1f}" for t in THRESHOLDS)
            )
    report_sink("fig4_threshold_curves", "\n".join(lines))

    # top-10 COR beats the top-10 of every other type at low thresholds
    for threshold in (0.0, 10.0, 20.0):
        cor = curves[(RelayType.COR, "TOP10")][threshold]
        for other in (RelayType.PLR, RelayType.RAR_EYE):
            assert cor > curves[(other, "TOP10")][threshold]
    # a subset can never beat the full set
    for relay_type in RELAY_TYPE_ORDER:
        for threshold in THRESHOLDS:
            assert (
                curves[(relay_type, "TOP10")][threshold]
                <= curves[(relay_type, "ALL")][threshold] + 1e-9
            )
