"""ABLATION — median-of-6 vs mean-of-6 batch summarisation.

The paper summarises each 30-minute window by the *median* of its 6 pings
precisely because RIPE Atlas batches contain heavy outliers (Sec 2.5,
footnote 4).  This bench injects the model's congestion spikes and
compares how far each statistic strays from the pair's true base RTT.
"""

from __future__ import annotations

import numpy as np

from repro.latency.model import LatencyConfig, LatencyModel
from repro.latency.ping import PingEngine


def test_median_vs_mean_robustness(benchmark, world, report_sink):
    # a spike-heavy variant of the latency model (same routing/geography)
    spiky_model = LatencyModel(
        world.routing, world.walker, LatencyConfig(spike_prob=0.12, spike_range_ms=(100.0, 400.0))
    )
    engine = PingEngine(spiky_model)
    probes = [p.node.endpoint for p in world.atlas.all_probes()[:60]]
    rng = np.random.default_rng(17)

    def study():
        median_err, mean_err, batches = 0.0, 0.0, 0
        for i in range(0, len(probes) - 1, 2):
            src, dst = probes[i], probes[i + 1]
            base = spiky_model.base_rtt_ms(src, dst)
            if base is None:
                continue
            for _ in range(10):
                result = engine.ping(src, dst, rng, count=6)
                valid = result.valid_rtts
                if len(valid) < 3:
                    continue
                batches += 1
                med = result.median_rtt()
                mean = sum(valid) / len(valid)
                median_err += abs(med - base) / base
                mean_err += abs(mean - base) / base
        return median_err / batches, mean_err / batches, batches

    med_err, mean_err, batches = benchmark.pedantic(study, rounds=1, iterations=1)
    report_sink(
        "ablation_median",
        f"batches: {batches} (6 pings each, 12% spike probability)\n"
        f"mean relative error of MEDIAN vs true base RTT: {100 * med_err:.2f}%\n"
        f"mean relative error of MEAN   vs true base RTT: {100 * mean_err:.2f}%\n"
        f"median is {mean_err / med_err:.1f}x closer to the truth under outliers",
    )
    assert med_err < mean_err, "median must be more robust than mean under spikes"
