"""MONTECARLO — confidence-bounded paper shapes under knob perturbation.

Runs the frozen ``tiny-mc`` regime (baseline scenario, campaign-level
knobs perturbed per draw, 8-country world, 1 round) three ways and
records the answers into ``BENCH_montecarlo.json`` at the repo root:

* does the regime converge — every claim's Wilson interval and every
  metric's bootstrap interval inside its target half-width — within the
  draw cap, and how many draws does it take?
* is the artifact deterministic — two runs over one world-snapshot
  cache must agree byte-for-byte outside the ``timing`` section?
* what does the snapshot cache buy — cold (no cache) vs warm
  (pre-populated cache) wall clock for the same draw sequence?

Run standalone with ``python benchmarks/bench_montecarlo.py`` or via
pytest with the other benches.  ``--smoke --budget-factor F [--json-out
PATH]`` runs the regime once against a fresh cache and exits non-zero if
it fails to converge, the artifact drifts from determinism, or the wall
clock exceeds F times the recorded run — CI's montecarlo-smoke guard.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import pathlib
import sys
import tempfile
import time

if importlib.util.find_spec("repro") is None:  # bare checkout: src layout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import MonteCarloConfig, run_montecarlo

REGIME = "tiny-mc"
SEED = 7
COUNTRIES = 8
ROUNDS = 1

_OUT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_montecarlo.json"


def _config(world_cache: str | None, use_world_cache: bool = True):
    return MonteCarloConfig(
        regime=REGIME,
        seed=SEED,
        batch_size=4,
        max_draws=8,
        confidence=0.9,
        target_half_width=0.35,
        rounds=ROUNDS,
        countries=COUNTRIES,
        bootstrap_resamples=500,
        world_cache=world_cache,
        use_world_cache=use_world_cache,
    )


def _stable(artifact: dict) -> str:
    """The deterministic payload: everything but the wall clocks."""
    return json.dumps(
        {k: v for k, v in artifact.items() if k != "timing"}, sort_keys=True
    )


def run_bench() -> dict:
    """Convergence, determinism and cache-reuse record for ``tiny-mc``."""
    with tempfile.TemporaryDirectory(prefix="mc-bench-") as cache_dir:
        start = time.perf_counter()
        cold = run_montecarlo(_config(world_cache=None, use_world_cache=False))
        cold_s = time.perf_counter() - start

        start = time.perf_counter()
        first = run_montecarlo(_config(cache_dir))
        populate_s = time.perf_counter() - start

        start = time.perf_counter()
        second = run_montecarlo(_config(cache_dir))
        warm_s = time.perf_counter() - start

    deterministic = (
        _stable(cold) == _stable(first) == _stable(second)
    )
    convergence = first["convergence"]
    report = {
        "workload": (
            f"{REGIME} regime, {COUNTRIES}-country world, seed {SEED}, "
            f"{ROUNDS} round(s) per draw; batch 4, cap 8, 90% confidence, "
            f"target half-width 0.35, 500 bootstrap resamples"
        ),
        "convergence": {
            "converged": convergence["converged"],
            "draws": convergence["draws"],
            "batches": convergence["batches"],
            "max_draws": convergence["max_draws"],
        },
        "claims": {
            name: {
                "probability": row["probability"],
                "ci": [row["ci_low"], row["ci_high"]],
                "half_width": row["half_width"],
            }
            for name, row in first["risk"]["claims"].items()
        },
        "metrics": {
            name: {
                "mean": row["mean"],
                "ci": [row["ci_low"], row["ci_high"]],
                "half_width": row["half_width"],
                "target": row["target"],
            }
            for name, row in first["risk"]["metrics"].items()
        },
        "world_cache": first["world_cache"],
        "deterministic": deterministic,
        "wall_clock_s": {
            "no_cache": round(cold_s, 3),
            "cache_populate": round(populate_s, 3),
            "cache_warm": round(warm_s, 3),
        },
    }
    _OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_smoke(budget_factor: float, json_out: str | None = None) -> int:
    """One capped run checked against convergence and the recorded wall.

    The budget is ``budget_factor x`` the recorded no-cache wall plus a
    2 s grace.  Fails if the regime misses convergence inside the draw
    cap, the stable payload drifts from a repeat run over the same
    cache, or the run is too slow.
    """
    recorded = json.loads(_OUT_PATH.read_text())
    budget = budget_factor * recorded["wall_clock_s"]["no_cache"] + 2.0

    with tempfile.TemporaryDirectory(prefix="mc-smoke-") as cache_dir:
        start = time.perf_counter()
        artifact = run_montecarlo(_config(cache_dir))
        elapsed = time.perf_counter() - start
        repeat = run_montecarlo(_config(cache_dir))

    convergence = artifact["convergence"]
    converged = convergence["converged"]
    deterministic = _stable(artifact) == _stable(repeat)
    ok = converged and deterministic and elapsed <= budget
    print(
        f"montecarlo smoke: {REGIME} ran {convergence['draws']} draws in "
        f"{convergence['batches']} batch(es), {elapsed:.3f} s (budget "
        f"{budget:.3f} s = {budget_factor}x recorded "
        f"{recorded['wall_clock_s']['no_cache']} s + 2 s grace); "
        f"converged={converged}, deterministic={deterministic} -> "
        f"{'OK' if ok else 'FAIL'}"
    )
    if json_out is not None:
        outcome = {
            "regime": REGIME,
            "wall_clock_s": round(elapsed, 3),
            "budget_s": round(budget, 3),
            "budget_factor": budget_factor,
            "converged": converged,
            "deterministic": deterministic,
            "draws": convergence["draws"],
            "ok": ok,
        }
        pathlib.Path(json_out).write_text(json.dumps(outcome, indent=2) + "\n")
    return 0 if ok else 1


def test_montecarlo_bench(report_sink):
    report = run_bench()
    claim_lines = "\n".join(
        f"  {name}: P(hold) {row['probability']} "
        f"[{row['ci'][0]}, {row['ci'][1]}] (half-width {row['half_width']})"
        for name, row in report["claims"].items()
    )
    metric_lines = "\n".join(
        f"  {name}: mean {row['mean']} [{row['ci'][0]}, {row['ci'][1]}] "
        f"(half-width {row['half_width']}, target {row['target']})"
        for name, row in report["metrics"].items()
    )
    walls = report["wall_clock_s"]
    report_sink(
        "montecarlo_bench",
        f"workload: {report['workload']}\n"
        f"converged after {report['convergence']['draws']} draws "
        f"({report['convergence']['batches']} batch(es), cap "
        f"{report['convergence']['max_draws']})\n"
        f"claim-hold probabilities (Wilson):\n{claim_lines}\n"
        f"metric bootstrap CIs:\n{metric_lines}\n"
        f"world cache: {report['world_cache']['distinct_worlds']} distinct "
        f"world(s) across {report['world_cache']['draws']} draws\n"
        f"wall clock: no-cache {walls['no_cache']} s, populate "
        f"{walls['cache_populate']} s, warm {walls['cache_warm']} s\n"
        f"deterministic across cache modes: {report['deterministic']}\n"
        f"(written to {_OUT_PATH.name})",
    )
    # the acceptance floors: the frozen regime must converge inside the
    # cap and the artifact must not depend on cache state
    assert report["convergence"]["converged"] is True
    assert report["convergence"]["draws"] <= report["convergence"]["max_draws"]
    assert report["deterministic"] is True
    # every draw of tiny-mc shares one config digest (campaign-only
    # perturbations) — the whole point of the regime's cache affinity
    assert report["world_cache"]["distinct_configs"] == 1


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="one capped run checked against the recorded wall clock",
    )
    parser.add_argument(
        "--budget-factor", type=float, default=3.0,
        help="smoke budget as a multiple of the recorded no-cache wall",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the smoke outcome as JSON (CI's montecarlo-smoke artifact)",
    )
    cli_args = parser.parse_args()
    if cli_args.smoke:
        sys.exit(run_smoke(cli_args.budget_factor, cli_args.json_out))
    print(json.dumps(run_bench(), indent=2))
