"""TXT-PIPE — the Sec 2.2 colo relay filter funnel.

Paper: 2675 dataset IPs -> 1008 (single facility & active PeeringDB) ->
764 (pingable) -> 725 (same ownership) -> 725 (still at facility) ->
356 usable relays at 58 facilities in 36 cities.  We regenerate the funnel
from the aged synthetic dataset and compare stage-survival ratios.
"""

from __future__ import annotations

from repro.core.colo import ColoRelayPipeline
from repro.core.config import CampaignConfig

PAPER_FUNNEL = (2675, 1008, 764, 725, 725, 356)


def test_filter_pipeline_funnel(benchmark, world, report_sink):
    def run_fresh_pipeline():
        return ColoRelayPipeline(world, CampaignConfig()).run()

    relays, report = benchmark.pedantic(run_fresh_pipeline, rounds=3, iterations=1)

    ours = report.funnel()
    lines = [f"{'stage':<30} {'ours':>7} {'ours%':>7} {'paper':>7} {'paper%':>7}"]
    names = ["initial"] + [name for name, _ in report.stages]
    for i, name in enumerate(names):
        ours_pct = 100.0 * ours[i] / ours[0]
        paper_pct = 100.0 * PAPER_FUNNEL[i] / PAPER_FUNNEL[0]
        lines.append(
            f"{name:<30} {ours[i]:>7} {ours_pct:>6.1f}% {PAPER_FUNNEL[i]:>7} {paper_pct:>6.1f}%"
        )
    facilities = {r.facility_id for r in relays}
    cities = {world.peeringdb.city_of(f) for f in facilities}
    lines.append(
        f"\nsurvivors: {len(relays)} IPs at {len(facilities)} facilities in "
        f"{len(cities)} cities (paper: 356 IPs / 58 facilities / 36 cities)"
    )
    report_sink("text_filter_pipeline", "\n".join(lines))

    # shape: monotone funnel, with overall survival in the paper's decade
    assert ours == sorted(ours, reverse=True)
    survival = ours[-1] / ours[0]
    assert 0.03 <= survival <= 0.5  # paper: 0.13
    assert len(facilities) >= 10
