"""FIG2 — CDF of latency improvement vs direct paths, per relay type.

Paper (Fig. 2): COR improves 76% of total cases, RAR_other 58%, PLR 43%,
RAR_eye 35%; median improvements 12-14 ms; COR/RAR_other gain >100 ms in
~6% of improved cases.  We regenerate the per-type improved fractions and
CDF quantiles and assert the ordering.
"""

from __future__ import annotations

from repro.analysis.improvements import ImprovementAnalysis
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.util.stats import quantiles

PAPER_FRACTIONS = {
    RelayType.COR: 0.76,
    RelayType.RAR_OTHER: 0.58,
    RelayType.PLR: 0.43,
    RelayType.RAR_EYE: 0.35,
}


def test_fig2_improvement_cdf(benchmark, result, report_sink):
    analysis = benchmark(ImprovementAnalysis, result)

    lines = [
        f"{'type':>10} {'improved%':>10} {'paper%':>7} {'median_ms':>10} "
        f"{'p25':>7} {'p75':>7} {'p95':>8} {'>100ms%':>8}"
    ]
    for relay_type in RELAY_TYPE_ORDER:
        frac = analysis.improved_fraction(relay_type)
        values = analysis.improvements(relay_type)
        q25, q50, q75, q95 = quantiles(values, [25, 50, 75, 95])
        gt100 = analysis.fraction_above(relay_type, 100.0)
        lines.append(
            f"{relay_type.value:>10} {100 * frac:>9.1f}% "
            f"{100 * PAPER_FRACTIONS[relay_type]:>6.0f}% {q50:>10.1f} "
            f"{q25:>7.1f} {q75:>7.1f} {q95:>8.1f} {100 * gt100:>7.1f}%"
        )
    lines.append(f"\ntotal cases: {analysis.total_cases}")
    report_sink("fig2_improvement_cdf", "\n".join(lines))

    fractions = {t: analysis.improved_fraction(t) for t in RELAY_TYPE_ORDER}
    assert (
        fractions[RelayType.COR]
        > fractions[RelayType.RAR_OTHER]
        > fractions[RelayType.PLR]
        > fractions[RelayType.RAR_EYE]
    ), "paper's relay-type ordering must hold"
    assert fractions[RelayType.COR] > 0.6
