"""PERF — overhead of the observability layer on the campaign engine.

Runs the 6-round full-world campaign (the same workload as
``bench_perf_campaign.py``) with observability fully off and fully on
(metrics + trace), interleaved best-of-N per mode so CPU-frequency drift
cannot masquerade as instrumentation cost, and records the relative
overhead into ``BENCH_obs.json`` at the repo root.  The hard acceptance
guard: instrumentation may cost **under 3%** of the uninstrumented wall
clock.

The bench also proves the determinism contract both ways: the
metrics-off campaign result serialises byte-identically to the
metrics-on one (instrumentation never touches RNG or control flow), and
two instrumented runs produce byte-identical *structural* metric
sections (counters/gauges; only timings vary).

Run standalone with ``python benchmarks/bench_obs.py`` or via pytest
with the other benches.  ``--smoke --budget-factor F [--json-out PATH]``
repeats the comparison with fewer repeats and gates overhead under
``F x`` the 3% limit — CI's obs-overhead guard.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import pathlib
import sys
import time

if importlib.util.find_spec("repro") is None:  # bare checkout: src layout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import CampaignConfig, MeasurementCampaign, build_world, obs
from repro.core.io import save_result

SEED = 11
ROUNDS = 6
REPEATS = 5  #: interleaved off/on pairs; best-of per mode
OVERHEAD_LIMIT_PCT = 3.0  #: the acceptance ceiling on instrumentation cost

_OUT_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_obs.json"


def _run_campaign(world) -> tuple[float, object]:
    """One timed 6-round campaign over a prebuilt world."""
    campaign = MeasurementCampaign(world, CampaignConfig(num_rounds=ROUNDS))
    start = time.perf_counter()
    result = campaign.run()
    return time.perf_counter() - start, result


def _result_bytes(result, workdir: pathlib.Path, tag: str) -> bytes:
    path = workdir / f"{tag}.json"
    save_result(result, str(path))
    return path.read_bytes()


def _measure(repeats: int) -> dict:
    """Interleaved off/on campaign timings plus the determinism checks."""
    import tempfile

    world = build_world(seed=SEED)
    off_walls: list[float] = []
    on_walls: list[float] = []
    trace_events = 0
    counters: dict[str, int] = {}
    structural: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as tmp:
        workdir = pathlib.Path(tmp)
        result_bytes: dict[str, bytes] = {}
        for rep in range(repeats):
            wall, result = _run_campaign(world)
            off_walls.append(wall)
            if rep == 0:
                result_bytes["off"] = _result_bytes(result, workdir, "off")
            obs.enable(metrics=True, trace=True)
            try:
                wall, result = _run_campaign(world)
                on_walls.append(wall)
                if rep == 0:
                    result_bytes["on"] = _result_bytes(result, workdir, "on")
                artifact = obs.metrics_registry().as_artifact()
                structural.append(
                    json.dumps(artifact["structural"], sort_keys=True)
                )
                counters = artifact["structural"]["counters"]
                trace_events = len(obs.tracer())
            finally:
                obs.disable()
        identical = result_bytes["off"] == result_bytes["on"]
    off_best = min(off_walls)
    on_best = min(on_walls)
    return {
        "off_best_s": round(off_best, 4),
        "on_best_s": round(on_best, 4),
        "off_walls_s": [round(w, 4) for w in off_walls],
        "on_walls_s": [round(w, 4) for w in on_walls],
        "overhead_pct": round(100.0 * (on_best - off_best) / off_best, 2),
        "result_bytes_identical": identical,
        "structural_sections_identical": len(set(structural)) == 1,
        "trace_events_per_run": trace_events,
        "counters": counters,
    }


def run_bench() -> dict:
    """Measure instrumentation overhead best-of-N; write the report."""
    measured = _measure(REPEATS)
    report = {
        "workload": f"full world, seed {SEED}, {ROUNDS}-round campaign",
        "protocol": (
            f"{REPEATS} interleaved off/on runs, overhead scored on "
            "best-of wall clocks; obs on = metrics + trace recording"
        ),
        "overhead_limit_pct": OVERHEAD_LIMIT_PCT,
        **measured,
        "ok": (
            measured["overhead_pct"] < OVERHEAD_LIMIT_PCT
            and measured["result_bytes_identical"]
            and measured["structural_sections_identical"]
        ),
    }
    _OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def run_smoke(budget_factor: float, json_out: str | None = None) -> int:
    """A faster overhead check for CI: fewer repeats, scaled ceiling.

    The limit is ``budget_factor x`` the recorded 3% ceiling — CI boxes
    share cores, so the factor buys noise headroom while still catching
    an instrumentation path that grew real per-ping cost.  Returns a
    process exit code.
    """
    measured = _measure(max(2, REPEATS - 2))
    limit = OVERHEAD_LIMIT_PCT * budget_factor
    ok = (
        measured["overhead_pct"] < limit
        and measured["result_bytes_identical"]
        and measured["structural_sections_identical"]
    )
    print(
        f"smoke: obs overhead {measured['overhead_pct']}% "
        f"(limit {limit}% = {budget_factor}x recorded "
        f"{OVERHEAD_LIMIT_PCT}% ceiling); result bytes "
        f"{'identical' if measured['result_bytes_identical'] else 'DIFFER'}, "
        f"structural sections "
        f"{'stable' if measured['structural_sections_identical'] else 'DRIFT'} "
        f"-> {'OK' if ok else 'FAILED'}"
    )
    if json_out is not None:
        summary = {
            "overhead_pct": measured["overhead_pct"],
            "limit_pct": limit,
            "budget_factor": budget_factor,
            "result_bytes_identical": measured["result_bytes_identical"],
            "structural_sections_identical": measured[
                "structural_sections_identical"
            ],
            "ok": ok,
        }
        pathlib.Path(json_out).write_text(json.dumps(summary, indent=2) + "\n")
    return 0 if ok else 1


def test_obs_bench(report_sink):
    report = run_bench()
    report_sink(
        "perf_obs",
        f"workload: {report['workload']}\n"
        f"off best: {report['off_best_s']:.3f} s, on best: "
        f"{report['on_best_s']:.3f} s -> overhead {report['overhead_pct']}% "
        f"(limit {report['overhead_limit_pct']}%)\n"
        f"trace events per run: {report['trace_events_per_run']}, "
        f"rounds counted: {report['counters'].get('campaign.rounds')}\n"
        f"result bytes identical: {report['result_bytes_identical']}, "
        f"structural sections identical: "
        f"{report['structural_sections_identical']} "
        f"(written to {_OUT_PATH.name})",
    )
    # the acceptance guard: instrumentation under 3% of the campaign's
    # wall clock, no behavioral drift either way
    assert report["overhead_pct"] < report["overhead_limit_pct"]
    assert report["result_bytes_identical"]
    assert report["structural_sections_identical"]
    assert report["counters"]["campaign.rounds"] == ROUNDS


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer repeats, overhead gated at budget-factor x the ceiling",
    )
    parser.add_argument(
        "--budget-factor", type=float, default=3.0,
        help="smoke overhead limit as a multiple of the recorded 3% ceiling",
    )
    parser.add_argument(
        "--json-out", default=None,
        help="write the smoke outcome as JSON (CI's obs-overhead artifact)",
    )
    cli_args = parser.parse_args()
    if cli_args.smoke:
        sys.exit(run_smoke(cli_args.budget_factor, cli_args.json_out))
    print(json.dumps(run_bench(), indent=2))
