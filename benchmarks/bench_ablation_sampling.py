"""ABLATION — facility-diversity sampling (1-3 IPs per facility).

The paper samples 1-3 IPs from *every* verified facility per round "to
both cover all available facilities and account for variance within
facilities".  The ablation compares that strategy with spending the same
relay budget on IPs drawn from the few largest facilities only: diverse
sampling should improve more endpoint pairs because coverage of the
geodesics matters more than redundancy inside one metro.
"""

from __future__ import annotations

from repro.core.colo import ColoRelayPipeline
from repro.core.config import CampaignConfig
from repro.core.eyeballs import EyeballSelector
from repro.core.feasibility import is_feasible


def _improved_pairs(world, endpoints, relays) -> int:
    model = world.latency
    delay_matrix = world.delay_matrix
    improved = 0
    for i, e1 in enumerate(endpoints):
        for e2 in endpoints[i + 1 :]:
            direct = model.base_rtt_ms(e1, e2)
            if direct is None:
                continue
            for relay in relays:
                if not is_feasible(relay, e1, e2, direct, matrix=delay_matrix):
                    continue
                leg1 = model.base_rtt_ms(e1, relay)
                leg2 = model.base_rtt_ms(e2, relay)
                if leg1 is not None and leg2 is not None and leg1 + leg2 < direct:
                    improved += 1
                    break
    return improved


def test_facility_diversity_sampling(benchmark, world, report_sink):
    cfg = CampaignConfig(max_countries=30)
    rng = world.seeds.rng("bench.sampling")
    endpoints = [p.node.endpoint for p in EyeballSelector(world, cfg).sample_endpoints(rng)]
    pipeline = ColoRelayPipeline(world, cfg)
    diverse = [r.node.endpoint for r in pipeline.sample_relays(rng)]
    budget = len(diverse)

    # same budget, but concentrated in the largest facilities
    by_facility: dict[int, list] = {}
    for relay in pipeline.verified_relays():
        by_facility.setdefault(relay.facility_id, []).append(relay)
    concentrated = []
    for fac_id in sorted(by_facility, key=lambda f: -len(by_facility[f])):
        for relay in by_facility[fac_id]:
            if len(concentrated) == budget:
                break
            concentrated.append(relay.node.endpoint)
        if len(concentrated) == budget:
            break

    def study():
        return (
            _improved_pairs(world, endpoints, diverse),
            _improved_pairs(world, endpoints, concentrated),
        )

    diverse_improved, concentrated_improved = benchmark.pedantic(
        study, rounds=1, iterations=1
    )
    n_pairs = len(endpoints) * (len(endpoints) - 1) // 2
    fac_div = len({r.facility_id for r in pipeline.sample_relays(rng)})
    fac_conc = len(
        {f for f in sorted(by_facility, key=lambda f: -len(by_facility[f]))[:5]}
    )
    report_sink(
        "ablation_sampling",
        f"relay budget: {budget} IPs; endpoint pairs: {n_pairs}\n"
        f"diverse (all {fac_div} facilities):    {diverse_improved} pairs improved\n"
        f"concentrated (largest facilities): {concentrated_improved} pairs improved",
    )
    assert diverse_improved >= concentrated_improved
