"""ABLATION — the Sec 2.4 speed-of-light feasibility pre-filter.

Without the filter, every (endpoint, relay) leg must be measured; with it,
geometrically hopeless relays are pruned per pair before any overlay
measurement.  The filter is sound by construction (a lower bound can never
exclude an actual winner) — this bench quantifies the measurement savings
and re-verifies soundness against base RTTs.
"""

from __future__ import annotations

from repro.core.colo import ColoRelayPipeline
from repro.core.config import CampaignConfig
from repro.core.eyeballs import EyeballSelector
from repro.core.feasibility import is_feasible


def test_feasibility_filter_savings(benchmark, world, report_sink):
    cfg = CampaignConfig(max_countries=40)
    rng = world.seeds.rng("bench.feasibility")
    endpoints = [p.node.endpoint for p in EyeballSelector(world, cfg).sample_endpoints(rng)]
    relays = [r.node.endpoint for r in ColoRelayPipeline(world, cfg).sample_relays(rng)]
    model = world.latency
    delay_matrix = world.delay_matrix

    def study():
        total = kept = winners = missed = 0
        for i, e1 in enumerate(endpoints):
            for e2 in endpoints[i + 1 :]:
                direct = model.base_rtt_ms(e1, e2)
                if direct is None:
                    continue
                for relay in relays:
                    total += 1
                    feasible = is_feasible(relay, e1, e2, direct, matrix=delay_matrix)
                    kept += int(feasible)
                    leg1 = model.base_rtt_ms(e1, relay)
                    leg2 = model.base_rtt_ms(e2, relay)
                    if leg1 is not None and leg2 is not None and leg1 + leg2 < direct:
                        winners += 1
                        if not feasible:
                            missed += 1
        return total, kept, winners, missed

    total, kept, winners, missed = benchmark.pedantic(study, rounds=1, iterations=1)
    pruned_frac = 1.0 - kept / total
    report_sink(
        "ablation_feasibility",
        f"(pair, relay) combinations: {total}\n"
        f"kept by the speed-of-light bound: {kept} ({100 * (1 - pruned_frac):.1f}%)\n"
        f"pruned (measurements saved): {100 * pruned_frac:.1f}%\n"
        f"actual winning relays: {winners}; winners wrongly pruned: {missed}",
    )
    assert missed == 0, "the feasibility bound must never prune a winner"
    assert pruned_frac > 0.1, "the filter should save real measurement work"
