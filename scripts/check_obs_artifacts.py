#!/usr/bin/env python
"""Validate observability artifacts (CI's obs-smoke job).

Stdlib-only schema checks over the two artifact kinds the ``--metrics``
and ``--trace`` flags write:

* ``--metrics FILE`` — a ``repro.obs.metrics/1`` artifact: the schema
  tag, a ``structural`` object holding string→int/float ``counters``
  (ints only) and ``gauges``, and a ``timings`` object whose entries
  each carry ``count``/``total_ms``/``mean_ms``/``min_ms``/``max_ms``.
* ``--trace FILE`` — Chrome trace-event JSON: a ``traceEvents`` list of
  ``ph: "X"`` complete events (ts/dur in µs, non-negative) and
  ``ph: "M"`` metadata rows.  ``--expect-tids N`` additionally requires
  spans on at least N distinct timeline lanes (e.g. 3 for a front + two
  cluster workers).

Repeat either flag to validate several files in one run.  Exits
non-zero with a per-failure report.  Run from the repo root::

    python scripts/check_obs_artifacts.py --metrics m.json \
        --trace t.json --expect-tids 3
"""

from __future__ import annotations

import argparse
import json
import sys

METRICS_SCHEMA = "repro.obs.metrics/1"
_TIMING_KEYS = {"count", "total_ms", "mean_ms", "min_ms", "max_ms"}


def check_metrics(path: str) -> list[str]:
    failures: list[str] = []
    try:
        with open(path, encoding="utf-8") as fh:
            artifact = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"{path}: unreadable metrics artifact: {exc}"]
    if artifact.get("schema") != METRICS_SCHEMA:
        failures.append(
            f"{path}: schema {artifact.get('schema')!r} != {METRICS_SCHEMA!r}"
        )
    structural = artifact.get("structural")
    if not isinstance(structural, dict) or set(structural) != {
        "counters",
        "gauges",
    }:
        failures.append(f"{path}: structural must hold counters + gauges")
        structural = {"counters": {}, "gauges": {}}
    for name, value in structural["counters"].items():
        if not isinstance(value, int) or isinstance(value, bool):
            failures.append(f"{path}: counter {name!r} is not an int: {value!r}")
    for name, value in structural["gauges"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            failures.append(f"{path}: gauge {name!r} is not numeric: {value!r}")
    timings = artifact.get("timings")
    if not isinstance(timings, dict):
        failures.append(f"{path}: timings section missing")
        timings = {}
    for name, entry in timings.items():
        if not isinstance(entry, dict) or set(entry) != _TIMING_KEYS:
            failures.append(
                f"{path}: timing {name!r} keys {sorted(entry)} != "
                f"{sorted(_TIMING_KEYS)}"
            )
            continue
        if entry["count"] < 1:
            failures.append(f"{path}: timing {name!r} has count < 1")
        if not (0 <= entry["min_ms"] <= entry["max_ms"] <= entry["total_ms"]):
            failures.append(
                f"{path}: timing {name!r} min/max/total are inconsistent"
            )
    return failures


def check_trace(path: str, expect_tids: int | None) -> list[str]:
    failures: list[str] = []
    try:
        with open(path, encoding="utf-8") as fh:
            trace = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"{path}: unreadable trace: {exc}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: traceEvents must be a list"]
    tids: set[int] = set()
    for index, event in enumerate(events):
        phase = event.get("ph")
        if phase not in ("X", "M"):
            failures.append(f"{path}: event {index} has unknown ph {phase!r}")
            continue
        if phase == "M":
            if event.get("name") not in ("process_name", "thread_name"):
                failures.append(
                    f"{path}: metadata event {index} has unexpected name "
                    f"{event.get('name')!r}"
                )
            continue
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in event:
                failures.append(f"{path}: span {index} is missing {key!r}")
        if event.get("ts", 0) < 0 or event.get("dur", 0) < 0:
            failures.append(f"{path}: span {index} has negative ts/dur")
        tids.add(event.get("tid", 0))
    if not any(e.get("ph") == "X" for e in events):
        failures.append(f"{path}: trace holds no complete (ph=X) spans")
    if expect_tids is not None and len(tids) < expect_tids:
        failures.append(
            f"{path}: spans on {len(tids)} lane(s), expected >= {expect_tids}"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--metrics", action="append", default=[], metavar="FILE",
        help="metrics artifact to validate (repeatable)",
    )
    parser.add_argument(
        "--trace", action="append", default=[], metavar="FILE",
        help="Chrome trace to validate (repeatable)",
    )
    parser.add_argument(
        "--expect-tids", type=int, default=None,
        help="require spans on at least N distinct trace lanes",
    )
    args = parser.parse_args()
    if not args.metrics and not args.trace:
        parser.error("nothing to check: pass --metrics and/or --trace")
    failures: list[str] = []
    for path in args.metrics:
        failures.extend(check_metrics(path))
    for path in args.trace:
        failures.extend(check_trace(path, args.expect_tids))
    if failures:
        for failure in failures:
            print(f"obs-artifacts: {failure}", file=sys.stderr)
        return 1
    print(
        f"obs-artifacts: ok ({len(args.metrics)} metrics, "
        f"{len(args.trace)} trace artifact(s) validated)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
