#!/usr/bin/env python
"""Guard the public service API surface (CI lint job).

Three checks, each cheap and loud:

1. The README's "Service API" bullet list (lines shaped ``- `Name` —
   ...`` under that heading) must name exactly ``repro.service.__all__``
   — the documented surface and the exported surface cannot drift apart.
2. Every name in ``repro.service.__all__`` must actually resolve on the
   package (no stale exports).
3. ``examples/`` and ``tests/`` must not import ``_``-private names from
   ``repro`` (``from repro.x import _y`` or ``from repro.x._y import``)
   — everything they need is supposed to be on the public surface.
   (Test modules for private helpers import the *module* and call
   ``module._helper``; importing private names directly is the pattern
   this rejects.)

Exits non-zero with a per-failure report.  Run from the repo root:
``python scripts/check_api_surface.py``.
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

#: ``- `Name` — description`` bullets inside the Service API section.
_BULLET = re.compile(r"^- `([A-Za-z_][A-Za-z0-9_]*)` — ")

#: ``from repro... import ...`` with any ``_``-private leaf in either the
#: module path or the imported names (``as`` aliases notwithstanding).
_PRIVATE_IMPORT = re.compile(
    r"^\s*from\s+repro(?:\.\w+)*(?:\.(_\w+))?\s+import\s+(.+)$"
)


def documented_surface(readme: pathlib.Path) -> list[str]:
    """The names the README's Service API section documents, in order."""
    names: list[str] = []
    in_section = False
    for line in readme.read_text(encoding="utf-8").splitlines():
        if line.startswith("### Service API"):
            in_section = True
            continue
        if in_section and line.startswith("#"):
            break
        if in_section:
            match = _BULLET.match(line)
            if match:
                names.append(match.group(1))
    return names


def private_imports(tree: pathlib.Path) -> list[str]:
    """``file:line`` locations importing private repro names."""
    hits: list[str] = []
    for path in sorted(tree.rglob("*.py")):
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            match = _PRIVATE_IMPORT.match(line)
            if match is None:
                continue
            private_module, imported = match.groups()
            names = [
                part.split(" as ")[0].strip(" ()")
                for part in imported.split(",")
            ]
            if private_module or any(n.startswith("_") for n in names):
                hits.append(f"{path.relative_to(ROOT)}:{lineno}: {line.strip()}")
    return hits


def main() -> int:
    import repro.service

    failures: list[str] = []
    exported = list(repro.service.__all__)

    documented = documented_surface(ROOT / "README.md")
    if not documented:
        failures.append("README.md has no '### Service API' bullet list")
    missing = sorted(set(exported) - set(documented))
    extra = sorted(set(documented) - set(exported))
    if missing:
        failures.append(f"exported but not documented in README.md: {missing}")
    if extra:
        failures.append(f"documented in README.md but not exported: {extra}")

    if exported != sorted(exported):
        failures.append("repro.service.__all__ is not sorted")
    for name in exported:
        if not hasattr(repro.service, name):
            failures.append(f"repro.service.__all__ names missing symbol {name!r}")

    for tree in (ROOT / "examples", ROOT / "tests"):
        for hit in private_imports(tree):
            failures.append(f"private import outside the package: {hit}")

    if failures:
        for failure in failures:
            print(f"api-surface: {failure}", file=sys.stderr)
        return 1
    print(
        f"api-surface: ok ({len(exported)} symbols documented, "
        "no private imports in examples/ or tests/)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
