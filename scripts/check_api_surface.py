#!/usr/bin/env python
"""Guard the public API surfaces (CI lint job).

Three checks per guarded package, each cheap and loud:

1. The README's API bullet list for the package (lines shaped ``- `Name`
   — ...`` under its ``### <X> API`` heading) must name exactly the
   package's ``__all__`` — the documented surface and the exported
   surface cannot drift apart.
2. Every name in ``__all__`` must be sorted and actually resolve on the
   package (no stale exports).
3. ``examples/`` and ``tests/`` must not import ``_``-private names from
   ``repro`` (``from repro.x import _y`` or ``from repro.x._y import``)
   — everything they need is supposed to be on the public surface.
   (Test modules for private helpers import the *module* and call
   ``module._helper``; importing private names directly is the pattern
   this rejects.)

Guarded packages: ``repro.service`` ("Service API"), ``repro.scenarios``
("Scenario API"), ``repro.analysis`` ("Analysis API") and ``repro.obs``
("Observability API").

Exits non-zero with a per-failure report.  Run from the repo root:
``python scripts/check_api_surface.py``.
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

#: README heading -> guarded package, in README order.
SECTIONS = (
    ("Service API", "repro.service"),
    ("Scenario API", "repro.scenarios"),
    ("Analysis API", "repro.analysis"),
    ("Observability API", "repro.obs"),
)

#: ``- `Name` — description`` bullets inside an API section.
_BULLET = re.compile(r"^- `([A-Za-z_][A-Za-z0-9_]*)` — ")

#: ``from repro... import ...`` with any ``_``-private leaf in either the
#: module path or the imported names (``as`` aliases notwithstanding).
_PRIVATE_IMPORT = re.compile(
    r"^\s*from\s+repro(?:\.\w+)*(?:\.(_\w+))?\s+import\s+(.+)$"
)


def documented_surface(readme: pathlib.Path, heading: str) -> list[str]:
    """The names the README documents under ``### <heading>``, in order."""
    names: list[str] = []
    in_section = False
    for line in readme.read_text(encoding="utf-8").splitlines():
        if line.startswith(f"### {heading}"):
            in_section = True
            continue
        if in_section and line.startswith("#"):
            break
        if in_section:
            match = _BULLET.match(line)
            if match:
                names.append(match.group(1))
    return names


def private_imports(tree: pathlib.Path) -> list[str]:
    """``file:line`` locations importing private repro names."""
    hits: list[str] = []
    for path in sorted(tree.rglob("*.py")):
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            match = _PRIVATE_IMPORT.match(line)
            if match is None:
                continue
            private_module, imported = match.groups()
            names = [
                part.split(" as ")[0].strip(" ()")
                for part in imported.split(",")
            ]
            if private_module or any(n.startswith("_") for n in names):
                hits.append(f"{path.relative_to(ROOT)}:{lineno}: {line.strip()}")
    return hits


def check_package(heading: str, package_name: str) -> tuple[list[str], int]:
    """``(failures, exported-count)`` for one guarded package."""
    import importlib

    package = importlib.import_module(package_name)
    failures: list[str] = []
    exported = list(package.__all__)

    documented = documented_surface(ROOT / "README.md", heading)
    if not documented:
        failures.append(f"README.md has no '### {heading}' bullet list")
    missing = sorted(set(exported) - set(documented))
    extra = sorted(set(documented) - set(exported))
    if missing:
        failures.append(
            f"{package_name}: exported but not documented under "
            f"'### {heading}': {missing}"
        )
    if extra:
        failures.append(
            f"{package_name}: documented under '### {heading}' but not "
            f"exported: {extra}"
        )

    if exported != sorted(exported):
        failures.append(f"{package_name}.__all__ is not sorted")
    for name in exported:
        if not hasattr(package, name):
            failures.append(
                f"{package_name}.__all__ names missing symbol {name!r}"
            )
    return failures, len(exported)


def main() -> int:
    failures: list[str] = []
    total = 0
    for heading, package_name in SECTIONS:
        package_failures, exported = check_package(heading, package_name)
        failures.extend(package_failures)
        total += exported

    for tree in (ROOT / "examples", ROOT / "tests"):
        for hit in private_imports(tree):
            failures.append(f"private import outside the package: {hit}")

    if failures:
        for failure in failures:
            print(f"api-surface: {failure}", file=sys.stderr)
        return 1
    print(
        f"api-surface: ok ({total} symbols documented across "
        f"{len(SECTIONS)} packages, no private imports in examples/ or tests/)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
