#!/usr/bin/env python
"""Operating an overlay service on top of the measured shortcuts.

Puts the pieces together the way a real latency-optimisation service (a
Skype/Hola-style overlay, the paper's motivating application) would,
using the online serving layer (:mod:`repro.service`):

1. run a few measurement rounds and compile them into a relay directory;
2. score the VIA-style history prediction on the held-out last round;
3. answer live routing queries through the pair -> country -> direct
   fallback tiers, then ingest the new round incrementally;
4. snapshot the service to ``.npz`` and restore it (operator restart);
5. replay Zipf-shaped synthetic traffic to measure serving throughput;
6. shard the directory and serve it from worker processes
   (:class:`~repro.service.ClusterService`), checking the cluster answers
   byte-identically to the in-process service.

Run:  python examples/overlay_service.py
"""

from __future__ import annotations

import io

from _shared import example_campaign_result, example_countries, example_rounds
from repro.core.oracle import evaluate_prediction
from repro.core.types import RelayType
from repro.service import ClusterService, LoadgenConfig, ShortcutService, replay


def main() -> None:
    countries = example_countries(None)
    # train on all but the last round, evaluate on the last: needs >= 2
    rounds = max(2, example_rounds(4))
    print(f"measuring: {'full' if countries is None else f'{countries}-country'} "
          f"world, {rounds} rounds...")
    result = example_campaign_result(rounds, countries)

    # compile the serving directory from every round except the one we
    # pretend is "next round's traffic"
    service = ShortcutService.from_campaign(result, rounds=result.rounds[:-1])
    stats = service.stats()
    print(f"compiled directory: {stats['endpoints']} endpoints, "
          f"{stats['countries']} countries, "
          f"{stats['lanes_pair_COR']} exact-pair / "
          f"{stats['lanes_country_COR']} country COR lanes")

    score = evaluate_prediction(result, RelayType.COR, k=3)
    print(f"\ntrained on rounds 0-{rounds - 2}, evaluated on round {rounds - 1}:")
    print(f"  country pairs with history and a live shortcut: {score.evaluated}")
    print(f"  oracle-best relay inside our top-3 predictions: {100 * score.hit_rate:.1f}%")
    print(f"  improvement captured vs the oracle:             {100 * score.captured_gain_frac:.1f}%")

    print(f"\nsample routing decisions for round {rounds - 1} traffic:")
    shown = 0
    for obs in result.rounds[-1].observations:
        decision = service.route(obs.e1_id, obs.e2_id, RelayType.COR, k=1)
        if decision.relay_id is None:
            continue
        relay = result.registry.get(decision.relay_id)
        print(
            f"  {obs.e1_cc} <-> {obs.e2_cc}: relay via {relay.city_key:<18} "
            f"[{decision.tier:>7} tier] expect -{decision.expected_reduction_ms:.0f} ms"
        )
        shown += 1
        if shown == 8:
            break

    # the round completes: fold it into the directory incrementally
    ingest = service.ingest_round(result.rounds[-1])
    print(f"\ningested round {ingest['round_id']}: "
          f"{ingest['touched_lanes']} lanes recompiled, "
          f"{ingest['retained_rounds']} rounds retained")

    # operator restart: snapshot to .npz, restore, verify nothing moved
    snapshot = io.BytesIO()
    service.save(snapshot)
    snapshot.seek(0)
    restored = ShortcutService.from_snapshot(snapshot)
    same = restored.directory.block_signature() == service.directory.block_signature()
    print(f"snapshot round-trip: {len(snapshot.getvalue())} bytes, "
          f"restored {'identical' if same else 'MISMATCH'}")

    # replay synthetic user traffic (Zipf-weighted country pairs)
    config = LoadgenConfig(num_queries=20_000, batch_size=1024)
    load = replay(restored, config)
    tiers = load.tier_counts
    print(f"\ntraffic replay: {load.queries} queries -> "
          f"{load.queries_per_s:,} queries/s "
          f"(pair {tiers['pair']}, country {tiers['country']}, "
          f"direct {tiers['direct']})")

    # scale out: shard the snapshot and serve it from 2 worker processes
    # over a shared read-only mmap; same stream, byte-identical answers
    with ClusterService.from_service(restored, workers=2) as cluster:
        scaled = replay(cluster, config)
    scale = scaled.scale_out
    same = scaled.answers_digest == load.answers_digest
    print(f"2-worker cluster: {scale['aggregate_queries_per_s']:,.0f} queries/s "
          f"aggregate (CPU-clock) over {scale['num_shards']} shards; "
          f"answers {'identical' if same else 'MISMATCH'}")


if __name__ == "__main__":
    main()
