#!/usr/bin/env python
"""Operating an overlay service on top of the measured shortcuts.

Puts the pieces together the way a real latency-optimisation service (a
Skype/Hola-style overlay, the paper's motivating application) would:

1. run a few measurement rounds and persist the raw results;
2. train the VIA-style history predictor on the stored data;
3. for the next round's traffic, pick each pair's relay from the top-3
   predictions and compare against the oracle-best relay.

Run:  python examples/overlay_service.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from _shared import example_campaign_result, example_countries, example_rounds
from repro.core.io import load_result, save_result
from repro.core.oracle import RelayPredictor, evaluate_prediction
from repro.core.types import RelayType


def main() -> None:
    countries = example_countries(None)
    # train on all but the last round, evaluate on the last: needs >= 2
    rounds = max(2, example_rounds(4))
    print(f"measuring: {'full' if countries is None else f'{countries}-country'} "
          f"world, {rounds} rounds...")
    result = example_campaign_result(rounds, countries)

    store = Path(tempfile.gettempdir()) / "overlay_measurements.json"
    save_result(result, store)
    print(f"stored {result.total_cases} observations at {store}")

    # an operator process would load the archive later:
    history = load_result(store)

    score = evaluate_prediction(history, RelayType.COR, k=3)
    print(f"\ntrained on rounds 0-{rounds - 2}, evaluated on round {rounds - 1}:")
    print(f"  country pairs with history and a live shortcut: {score.evaluated}")
    print(f"  oracle-best relay inside our top-3 predictions: {100 * score.hit_rate:.1f}%")
    print(f"  improvement captured vs the oracle:             {100 * score.captured_gain_frac:.1f}%")

    predictor = RelayPredictor(RelayType.COR)
    for rnd in history.rounds[:-1]:
        for obs in rnd.observations:
            predictor.observe(obs)
    print("\nsample routing decisions for round 3 traffic:")
    shown = 0
    for obs in history.rounds[-1].observations:
        predictions = predictor.predict(obs, k=1)
        gains = dict(obs.improving_by_type.get(RelayType.COR, ()))
        if not predictions or predictions[0] not in gains:
            continue
        relay = history.registry.get(predictions[0])
        print(
            f"  {obs.e1_cc} <-> {obs.e2_cc}: relay via "
            f"{relay.city_key:<18} saves {gains[predictions[0]]:.0f} ms"
        )
        shown += 1
        if shown == 8:
            break
    store.unlink(missing_ok=True)


if __name__ == "__main__":
    main()
