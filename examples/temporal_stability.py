#!/usr/bin/env python
"""Are the shortcuts stable enough to build an overlay on?

Reproduces the paper's "Stability over Time" analysis: per-round improved
fractions for every relay type (COR should lead in every round) and the
coefficient of variation of recurring pairs' median RTTs across rounds
(<10% for ~90% of pairs in the paper).

Run:  python examples/temporal_stability.py
"""

from __future__ import annotations

from _shared import example_campaign_result, example_countries, example_rounds
from repro.analysis.stability import StabilityAnalysis
from repro.core.types import RELAY_TYPE_ORDER


def main() -> None:
    countries = example_countries(None)
    # the CV analysis needs pairs recurring across rounds: keep >= 2
    rounds = max(2, example_rounds(6))
    print(f"building world and running {rounds} rounds (12 h apart)...")
    result = example_campaign_result(rounds, countries)

    analysis = StabilityAnalysis(result, min_occurrences=2)
    print("\nimproved fraction per round:")
    print(f"{'round':>6} " + " ".join(f"{t.display_name:>10}" for t in RELAY_TYPE_ORDER))
    series = {
        t: dict(analysis.per_round_improved_fractions(t)) for t in RELAY_TYPE_ORDER
    }
    for rnd in sorted(series[RELAY_TYPE_ORDER[0]]):
        print(
            f"{rnd:>6} "
            + " ".join(f"{100 * series[t][rnd]:>9.1f}%" for t in RELAY_TYPE_ORDER)
        )

    cvs = analysis.all_cvs()
    print(f"\nrecurring (measured in >=2 rounds) node pairs: {len(cvs)}")
    if cvs:
        below10 = sum(1 for cv in cvs if cv < 0.10) / len(cvs)
        print(f"coefficient of variation < 10% for {100 * below10:.1f}% of them (paper: 90%)")
        print(f"largest observed CV: {max(cvs):.2f} (paper: <= 0.40)")
    print("\nconclusion: the simulated overlays are as stable as the paper's —")
    print("relay choices made today keep paying off tomorrow.")


if __name__ == "__main__":
    main()
