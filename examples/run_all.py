#!/usr/bin/env python
"""Run every example script headlessly in one process.

Imports each example module and calls its ``main()``, sharing the
memoized worlds and campaign results in :mod:`_shared` — so the whole
suite costs a couple of world builds instead of six.  This is what CI's
smoke job executes (with ``--tiny``) to keep the examples from rotting.

Run:  python examples/run_all.py [--tiny]

``--tiny`` shrinks every example to an 8-country world and 2 rounds via
the ``REPRO_EXAMPLE_*`` environment overrides (explicit environment
values win over the flag).
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
import time

#: Module names in presentation order (quickstart first).
EXAMPLES = (
    "quickstart",
    "colo_filter_pipeline",
    "montecarlo_risk",
    "overlay_service",
    "relay_placement_study",
    "temporal_stability",
    "voip_quality",
)


def run_examples(names: tuple[str, ...] = EXAMPLES) -> list[tuple[str, float]]:
    """Import and run each example's ``main()``; return (name, seconds)."""
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    timings: list[tuple[str, float]] = []
    for name in names:
        print(f"\n{'=' * 72}\n== example: {name}\n{'=' * 72}")
        module = importlib.import_module(name)
        start = time.perf_counter()
        module.main()
        timings.append((name, time.perf_counter() - start))
    return timings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tiny", action="store_true",
        help="8-country worlds, 2 rounds (CI smoke size)",
    )
    args = parser.parse_args(argv)
    if args.tiny:
        os.environ.setdefault("REPRO_EXAMPLE_COUNTRIES", "8")
        os.environ.setdefault("REPRO_EXAMPLE_ROUNDS", "2")
    timings = run_examples()
    print(f"\n{'=' * 72}")
    for name, seconds in timings:
        print(f"{name:>24}: {seconds:6.2f} s")
    print(f"{'total':>24}: {sum(s for _, s in timings):6.2f} s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
