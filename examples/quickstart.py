#!/usr/bin/env python
"""Quickstart: build a world, run a short campaign, print the headline.

Builds a reduced synthetic Internet (24 countries, still spanning every
continent), runs two measurement rounds of the paper's workflow, and
prints the per-relay-type improvement summary — the Fig. 2 headline.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import CampaignConfig, MeasurementCampaign, build_world
from repro.analysis.improvements import ImprovementAnalysis
from repro.core.types import RELAY_TYPE_ORDER
from repro.topology.config import TopologyConfig
from repro.world import WorldConfig


def main() -> None:
    print("building world (24 countries, seed 11)...")
    config = WorldConfig(topology=TopologyConfig(country_limit=24))
    world = build_world(seed=11, config=config)
    summary = world.summary()
    print(
        f"  {summary['as_total']} ASes, {summary['facilities']} facilities, "
        f"{summary['atlas_probes']} Atlas probes, "
        f"{summary['colo_interfaces']} colo interfaces"
    )

    print("running 2 measurement rounds...")
    campaign = MeasurementCampaign(world, CampaignConfig(num_rounds=2))
    result = campaign.run(
        progress=lambda i, rnd: print(
            f"  round {i}: {rnd.num_pairs()} endpoint pairs, "
            f"{rnd.pings_sent} pings"
        )
    )

    print(f"\ncolo filter funnel: {' -> '.join(map(str, result.colo_filter_funnel))}")
    print(f"total cases: {result.total_cases}\n")

    analysis = ImprovementAnalysis(result)
    print(f"{'relay type':>12} {'improved':>9} {'median gain':>12}")
    for relay_type in RELAY_TYPE_ORDER:
        frac = analysis.improved_fraction(relay_type)
        median = analysis.median_improvement(relay_type)
        median_text = f"{median:.1f} ms" if median is not None else "n/a"
        print(f"{relay_type.display_name:>12} {100 * frac:>8.1f}% {median_text:>12}")
    print(
        "\npaper (at full scale): COR 76%, RAR OTHER 58%, PLR 43%, RAR EYE 35%"
    )


if __name__ == "__main__":
    main()
