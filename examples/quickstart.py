#!/usr/bin/env python
"""Quickstart: build a world, run a short campaign, print the headline.

Builds a reduced synthetic Internet (24 countries, still spanning every
continent), runs two measurement rounds of the paper's workflow, and
prints the per-relay-type improvement summary — the Fig. 2 headline.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from _shared import example_campaign_result, example_countries, example_rounds, example_world
from repro.analysis.improvements import ImprovementAnalysis
from repro.core.types import RELAY_TYPE_ORDER


def main() -> None:
    countries = example_countries(24)
    rounds = example_rounds(2)
    print(f"building world ({countries or 'all'} countries, seed 11)...")
    world = example_world(countries)
    summary = world.summary()
    print(
        f"  {summary['as_total']} ASes, {summary['facilities']} facilities, "
        f"{summary['atlas_probes']} Atlas probes, "
        f"{summary['colo_interfaces']} colo interfaces"
    )

    print(f"running {rounds} measurement rounds...")
    result = example_campaign_result(rounds, countries)
    for rnd in result.rounds:
        print(
            f"  round {rnd.round_index}: {rnd.num_pairs()} endpoint pairs, "
            f"{rnd.pings_sent} pings"
        )

    print(f"\ncolo filter funnel: {' -> '.join(map(str, result.colo_filter_funnel))}")
    print(f"total cases: {result.total_cases}\n")

    analysis = ImprovementAnalysis(result)
    print(f"{'relay type':>12} {'improved':>9} {'median gain':>12}")
    for relay_type in RELAY_TYPE_ORDER:
        frac = analysis.improved_fraction(relay_type)
        median = analysis.median_improvement(relay_type)
        median_text = f"{median:.1f} ms" if median is not None else "n/a"
        print(f"{relay_type.display_name:>12} {100 * frac:>8.1f}% {median_text:>12}")
    print(
        "\npaper (at full scale): COR 76%, RAR OTHER 58%, PLR 43%, RAR EYE 35%"
    )


if __name__ == "__main__":
    main()
