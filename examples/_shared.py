"""Shared world/campaign fixture for the example scripts.

Every example needs a built world and most need a campaign result.  Both
are expensive, and both are pure functions of ``(seed, countries,
rounds)`` — so this module memoizes them, letting a batch run (CI's
headless sweep via :mod:`run_all`, or the test suite) build one tiny
world and one campaign and share them across every example.

Two environment variables shrink the workload without touching the
scripts, which is how CI keeps the whole example suite under a minute:

* ``REPRO_EXAMPLE_COUNTRIES`` — world country limit overriding each
  example's default (unset = the example's own size; ``0`` = full world);
* ``REPRO_EXAMPLE_ROUNDS`` — campaign round cap (examples that need a
  minimum for their analysis, e.g. stability's recurring pairs, clamp it
  back up themselves).
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro import CampaignConfig, MeasurementCampaign, build_world
from repro.core.results import CampaignResult
from repro.topology.config import TopologyConfig
from repro.world import World, WorldConfig

#: Seed shared by every example (matches the repo's test/benchmark seed).
SEED = 11


def example_countries(default: int | None) -> int | None:
    """The world size an example should build (None = full world)."""
    env = os.environ.get("REPRO_EXAMPLE_COUNTRIES")
    if env is None:
        return default
    value = int(env)
    return value if value > 0 else None


def example_rounds(default: int) -> int:
    """The round count an example should run."""
    env = os.environ.get("REPRO_EXAMPLE_ROUNDS")
    return default if env is None else max(1, int(env))


def example_world(countries: int | None = None, seed: int = SEED) -> World:
    """A (memoized) world; ``countries`` should come from
    :func:`example_countries` so the environment override applies."""
    # thin wrapper so positional/keyword/defaulted call styles all land on
    # the same cache entry (lru_cache keys on the raw argument tuple)
    return _build_example_world(countries, seed)


@lru_cache(maxsize=None)
def _build_example_world(countries: int | None, seed: int) -> World:
    config = WorldConfig(topology=TopologyConfig(country_limit=countries))
    return build_world(seed=seed, config=config)


def example_campaign_result(
    rounds: int, countries: int | None = None, seed: int = SEED
) -> CampaignResult:
    """A (memoized) campaign result over :func:`example_world`.

    Campaign runs are deterministic per ``(seed, rounds, countries)``
    regardless of what else ran on the shared world (every round draws
    from its own named RNG stream), so memoizing results is safe.
    """
    return _run_example_campaign(rounds, countries, seed)


@lru_cache(maxsize=None)
def _run_example_campaign(
    rounds: int, countries: int | None, seed: int
) -> CampaignResult:
    world = _build_example_world(countries, seed)
    campaign = MeasurementCampaign(world, CampaignConfig(num_rounds=rounds))
    return campaign.run()
