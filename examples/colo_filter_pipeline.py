#!/usr/bin/env python
"""Walk the Sec 2.2 relay-verification pipeline step by step.

Shows how the aged 2015-style facility-mapping dataset is cleaned into a
usable Colo relay pool: each filter's survivor count, what kind of
staleness it caught, and the final facility/city coverage — the paper's
2675 -> 1008 -> 764 -> 725 -> 725 -> 356 funnel at our scale.

Run:  python examples/colo_filter_pipeline.py
"""

from __future__ import annotations

from _shared import example_countries, example_world
from repro.core.colo import ColoRelayPipeline

EXPLANATIONS = {
    "single_facility_active_pdb": (
        "constrained facility search converged to one facility that still "
        "exists in PeeringDB"
    ),
    "pingability": "the address still answers pings two years on",
    "same_ip_ownership": "prefix2as origin matches the 2015 ASN, no MOAS",
    "active_facility_presence": "the owner AS is still a member of the facility",
    "rtt_geolocation": (
        "a same-city looking glass measures a sub-threshold last-hop RTT "
        "(catches physically relocated interfaces)"
    ),
}


def main() -> None:
    countries = example_countries(None)
    print(f"building {'full' if countries is None else f'{countries}-country'} "
          "world (seed 11)...")
    world = example_world(countries)
    pipeline = ColoRelayPipeline(world)
    relays, report = pipeline.run()

    print(f"\n2015-vintage dataset records: {report.initial}")
    previous = report.initial
    for name, count in report.stages:
        dropped = previous - count
        print(f"\n  filter: {name}")
        print(f"    {EXPLANATIONS[name]}")
        print(f"    survivors: {count}  (dropped {dropped})")
        previous = count

    facilities = pipeline.facilities_covered()
    cities = {world.peeringdb.city_of(f) for f in facilities}
    print(
        f"\nverified relay pool: {len(relays)} IPs at {len(facilities)} "
        f"facilities in {len(cities)} cities"
    )
    print("(paper: 356 IPs at 58 facilities in 36 cities)")

    rng = world.seeds.rng("example.sampling")
    sample = pipeline.sample_relays(rng)
    print(f"\none round's sample (1-3 IPs per facility): {len(sample)} relays")
    for relay in sample[:8]:
        fac = world.peeringdb.facility(relay.facility_id)
        print(f"  {relay.node.ip}  AS{relay.node.asn:<6} at {fac.name} ({fac.city_key})")
    print("  ...")


if __name__ == "__main__":
    main()
