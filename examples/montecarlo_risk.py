#!/usr/bin/env python
"""Monte-Carlo risk summary: how robust are the paper's shapes to knobs?

Runs the ``tiny-mc`` regime — the baseline scenario with the campaign's
``pings_per_pair`` and relay mix perturbed per draw — and prints the
claim-hold probabilities with their Wilson confidence intervals plus the
bootstrap CIs on the headline metrics.  The same machinery, pointed at
``baseline-mc`` with more draws, produces the repo's recorded risk
artifacts (``repro montecarlo --regime baseline-mc``).

Run:  python examples/montecarlo_risk.py
"""

from __future__ import annotations

from _shared import example_countries, example_rounds
from repro import MonteCarloConfig, get_regime, run_montecarlo


def main() -> None:
    regime = get_regime("tiny-mc")
    countries = example_countries(8)
    rounds = example_rounds(1)
    print(f"regime: {regime.name} — {regime.description}")
    print("perturbed knobs:")
    for spec in regime.params:
        described = spec.as_dict()
        bounds = (
            f"choices={described['choices']}"
            if spec.kind == "choice"
            else f"[{described['low']}, {described['high']}]"
        )
        print(f"  {spec.target}: {spec.kind} {bounds}")

    config = MonteCarloConfig(
        regime=regime.name,
        seed=7,
        batch_size=4,
        max_draws=8,
        confidence=0.9,
        target_half_width=0.35,
        rounds=rounds,
        countries=countries,
        bootstrap_resamples=500,
    )
    print(f"\nsampling (batch {config.batch_size}, cap {config.max_draws})...")
    artifact = run_montecarlo(config)

    convergence = artifact["convergence"]
    print(
        f"converged={convergence['converged']} after "
        f"{convergence['draws']} draws in {convergence['batches']} batch(es)"
    )

    risk = artifact["risk"]
    print(f"\nclaim-hold probabilities ({int(100 * config.confidence)}% Wilson CI):")
    for name, row in risk["claims"].items():
        print(
            f"  {name:>24}: {row['probability']:.2f} "
            f"[{row['ci_low']:.2f}, {row['ci_high']:.2f}] "
            f"({row['holds']}/{row['draws']} draws)"
        )

    print("\nmetric bootstrap CIs:")
    for name, row in risk["metrics"].items():
        print(
            f"  {name:>24}: mean {row['mean']:.3f} "
            f"[{row['ci_low']:.3f}, {row['ci_high']:.3f}] "
            f"(target half-width {row['target']})"
        )

    cache = artifact["world_cache"]
    print(
        f"\nworld reuse: {cache['draws']} draws shared "
        f"{cache['distinct_worlds']} distinct world(s) "
        f"({cache['distinct_configs']} config digest(s))"
    )


if __name__ == "__main__":
    main()
