#!/usr/bin/env python
"""VoIP through a Colo shortcut: the paper's 320 ms analysis.

A VoIP call is considered poor above a 320 ms RTT (ITU G.114).  The paper
finds 19% of direct inter-eyeball paths exceed that, and the best Colo
relay rescues roughly half of them.  This example reproduces that view and
prints the worst rescued pairs.

Run:  python examples/voip_quality.py
"""

from __future__ import annotations

from _shared import example_campaign_result, example_countries, example_rounds
from repro.analysis.voip import VOIP_RTT_THRESHOLD_MS, VoipAnalysis
from repro.core.types import RelayType


def main() -> None:
    countries = example_countries(None)
    rounds = example_rounds(2)
    print(f"building world and running {rounds} rounds...")
    result = example_campaign_result(rounds, countries)

    voip = VoipAnalysis(result)
    direct = voip.direct_poor_fraction()
    relayed = voip.relayed_poor_fraction(RelayType.COR)
    print(f"\nRTT threshold for poor VoIP: {VOIP_RTT_THRESHOLD_MS:.0f} ms")
    print(f"direct paths above it:          {100 * direct:>5.1f}%  (paper: 19%)")
    print(f"with each pair's best Colo relay: {100 * relayed:>5.1f}%  (paper: 11%)")

    rescued = []
    for obs in result.observations():
        stitched = obs.best_stitched(RelayType.COR)
        if (
            obs.direct_rtt_ms > VOIP_RTT_THRESHOLD_MS
            and stitched is not None
            and stitched <= VOIP_RTT_THRESHOLD_MS
        ):
            rescued.append(obs)
    rescued.sort(key=lambda o: o.direct_rtt_ms - (o.best_stitched(RelayType.COR) or 0))
    print(f"\ncalls rescued by a Colo relay: {len(rescued)}")
    print(f"{'pair':<24} {'direct':>8} {'relayed':>8} {'saved':>7}")
    for obs in rescued[-8:][::-1]:
        stitched = obs.best_stitched(RelayType.COR)
        print(
            f"{obs.e1_cc + ' <-> ' + obs.e2_cc:<24} "
            f"{obs.direct_rtt_ms:>7.0f}ms {stitched:>7.0f}ms "
            f"{obs.direct_rtt_ms - stitched:>6.0f}ms"
        )


if __name__ == "__main__":
    main()
