#!/usr/bin/env python
"""Where should relays go?  The Fig. 3 / Fig. 4 / Table 1 study.

Runs a multi-round campaign on the full world and answers the paper's
second question: how many relays are enough, and which facilities host the
heavy hitters?

Run:  python examples/relay_placement_study.py
"""

from __future__ import annotations

from _shared import example_campaign_result, example_countries, example_rounds, example_world
from repro.analysis.facilities import FacilityTable
from repro.analysis.ranking import TopRelayAnalysis
from repro.core.types import RELAY_TYPE_ORDER, RelayType


def main() -> None:
    countries = example_countries(None)
    rounds = example_rounds(4)
    print(f"building {'full' if countries is None else f'{countries}-country'} "
          f"world and running {rounds} rounds...")
    world = example_world(countries)
    result = example_campaign_result(rounds, countries)

    ranking = TopRelayAnalysis(result)
    print("\nhow many relays are enough? (% of total cases improved)")
    print(f"{'top-N':>6} " + " ".join(f"{t.display_name:>10}" for t in RELAY_TYPE_ORDER))
    for n in (1, 5, 10, 20, 50):
        row = []
        for relay_type in RELAY_TYPE_ORDER:
            coverage = ranking.coverage_of_top(relay_type, n)
            row.append(f"{100 * coverage:>9.1f}%")
        print(f"{n:>6} " + " ".join(row))

    facilities = ranking.facilities_of_top(10)
    print(
        f"\nthe top-10 Colo relays sit in only {len(facilities)} facilities "
        "(paper: ~6) — placement is concentrated at the big hubs:"
    )
    table = FacilityTable(result, world)
    print()
    print(table.render(top_relays=20))

    threshold_curve = ranking.fig4_curve(RelayType.COR, [20.0], top_n=10)
    print(
        f"\nwith just the top-10 CORs, {threshold_curve[0][1]:.1f}% of ALL "
        "pairs gain more than 20 ms (paper: ~20%)"
    )


if __name__ == "__main__":
    main()
