"""Compiling a fault schedule against a world.

:func:`compile_timeline` resolves every event of a
:class:`~repro.timeline.events.TimelineConfig` into concrete cohorts —
node-id sets for outages and churn, country pairs for link windows —
using *dedicated* named streams from the world's
:class:`~repro.util.rand.SeedSequenceFactory`
(``timeline.event{i}.{pool}``).  The campaign's own round streams are
never touched, which is what makes a no-events timeline byte-identical
to a static run: the campaign code path is guarded on empty effects and
the RNG sequence it consumes is unchanged.

The compiled form is per-round:

* a boolean absence mask per node pool (``(num_rounds, pool_size)``),
  collapsed to a per-round frozenset of absent node ids (what the
  campaign filters samples against);
* the active :class:`LinkWindow` overrides per round (what the campaign
  applies to its latency pair grids);
* the active :class:`TrafficWindow` multipliers per round (what the
  load-replay harness feeds the query generator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import TimelineError
from repro.timeline.events import (
    LinkDegradation,
    ProbeChurn,
    RelayOutage,
    TimelineConfig,
    TrafficShift,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (world -> core -> config)
    from repro.latency.model import PairGrid
    from repro.world import World


@dataclass(frozen=True, slots=True)
class LinkWindow:
    """One active country-pair degradation: the grid override to apply."""

    cc_a: str
    cc_b: str
    loss_add: float
    rtt_mult: float


@dataclass(frozen=True, slots=True)
class TrafficWindow:
    """One active traffic re-weighting (country resolved, or by rank)."""

    country: str | None
    rank: int
    weight_mult: float


@dataclass(frozen=True, slots=True)
class RoundEffects:
    """Everything a single round must apply.

    ``absent_ids`` covers every pool: probes in it vanish as endpoints
    *and* relays; colo/PlanetLab nodes in it vanish as relays.  Empty
    containers mean "no effect" — the campaign guards on them, so a
    round with empty effects executes exactly the static code path.
    """

    absent_ids: frozenset[str]
    links: tuple[LinkWindow, ...]
    traffic: tuple[TrafficWindow, ...]

    @property
    def any(self) -> bool:
        return bool(self.absent_ids or self.links or self.traffic)


_NO_EFFECTS = RoundEffects(frozenset(), (), ())


def _sample_cohort(
    rng: np.random.Generator, candidates: list[str], fraction: float
) -> frozenset[str]:
    """A deterministic without-replacement cohort of ``fraction`` ids.

    Candidates must arrive sorted (they do: every caller sorts by node
    id), so the draw depends only on the stream and the candidate set.
    """
    count = int(round(fraction * len(candidates)))
    if count == 0:
        return frozenset()
    idx = rng.choice(len(candidates), size=count, replace=False)
    return frozenset(candidates[i] for i in idx)


class CompiledTimeline:
    """A schedule resolved against one world (see module docstring)."""

    def __init__(
        self, config: TimelineConfig, num_rounds: int,
        absent_by_round: list[frozenset[str]],
        links_by_round: list[tuple[LinkWindow, ...]],
        traffic_by_round: list[tuple[TrafficWindow, ...]],
    ) -> None:
        self.config = config
        self.num_rounds = num_rounds
        self._absent = absent_by_round
        self._links = links_by_round
        self._traffic = traffic_by_round

    @property
    def has_events(self) -> bool:
        """True when any round carries any effect."""
        return any(
            self._absent[r] or self._links[r] or self._traffic[r]
            for r in range(self.num_rounds)
        )

    @property
    def has_link_events(self) -> bool:
        return any(self._links)

    def effects(self, round_index: int) -> RoundEffects:
        """The round's effects (no-effect sentinel outside the horizon)."""
        if not 0 <= round_index < self.num_rounds:
            return _NO_EFFECTS
        return RoundEffects(
            absent_ids=self._absent[round_index],
            links=self._links[round_index],
            traffic=self._traffic[round_index],
        )

    def absent_ids(self, round_index: int) -> frozenset[str]:
        """Node ids dark during a round (empty outside the horizon)."""
        return self.effects(round_index).absent_ids

    def apply_link_overrides(
        self,
        grid: PairGrid,
        row_ccs: np.ndarray,
        col_ccs: np.ndarray,
        round_index: int,
    ) -> PairGrid:
        """The round's link windows applied to a latency pair grid.

        ``row_ccs`` / ``col_ccs`` are the country codes of the grid's
        axes.  Entries whose two sides match an active window's pair (in
        either direction) get ``base *= rtt_mult`` and
        ``loss -> 1 - (1 - loss) * (1 - loss_add)``.  Returns the grid
        object untouched when no window selects anything — the static
        path never sees a copy.
        """
        windows = self._links[round_index] if 0 <= round_index < self.num_rounds else ()
        if not windows:
            return grid
        base = loss = None
        rows = np.asarray(row_ccs)
        cols = np.asarray(col_ccs)
        for window in windows:
            ra, rb = rows == window.cc_a, rows == window.cc_b
            ca, cb = cols == window.cc_a, cols == window.cc_b
            sel = (ra[:, None] & cb[None, :]) | (rb[:, None] & ca[None, :])
            if not sel.any():
                continue
            if base is None:
                base, loss = grid.base.copy(), grid.loss.copy()
            base[sel] *= window.rtt_mult
            loss[sel] = 1.0 - (1.0 - loss[sel]) * (1.0 - window.loss_add)
        if base is None:
            return grid
        return type(grid)(base=base, loss=loss)

    def traffic_multipliers(
        self, round_index: int, rank_order: list[str]
    ) -> dict[str, float]:
        """The round's country → Zipf-weight multiplier map.

        ``rank_order`` is the serving directory's country popularity
        order (see :func:`repro.service.loadgen.country_rank_order`),
        used to resolve rank-targeted windows; a rank past the end of
        the order resolves to nothing.  Multipliers of windows hitting
        the same country multiply.
        """
        out: dict[str, float] = {}
        windows = (
            self._traffic[round_index] if 0 <= round_index < self.num_rounds else ()
        )
        for window in windows:
            country = window.country
            if country is None:
                if window.rank >= len(rank_order):
                    continue
                country = rank_order[window.rank]
            out[country] = out.get(country, 1.0) * window.weight_mult
        return out


def compile_timeline(
    world: World,
    config: TimelineConfig,
    num_rounds: int,
    eyeball_countries: list[str] | None = None,
) -> CompiledTimeline:
    """Resolve a schedule's cohorts against a world (see module docstring).

    Deterministic: cohorts come from ``world.seeds`` streams named by
    event index and pool, so the same (world seed, schedule) always
    compiles to the same timeline, independent of everything else the
    world's seed factory serves.

    ``eyeball_countries`` is the pool sampled link-degradation pairs
    draw from; the campaign passes its endpoint-covered countries so
    sampled windows always hit measured lanes.  Default: every country
    hosting an Atlas probe.
    """
    if num_rounds < 1:
        raise TimelineError(f"num_rounds must be >= 1, got {num_rounds}")
    absent: list[set[str]] = [set() for _ in range(num_rounds)]
    links: list[list[LinkWindow]] = [[] for _ in range(num_rounds)]
    traffic: list[list[TrafficWindow]] = [[] for _ in range(num_rounds)]

    pools: dict[str, list[tuple[str, str]]] | None = None  # pool -> (id, cc)

    def world_pools() -> dict[str, list[tuple[str, str]]]:
        nonlocal pools
        if pools is None:
            pools = {
                "colo": sorted(
                    (i.node.node_id, i.node.cc)
                    for i in world.colo_pool.interfaces()
                ),
                "planetlab": sorted(
                    (n.node.node_id, n.node.cc)
                    for n in world.planetlab.all_nodes()
                ),
                "probes": sorted(
                    (p.node.node_id, p.node.cc) for p in world.atlas.all_probes()
                ),
            }
        return pools

    def candidates(pool: str, countries: tuple[str, ...] | None) -> list[str]:
        entries = world_pools()[pool]
        if countries is None:
            return [node_id for node_id, _ in entries]
        allowed = set(countries)
        return [node_id for node_id, cc in entries if cc in allowed]

    def mark_absent(cohort: frozenset[str], lo: int, hi: int) -> None:
        for r in range(max(lo, 0), min(hi, num_rounds)):
            absent[r] |= cohort

    for i, event in enumerate(config.events):
        if isinstance(event, RelayOutage):
            for pool in event.pools:
                rng = world.seeds.rng(f"timeline.event{i}.{pool}")
                cohort = _sample_cohort(
                    rng, candidates(pool, event.countries), event.fraction
                )
                mark_absent(cohort, event.start_round, event.end_round)
        elif isinstance(event, ProbeChurn):
            rng = world.seeds.rng(f"timeline.event{i}.probes")
            cohort = _sample_cohort(
                rng, candidates("probes", event.countries), event.fraction
            )
            if event.mode == "departure":
                mark_absent(cohort, event.start_round, event.end_round)
            else:  # arrival: absent before the window opens
                mark_absent(cohort, 0, event.start_round)
        elif isinstance(event, LinkDegradation):
            pairs = _resolve_link_pairs(world, event, i, eyeball_countries)
            for r in range(
                max(event.start_round, 0), min(event.end_round, num_rounds)
            ):
                links[r].extend(
                    LinkWindow(a, b, event.loss_add, event.rtt_mult)
                    for a, b in pairs
                )
        elif isinstance(event, TrafficShift):
            window = TrafficWindow(event.country, event.rank, event.weight_mult)
            for r in range(
                max(event.start_round, 0), min(event.end_round, num_rounds)
            ):
                traffic[r].append(window)

    return CompiledTimeline(
        config,
        num_rounds,
        [frozenset(s) for s in absent],
        [tuple(w) for w in links],
        [tuple(w) for w in traffic],
    )


def _resolve_link_pairs(
    world: World,
    event: LinkDegradation,
    event_index: int,
    eyeball_countries: list[str] | None,
) -> list[tuple[str, str]]:
    """The event's country pairs: explicit, or sampled from the world."""
    if event.countries is not None:
        a, b = event.countries
        return [(a, b) if a < b else (b, a)]
    if eyeball_countries is not None:
        ccs = sorted(set(eyeball_countries))
    else:
        ccs = sorted({p.node.cc for p in world.atlas.all_probes()})
    n = len(ccs)
    total = n * (n - 1) // 2
    if total == 0:
        raise TimelineError(
            "world has fewer than two probe countries; cannot sample link pairs"
        )
    rng = world.seeds.rng(f"timeline.event{event_index}.links")
    take = min(event.num_pairs, total)
    flat = rng.choice(total, size=take, replace=False)
    # unrank the flat upper-triangle index into (i, j), i < j
    pairs: list[tuple[str, str]] = []
    for f in sorted(int(x) for x in flat):
        i = 0
        remaining = f
        row = n - 1
        while remaining >= row:
            remaining -= row
            i += 1
            row -= 1
        j = i + 1 + remaining
        pairs.append((ccs[i], ccs[j]))
    return pairs
