"""Fault-injected dynamic worlds: the event timeline subsystem.

A :class:`TimelineConfig` is a declarative, world-independent fault
schedule — relay outages and recoveries, probe churn, link-degradation
windows, traffic shifts.  :func:`compile_timeline` resolves it against a
world into per-round effects the measurement campaign applies between
rounds, and :mod:`repro.timeline.chaos` replays load against a serving
layer while the faults unfold, measuring availability and stale-answer
rates.

The chaos harness is exported lazily (PEP 562): it imports the campaign
and service layers, which themselves import :class:`TimelineConfig`
through :class:`~repro.core.config.CampaignConfig` — an eager import
here would cycle.
"""

from repro.timeline.events import (
    OUTAGE_POOLS,
    LinkDegradation,
    ProbeChurn,
    RelayOutage,
    TimelineConfig,
    TimelineEvent,
    TrafficShift,
    rolling_outages,
)
from repro.timeline.schedule import (
    CompiledTimeline,
    LinkWindow,
    RoundEffects,
    TrafficWindow,
    compile_timeline,
)

__all__ = [
    "ChaosConfig",
    "CompiledTimeline",
    "LinkDegradation",
    "LinkWindow",
    "OUTAGE_POOLS",
    "ProbeChurn",
    "RelayOutage",
    "RoundEffects",
    "TimelineConfig",
    "TimelineEvent",
    "TrafficShift",
    "TrafficWindow",
    "chaos_replay",
    "compile_timeline",
    "rolling_outages",
]

_LAZY = {"ChaosConfig", "chaos_replay"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.timeline import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
