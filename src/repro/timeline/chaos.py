"""Chaos replay: traffic against a churn-aware service while faults unfold.

The measurement campaign produces rounds *through* a fault timeline; this
harness plays the serving side of that movie.  Rounds are ingested one by
one into a :class:`~repro.service.service.ShortcutService` configured
with a retention window and relay-health tracking, and after each ingest
a round of Zipf-shaped traffic is replayed — re-weighted by the round's
active traffic-shift windows — while two ground-truth questions are
scored against the compiled timeline itself:

* **availability** — the fraction of queries whose answer is
  serviceable: a relay that is actually up this round, or a clean direct
  verdict.  An answer pointing at a dark relay would fail at connect
  time; those are the availability losses.
* **stale-answer rate** — among queries answered with a relay, the
  fraction pointing at a dark one.  This is the quantity the retention
  window (``max_rounds``) and the health filter (``liveness_rounds``)
  exist to suppress; :func:`repro.analysis.chaos.degradation_curve`
  sweeps it against ``max_rounds``.

Everything is deterministic: the same (result, timeline, config) triple
produces the same per-round numbers, down to the answer digests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro import obs
from repro.core.results import CampaignResult
from repro.core.types import RelayType
from repro.errors import ServiceError
from repro.service.directory import TIER_NAMES
from repro.service.loadgen import LoadgenConfig, QueryStream, country_rank_order
from repro.service.service import ShortcutService
from repro.timeline.schedule import CompiledTimeline


@dataclass(frozen=True, slots=True)
class ChaosConfig:
    """Knobs of :func:`chaos_replay`."""

    max_rounds: int | None = 3
    """The service's retention window (None = keep every round)."""

    liveness_rounds: int | None = 1
    """The service's relay-health window (None = churn awareness off —
    the baseline that shows why the filter exists)."""

    spill: int = 2
    """Bounded-retry over-fetch per lane (see :class:`ShortcutService`)."""

    warmup_rounds: int = 1
    """Rounds ingested before the first replay (a directory with no
    history answers nothing useful)."""

    queries_per_round: int = 4096
    """Replayed queries per ingested round."""

    batch_size: int = 1024
    """Queries per ``route_many`` call."""

    zipf_exponent: float = 1.1
    """Traffic skew over country popularity ranks."""

    seed: int = 0
    """Root seed of the per-round query streams (round index is mixed
    in, so each round replays distinct but reproducible traffic)."""

    k: int = 3
    """Relay candidates requested per query."""

    relay_type: RelayType = RelayType.COR
    """Relay lane the replay queries."""

    def __post_init__(self) -> None:
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ServiceError("max_rounds must be >= 1")
        if self.liveness_rounds is not None and self.liveness_rounds < 1:
            raise ServiceError("liveness_rounds must be >= 1")
        if self.spill < 0:
            raise ServiceError("spill must be >= 0")
        if self.warmup_rounds < 1:
            raise ServiceError("warmup_rounds must be >= 1")
        if self.queries_per_round < 1:
            raise ServiceError("queries_per_round must be >= 1")
        if self.batch_size < 1:
            raise ServiceError("batch_size must be >= 1")


def chaos_replay(
    result: CampaignResult,
    timeline: CompiledTimeline | None = None,
    config: ChaosConfig | None = None,
) -> dict[str, Any]:
    """Ingest a campaign round by round, replaying faulted traffic between.

    ``timeline`` is the campaign's compiled timeline
    (``MeasurementCampaign.timeline``); None scores a fault-free run —
    availability is then 1 by construction and the harness degenerates to
    an incremental-ingestion load test.

    Returns a JSON-ready report: one record per replayed round
    (availability, stale-answer rate, tier mix, queries/sec, dead-relay
    count) plus a summary with the floors the chaos bench and CI gate on.
    """
    config = config or ChaosConfig()
    service = ShortcutService.empty(
        max_rounds=config.max_rounds,
        liveness_rounds=config.liveness_rounds,
        spill=config.spill,
    )
    node_ids = np.array(
        [record.node_id for record in result.registry], dtype=np.str_
    )
    rounds_out: list[dict[str, Any]] = []
    total_queries = total_dead = total_answered = 0
    total_tiers = np.zeros(len(TIER_NAMES), np.int64)
    ingested = 0
    sp_round = obs.span("chaos.round")
    for rnd in result.rounds:
        service.ingest_round(rnd)
        ingested += 1
        if ingested < config.warmup_rounds:
            continue
        sp_round.__enter__()
        absent = (
            timeline.absent_ids(rnd.round_index)
            if timeline is not None
            else frozenset()
        )
        weights = None
        if timeline is not None:
            multipliers = timeline.traffic_multipliers(
                rnd.round_index, country_rank_order(service.directory)
            )
            if multipliers:
                weights = multipliers
        load = LoadgenConfig(
            num_queries=config.queries_per_round,
            batch_size=config.batch_size,
            zipf_exponent=config.zipf_exponent,
            seed=config.seed * 100_003 + rnd.round_index,
            k=config.k,
            relay_type=config.relay_type,
            country_weights=weights,
        )
        stream = QueryStream(service.directory, load)
        src, dst = stream.generate()
        n = int(src.shape[0])
        absent_arr = np.array(sorted(absent), dtype=np.str_)
        tier_counts = np.zeros(len(TIER_NAMES), np.int64)
        answered = dead_answers = 0
        start = time.perf_counter()
        for lo in range(0, n, config.batch_size):
            hi = min(lo + config.batch_size, n)
            batch = service.route_many(
                src[lo:hi], dst[lo:hi], config.relay_type, config.k
            )
            tier_counts += np.bincount(batch.tier, minlength=len(TIER_NAMES))
            top = batch.relay_ids[:, 0]
            got_relay = top >= 0
            answered += int(np.count_nonzero(got_relay))
            if absent_arr.size and got_relay.any():
                dead_answers += int(
                    np.count_nonzero(
                        np.isin(node_ids[top[got_relay]], absent_arr)
                    )
                )
        wall = time.perf_counter() - start
        total_queries += n
        total_answered += answered
        total_dead += dead_answers
        total_tiers += tier_counts
        obs.inc("chaos.rounds")
        obs.inc("chaos.queries", n)
        obs.inc("chaos.answered", answered)
        obs.inc("chaos.dead_answers", dead_answers)
        if obs.metrics_on() and n:
            obs.set_gauge(
                f"chaos.round{rnd.round_index}.availability",
                round(1.0 - dead_answers / n, 4),
            )
            obs.set_gauge(
                f"chaos.round{rnd.round_index}.stale_answer_rate",
                round(dead_answers / answered, 4) if answered else 0.0,
            )
        # span paired manually so the long round body keeps its indent
        sp_round.__exit__(None, None, None)
        rounds_out.append(
            {
                "round": rnd.round_index,
                "queries": n,
                "answered_frac": round(answered / n, 4) if n else None,
                "availability": round(1.0 - dead_answers / n, 4) if n else None,
                "stale_answer_rate": (
                    round(dead_answers / answered, 4) if answered else 0.0
                ),
                "dark_nodes": len(absent),
                "dead_relays": service.dead_relay_count(),
                "tier_counts": {
                    name: int(tier_counts[code])
                    for code, name in enumerate(TIER_NAMES)
                },
                "queries_per_s": int(n / wall) if n and wall > 0 else None,
                "traffic_weights": weights,
            }
        )
    availabilities = [
        r["availability"] for r in rounds_out if r["availability"] is not None
    ]
    stale_rates = [r["stale_answer_rate"] for r in rounds_out]
    return {
        "config": {
            "max_rounds": config.max_rounds,
            "liveness_rounds": config.liveness_rounds,
            "spill": config.spill,
            "warmup_rounds": config.warmup_rounds,
            "queries_per_round": config.queries_per_round,
            "zipf_exponent": config.zipf_exponent,
            "seed": config.seed,
            "k": config.k,
            "relay_type": config.relay_type.value,
        },
        "rounds": rounds_out,
        "summary": {
            "replayed_rounds": len(rounds_out),
            "total_queries": total_queries,
            "min_availability": min(availabilities) if availabilities else None,
            "mean_availability": (
                round(sum(availabilities) / len(availabilities), 4)
                if availabilities
                else None
            ),
            "max_stale_answer_rate": max(stale_rates) if stale_rates else 0.0,
            "overall_stale_answer_rate": (
                round(total_dead / total_answered, 4) if total_answered else 0.0
            ),
            "tier_counts": {
                name: int(total_tiers[code])
                for code, name in enumerate(TIER_NAMES)
            },
            "degradation": service.counters.as_dict(),
        },
    }
