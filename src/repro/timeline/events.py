"""Fault-timeline event types.

Each event is a frozen, declarative description of one disturbance the
synthetic Internet suffers over a window of measurement rounds: relays
going dark and recovering, probes leaving or arriving, country-pair
links degrading, and user traffic shifting between countries.  Events
carry *targets as distributions* (a fraction of a pool, a number of
sampled pairs); the concrete cohort — which node ids, which country
pairs — is resolved once per event at compile time by
:func:`repro.timeline.schedule.compile_timeline`, from the world's own
seed factory, so a timeline is fully deterministic per (world seed,
schedule) and two compiles of the same schedule agree byte for byte.

Windows are half-open round intervals ``[start_round, end_round)``.
Rounds outside ``range(num_rounds)`` simply never fire, so one schedule
can be reused across campaign lengths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TimelineError

#: Node pools a :class:`RelayOutage` can draw victims from.
OUTAGE_POOLS = ("colo", "planetlab", "probes")


def _check_window(start_round: int, end_round: int) -> None:
    if start_round < 0:
        raise TimelineError(f"start_round must be >= 0, got {start_round}")
    if end_round <= start_round:
        raise TimelineError(
            f"window [{start_round}, {end_round}) is empty or inverted"
        )


def _check_fraction(fraction: float) -> None:
    if not 0.0 < fraction <= 1.0:
        raise TimelineError(f"fraction must be in (0, 1], got {fraction}")


@dataclass(frozen=True, slots=True)
class RelayOutage:
    """A cohort of relay nodes goes dark for a window, then recovers.

    Attributes:
        start_round / end_round: Half-open outage window ``[start, end)``.
        fraction: Fraction of each targeted pool that fails (cohort
            sampled without replacement at compile time).
        pools: Which node pools fail — any of :data:`OUTAGE_POOLS`
            (``"colo"`` = COR interfaces, ``"planetlab"`` = PLR nodes,
            ``"probes"`` = Atlas probes, which also removes them as
            endpoints and RAR relays).
        countries: Optional country-code filter; only nodes in these
            countries are candidates (None = everywhere).
    """

    start_round: int
    end_round: int
    fraction: float
    pools: tuple[str, ...] = ("colo", "planetlab")
    countries: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        _check_window(self.start_round, self.end_round)
        _check_fraction(self.fraction)
        if not self.pools:
            raise TimelineError("RelayOutage needs at least one pool")
        unknown = set(self.pools) - set(OUTAGE_POOLS)
        if unknown:
            raise TimelineError(
                f"unknown outage pools {sorted(unknown)}; valid: {OUTAGE_POOLS}"
            )


@dataclass(frozen=True, slots=True)
class ProbeChurn:
    """Atlas probes leave (or have not yet arrived) around a window.

    ``mode="departure"``: the cohort is absent during ``[start, end)``
    and present otherwise — a transient platform outage.
    ``mode="arrival"``: the cohort is absent *before* ``start_round``
    and present from then on — probes joining the platform mid-campaign.
    Absent probes disappear everywhere: as endpoints and as RAR relays.
    """

    start_round: int
    end_round: int
    fraction: float
    mode: str = "departure"
    countries: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        _check_window(self.start_round, self.end_round)
        _check_fraction(self.fraction)
        if self.mode not in ("departure", "arrival"):
            raise TimelineError(
                f"mode must be 'departure' or 'arrival', got {self.mode!r}"
            )


@dataclass(frozen=True, slots=True)
class LinkDegradation:
    """Selected country pairs lose packets and stretch during a window.

    Either name the pair explicitly (``countries=("DE", "US")``) or let
    the compiler sample ``num_pairs`` distinct pairs from the world's
    eyeball countries.  While active, every latency-grid entry whose two
    sides land on an affected pair (either direction) has its base RTT
    multiplied by ``rtt_mult`` and its loss raised to
    ``1 - (1 - loss) * (1 - loss_add)`` — the same composition rule the
    latency model uses for independent loss stages.
    """

    start_round: int
    end_round: int
    loss_add: float = 0.05
    rtt_mult: float = 1.25
    countries: tuple[str, str] | None = None
    num_pairs: int = 1

    def __post_init__(self) -> None:
        _check_window(self.start_round, self.end_round)
        if not 0.0 <= self.loss_add < 1.0:
            raise TimelineError(f"loss_add must be in [0, 1), got {self.loss_add}")
        if self.rtt_mult < 1.0:
            raise TimelineError(f"rtt_mult must be >= 1, got {self.rtt_mult}")
        if self.countries is not None:
            if len(self.countries) != 2 or self.countries[0] == self.countries[1]:
                raise TimelineError(
                    f"countries must name two distinct codes, got {self.countries}"
                )
        elif self.num_pairs < 1:
            raise TimelineError(f"num_pairs must be >= 1, got {self.num_pairs}")


@dataclass(frozen=True, slots=True)
class TrafficShift:
    """User traffic to/from one country is re-weighted during a window.

    Targets a country by name, or — when ``country`` is None — by
    popularity ``rank`` in the serving directory's eyeball population
    order (rank 0 = the most populous country; the diurnal/flash-crowd
    idiom, resolved at replay time because popularity is a property of
    the served history, not the world).  The multiplier scales the
    country's Zipf weight in the load generator; 0 silences it.
    """

    start_round: int
    end_round: int
    weight_mult: float
    country: str | None = None
    rank: int = 0

    def __post_init__(self) -> None:
        _check_window(self.start_round, self.end_round)
        if self.weight_mult < 0.0:
            raise TimelineError(
                f"weight_mult must be >= 0, got {self.weight_mult}"
            )
        if self.country is None and self.rank < 0:
            raise TimelineError(f"rank must be >= 0, got {self.rank}")


#: Everything a schedule may contain.
TimelineEvent = RelayOutage | ProbeChurn | LinkDegradation | TrafficShift


def rolling_outages(
    start_round: int,
    num_waves: int,
    fraction: float,
    *,
    wave_rounds: int = 1,
    pools: tuple[str, ...] = ("colo", "planetlab"),
) -> tuple[RelayOutage, ...]:
    """A rolling-failure wave: consecutive outage windows, fresh cohorts.

    Wave ``w`` fails an independently sampled ``fraction`` of the pools
    during ``[start + w * wave_rounds, start + (w + 1) * wave_rounds)``
    — each wave draws its own cohort (distinct compile streams), so the
    failing set *shifts* across the campaign instead of repeating.
    """
    if num_waves < 1:
        raise TimelineError(f"num_waves must be >= 1, got {num_waves}")
    if wave_rounds < 1:
        raise TimelineError(f"wave_rounds must be >= 1, got {wave_rounds}")
    return tuple(
        RelayOutage(
            start_round=start_round + w * wave_rounds,
            end_round=start_round + (w + 1) * wave_rounds,
            fraction=fraction,
            pools=pools,
        )
        for w in range(num_waves)
    )


@dataclass(frozen=True, slots=True)
class TimelineConfig:
    """A complete fault schedule: an ordered tuple of events.

    Frozen and world-independent — the same schedule can be compiled
    against any world (cohorts resolve from that world's seed).  An
    empty schedule is valid and compiles to a timeline with no effects;
    the campaign's output under it is byte-identical to running with no
    timeline at all (asserted in ``tests/test_timeline.py``).
    """

    events: tuple[TimelineEvent, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        valid = (RelayOutage, ProbeChurn, LinkDegradation, TrafficShift)
        for event in self.events:
            if not isinstance(event, valid):
                raise TimelineError(
                    f"not a timeline event: {type(event).__name__}"
                )

    @property
    def has_events(self) -> bool:
        return bool(self.events)
