"""Table 1: the facilities hosting the top Colo relays.

The paper ranks the top-20 COR relays by how often they appear in improved
paths, lists the 10 distinct facilities containing them, and annotates
each with PeeringDB features: colocated network count, attached IXPs,
cloud services, and whether it is in PeeringDB's top-10 facilities by
colocated networks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.ranking import TopRelayAnalysis
from repro.core.results import CampaignResult
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.world import World


@dataclass(frozen=True, slots=True)
class FacilityRow:
    """One Table 1 row.

    Attributes:
        rank: Row rank (1 = facility of the most frequent relay).
        facility_id: PeeringDB facility id.
        name: Facility name.
        pct_improved_cases: % of COR-improved cases with an improving relay
            in this facility.
        city_key: Facility city.
        num_networks: Colocated networks today.
        num_ixps: Attached IXPs.
        cloud_services: Cloud/VM services available.
        pdb_top10: In PeeringDB's top-10 facilities by colocated networks.
    """

    rank: int
    facility_id: int
    name: str
    pct_improved_cases: float
    city_key: str
    num_networks: int
    num_ixps: int
    cloud_services: bool
    pdb_top10: bool


class FacilityTable:
    """Builds the Table 1 rows from a campaign result and its world."""

    def __init__(self, result: CampaignResult, world: World) -> None:
        self._result = result
        self._world = world
        self._ranking = TopRelayAnalysis(result)

    def rows(self, top_relays: int = 20) -> list[FacilityRow]:
        """Table rows for the facilities of the top-``top_relays`` CORs."""
        registry = self._result.registry
        top = self._ranking.top_relays(RelayType.COR, top_relays)
        candidate_facilities: set[int] = {
            fac_id
            for idx in top
            if (fac_id := registry.get(idx).facility_id) is not None
        }

        # % of COR-improved cases that include a relay from each facility:
        # for each candidate facility, count the distinct cases among the
        # CSR entries whose relay it hosts
        table = self._result.table
        cor_code = RELAY_TYPE_ORDER.index(RelayType.COR)
        cases, relays, _ = table.type_entries(cor_code)
        improved_cases = table.improved_count(cor_code)
        facility_of = np.full(len(registry), -1, np.int64)
        for record in registry:
            if record.facility_id is not None:
                facility_of[record.index] = record.facility_id
        entry_facility = facility_of[relays] if relays.size else facility_of[:0]
        cases_with_facility = {
            fac_id: int(np.unique(cases[entry_facility == fac_id]).size)
            for fac_id in candidate_facilities
        }

        # the paper ranks the table by frequency of presence in improved
        # paths, i.e. facility-level improvement share
        facility_order = sorted(
            candidate_facilities,
            key=lambda f: (-cases_with_facility[f], f),
        )

        pdb = self._world.peeringdb
        pdb_top10 = set(pdb.top_facility_ids(10))
        rows = []
        for rank, fac_id in enumerate(facility_order, start=1):
            fac = pdb.facility(fac_id)
            pct = (
                100.0 * cases_with_facility[fac_id] / improved_cases
                if improved_cases
                else 0.0
            )
            rows.append(
                FacilityRow(
                    rank=rank,
                    facility_id=fac_id,
                    name=fac.name,
                    pct_improved_cases=round(pct, 1),
                    city_key=fac.city_key,
                    num_networks=pdb.network_count(fac_id),
                    num_ixps=pdb.ixp_count(fac_id),
                    cloud_services=fac.cloud_services,
                    pdb_top10=fac_id in pdb_top10,
                )
            )
        return rows

    def render(self, top_relays: int = 20) -> str:
        """Plain-text rendering of the table (for benches and examples)."""
        lines = [
            f"{'#':>2}  {'Facility':<28} {'%Impr':>6} {'City':<18} "
            f"{'#Nets':>5} {'#IXPs':>5} {'Cloud':>5} {'PDB10':>5}"
        ]
        for row in self.rows(top_relays):
            lines.append(
                f"{row.rank:>2}  {row.name:<28} {row.pct_improved_cases:>6.1f} "
                f"{row.city_key:<18} {row.num_networks:>5} {row.num_ixps:>5} "
                f"{'yes' if row.cloud_services else 'no':>5} "
                f"{'yes' if row.pdb_top10 else 'no':>5}"
            )
        return "\n".join(lines)
