"""Submarine-cable proximity analysis (the paper's future-work item iii).

Hypothesis from the paper's conclusions: relayed-path latency correlates
with how close endpoints and relays sit to submarine cable landing points,
because intercontinental capacity funnels through them.  This analysis
splits a campaign's pairs by the endpoints' distance to their nearest
landing station and compares direct RTTs and relay benefit across the
split.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import CampaignResult
from repro.core.types import RelayType
from repro.errors import AnalysisError
from repro.geo.cables import LandingPointIndex
from repro.geo.cities import city as city_of
from repro.util.stats import median


@dataclass(frozen=True, slots=True)
class CableProximityReport:
    """Outcome of the landing-point proximity split.

    Attributes:
        threshold_km: Distance defining "near" a landing point.
        near_pairs / far_pairs: Intercontinental pair counts per group
            (both endpoints near vs at least one far).
        near_direct_median_ms / far_direct_median_ms: Median direct RTTs.
        near_improved_rate / far_improved_rate: COR improvement rates.
    """

    threshold_km: float
    near_pairs: int
    far_pairs: int
    near_direct_median_ms: float
    far_direct_median_ms: float
    near_improved_rate: float
    far_improved_rate: float


class CableProximityAnalysis:
    """Landing-point proximity effects over a campaign result."""

    def __init__(self, result: CampaignResult, threshold_km: float = 500.0) -> None:
        if result.total_cases == 0:
            raise AnalysisError("campaign result has no observations")
        if threshold_km <= 0:
            raise AnalysisError("threshold_km must be positive")
        self._result = result
        self._threshold = threshold_km
        self._index = LandingPointIndex()
        self._distance_cache: dict[str, float] = {}

    def _distance(self, city_key: str) -> float:
        cached = self._distance_cache.get(city_key)
        if cached is None:
            cached = self._index.distance_km(city_of(city_key).location)
            self._distance_cache[city_key] = cached
        return cached

    def report(self, relay_type: RelayType = RelayType.COR) -> CableProximityReport:
        """Split intercontinental pairs by landing-point proximity.

        Raises:
            AnalysisError: if either group ends up empty (tiny campaigns).
        """
        near_direct, far_direct = [], []
        near_improved = far_improved = 0
        for obs in self._result.observations():
            if not obs.is_intercontinental:
                continue  # cable proximity only matters across oceans
            both_near = (
                self._distance(obs.e1_city) <= self._threshold
                and self._distance(obs.e2_city) <= self._threshold
            )
            if both_near:
                near_direct.append(obs.direct_rtt_ms)
                near_improved += int(obs.improved(relay_type))
            else:
                far_direct.append(obs.direct_rtt_ms)
                far_improved += int(obs.improved(relay_type))
        if not near_direct or not far_direct:
            raise AnalysisError(
                "not enough intercontinental pairs on both sides of the "
                f"{self._threshold} km threshold"
            )
        return CableProximityReport(
            threshold_km=self._threshold,
            near_pairs=len(near_direct),
            far_pairs=len(far_direct),
            near_direct_median_ms=median(near_direct),
            far_direct_median_ms=median(far_direct),
            near_improved_rate=near_improved / len(near_direct),
            far_improved_rate=far_improved / len(far_direct),
        )
