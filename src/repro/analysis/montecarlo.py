"""Confidence-bounded paper shapes: the Monte-Carlo reductions.

The per-draw half turns one draw's pooled
:class:`~repro.core.table.ObservationTable` into metrics and boolean
shapes (:func:`draw_metrics` — the sweep's :func:`scenario_report` plus a
top-relay concentration shape).  The cross-draw half turns a list of draw
records into a risk summary (:func:`risk_summary`): for every tracked
claim, the probability it holds with a Wilson score interval; for every
tracked metric, the mean with a seeded percentile-bootstrap interval.
Convergence (:func:`summary_converged`) is simply "every interval's
half-width is within its target" — the adaptive batch loop in
:class:`~repro.core.montecarlo.MonteCarloManager` keeps drawing until it
is.

Everything here is deterministic: the Wilson interval is closed-form, and
the bootstrap derives its resampling stream from ``(seed, metric name,
draw count)`` — so an intermediate convergence check after batch ``k``
never perturbs the interval the final artifact reports, and the artifact
is byte-identical however the draws were batched.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

from repro.analysis.scenarios import scenario_report
from repro.core.table import ObservationTable
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.errors import AnalysisError
from repro.util.rand import derive_rng

#: How many top colo relays the concentration shape considers.
TOP_RELAY_COUNT = 10

#: Every shape key :func:`draw_metrics` emits (the sweep's paper shapes
#: plus the relay-concentration shape).  Regime claim keys must come from
#: this set — see :mod:`repro.scenarios.regimes`.
SHAPE_KEYS = (
    "cases_observed",
    "cor_wins_majority",
    "cor_leads_relay_types",
    "cor_reduction_tens_of_ms",
    "voip_no_worse_with_cor",
    "rar_relays_observed",
    "top_relays_cover_majority",
)

#: Fraction of improved cases the top relays must cover for the
#: ``top_relays_cover_majority`` shape to hold.
TOP_COVERAGE_THRESHOLD = 0.5


def z_value(confidence: float) -> float:
    """Two-sided standard-normal critical value for a confidence level.

    Solved by bisection on the normal CDF (via :func:`math.erf`) — no
    scipy, deterministic, and exact to well below float precision.
    """
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    target = (1.0 + confidence) / 2.0
    lo, hi = 0.0, 10.0
    for _ in range(100):
        mid = (lo + hi) / 2.0
        if (1.0 + math.erf(mid / math.sqrt(2.0))) / 2.0 < target:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def hold_probability(
    holds: int, draws: int, confidence: float = 0.95
) -> tuple[float, float, float]:
    """``(point, low, high)`` Wilson score interval for a hold count.

    The Wilson interval stays inside ``[0, 1]`` and behaves sensibly at
    0/n and n/n — exactly the edges claim-hold counts live at on
    well-behaved regimes — unlike the normal approximation.
    """
    if draws < 1:
        raise AnalysisError("hold_probability needs at least one draw")
    if not 0 <= holds <= draws:
        raise AnalysisError(f"holds {holds} outside [0, {draws}]")
    z = z_value(confidence)
    p = holds / draws
    denom = 1.0 + z * z / draws
    center = (p + z * z / (2 * draws)) / denom
    half = (
        z
        * math.sqrt(p * (1.0 - p) / draws + z * z / (4.0 * draws * draws))
        / denom
    )
    return p, max(0.0, center - half), min(1.0, center + half)


def bootstrap_ci(
    values: Sequence[float],
    *,
    name: str,
    seed: int,
    confidence: float = 0.95,
    resamples: int = 2000,
) -> tuple[float, float, float]:
    """``(mean, low, high)`` percentile bootstrap of the mean.

    The resampling stream is ``montecarlo.bootstrap.{name}.n{len(values)}``
    of ``seed`` — a function of the *draw count*, not of how many times
    convergence was checked along the way, so re-running with a different
    batch size reproduces the exact interval.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise AnalysisError(f"bootstrap_ci({name!r}) needs at least one value")
    mean = float(data.mean())
    if data.size == 1:
        return mean, mean, mean
    rng = derive_rng(seed, f"montecarlo.bootstrap.{name}.n{data.size}")
    idx = rng.integers(data.size, size=(resamples, data.size))
    means = data[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return mean, float(low), float(high)


def top_relay_coverage(
    table: ObservationTable,
    *,
    relay_type: RelayType = RelayType.COR,
    top_n: int = TOP_RELAY_COUNT,
) -> float:
    """Fraction of the type's improved cases its busiest relays cover.

    "Busiest" ranks relays by how many cases they improve (ties broken by
    registry index, so pooled tables rank deterministically); coverage is
    the fraction of improved cases that at least one top-``top_n`` relay
    improves.  The paper's shortcut story concentrates on a small set of
    well-placed colo relays — this is that concentration as one number.
    """
    code = RELAY_TYPE_ORDER.index(relay_type)
    cases, relays, _ = table.type_entries(code)
    if cases.size == 0:
        return 0.0
    counts = np.bincount(relays)
    ranked = sorted(
        np.nonzero(counts)[0].tolist(), key=lambda r: (-int(counts[r]), r)
    )
    top = np.asarray(ranked[:top_n], dtype=relays.dtype)
    covered = np.unique(cases[np.isin(relays, top)])
    return covered.size / np.unique(cases).size


def draw_metrics(table: ObservationTable) -> tuple[dict, dict[str, bool]]:
    """``(metrics, shapes)`` of one Monte-Carlo draw's pooled table.

    :func:`~repro.analysis.scenarios.scenario_report` plus the relay
    concentration measure: ``top10_cor_coverage`` in the metrics and
    ``top_relays_cover_majority`` (coverage at or above
    :data:`TOP_COVERAGE_THRESHOLD`) in the shapes.
    """
    metrics, shapes = scenario_report(table)
    coverage = top_relay_coverage(table)
    metrics["top10_cor_coverage"] = round(coverage, 4)
    shapes["top_relays_cover_majority"] = coverage >= TOP_COVERAGE_THRESHOLD
    return metrics, shapes


def risk_summary(
    records: Sequence[Mapping],
    *,
    claims: Mapping[str, bool],
    metric_targets: Mapping[str, float],
    confidence: float = 0.95,
    target_half_width: float = 0.1,
    seed: int = 0,
    resamples: int = 2000,
) -> dict:
    """Per-claim and per-metric risk of a set of draw records.

    ``records`` are the manager's draw dicts (each carrying ``metrics``
    and ``shapes`` sections).  For every claim in ``claims`` the summary
    reports the probability the observed shape matched the expected value
    with a Wilson interval; for every metric in ``metric_targets`` the
    mean with a bootstrap interval.  ``within_target`` compares each
    interval's half-width against ``target_half_width`` (claims) or the
    metric's own target; a metric with fewer than two usable values never
    counts as converged.  Values are rounded to six places — well above
    float noise, and stable for byte-compared artifacts.
    """
    if not records:
        raise AnalysisError("risk_summary needs at least one draw record")
    draws = len(records)

    claim_rows: dict[str, dict] = {}
    for name, expected in claims.items():
        holds = sum(
            1 for record in records if record["shapes"].get(name) is expected
        )
        point, low, high = hold_probability(holds, draws, confidence)
        half = (high - low) / 2.0
        claim_rows[name] = {
            "expected": expected,
            "holds": holds,
            "draws": draws,
            "probability": round(point, 6),
            "ci_low": round(low, 6),
            "ci_high": round(high, 6),
            "half_width": round(half, 6),
            "within_target": half <= target_half_width,
        }

    metric_rows: dict[str, dict] = {}
    for name, target in metric_targets.items():
        values = [
            record["metrics"][name]
            for record in records
            if record["metrics"].get(name) is not None
        ]
        if len(values) < 2:
            metric_rows[name] = {
                "mean": round(float(values[0]), 6) if values else None,
                "ci_low": None,
                "ci_high": None,
                "half_width": None,
                "target": target,
                "values": len(values),
                "within_target": False,
            }
            continue
        mean, low, high = bootstrap_ci(
            values,
            name=name,
            seed=seed,
            confidence=confidence,
            resamples=resamples,
        )
        half = (high - low) / 2.0
        metric_rows[name] = {
            "mean": round(mean, 6),
            "ci_low": round(low, 6),
            "ci_high": round(high, 6),
            "half_width": round(half, 6),
            "target": target,
            "values": len(values),
            "within_target": half <= target,
        }

    return {
        "draws": draws,
        "confidence": confidence,
        "target_half_width": target_half_width,
        "claims": claim_rows,
        "metrics": metric_rows,
    }


def summary_converged(summary: Mapping) -> bool:
    """Did every tracked interval reach its half-width target?"""
    if not summary:
        return False
    return all(
        entry["within_target"] for entry in summary["claims"].values()
    ) and all(
        entry["within_target"] for entry in summary["metrics"].values()
    )
