"""Temporal stability (Sec 3, last analysis).

Two results: (i) per-round improvement fractions stay consistent across
the campaign (COR >75%, RAR_other >50%, PLR/RAR_eye <50% in the paper's
every round), and (ii) per-pair RTT medians are stable over time — the
coefficient of variation across rounds is below 10% for 90% of pairs,
"indicating stable, usable overlays".
"""

from __future__ import annotations

from repro.core.results import CampaignResult
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.errors import AnalysisError
from repro.util.stats import coefficient_of_variation


class StabilityAnalysis:
    """CV-over-time and per-round consistency of a campaign result."""

    def __init__(self, result: CampaignResult, min_occurrences: int = 3) -> None:
        if len(result.rounds) < 2:
            raise AnalysisError("stability analysis needs at least 2 rounds")
        if min_occurrences < 2:
            raise AnalysisError("min_occurrences must be >= 2")
        self._result = result
        self._min_occ = min_occurrences

    # -------------------------------------------------------------- CV side

    def direct_pair_cvs(self) -> list[float]:
        """CV of each recurring direct pair's per-round medians."""
        series: dict[tuple[str, str], list[float]] = {}
        for rnd in self._result.rounds:
            for key, value in rnd.direct_medians.items():
                series.setdefault(key, []).append(value)
        return [
            coefficient_of_variation(values)
            for values in series.values()
            if len(values) >= self._min_occ
        ]

    def relay_pair_cvs(self) -> list[float]:
        """CV of each recurring (endpoint, relay) leg's medians.

        Raises:
            AnalysisError: if the campaign did not record relay medians.
        """
        series: dict[tuple[str, int], list[float]] = {}
        for rnd in self._result.rounds:
            if rnd.relay_medians is None:
                raise AnalysisError(
                    "campaign was configured with record_relay_medians=False"
                )
            for key, value in rnd.relay_medians.items():
                series.setdefault(key, []).append(value)
        return [
            coefficient_of_variation(values)
            for values in series.values()
            if len(values) >= self._min_occ
        ]

    def all_cvs(self, include_relay_legs: bool = True) -> list[float]:
        """CVs of all recurring pairs (direct plus, optionally, legs)."""
        cvs = self.direct_pair_cvs()
        if include_relay_legs:
            cvs.extend(self.relay_pair_cvs())
        return cvs

    def fraction_below(self, cv_threshold: float = 0.10) -> float:
        """Fraction of recurring pairs with CV under the threshold
        (paper: <10% CV for 90% of pairs).

        Raises:
            AnalysisError: if no pair recurred often enough.
        """
        cvs = self.all_cvs(include_relay_legs=self._result.rounds[0].relay_medians is not None)
        if not cvs:
            raise AnalysisError(
                f"no pair was measured in >= {self._min_occ} rounds; "
                "run more rounds or lower min_occurrences"
            )
        return sum(1 for cv in cvs if cv < cv_threshold) / len(cvs)

    # ------------------------------------------------------- per-round side

    def per_round_improved_fractions(
        self, relay_type: RelayType
    ) -> list[tuple[int, float]]:
        """(round, improved fraction of the round's cases) series.

        Served from each round table's cached improving counts — one
        comparison per round instead of an object walk.
        """
        code = RELAY_TYPE_ORDER.index(relay_type)
        out = []
        for rnd in self._result.rounds:
            if rnd.table.num_cases == 0:
                continue
            out.append(
                (rnd.round_index, rnd.table.improved_count(code) / rnd.table.num_cases)
            )
        return out

    def summary(self) -> dict[str, float]:
        """CV headline plus per-type min/max round fractions."""
        info: dict[str, float] = {}
        cvs = self.all_cvs(
            include_relay_legs=self._result.rounds[0].relay_medians is not None
        )
        if cvs:
            info["num_recurring_pairs"] = float(len(cvs))
            info["frac_cv_below_10pct"] = round(
                sum(1 for cv in cvs if cv < 0.10) / len(cvs), 4
            )
            info["max_cv"] = round(max(cvs), 4)
        for relay_type in RELAY_TYPE_ORDER:
            series = [f for _, f in self.per_round_improved_fractions(relay_type)]
            if series:
                info[f"round_min_frac_{relay_type.value}"] = round(min(series), 4)
                info[f"round_max_frac_{relay_type.value}"] = round(max(series), 4)
        return info
