"""Degradation analysis: serving quality as a function of staleness.

The serving layer's retention window (``max_rounds``) trades memory and
freshness against answer coverage: a long window answers more queries
(more lanes retained) but keeps pointing at relays that died rounds ago,
a short window forgets the dead quickly but also forgets useful history.
:func:`degradation_curve` makes that trade-off measurable — it replays
the same faulted campaign through services with different retention
windows and reports availability and stale-answer rate per setting, with
and without the relay-health filter.  The chaos bench records the curve
into ``BENCH_chaos.json``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Sequence

from repro.core.results import CampaignResult
from repro.timeline.chaos import ChaosConfig, chaos_replay
from repro.timeline.schedule import CompiledTimeline

#: The retention windows the standard curve sweeps (None = unbounded).
DEFAULT_WINDOWS: tuple[int | None, ...] = (1, 2, 3, None)


def degradation_curve(
    result: CampaignResult,
    timeline: CompiledTimeline | None,
    windows: Sequence[int | None] = DEFAULT_WINDOWS,
    config: ChaosConfig | None = None,
) -> list[dict[str, Any]]:
    """Chaos-replay the campaign once per retention-window setting.

    Each entry reports the window, the summary floors (minimum
    availability, maximum and overall stale-answer rate) and the full
    per-round availability series, so staleness can be read directly as
    a function of ``max_rounds``.  The replayed traffic is identical
    across settings (same seeds), so the curve isolates the window.
    """
    base = config or ChaosConfig()
    curve: list[dict[str, Any]] = []
    for window in windows:
        report = chaos_replay(result, timeline, replace(base, max_rounds=window))
        summary = report["summary"]
        curve.append(
            {
                "max_rounds": window,
                "liveness_rounds": base.liveness_rounds,
                "min_availability": summary["min_availability"],
                "mean_availability": summary["mean_availability"],
                "max_stale_answer_rate": summary["max_stale_answer_rate"],
                "overall_stale_answer_rate": summary["overall_stale_answer_rate"],
                "availability_by_round": [
                    r["availability"] for r in report["rounds"]
                ],
                "degradation": summary["degradation"],
            }
        )
    return curve
