"""Latency-improvement analysis (Fig. 2 and the in-text medians).

For every pair ("case") and relay type, the campaign recorded the
best-performing (minimum-latency) relay; this module turns those records
into the paper's headline statistics: the per-type fraction of improved
cases, the CDF of improvements for improved cases, median improvements,
the fraction of large (>100 ms) gains, and the median count of improving
relays per pair (the relay-redundancy observation).

All statistics are NumPy reductions over the campaign's columnar
:class:`~repro.core.table.ObservationTable` — the per-case maxima, masks
and medians come straight from the CSR improving block and the per-type
columns, with the same values (to the bit) the object-walking
implementation produced.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import CampaignResult
from repro.core.table import ObservationTable
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.errors import AnalysisError
from repro.util.stats import cdf_points


def _median_of_column(values: np.ndarray) -> float:
    """Median of a float64 column.

    ``np.median`` averages the middle two for even length exactly like
    :func:`repro.util.stats.median` ((a + b) / 2 in float64), so the
    columnar analyses stay bit-identical to the object path.
    """
    return float(np.median(values))


class ImprovementAnalysis:
    """Fig. 2-style improvement statistics over a campaign result."""

    def __init__(self, result: CampaignResult | ObservationTable) -> None:
        table = result if isinstance(result, ObservationTable) else result.table
        if table.num_cases == 0:
            raise AnalysisError("campaign result has no observations")
        self._table = table
        # per type: improvement of each improved case's best relay, in case
        # order (CSR segment maxima — identical floats to the object walk's
        # ``max(gain for _, gain in entries)``)
        self._best_improvements: dict[RelayType, np.ndarray] = {}
        for code, relay_type in enumerate(RELAY_TYPE_ORDER):
            _, gains = table.best_gain_per_improved_case(code)
            self._best_improvements[relay_type] = gains

    @classmethod
    def from_table(cls, table: ObservationTable) -> ImprovementAnalysis:
        """Build directly from a columnar table (e.g. a sweep payload)."""
        return cls(table)

    @property
    def total_cases(self) -> int:
        """Total pair observations in the campaign."""
        return self._table.num_cases

    def improvements(self, relay_type: RelayType) -> list[float]:
        """Best-relay improvement for every *improved* case of the type."""
        return self._best_improvements[relay_type].tolist()

    def improved_fraction(self, relay_type: RelayType) -> float:
        """Fraction of total cases the type improved (paper: COR 76%,
        RAR_other 58%, PLR 43%, RAR_eye 35%)."""
        return self._best_improvements[relay_type].size / self.total_cases

    def median_improvement(self, relay_type: RelayType) -> float | None:
        """Median improvement among improved cases (paper: 12-14 ms)."""
        values = self._best_improvements[relay_type]
        if values.size == 0:
            return None
        return _median_of_column(values)

    def fraction_above(
        self, relay_type: RelayType, threshold_ms: float, of_total: bool = False
    ) -> float:
        """Fraction of improved (or total) cases gaining > ``threshold_ms``
        (paper: >100 ms in 6% of improved COR/RAR_other cases)."""
        values = self._best_improvements[relay_type]
        count = int(np.count_nonzero(values > threshold_ms))
        denominator = self.total_cases if of_total else max(1, values.size)
        return count / denominator

    def fig2_cdf(
        self, relay_type: RelayType, lo_ms: float = 1.0, hi_ms: float = 200.0
    ) -> list[tuple[float, float]]:
        """The Fig. 2 CDF: improvements clipped to [lo, hi] for display."""
        values = self._best_improvements[relay_type]
        kept = values[(values >= lo_ms) & (values <= hi_ms)]
        if kept.size == 0:
            return []
        return cdf_points(kept.tolist())

    def median_num_improving(self, relay_type: RelayType) -> float | None:
        """Median number of improving relays per improved pair
        (paper: 8 COR, 3 PLR, 2 RAR_other, 2 RAR_eye)."""
        code = RELAY_TYPE_ORDER.index(relay_type)
        counts = self._table.improving_counts()[code]
        counts = counts[counts > 0]
        if counts.size == 0:
            return None
        return _median_of_column(counts.astype(float))

    def best_type_gap_ms(self, a: RelayType, b: RelayType) -> float | None:
        """Median stitched-RTT gap between two types on cases both improve
        (paper: COR vs RAR_other within 5-10 ms)."""
        table = self._table
        code_a = RELAY_TYPE_ORDER.index(a)
        code_b = RELAY_TYPE_ORDER.index(b)
        rtt_a = table.best_stitched[code_a]
        rtt_b = table.best_stitched[code_b]
        mask = (
            table.improved_mask(code_a)
            & table.improved_mask(code_b)
            & ~np.isnan(rtt_a)
            & ~np.isnan(rtt_b)
        )
        if not mask.any():
            return None
        return _median_of_column(rtt_b[mask] - rtt_a[mask])

    def summary(self) -> dict[str, float | None]:
        """All headline improvement numbers keyed by metric name."""
        info: dict[str, float | None] = {}
        for relay_type in RELAY_TYPE_ORDER:
            name = relay_type.value
            info[f"improved_frac_{name}"] = round(self.improved_fraction(relay_type), 4)
            med = self.median_improvement(relay_type)
            info[f"median_improvement_ms_{name}"] = round(med, 2) if med is not None else None
            info[f"frac_gt100ms_of_improved_{name}"] = round(
                self.fraction_above(relay_type, 100.0), 4
            )
            info[f"median_num_improving_{name}"] = self.median_num_improving(relay_type)
        return info
