"""Latency-improvement analysis (Fig. 2 and the in-text medians).

For every pair ("case") and relay type, the campaign recorded the
best-performing (minimum-latency) relay; this module turns those records
into the paper's headline statistics: the per-type fraction of improved
cases, the CDF of improvements for improved cases, median improvements,
the fraction of large (>100 ms) gains, and the median count of improving
relays per pair (the relay-redundancy observation).
"""

from __future__ import annotations

from repro.core.results import CampaignResult
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.errors import AnalysisError
from repro.util.stats import cdf_points, median


class ImprovementAnalysis:
    """Fig. 2-style improvement statistics over a campaign result."""

    def __init__(self, result: CampaignResult) -> None:
        if result.total_cases == 0:
            raise AnalysisError("campaign result has no observations")
        self._result = result
        self._best_improvements: dict[RelayType, list[float]] = {}
        for relay_type in RELAY_TYPE_ORDER:
            values = []
            for obs in result.observations():
                entries = obs.improving_by_type.get(relay_type, ())
                if entries:
                    values.append(max(gain for _, gain in entries))
            self._best_improvements[relay_type] = values

    @property
    def total_cases(self) -> int:
        """Total pair observations in the campaign."""
        return self._result.total_cases

    def improvements(self, relay_type: RelayType) -> list[float]:
        """Best-relay improvement for every *improved* case of the type."""
        return list(self._best_improvements[relay_type])

    def improved_fraction(self, relay_type: RelayType) -> float:
        """Fraction of total cases the type improved (paper: COR 76%,
        RAR_other 58%, PLR 43%, RAR_eye 35%)."""
        return len(self._best_improvements[relay_type]) / self.total_cases

    def median_improvement(self, relay_type: RelayType) -> float | None:
        """Median improvement among improved cases (paper: 12-14 ms)."""
        values = self._best_improvements[relay_type]
        if not values:
            return None
        return median(values)

    def fraction_above(
        self, relay_type: RelayType, threshold_ms: float, of_total: bool = False
    ) -> float:
        """Fraction of improved (or total) cases gaining > ``threshold_ms``
        (paper: >100 ms in 6% of improved COR/RAR_other cases)."""
        values = self._best_improvements[relay_type]
        count = sum(1 for v in values if v > threshold_ms)
        denominator = self.total_cases if of_total else max(1, len(values))
        return count / denominator

    def fig2_cdf(
        self, relay_type: RelayType, lo_ms: float = 1.0, hi_ms: float = 200.0
    ) -> list[tuple[float, float]]:
        """The Fig. 2 CDF: improvements clipped to [lo, hi] for display."""
        values = [v for v in self._best_improvements[relay_type] if lo_ms <= v <= hi_ms]
        if not values:
            return []
        return cdf_points(values)

    def median_num_improving(self, relay_type: RelayType) -> float | None:
        """Median number of improving relays per improved pair
        (paper: 8 COR, 3 PLR, 2 RAR_other, 2 RAR_eye)."""
        counts = [
            obs.num_improving(relay_type)
            for obs in self._result.observations()
            if obs.improved(relay_type)
        ]
        if not counts:
            return None
        return median([float(c) for c in counts])

    def best_type_gap_ms(self, a: RelayType, b: RelayType) -> float | None:
        """Median stitched-RTT gap between two types on cases both improve
        (paper: COR vs RAR_other within 5-10 ms)."""
        gaps = []
        for obs in self._result.observations():
            if obs.improved(a) and obs.improved(b):
                rtt_a = obs.best_stitched(a)
                rtt_b = obs.best_stitched(b)
                if rtt_a is not None and rtt_b is not None:
                    gaps.append(rtt_b - rtt_a)
        if not gaps:
            return None
        return median(gaps)

    def summary(self) -> dict[str, float | None]:
        """All headline improvement numbers keyed by metric name."""
        info: dict[str, float | None] = {}
        for relay_type in RELAY_TYPE_ORDER:
            name = relay_type.value
            info[f"improved_frac_{name}"] = round(self.improved_fraction(relay_type), 4)
            med = self.median_improvement(relay_type)
            info[f"median_improvement_ms_{name}"] = round(med, 2) if med is not None else None
            info[f"frac_gt100ms_of_improved_{name}"] = round(
                self.fraction_above(relay_type, 100.0), 4
            )
            info[f"median_num_improving_{name}"] = self.median_num_improving(relay_type)
        return info
