"""One-shot campaign report: every analysis in a single text document.

``full_report(result, world)`` stitches the individual analyses into the
kind of summary the paper's Section 3 is — improvement fractions, top-relay
concentration, Table 1, country effects, VoIP, stability — ready to print
or write to disk.  Used by the CLI and handy in notebooks.
"""

from __future__ import annotations

from repro.analysis.countries import CountryChangeAnalysis
from repro.analysis.facilities import FacilityTable
from repro.analysis.improvements import ImprovementAnalysis
from repro.analysis.ranking import TopRelayAnalysis
from repro.analysis.stability import StabilityAnalysis
from repro.analysis.voip import VoipAnalysis
from repro.core.results import CampaignResult
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.errors import AnalysisError
from repro.world import World


def _section(title: str) -> list[str]:
    return ["", title, "-" * len(title)]


def full_report(result: CampaignResult, world: World | None = None) -> str:
    """Render the complete Section-3-style report for a campaign result.

    ``world`` enables the facility table (Table 1); without it that section
    is skipped (a stored result file does not carry PeeringDB state).

    Raises:
        AnalysisError: if the result has no observations.
    """
    if result.total_cases == 0:
        raise AnalysisError("campaign result has no observations")
    table = result.table
    lines: list[str] = []
    lines.append("Shortcuts through Colocation Facilities — campaign report")
    lines.append("=" * 58)
    lines.append(
        f"rounds: {len(result.rounds)}   total cases: {table.num_cases}   "
        f"pings: {result.total_pings}   relays: {len(result.registry)}   "
        f"improving entries: {int(table.imp_indptr[-1])}"
    )
    lines.append(
        "colo filter funnel: " + " -> ".join(str(v) for v in result.colo_filter_funnel)
    )

    lines += _section("Latency improvements per relay type (Fig. 2)")
    improvements = ImprovementAnalysis(result)
    lines.append(f"{'type':>10} {'improved':>9} {'median':>8} {'>100ms':>7} {'n_imp':>6}")
    for relay_type in RELAY_TYPE_ORDER:
        frac = improvements.improved_fraction(relay_type)
        med = improvements.median_improvement(relay_type)
        gt100 = improvements.fraction_above(relay_type, 100.0)
        n_imp = improvements.median_num_improving(relay_type)
        med_text = "n/a" if med is None else f"{med:.1f}"
        n_imp_text = "n/a" if n_imp is None else f"{n_imp:.1f}"
        lines.append(
            f"{relay_type.value:>10} {100 * frac:>8.1f}% "
            f"{med_text:>8} {100 * gt100:>6.1f}% {n_imp_text:>6}"
        )

    lines += _section("How many relays are enough? (Fig. 3)")
    ranking = TopRelayAnalysis(result)
    for n in (1, 10, 50):
        row = " ".join(
            f"{t.value}={100 * ranking.coverage_of_top(t, n):.1f}%"
            for t in RELAY_TYPE_ORDER
        )
        lines.append(f"top-{n:<3} {row}")
    lines.append(
        f"top-10 COR facilities: {sorted(ranking.facilities_of_top(10))}"
    )

    if world is not None:
        lines += _section("Facilities of the top Colo relays (Table 1)")
        lines.append(FacilityTable(result, world).render(top_relays=20))

    lines += _section("Changing countries and paths")
    countries = CountryChangeAnalysis(result)
    for relay_type in RELAY_TYPE_ORDER:
        rates = countries.group_rates(relay_type)
        diff = "n/a" if rates.different_rate is None else f"{100 * rates.different_rate:.1f}%"
        same = "n/a" if rates.same_rate is None else f"{100 * rates.same_rate:.1f}%"
        lines.append(f"{relay_type.value:>10}: third-country {diff} vs same-country {same}")
    lines.append(
        f"intercontinental pairs: {100 * countries.intercontinental_fraction():.1f}%"
    )

    lines += _section("VoIP quality (320 ms)")
    voip = VoipAnalysis(result)
    lines.append(
        f"direct > 320 ms: {100 * voip.direct_poor_fraction():.1f}%   "
        f"with best COR: {100 * voip.relayed_poor_fraction(RelayType.COR):.1f}%"
    )

    if len(result.rounds) >= 2:
        lines += _section("Stability over time")
        stability = StabilityAnalysis(result, min_occurrences=2)
        for key, value in stability.summary().items():
            lines.append(f"{key:>28}: {value}")

    return "\n".join(lines)
