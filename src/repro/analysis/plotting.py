"""Terminal plots for the paper's figures.

The published artifact includes visualisation scripts; since this
reproduction is terminal-first, the plots are rendered as Unicode text:
CDF step plots (Fig. 2) and multi-series line charts (Figs. 3-4).  The
renderers are deterministic pure functions of their inputs, which also
makes them easy to test.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import AnalysisError

_GLYPHS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, size: int) -> int:
    if hi <= lo:
        return 0
    pos = int(round((value - lo) / (hi - lo) * (size - 1)))
    return max(0, min(size - 1, pos))


def render_cdf(
    series: dict[str, list[tuple[float, float]]],
    width: int = 72,
    height: int = 18,
    x_label: str = "x",
) -> str:
    """Render one or more CDFs as a text chart.

    ``series`` maps a legend label to ``(x, F(x))`` points (as produced by
    :func:`repro.util.stats.cdf_points`).  The y-axis is always [0, 1].

    Raises:
        AnalysisError: if no series or a series is empty.
    """
    if not series:
        raise AnalysisError("render_cdf() needs at least one series")
    for label, points in series.items():
        if not points:
            raise AnalysisError(f"series {label!r} is empty")
    x_lo = min(points[0][0] for points in series.values())
    x_hi = max(points[-1][0] for points in series.values())
    grid = [[" "] * width for _ in range(height)]
    for index, (label, points) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, f in points:
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(f, 0.0, 1.0, height)
            grid[row][col] = glyph
    lines = []
    for i, row in enumerate(grid):
        y_value = 1.0 - i / (height - 1)
        prefix = f"{y_value:4.2f} |" if i % 4 == 0 or i == height - 1 else "     |"
        lines.append(prefix + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {x_lo:<10.1f}{x_label:^{max(0, width - 22)}}{x_hi:>10.1f}")
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {label}" for i, label in enumerate(series)
    )
    lines.append("      " + legend)
    return "\n".join(lines)


def render_lines(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 72,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render multi-series (x, y) line data as a text chart.

    Raises:
        AnalysisError: if no series or a series is empty.
    """
    if not series:
        raise AnalysisError("render_lines() needs at least one series")
    for label, points in series.items():
        if not points:
            raise AnalysisError(f"series {label!r} is empty")
    xs = [x for points in series.values() for x, _ in points]
    ys = [y for points in series.values() for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (label, points) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in points:
            col = _scale(x, x_lo, x_hi, width)
            row = height - 1 - _scale(y, y_lo, y_hi, height)
            grid[row][col] = glyph
    lines = [f"{y_label} (range {y_lo:.1f} .. {y_hi:.1f})"]
    for i, row in enumerate(grid):
        y_value = y_hi - (y_hi - y_lo) * i / (height - 1)
        prefix = f"{y_value:6.1f} |" if i % 4 == 0 or i == height - 1 else "       |"
        lines.append(prefix + "".join(row))
    lines.append("       +" + "-" * width)
    lines.append(f"        {x_lo:<10.1f}{x_label:^{max(0, width - 22)}}{x_hi:>10.1f}")
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {label}" for i, label in enumerate(series)
    )
    lines.append("        " + legend)
    return "\n".join(lines)


def render_funnel(stage_counts: Sequence[tuple[str, int]], width: int = 50) -> str:
    """Render a filter funnel as horizontal bars.

    Raises:
        AnalysisError: on empty input or a zero first stage.
    """
    if not stage_counts:
        raise AnalysisError("render_funnel() needs at least one stage")
    first = stage_counts[0][1]
    if first <= 0:
        raise AnalysisError("funnel must start with a positive count")
    label_width = max(len(name) for name, _ in stage_counts)
    lines = []
    for name, count in stage_counts:
        bar = "#" * max(1, int(round(width * count / first))) if count else ""
        lines.append(f"{name:<{label_width}} {count:>7} |{bar}")
    return "\n".join(lines)
