"""VoIP-quality analysis (Sec 3, in-text).

ITU G.114 treats one-way delays beyond ~160 ms (RTT 320 ms) as poor for
interactive voice.  The paper reports 19% of direct paths above 320 ms,
dropping to 11% when each pair may route through its best Colo relay.
"""

from __future__ import annotations

from repro.core.results import CampaignResult
from repro.core.types import RelayType
from repro.errors import AnalysisError

#: RTT above which a path is considered unusable for VoIP (ITU G.114).
VOIP_RTT_THRESHOLD_MS = 320.0


class VoipAnalysis:
    """Fraction of paths exceeding the VoIP threshold, before/after relays."""

    def __init__(
        self, result: CampaignResult, threshold_ms: float = VOIP_RTT_THRESHOLD_MS
    ) -> None:
        if result.total_cases == 0:
            raise AnalysisError("campaign result has no observations")
        if threshold_ms <= 0:
            raise AnalysisError(f"threshold must be positive, got {threshold_ms}")
        self._result = result
        self._threshold = threshold_ms

    def direct_poor_fraction(self) -> float:
        """Fraction of direct paths above the threshold (paper: 19%)."""
        total = self._result.total_cases
        poor = sum(
            1
            for obs in self._result.observations()
            if obs.direct_rtt_ms > self._threshold
        )
        return poor / total

    def relayed_poor_fraction(self, relay_type: RelayType = RelayType.COR) -> float:
        """Fraction still above the threshold when each pair may use its
        best relay of ``relay_type`` (paper: 11% with COR)."""
        total = self._result.total_cases
        poor = 0
        for obs in self._result.observations():
            effective = obs.direct_rtt_ms
            stitched = obs.best_stitched(relay_type)
            if stitched is not None and stitched < effective:
                effective = stitched
            if effective > self._threshold:
                poor += 1
        return poor / total

    def summary(self) -> dict[str, float]:
        """Direct vs COR-relayed poor-path fractions."""
        return {
            "threshold_ms": self._threshold,
            "direct_poor_frac": round(self.direct_poor_fraction(), 4),
            "cor_relayed_poor_frac": round(self.relayed_poor_fraction(), 4),
        }
