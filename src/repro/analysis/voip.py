"""VoIP-quality analysis (Sec 3, in-text).

ITU G.114 treats one-way delays beyond ~160 ms (RTT 320 ms) as poor for
interactive voice.  The paper reports 19% of direct paths above 320 ms,
dropping to 11% when each pair may route through its best Colo relay.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import CampaignResult
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.errors import AnalysisError

#: RTT above which a path is considered unusable for VoIP (ITU G.114).
VOIP_RTT_THRESHOLD_MS = 320.0


class VoipAnalysis:
    """Fraction of paths exceeding the VoIP threshold, before/after relays."""

    def __init__(
        self, result: CampaignResult, threshold_ms: float = VOIP_RTT_THRESHOLD_MS
    ) -> None:
        if result.total_cases == 0:
            raise AnalysisError("campaign result has no observations")
        if threshold_ms <= 0:
            raise AnalysisError(f"threshold must be positive, got {threshold_ms}")
        self._table = result.table
        self._threshold = threshold_ms

    def direct_poor_fraction(self) -> float:
        """Fraction of direct paths above the threshold (paper: 19%)."""
        table = self._table
        poor = np.count_nonzero(table.direct_rtt_ms > self._threshold)
        return int(poor) / table.num_cases

    def relayed_poor_fraction(self, relay_type: RelayType = RelayType.COR) -> float:
        """Fraction still above the threshold when each pair may use its
        best relay of ``relay_type`` (paper: 11% with COR)."""
        table = self._table
        code = RELAY_TYPE_ORDER.index(relay_type)
        stitched = table.best_stitched[code]
        direct = table.direct_rtt_ms
        # NaN (no usable relay) fails the < comparison, keeping the direct RTT
        effective = np.where(stitched < direct, stitched, direct)
        poor = np.count_nonzero(effective > self._threshold)
        return int(poor) / table.num_cases

    def summary(self) -> dict[str, float]:
        """Direct vs COR-relayed poor-path fractions."""
        return {
            "threshold_ms": self._threshold,
            "direct_poor_frac": round(self.direct_poor_fraction(), 4),
            "cor_relayed_poor_frac": round(self.relayed_poor_fraction(), 4),
        }
