"""Path-inflation survey over a routed world.

Path inflation (Spring et al., SIGCOMM 2003) is the mechanism behind every
TIV the paper exploits: the direct BGP path's geographic course exceeds
the geodesic.  This survey samples endpoint pairs, walks their policy
paths, and reports the inflation distribution — the knob EXPERIMENTS.md
points at when explaining why our improvement magnitudes differ from the
paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.routing.inflation import geodesic_inflation
from repro.util.stats import median, quantiles
from repro.world import World


@dataclass(frozen=True, slots=True)
class InflationSurvey:
    """Distribution of geodesic inflation over sampled AS pairs.

    Attributes:
        pairs: Sampled routable pairs.
        median_inflation: Median path-length / geodesic ratio.
        p90_inflation: 90th percentile of the ratio.
        frac_above_1_5: Fraction of pairs inflated beyond 1.5x.
        median_as_path_len: Median AS-path hop count.
    """

    pairs: int
    median_inflation: float
    p90_inflation: float
    frac_above_1_5: float
    median_as_path_len: float


def survey_inflation(
    world: World, rng: np.random.Generator, num_pairs: int = 300
) -> InflationSurvey:
    """Sample eyeball AS pairs and measure their direct-path inflation.

    Raises:
        AnalysisError: if no routable pair is found.
    """
    if num_pairs < 1:
        raise AnalysisError("num_pairs must be positive")
    eyeballs = list(world.topology.eyeball_asns())
    if len(eyeballs) < 2:
        raise AnalysisError("world has fewer than 2 eyeball ASes")
    inflations: list[float] = []
    path_lengths: list[float] = []
    attempts = 0
    while len(inflations) < num_pairs and attempts < num_pairs * 4:
        attempts += 1
        i, j = rng.choice(len(eyeballs), size=2, replace=False)
        src, dst = eyeballs[int(i)], eyeballs[int(j)]
        as_path = world.routing.path(src, dst)
        if as_path is None or len(as_path) < 2:
            continue
        src_city = world.graph.get_as(src).primary_city
        dst_city = world.graph.get_as(dst).primary_city
        if src_city == dst_city:
            continue
        waypoints = world.walker.waypoints(src_city, as_path, dst_city)
        inflations.append(geodesic_inflation(waypoints))
        path_lengths.append(float(len(as_path)))
    if not inflations:
        raise AnalysisError("no routable eyeball pairs sampled")
    p90 = quantiles(inflations, [90.0])[0]
    return InflationSurvey(
        pairs=len(inflations),
        median_inflation=median(inflations),
        p90_inflation=p90,
        frac_above_1_5=sum(1 for x in inflations if x > 1.5) / len(inflations),
        median_as_path_len=median(path_lengths),
    )
