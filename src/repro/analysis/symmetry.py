"""Ping-direction symmetry check (Sec 2.5, first observation).

Before trusting single-direction pings, the paper verified that for ~80%
of endpoint pairs, initiating the ping from one side instead of the other
changes the measured RTT by at most 5%, averaging out to ~0% under the
randomised pair selection.
"""

from __future__ import annotations

from repro.errors import AnalysisError


class SymmetryAnalysis:
    """Statistics over bidirectional RTT measurements."""

    def __init__(self, pairs: list[tuple[float, float]]) -> None:
        if not pairs:
            raise AnalysisError("no bidirectional measurements supplied")
        for fwd, rev in pairs:
            if fwd <= 0 or rev <= 0:
                raise AnalysisError(f"non-positive RTTs ({fwd}, {rev})")
        self._pairs = list(pairs)

    def relative_differences(self) -> list[float]:
        """|fwd - rev| / min(fwd, rev) for every pair."""
        return [abs(f - r) / min(f, r) for f, r in self._pairs]

    def fraction_within(self, tolerance: float = 0.05) -> float:
        """Fraction of pairs whose directions agree within ``tolerance``
        (paper: ~80% within 5%)."""
        diffs = self.relative_differences()
        return sum(1 for d in diffs if d <= tolerance) / len(diffs)

    def mean_signed_difference(self) -> float:
        """Mean of (fwd - rev) / rev; near zero under randomised direction
        choice (the paper's "averaged out to ~0%")."""
        return sum((f - r) / r for f, r in self._pairs) / len(self._pairs)
