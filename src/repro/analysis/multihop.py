"""Multi-relay paths: is one relay enough?

Han et al. (INFOCOM 2005) and Le et al. (CAN 2016) — both cited by the
paper to justify measuring only 1-relay paths — find that a single relay
captures almost all of the latency benefit of multi-relay overlays.  This
study verifies that claim *inside the simulation*: for a sample of endpoint
pairs it compares the direct path, the best 1-relay path and the best
2-relay path over base RTTs (an oracle comparison, no measurement noise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.latency.model import Endpoint, LatencyModel


@dataclass(frozen=True, slots=True)
class MultiHopStudy:
    """Aggregate outcome of the 1-relay vs 2-relay comparison.

    Attributes:
        pairs: Endpoint pairs compared.
        one_relay_improved: Pairs where the best 1-relay path beats direct.
        two_relay_improved: Pairs where the best 2-relay path beats direct.
        extra_gain_ms_median: Median additional improvement of the best
            2-relay path over the best 1-relay path (0 when a second relay
            never helps).
        one_relay_captures_frac: Among pairs any overlay improves, the
            fraction where the 1-relay path achieves >= 90% of the 2-relay
            improvement (the paper's "one relay is adequate" claim).
    """

    pairs: int
    one_relay_improved: int
    two_relay_improved: int
    extra_gain_ms_median: float
    one_relay_captures_frac: float


def two_relay_study(
    model: LatencyModel,
    endpoints: list[Endpoint],
    relays: list[Endpoint],
    rng: np.random.Generator,
    max_pairs: int = 60,
    max_relays: int = 25,
) -> MultiHopStudy:
    """Compare best 1-relay and 2-relay overlay paths on sampled pairs.

    A 2-relay path ``e1 -> r1 -> r2 -> e2`` stitches three measured legs;
    its RTT is ``rtt(e1, r1) + rtt(r1, r2) + rtt(r2, e2)``.

    Raises:
        AnalysisError: with fewer than 2 endpoints or relays.
    """
    if len(endpoints) < 2:
        raise AnalysisError("need at least 2 endpoints")
    if len(relays) < 2:
        raise AnalysisError("need at least 2 relays")
    if len(relays) > max_relays:
        idx = rng.choice(len(relays), size=max_relays, replace=False)
        relays = [relays[i] for i in sorted(idx)]

    pair_indices = [
        (i, j)
        for i in range(len(endpoints))
        for j in range(i + 1, len(endpoints))
    ]
    if len(pair_indices) > max_pairs:
        chosen = rng.choice(len(pair_indices), size=max_pairs, replace=False)
        pair_indices = [pair_indices[i] for i in sorted(chosen)]

    # the leg and inter-relay base RTTs form three small matrices; the
    # O(pairs x relays^2) two-relay search is then a masked min-reduction
    # instead of a nested Python loop (identical floats: IEEE addition and
    # minima do not depend on the reduction shape)
    num_r = len(relays)
    used = sorted({i for i, _ in pair_indices} | {j for _, j in pair_indices})
    leg_ms = np.full((len(endpoints), num_r), np.inf)
    for i in used:
        for k, r in enumerate(relays):
            rtt = model.base_rtt_ms(endpoints[i], r)
            if rtt is not None:
                leg_ms[i, k] = rtt
    mid_ms = np.full((num_r, num_r), np.inf)
    for k1, r1 in enumerate(relays):
        for k2, r2 in enumerate(relays):
            if r1.node_id == r2.node_id:
                continue
            rtt = model.base_rtt_ms(r1, r2)
            if rtt is not None:
                mid_ms[k1, k2] = rtt

    pairs = one_improved = two_improved = 0
    extra_gains: list[float] = []
    captured = candidates = 0
    for i, j in pair_indices:
        direct = model.base_rtt_ms(endpoints[i], endpoints[j])
        if direct is None:
            continue
        a, b = leg_ms[i], leg_ms[j]
        one = float(np.min(a + b))
        # (e1 -> r1) + (r1 -> r2) + (r2 -> e2) over the full (r1, r2) grid,
        # summed left-to-right like the scalar code so floats are identical
        two = float(np.min((a[:, np.newaxis] + mid_ms) + b[np.newaxis, :]))
        if one == np.inf or two == np.inf:
            continue
        best_one, best_two = one, two
        pairs += 1
        if best_one < direct:
            one_improved += 1
        if best_two < direct:
            two_improved += 1
        best_overlay = min(best_one, best_two)
        if best_overlay < direct:
            candidates += 1
            gain_one = max(0.0, direct - best_one)
            gain_best = direct - best_overlay
            if gain_one >= 0.9 * gain_best:
                captured += 1
            extra_gains.append(max(0.0, best_one - best_two))
    if pairs == 0:
        raise AnalysisError("no comparable pairs (routing disconnected?)")
    extra_gains.sort()
    median_extra = extra_gains[len(extra_gains) // 2] if extra_gains else 0.0
    return MultiHopStudy(
        pairs=pairs,
        one_relay_improved=one_improved,
        two_relay_improved=two_improved,
        extra_gain_ms_median=median_extra,
        one_relay_captures_frac=captured / candidates if candidates else 1.0,
    )
