"""Analyses over campaign results: every figure, table and in-text number
of the paper's Sec 3."""

from repro.analysis.improvements import ImprovementAnalysis
from repro.analysis.ranking import TopRelayAnalysis
from repro.analysis.facilities import FacilityRow, FacilityTable
from repro.analysis.countries import CountryChangeAnalysis
from repro.analysis.voip import VoipAnalysis
from repro.analysis.stability import StabilityAnalysis
from repro.analysis.symmetry import SymmetryAnalysis

__all__ = [
    "ImprovementAnalysis",
    "TopRelayAnalysis",
    "FacilityTable",
    "FacilityRow",
    "CountryChangeAnalysis",
    "VoipAnalysis",
    "StabilityAnalysis",
    "SymmetryAnalysis",
]
