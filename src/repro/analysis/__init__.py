"""Analyses over campaign results: every figure, table and in-text number
of the paper's Sec 3, plus the cross-regime paper-shape reductions
(:mod:`repro.analysis.scenarios`) and the Monte-Carlo risk reductions
(:mod:`repro.analysis.montecarlo`)."""

from repro.analysis.countries import CountryChangeAnalysis
from repro.analysis.facilities import FacilityRow, FacilityTable
from repro.analysis.improvements import ImprovementAnalysis
from repro.analysis.montecarlo import (
    bootstrap_ci,
    draw_metrics,
    hold_probability,
    risk_summary,
    summary_converged,
    top_relay_coverage,
)
from repro.analysis.ranking import TopRelayAnalysis
from repro.analysis.scenarios import (
    check_expectations,
    compare_scenarios,
    paper_shapes,
    scenario_metrics,
    scenario_report,
)
from repro.analysis.stability import StabilityAnalysis
from repro.analysis.symmetry import SymmetryAnalysis
from repro.analysis.voip import VoipAnalysis

__all__ = [
    "CountryChangeAnalysis",
    "FacilityRow",
    "FacilityTable",
    "ImprovementAnalysis",
    "StabilityAnalysis",
    "SymmetryAnalysis",
    "TopRelayAnalysis",
    "VoipAnalysis",
    "bootstrap_ci",
    "check_expectations",
    "compare_scenarios",
    "draw_metrics",
    "hold_probability",
    "paper_shapes",
    "risk_summary",
    "scenario_metrics",
    "scenario_report",
    "summary_converged",
    "top_relay_coverage",
]
