"""Top-relay analysis: "how many relays are enough?" (Figs. 3 & 4).

Relays are ranked, per type, by their *frequency of improvement* — in how
many cases they beat the direct path.  Fig. 3 asks what fraction of all
cases the top-N relays cover; Fig. 4 sweeps an improvement threshold and
compares the top-10 subset against the full relay set.  The paper's
punchline lives here: ~10 Colo relays in ~6 facilities match the coverage
that takes RIPE Atlas hundreds of relays.
"""

from __future__ import annotations

from repro.core.results import CampaignResult
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.errors import AnalysisError


class TopRelayAnalysis:
    """Frequency ranking and coverage curves over a campaign result."""

    def __init__(self, result: CampaignResult) -> None:
        if result.total_cases == 0:
            raise AnalysisError("campaign result has no observations")
        self._result = result
        self._freq: dict[RelayType, dict[int, int]] = {t: {} for t in RELAY_TYPE_ORDER}
        for obs in result.observations():
            for relay_type in RELAY_TYPE_ORDER:
                for idx, _ in obs.improving_by_type.get(relay_type, ()):
                    freq = self._freq[relay_type]
                    freq[idx] = freq.get(idx, 0) + 1
        self._ranked: dict[RelayType, list[int]] = {
            t: sorted(freq, key=lambda i: (-freq[i], i))
            for t, freq in self._freq.items()
        }

    # ----------------------------------------------------------------- rank

    def improvement_frequency(self, relay_type: RelayType) -> dict[int, int]:
        """Relay index -> number of cases it improved."""
        return dict(self._freq[relay_type])

    def top_relays(self, relay_type: RelayType, n: int) -> list[int]:
        """The ``n`` most frequently improving relay indices of a type."""
        return self._ranked[relay_type][:n]

    def num_ranked(self, relay_type: RelayType) -> int:
        """How many relays of the type ever improved a case."""
        return len(self._ranked[relay_type])

    def facilities_of_top(self, n: int) -> set[int]:
        """Distinct facilities hosting the top-``n`` COR relays
        (paper: the top-10 CORs sit in ~6 facilities)."""
        registry = self._result.registry
        return {
            registry.get(idx).facility_id
            for idx in self.top_relays(RelayType.COR, n)
            if registry.get(idx).facility_id is not None
        }

    # ---------------------------------------------------------------- Fig 3

    def fig3_curve(self, relay_type: RelayType, max_n: int = 100) -> list[tuple[int, float]]:
        """(N, % of total cases improved using only the top-N relays).

        A case counts as covered by top-N if at least one of its improving
        relays ranks within the top N.
        """
        rank_of = {idx: rank for rank, idx in enumerate(self._ranked[relay_type], start=1)}
        total = self._result.total_cases
        # per case: the best (lowest) rank among its improving relays
        best_ranks = []
        for obs in self._result.observations():
            entries = obs.improving_by_type.get(relay_type, ())
            if entries:
                best_ranks.append(min(rank_of[idx] for idx, _ in entries))
        curve = []
        for n in range(1, max_n + 1):
            covered = sum(1 for rank in best_ranks if rank <= n)
            curve.append((n, 100.0 * covered / total))
        return curve

    def coverage_of_top(self, relay_type: RelayType, n: int) -> float:
        """Fraction of total cases improved using only the top-N relays."""
        if n < 1:
            raise AnalysisError(f"top-N requires n >= 1, got {n}")
        curve = self.fig3_curve(relay_type, max_n=n)
        return curve[-1][1] / 100.0

    # ---------------------------------------------------------------- Fig 4

    def fig4_curve(
        self,
        relay_type: RelayType,
        thresholds_ms: list[float],
        top_n: int | None = None,
    ) -> list[tuple[float, float]]:
        """(threshold, % of total cases improved by more than threshold).

        ``top_n`` restricts the usable relays to the type's top-N by
        improvement frequency; None uses every relay (the "-ALL" series).
        The best improvement within the allowed subset decides each case.
        """
        allowed: set[int] | None = None
        if top_n is not None:
            allowed = set(self.top_relays(relay_type, top_n))
        total = self._result.total_cases
        best_gains = []
        for obs in self._result.observations():
            entries = obs.improving_by_type.get(relay_type, ())
            gains = [
                gain for idx, gain in entries if allowed is None or idx in allowed
            ]
            if gains:
                best_gains.append(max(gains))
        curve = []
        for threshold in thresholds_ms:
            count = sum(1 for gain in best_gains if gain > threshold)
            curve.append((threshold, 100.0 * count / total))
        return curve
