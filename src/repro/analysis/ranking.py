"""Top-relay analysis: "how many relays are enough?" (Figs. 3 & 4).

Relays are ranked, per type, by their *frequency of improvement* — in how
many cases they beat the direct path.  Fig. 3 asks what fraction of all
cases the top-N relays cover; Fig. 4 sweeps an improvement threshold and
compares the top-10 subset against the full relay set.  The paper's
punchline lives here: ~10 Colo relays in ~6 facilities match the coverage
that takes RIPE Atlas hundreds of relays.

Frequencies are one ``bincount`` over the table's CSR improving block per
type; the coverage and threshold curves are segment reductions
(``minimum.reduceat`` / ``maximum.reduceat``) over the same entries.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import CampaignResult
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.errors import AnalysisError


class TopRelayAnalysis:
    """Frequency ranking and coverage curves over a campaign result."""

    def __init__(self, result: CampaignResult) -> None:
        if result.total_cases == 0:
            raise AnalysisError("campaign result has no observations")
        self._result = result
        self._table = result.table
        num_relays = len(result.registry)
        self._freq: dict[RelayType, dict[int, int]] = {}
        self._ranked: dict[RelayType, list[int]] = {}
        for code, relay_type in enumerate(RELAY_TYPE_ORDER):
            _, relays, _ = self._table.type_entries(code)
            counts = np.bincount(relays, minlength=num_relays)
            improving = np.nonzero(counts)[0]
            freq = {int(i): int(counts[i]) for i in improving}
            self._freq[relay_type] = freq
            self._ranked[relay_type] = sorted(
                freq, key=lambda i: (-freq[i], i)
            )

    # ----------------------------------------------------------------- rank

    def improvement_frequency(self, relay_type: RelayType) -> dict[int, int]:
        """Relay index -> number of cases it improved."""
        return dict(self._freq[relay_type])

    def top_relays(self, relay_type: RelayType, n: int) -> list[int]:
        """The ``n`` most frequently improving relay indices of a type."""
        return self._ranked[relay_type][:n]

    def num_ranked(self, relay_type: RelayType) -> int:
        """How many relays of the type ever improved a case."""
        return len(self._ranked[relay_type])

    def facilities_of_top(self, n: int) -> set[int]:
        """Distinct facilities hosting the top-``n`` COR relays
        (paper: the top-10 CORs sit in ~6 facilities)."""
        registry = self._result.registry
        return {
            registry.get(idx).facility_id
            for idx in self.top_relays(RelayType.COR, n)
            if registry.get(idx).facility_id is not None
        }

    # ---------------------------------------------------------------- Fig 3

    def _best_ranks(self, relay_type: RelayType) -> np.ndarray:
        """Per improved case: the best (lowest) rank among its improving
        relays — a segment minimum over the type's CSR entries."""
        code = RELAY_TYPE_ORDER.index(relay_type)
        cases, relays, _ = self._table.type_entries(code)
        if cases.size == 0:
            return np.zeros(0, np.int64)
        rank_of = np.zeros(len(self._result.registry), np.int64)
        for rank, idx in enumerate(self._ranked[relay_type], start=1):
            rank_of[idx] = rank
        starts = np.flatnonzero(np.diff(cases, prepend=-1))
        return np.minimum.reduceat(rank_of[relays], starts)

    def fig3_curve(self, relay_type: RelayType, max_n: int = 100) -> list[tuple[int, float]]:
        """(N, % of total cases improved using only the top-N relays).

        A case counts as covered by top-N if at least one of its improving
        relays ranks within the top N.
        """
        total = self._result.total_cases
        best_ranks = self._best_ranks(relay_type)
        # covered(n) = |{best_rank <= n}|: a clipped bincount cumsum
        per_rank = np.bincount(
            np.minimum(best_ranks, max_n + 1), minlength=max_n + 2
        )
        covered = np.cumsum(per_rank[: max_n + 1])
        return [
            (n, 100.0 * int(covered[n]) / total) for n in range(1, max_n + 1)
        ]

    def coverage_of_top(self, relay_type: RelayType, n: int) -> float:
        """Fraction of total cases improved using only the top-N relays."""
        if n < 1:
            raise AnalysisError(f"top-N requires n >= 1, got {n}")
        curve = self.fig3_curve(relay_type, max_n=n)
        return curve[-1][1] / 100.0

    # ---------------------------------------------------------------- Fig 4

    def fig4_curve(
        self,
        relay_type: RelayType,
        thresholds_ms: list[float],
        top_n: int | None = None,
    ) -> list[tuple[float, float]]:
        """(threshold, % of total cases improved by more than threshold).

        ``top_n`` restricts the usable relays to the type's top-N by
        improvement frequency; None uses every relay (the "-ALL" series).
        The best improvement within the allowed subset decides each case.
        """
        code = RELAY_TYPE_ORDER.index(relay_type)
        cases, relays, gains = self._table.type_entries(code)
        if top_n is not None:
            allowed = np.zeros(len(self._result.registry), bool)
            allowed[self.top_relays(relay_type, top_n)] = True
            keep = allowed[relays]
            cases, gains = cases[keep], gains[keep]
        total = self._result.total_cases
        if cases.size:
            starts = np.flatnonzero(np.diff(cases, prepend=-1))
            best_gains = np.maximum.reduceat(gains, starts)
        else:
            best_gains = gains
        return [
            (
                threshold,
                100.0 * int(np.count_nonzero(best_gains > threshold)) / total,
            )
            for threshold in thresholds_ms
        ]
