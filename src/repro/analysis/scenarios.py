"""Cross-regime paper-shape reductions.

Answers, per scenario (a named world/latency/workload regime from
:mod:`repro.scenarios`), whether the paper's headline shapes hold:
colo relays improving the majority of pairs, leading the other relay
types, reducing medians by tens of milliseconds, and pulling paths back
under the VoIP threshold.  Everything reduces straight over
:class:`~repro.core.table.ObservationTable` columns — the pooled
cross-world table a sweep assembles per scenario — so evaluating a regime
costs a handful of NumPy passes regardless of case count.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.analysis.improvements import ImprovementAnalysis
from repro.analysis.voip import VOIP_RTT_THRESHOLD_MS
from repro.core.table import ObservationTable
from repro.core.types import RELAY_TYPE_ORDER, RelayType

#: Median COR reduction (ms) above which the "tens of milliseconds" claim
#: is considered to hold for a regime.
TENS_OF_MS_THRESHOLD = 10.0

#: Metric keys :func:`scenario_metrics` emits for every relay type.
_RAR_TYPES = (RelayType.RAR_OTHER, RelayType.RAR_EYE)


def _voip_poor_fractions(table: ObservationTable) -> tuple[float, float]:
    """(direct, best-COR-relayed) fractions of paths above the threshold."""
    if table.num_cases == 0:
        return 0.0, 0.0
    direct = table.direct_rtt_ms
    poor_direct = int(np.count_nonzero(direct > VOIP_RTT_THRESHOLD_MS))
    code = RELAY_TYPE_ORDER.index(RelayType.COR)
    stitched = table.best_stitched[code]
    # NaN (no usable relay) fails the comparison, keeping the direct RTT
    effective = np.where(stitched < direct, stitched, direct)
    poor_relayed = int(np.count_nonzero(effective > VOIP_RTT_THRESHOLD_MS))
    return poor_direct / table.num_cases, poor_relayed / table.num_cases


def relay_type_metrics(analysis: ImprovementAnalysis | None) -> dict:
    """Win rate and median reduction per relay type, artifact-formatted.

    The one place the sweep's metric keys and rounding are defined: both
    the per-seed sections and the pooled scenario sections go through
    this helper.  ``None`` (an empty table) yields zero win rates.
    """
    metrics: dict = {}
    for relay_type in RELAY_TYPE_ORDER:
        name = relay_type.value
        metrics[f"win_rate_{name}"] = (
            round(analysis.improved_fraction(relay_type), 4) if analysis else 0.0
        )
        median = analysis.median_improvement(relay_type) if analysis else None
        metrics[f"median_rtt_reduction_ms_{name}"] = (
            round(median, 3) if median is not None else None
        )
    return metrics


def scenario_report(table: ObservationTable) -> tuple[dict, dict[str, bool]]:
    """``(metrics, shapes)`` of one scenario's pooled table, in one pass.

    Metrics are identity-free fractions/gains, so they are meaningful on
    cross-seed pooled tables whether or not relay identities were
    unified first (the sweep unifies; see
    :func:`repro.core.results.unify_relay_identities`).  Shape
    keys (each a plain boolean):

    * ``cases_observed`` — the campaign produced observations at all;
    * ``cor_wins_majority`` — colo relays improve more than half of all
      cases (the paper's headline);
    * ``cor_leads_relay_types`` — no other relay type improves a larger
      fraction of cases than COR;
    * ``cor_reduction_tens_of_ms`` — the median improvement of
      COR-improved cases is at least :data:`TENS_OF_MS_THRESHOLD`;
    * ``voip_no_worse_with_cor`` — routing each pair through its best
      colo relay does not increase the fraction of VoIP-poor paths;
    * ``rar_relays_observed`` — at least one case had a usable
      probe-hosted (RAR) relay (False under a COR/PLR-only relay mix).
    """
    analysis = ImprovementAnalysis.from_table(table) if table.num_cases else None
    poor_direct, poor_relayed = _voip_poor_fractions(table)

    metrics: dict = {"total_cases": table.num_cases}
    metrics.update(relay_type_metrics(analysis))
    metrics["voip_poor_fraction_direct"] = round(poor_direct, 4)
    metrics["voip_poor_fraction_cor"] = round(poor_relayed, 4)

    if analysis is None:
        shapes = {
            "cases_observed": False,
            "cor_wins_majority": False,
            "cor_leads_relay_types": False,
            "cor_reduction_tens_of_ms": False,
            "voip_no_worse_with_cor": True,
            "rar_relays_observed": False,
        }
        return metrics, shapes

    wr = {t: analysis.improved_fraction(t) for t in RELAY_TYPE_ORDER}
    median_cor = analysis.median_improvement(RelayType.COR)
    rar_usable = any(
        bool(np.any(~np.isnan(table.best_stitched[RELAY_TYPE_ORDER.index(t)])))
        for t in _RAR_TYPES
    )
    shapes = {
        "cases_observed": True,
        "cor_wins_majority": wr[RelayType.COR] > 0.5,
        "cor_leads_relay_types": all(
            wr[RelayType.COR] >= wr[t] for t in RELAY_TYPE_ORDER
        ),
        "cor_reduction_tens_of_ms": (
            median_cor is not None and median_cor >= TENS_OF_MS_THRESHOLD
        ),
        "voip_no_worse_with_cor": poor_relayed <= poor_direct,
        "rar_relays_observed": rar_usable,
    }
    return metrics, shapes


def scenario_metrics(table: ObservationTable) -> dict:
    """The metrics half of :func:`scenario_report`."""
    return scenario_report(table)[0]


def paper_shapes(table: ObservationTable) -> dict[str, bool]:
    """The shapes half of :func:`scenario_report`."""
    return scenario_report(table)[1]


def check_expectations(
    shapes: Mapping[str, bool], expect: Mapping[str, bool]
) -> dict:
    """Compare observed shapes against a scenario's expectations.

    Returns ``{"ok": bool, "failed": [...]}`` where each failure names the
    shape, the expected and the observed value.  Expectation keys missing
    from ``shapes`` fail loudly instead of passing silently.
    """
    failed = [
        {"shape": key, "expected": want, "observed": shapes.get(key)}
        for key, want in expect.items()
        if shapes.get(key) is not want
    ]
    return {"ok": not failed, "failed": failed}


def compare_scenarios(sections: Mapping[str, Mapping]) -> dict:
    """Pivot per-scenario metric sections into metric -> scenario rows.

    ``sections`` maps scenario name to the dict :func:`scenario_metrics`
    produced (the sweep artifact's per-scenario ``pooled`` sections).  The
    result makes regime effects readable side by side::

        {"win_rate_COR": {"baseline": 0.87, "lossy": 0.81, ...}, ...}
    """
    keys: list[str] = []
    for metrics in sections.values():
        for key in metrics:
            if key not in keys:
                keys.append(key)
    return {
        key: {name: metrics.get(key) for name, metrics in sections.items()}
        for key in keys
    }
