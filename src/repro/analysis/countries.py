"""Changing countries and paths (Sec 3, penultimate analysis).

BGP path inflation mostly hits pairs whose providers interconnect far from
the geodesic, so a relay in a *third* country can force an alternate,
non-inflated route.  The paper finds that when the min-latency COR relay
sits in a different country than both endpoints, it improves 75% of cases,
dropping to 50% when it shares a country with an endpoint; it also notes
that 74% of pairs are intercontinental.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import CampaignResult
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.errors import AnalysisError


@dataclass(frozen=True, slots=True)
class CountrySplit:
    """Improvement rates split by the best relay's country relation.

    Attributes:
        different_total / different_improved: cases where the best relay's
            country differs from both endpoints'.
        same_total / same_improved: cases where it matches an endpoint's.
    """

    different_total: int
    different_improved: int
    same_total: int
    same_improved: int

    @property
    def different_rate(self) -> float | None:
        """Improved fraction when the relay changes country."""
        if self.different_total == 0:
            return None
        return self.different_improved / self.different_total

    @property
    def same_rate(self) -> float | None:
        """Improved fraction when the relay shares a country."""
        if self.same_total == 0:
            return None
        return self.same_improved / self.same_total


class CountryChangeAnalysis:
    """Relay-country effects and pair geography over a campaign result."""

    def __init__(self, result: CampaignResult) -> None:
        if result.total_cases == 0:
            raise AnalysisError("campaign result has no observations")
        self._result = result

    def split(self, relay_type: RelayType) -> CountrySplit:
        """Improvement rates by country relation of the type's best relay."""
        registry = self._result.registry
        diff_total = diff_improved = same_total = same_improved = 0
        for obs in self._result.observations():
            entry = obs.best_by_type.get(relay_type)
            if entry is None:
                continue
            idx, stitched = entry
            relay_cc = registry.get(idx).cc
            improved = stitched < obs.direct_rtt_ms
            if relay_cc != obs.e1_cc and relay_cc != obs.e2_cc:
                diff_total += 1
                diff_improved += int(improved)
            else:
                same_total += 1
                same_improved += int(improved)
        return CountrySplit(diff_total, diff_improved, same_total, same_improved)

    def group_rates(self, relay_type: RelayType) -> CountrySplit:
        """Per-group improvement rates (the paper's framing).

        For each case, consider the best relay *within* each country-
        relation group: a group counts as improved when any usable relay
        in it beat the direct path.  ``different`` = relays in a third
        country; ``same`` = relays sharing a country with an endpoint.
        Denominators are cases where the group had a usable relay at all.
        """
        diff_total = diff_improved = same_total = same_improved = 0
        for obs in self._result.observations():
            flags = obs.country_groups_by_type.get(relay_type)
            if flags is None:
                continue
            usable_same, improving_same, usable_diff, improving_diff = flags
            if usable_same:
                same_total += 1
                same_improved += int(improving_same)
            if usable_diff:
                diff_total += 1
                diff_improved += int(improving_diff)
        return CountrySplit(diff_total, diff_improved, same_total, same_improved)

    def intercontinental_fraction(self) -> float:
        """Fraction of pairs with endpoints on different continents
        (paper: 74%)."""
        total = self._result.total_cases
        inter = sum(1 for obs in self._result.observations() if obs.is_intercontinental)
        return inter / total

    def summary(self) -> dict[str, float | None]:
        """Per-type country-split rates plus the intercontinental share."""
        info: dict[str, float | None] = {
            "intercontinental_frac": round(self.intercontinental_fraction(), 4)
        }
        for relay_type in RELAY_TYPE_ORDER:
            split = self.split(relay_type)
            name = relay_type.value
            info[f"diff_country_rate_{name}"] = (
                round(split.different_rate, 4) if split.different_rate is not None else None
            )
            info[f"same_country_rate_{name}"] = (
                round(split.same_rate, 4) if split.same_rate is not None else None
            )
        return info
