"""Changing countries and paths (Sec 3, penultimate analysis).

BGP path inflation mostly hits pairs whose providers interconnect far from
the geodesic, so a relay in a *third* country can force an alternate,
non-inflated route.  The paper finds that when the min-latency COR relay
sits in a different country than both endpoints, it improves 75% of cases,
dropping to 50% when it shares a country with an endpoint; it also notes
that 74% of pairs are intercontinental.

Country relations are integer-code comparisons over the campaign table's
interned country columns; the per-group rates reduce the precomputed
``country_flags`` column directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import CampaignResult
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.errors import AnalysisError


@dataclass(frozen=True, slots=True)
class CountrySplit:
    """Improvement rates split by the best relay's country relation.

    Attributes:
        different_total / different_improved: cases where the best relay's
            country differs from both endpoints'.
        same_total / same_improved: cases where it matches an endpoint's.
    """

    different_total: int
    different_improved: int
    same_total: int
    same_improved: int

    @property
    def different_rate(self) -> float | None:
        """Improved fraction when the relay changes country."""
        if self.different_total == 0:
            return None
        return self.different_improved / self.different_total

    @property
    def same_rate(self) -> float | None:
        """Improved fraction when the relay shares a country."""
        if self.same_total == 0:
            return None
        return self.same_improved / self.same_total


class CountryChangeAnalysis:
    """Relay-country effects and pair geography over a campaign result."""

    def __init__(self, result: CampaignResult) -> None:
        if result.total_cases == 0:
            raise AnalysisError("campaign result has no observations")
        self._result = result
        self._table = result.table
        # registry countries re-coded into the table's country pool, so the
        # relation test is one integer gather + compare per relay type
        self._registry_cc = self._table.country_codes_for(
            record.cc for record in result.registry
        )

    def split(self, relay_type: RelayType) -> CountrySplit:
        """Improvement rates by country relation of the type's best relay."""
        table = self._table
        code = RELAY_TYPE_ORDER.index(relay_type)
        best_relay = table.best_relay[code]
        has_best = best_relay >= 0
        relay_cc = self._registry_cc[best_relay[has_best]]
        improved = table.best_stitched[code, has_best] < table.direct_rtt_ms[has_best]
        same = (relay_cc == table.e1_cc[has_best]) | (relay_cc == table.e2_cc[has_best])
        same_total = int(np.count_nonzero(same))
        same_improved = int(np.count_nonzero(same & improved))
        diff_total = int(np.count_nonzero(~same))
        diff_improved = int(np.count_nonzero(~same & improved))
        return CountrySplit(diff_total, diff_improved, same_total, same_improved)

    def group_rates(self, relay_type: RelayType) -> CountrySplit:
        """Per-group improvement rates (the paper's framing).

        For each case, consider the best relay *within* each country-
        relation group: a group counts as improved when any usable relay
        in it beat the direct path.  ``different`` = relays in a third
        country; ``same`` = relays sharing a country with an endpoint.
        Denominators are cases where the group had a usable relay at all.
        """
        code = RELAY_TYPE_ORDER.index(relay_type)
        flags = self._table.country_flags[code]
        usable_same, improving_same, usable_diff, improving_diff = flags
        return CountrySplit(
            different_total=int(np.count_nonzero(usable_diff)),
            different_improved=int(np.count_nonzero(usable_diff & improving_diff)),
            same_total=int(np.count_nonzero(usable_same)),
            same_improved=int(np.count_nonzero(usable_same & improving_same)),
        )

    def intercontinental_fraction(self) -> float:
        """Fraction of pairs with endpoints on different continents
        (paper: 74%)."""
        table = self._table
        continents = table.continent_codes()
        inter = np.count_nonzero(
            continents[table.e1_cc] != continents[table.e2_cc]
        )
        return int(inter) / table.num_cases

    def summary(self) -> dict[str, float | None]:
        """Per-type country-split rates plus the intercontinental share."""
        info: dict[str, float | None] = {
            "intercontinental_frac": round(self.intercontinental_fraction(), 4)
        }
        for relay_type in RELAY_TYPE_ORDER:
            split = self.split(relay_type)
            name = relay_type.value
            info[f"diff_country_rate_{name}"] = (
                round(split.different_rate, 4) if split.different_rate is not None else None
            )
            info[f"same_country_rate_{name}"] = (
                round(split.same_rate, 4) if split.same_rate is not None else None
            )
        return info
