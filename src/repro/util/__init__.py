"""Small shared utilities: statistics helpers and seeded RNG management."""

from repro.util.stats import (
    cdf_points,
    coefficient_of_variation,
    median,
    percentile,
    quantiles,
)
from repro.util.rand import SeedSequenceFactory, derive_rng

__all__ = [
    "median",
    "percentile",
    "quantiles",
    "cdf_points",
    "coefficient_of_variation",
    "SeedSequenceFactory",
    "derive_rng",
]
