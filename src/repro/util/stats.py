"""Order statistics used throughout the measurement analyses.

The paper leans on robust statistics: every RTT batch is summarised by its
*median* (Sec 2.5, footnote 4) and temporal stability is expressed through the
*coefficient of variation* of per-round medians (Sec 3, "Stability over
Time").  These helpers are intentionally dependency-light (plain ``float``
lists in, plain floats out) so that hot paths do not pay numpy conversion
costs for six-element batches.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

from repro.errors import AnalysisError


def median(values: Sequence[float]) -> float:
    """Return the median of ``values``.

    Uses the average-of-middle-two convention for even-length input.

    Raises:
        AnalysisError: if ``values`` is empty.
    """
    if not values:
        raise AnalysisError("median() of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def percentile(values: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile (0..100) using linear interpolation.

    Matches numpy's default (``linear``) interpolation so analyses agree with
    ad-hoc numpy checks in the tests.

    Raises:
        AnalysisError: if ``values`` is empty or ``q`` outside [0, 100].
    """
    if not values:
        raise AnalysisError("percentile() of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise AnalysisError(f"percentile q={q} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def quantiles(values: Sequence[float], qs: Iterable[float]) -> list[float]:
    """Return several percentiles of ``values`` in one sorted pass."""
    if not values:
        raise AnalysisError("quantiles() of empty sequence")
    ordered = sorted(values)
    out = []
    n = len(ordered)
    for q in qs:
        if not 0.0 <= q <= 100.0:
            raise AnalysisError(f"quantile q={q} outside [0, 100]")
        if n == 1:
            out.append(float(ordered[0]))
            continue
        rank = (q / 100.0) * (n - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            out.append(float(ordered[lo]))
        else:
            frac = rank - lo
            out.append(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)
    return out


def cdf_points(values: Sequence[float]) -> list[tuple[float, float]]:
    """Return the empirical CDF of ``values`` as ``(x, F(x))`` step points.

    Duplicate x-values are collapsed to a single point carrying the highest
    cumulative fraction, which is what a CDF plot needs.

    Raises:
        AnalysisError: if ``values`` is empty.
    """
    if not values:
        raise AnalysisError("cdf_points() of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    points: list[tuple[float, float]] = []
    for i, x in enumerate(ordered, start=1):
        frac = i / n
        if points and points[-1][0] == x:
            points[-1] = (x, frac)
        else:
            points.append((float(x), frac))
    return points


def cdf_at(values: Sequence[float], x: float) -> float:
    """Return the empirical CDF of ``values`` evaluated at ``x``.

    ``F(x) = |{v <= x}| / n``.  Convenience for threshold-style questions
    ("what fraction of improvements exceed 100 ms" is ``1 - cdf_at(...)``).
    """
    if not values:
        raise AnalysisError("cdf_at() of empty sequence")
    return sum(1 for v in values if v <= x) / len(values)


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Return stdev/mean of ``values`` (population standard deviation).

    This is the paper's temporal-stability metric: the standard deviation of
    a pair's per-round median RTTs divided by their mean.

    Raises:
        AnalysisError: if fewer than two values, or the mean is zero.
    """
    if len(values) < 2:
        raise AnalysisError("coefficient_of_variation() needs >= 2 values")
    mean = sum(values) / len(values)
    if mean == 0.0:
        raise AnalysisError("coefficient_of_variation() undefined for zero mean")
    var = sum((v - mean) ** 2 for v in values) / len(values)
    return math.sqrt(var) / abs(mean)
