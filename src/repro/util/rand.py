"""Deterministic random-number management.

A single integer seed flows from :func:`repro.world.build_world` into every
stochastic decision the package makes.  Subsystems must never construct their
own unseeded generators; they request a named child generator from a
:class:`SeedSequenceFactory` so that adding randomness to one subsystem does
not perturb the streams of the others (the classic "seed reuse" bug).
"""

from __future__ import annotations

import hashlib

import numpy as np


def _name_to_entropy(name: str) -> int:
    """Map a stream name to a stable 64-bit integer via BLAKE2."""
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class SeedSequenceFactory:
    """Hands out independent, named ``numpy`` generators from one root seed.

    Two factories built from the same seed produce identical streams for the
    same names, regardless of the order the streams are requested in.
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be int, got {type(seed).__name__}")
        self._seed = seed

    @property
    def seed(self) -> int:
        """The root seed this factory was built from."""
        return self._seed

    def rng(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the stream called ``name``."""
        entropy = _name_to_entropy(name)
        return np.random.default_rng(np.random.SeedSequence([self._seed, entropy]))

    def child(self, name: str) -> "SeedSequenceFactory":
        """Return a factory whose streams are independent of this one's."""
        return SeedSequenceFactory((self._seed * 1_000_003 + _name_to_entropy(name)) % (2**63))


def derive_rng(seed: int, name: str) -> np.random.Generator:
    """One-shot helper: ``SeedSequenceFactory(seed).rng(name)``."""
    return SeedSequenceFactory(seed).rng(name)
