"""Path-inflation metrics.

Spring et al. ("The causes of path inflation", SIGCOMM 2003) quantify how
far BGP policy paths stray from the geodesic; the paper leans on this
effect to explain why off-path Colo relays discover faster routes.  These
helpers measure the same quantity for simulated paths, and back the
ablation analyses.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import RoutingError
from repro.geo.cities import city as city_of
from repro.geo.distance import great_circle_km


def path_length_km(waypoint_keys: Sequence[str]) -> float:
    """Total great-circle length of a city-waypoint sequence, km."""
    if not waypoint_keys:
        raise RoutingError("empty waypoint sequence")
    total = 0.0
    for a, b in zip(waypoint_keys, waypoint_keys[1:]):
        total += great_circle_km(city_of(a).location, city_of(b).location)
    return total


def geodesic_inflation(waypoint_keys: Sequence[str]) -> float:
    """Ratio of the walked path length to the endpoint geodesic (>= 1).

    Returns 1.0 for degenerate paths whose endpoints coincide (the geodesic
    is zero, so inflation is undefined; 1.0 is the no-inflation convention).
    """
    if len(waypoint_keys) < 2:
        return 1.0
    direct = great_circle_km(
        city_of(waypoint_keys[0]).location, city_of(waypoint_keys[-1]).location
    )
    if direct < 1e-9:
        return 1.0
    return path_length_km(waypoint_keys) / direct
