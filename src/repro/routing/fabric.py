"""Precomputed routing fabric: bulk valley-free tables + geopath memo.

:class:`~repro.routing.bgp.BGPRouting` computes one destination table at a
time with Python heaps and dicts — fine for a handful of queries, but a
measurement campaign faults in hundreds of tables during its first round
(flagged in the ROADMAP engine notes as the dominant remaining round cost).
:class:`RoutingFabric` removes that cost by computing *all* of a campaign's
destination tables in one batched pass over NumPy arrays:

* the AS graph's adjacencies are packed once into CSR-style arrays (edge
  endpoint indices grouped and offset-indexed by provider, by customer and
  by peering node);
* each destination batch runs the same three-phase Gao-Rexford algorithm as
  the scalar code — customer routes up the provider DAG, one peer-edge
  relaxation, provider routes down the customer DAG — but *level-
  synchronously* across every destination at once, as reverse (destination
  -> source) relaxations over ``(batch x nodes)`` arrays.  Segment minima
  via ``np.minimum.reduceat`` reproduce the scalar algorithm's exact
  preference order (route class, then AS-path length, then lowest next-hop
  ASN), so the resulting tables are identical entry-for-entry to
  ``BGPRouting._compute_table``'s — the equivalence suite in
  ``tests/test_fabric.py`` asserts as much on seeded worlds;
* selected routes are stored as flat ``int32`` predecessor (next-hop)
  arrays, one row per destination.  AS paths are reconstructed on demand by
  walking a destination's predecessor list — a few list lookups — instead
  of chasing per-``(src, dst)`` cached dict entries.

The fabric also owns the world's :class:`GeoWalkMemo`: the geographic path
walker (:mod:`repro.routing.geopath`) memoizes each walk's stretched-fiber
prefix keyed by ``(source city, AS-path hops)``, so re-walking the same AS
path from the same city — which legs to relays in multi-city destination
ASes trigger constantly — costs one dict hit instead of a per-hop loop.

Equivalence sketch for the level-synchronous relaxation: the scalar code's
heaps order entries by ``(dist, via_asn, node)`` and settle each node on
first pop.  With unit edge weights, every entry at distance ``d`` is pushed
before the first distance-``d`` pop (pushes at ``d`` happen only during
distance-``d - 1`` pops, which the heap order completes first; phase-3
seeds are all pushed up front).  A node settled at distance ``d`` therefore
selects the minimum ``via_asn`` among *all* neighbours settled at
``d - 1`` — exactly the segment-minimum this module computes per level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import RoutingError
from repro.geo.distance import SPEED_OF_LIGHT_FIBER_KM_PER_MS
from repro.routing.bgp import Route, RouteClass
from repro.topology.graph import ASGraph, Relationship

if TYPE_CHECKING:
    from repro.routing.geopath import GeoPathWalker

#: Route-class codes stored in the fabric's arrays (match RouteClass values).
_UNREACHABLE = -1
_ORIGIN = int(RouteClass.ORIGIN)
_CUSTOMER = int(RouteClass.CUSTOMER)
_PEER = int(RouteClass.PEER)
_PROVIDER = int(RouteClass.PROVIDER)


class GeoWalkMemo:
    """Shared memo of geographic walk prefixes.

    Keys are ``(src_city_key, as_path_tuple)``; values are the walk's state
    after the last inter-AS handover: ``(end_city_key, end_city_index,
    stretched_km)``.  Owned by the fabric so the world can hand one memo to
    every consumer of the path walker.
    """

    __slots__ = ("prefixes",)

    def __init__(self) -> None:
        self.prefixes: dict[tuple[str, tuple[int, ...]], tuple[str, int, float]] = {}

    def __len__(self) -> int:
        return len(self.prefixes)


@dataclass(frozen=True, slots=True)
class _CSR:
    """Edge endpoints grouped by one side: segment starts + sorted columns."""

    targets: np.ndarray  #: (segments,) node index each segment settles
    indptr: np.ndarray  #: (segments,) start offset of each segment
    values: np.ndarray  #: (edges,) neighbour node index, grouped by target

    @property
    def empty(self) -> bool:
        return self.targets.size == 0


def _group_by(targets: np.ndarray, values: np.ndarray) -> _CSR:
    if targets.size == 0:
        return _CSR(targets, targets, values)
    order = np.argsort(targets, kind="stable")
    sorted_targets = targets[order]
    unique, indptr = np.unique(sorted_targets, return_index=True)
    return _CSR(unique, indptr, values[order])


@dataclass(frozen=True, slots=True)
class _Batch:
    """One batch's routing state, row-per-destination."""

    rclass: np.ndarray  #: (D, N) int8 route class, -1 unreachable
    dist: np.ndarray  #: (D, N) int32 AS hops to the destination, -1 unreachable
    next_hop: np.ndarray  #: (D, N) int32 next-hop node index, -1 none


class RoutingFabric:
    """Bulk-precomputed valley-free routing tables over an :class:`ASGraph`.

    Destinations are added in batches via :meth:`ensure`; queries against a
    destination the fabric does not cover are the caller's responsibility
    (:class:`~repro.routing.bgp.BGPRouting` falls back to its scalar
    reference implementation).  The graph must not be mutated after the
    fabric is constructed.
    """

    def __init__(self, graph: ASGraph) -> None:
        self._graph = graph
        asns = graph.asns()
        self._n = len(asns)
        self._asn_of = np.asarray(asns, dtype=np.int64)
        self._asn_list: list[int] = list(asns)
        self._index_of: dict[int, int] = {asn: i for i, asn in enumerate(asns)}

        # preference tie-breaks are by ASN *value*; node indices follow graph
        # insertion order, so rank arrays translate between the two.
        order = np.argsort(self._asn_of, kind="stable")
        self._node_of_rank = order.astype(np.int32)
        self._rank_of = np.empty(self._n, dtype=np.int32)
        self._rank_of[order] = np.arange(self._n, dtype=np.int32)

        cust, prov, pnode, ppeer = [], [], [], []
        for adj in graph.edges():
            a, b = self._index_of[adj.a], self._index_of[adj.b]
            if adj.rel is Relationship.C2P:
                cust.append(a)
                prov.append(b)
            else:
                pnode.extend((a, b))
                ppeer.extend((b, a))
        cust_arr = np.asarray(cust, dtype=np.intp)
        prov_arr = np.asarray(prov, dtype=np.intp)
        #: customer routes settle providers: group c2p edges by provider
        self._up = _group_by(prov_arr, cust_arr)
        #: provider routes settle customers: group c2p edges by customer
        self._down = _group_by(cust_arr, prov_arr)
        #: peer routes settle each peering node: group directed peer edges
        self._peer = _group_by(
            np.asarray(pnode, dtype=np.intp), np.asarray(ppeer, dtype=np.intp)
        )

        self._slot: dict[int, tuple[int, int]] = {}  # dst asn -> (batch, row)
        self._batches: list[_Batch] = []
        #: per-destination plain-list views for the path walk, built lazily
        self._walk_lists: dict[int, tuple[list[int], list[int], int]] = {}
        self._tables: dict[int, dict[int, Route]] = {}
        self.walk_memo = GeoWalkMemo()

    # ------------------------------------------------------------- coverage

    @property
    def graph(self) -> ASGraph:
        """The AS graph the fabric was built over."""
        return self._graph

    def covers(self, dst: int) -> bool:
        """True if tables toward ``dst`` are precomputed."""
        return dst in self._slot

    def num_destinations(self) -> int:
        """Number of destinations with precomputed tables."""
        return len(self._slot)

    def ensure(self, destinations) -> int:
        """Precompute tables for every not-yet-covered destination.

        Returns the number of destinations newly computed.  Unknown ASNs
        raise :class:`~repro.errors.TopologyError` (via the graph).
        """
        missing = sorted({d for d in destinations if d not in self._slot})
        if not missing:
            return 0
        for dst in missing:
            self._graph.get_as(dst)
        dest_idx = np.asarray([self._index_of[d] for d in missing], dtype=np.intp)
        batch = self._compute_batch(dest_idx)
        batch_no = len(self._batches)
        self._batches.append(batch)
        for row, dst in enumerate(missing):
            self._slot[dst] = (batch_no, row)
        return len(missing)

    # ------------------------------------------------------- snapshot state

    def export_tables(self) -> tuple[list[int], np.ndarray, np.ndarray, np.ndarray]:
        """The computed destination tables as flat arrays.

        Returns ``(destinations, rclass, dist, next_hop)`` with one row per
        destination, rows in slot-assignment order (sorted within each
        :meth:`ensure` call).  The arrays are copies laid out for
        serialization; feeding them back through :meth:`restore_tables` on a
        fabric over an identical graph reproduces every query answer.
        """
        dests = list(self._slot)
        num = len(dests)
        rclass = np.empty((num, self._n), dtype=np.int8)
        dist = np.empty((num, self._n), dtype=np.int32)
        next_hop = np.empty((num, self._n), dtype=np.int32)
        for i, dst in enumerate(dests):
            batch_no, row = self._slot[dst]
            batch = self._batches[batch_no]
            rclass[i] = batch.rclass[row]
            dist[i] = batch.dist[row]
            next_hop[i] = batch.next_hop[row]
        return dests, rclass, dist, next_hop

    def restore_tables(
        self,
        destinations,
        rclass: np.ndarray,
        dist: np.ndarray,
        next_hop: np.ndarray,
    ) -> None:
        """Adopt previously exported destination tables without relaxing.

        The arrays may be read-only (e.g. memory-mapped from a snapshot);
        the fabric only ever reads them.  Restoring is only valid on a
        fabric with no computed destinations yet, over the same graph the
        tables were exported from.
        """
        if self._slot:
            raise RoutingError("cannot restore tables into a non-empty fabric")
        dest_list = [int(d) for d in destinations]
        shape = (len(dest_list), self._n)
        for name, arr in (("rclass", rclass), ("dist", dist), ("next_hop", next_hop)):
            if arr.shape != shape:
                raise RoutingError(
                    f"restored {name} shape {arr.shape} != expected {shape}"
                )
        for dst in dest_list:
            self._graph.get_as(dst)
        self._batches.append(_Batch(rclass, dist, next_hop))
        for row, dst in enumerate(dest_list):
            self._slot[dst] = (0, row)

    # -------------------------------------------------------------- queries

    def path(self, src: int, dst: int) -> list[int] | None:
        """The AS path ``[src, ..., dst]``, or None if unreachable.

        Reconstructed by walking ``dst``'s flat predecessor array; ``dst``
        must be covered (see :meth:`covers`).
        """
        if src == dst:
            return [src]
        next_hop, rclass, dst_idx = self._walk_list(dst)
        i = self._index_of.get(src)
        if i is None or rclass[i] < 0:
            return None
        asn_list = self._asn_list
        path = [src]
        limit = self._n
        while i != dst_idx:
            i = next_hop[i]
            path.append(asn_list[i])
            if len(path) > limit:
                raise RoutingError(f"routing loop toward AS{dst} at AS{asn_list[i]}")
        return path

    def table_to(self, dst: int) -> dict[int, Route]:
        """``dst``'s routing table as an ASN -> :class:`Route` dict.

        Identical in content to ``BGPRouting._compute_table(dst)``; built
        from the arrays on first request and cached.
        """
        table = self._tables.get(dst)
        if table is None:
            batch_no, row = self._slot[dst]
            batch = self._batches[batch_no]
            rclass = batch.rclass[row].tolist()
            dist = batch.dist[row].tolist()
            next_hop = batch.next_hop[row].tolist()
            asn_list = self._asn_list
            table = {}
            for i in np.nonzero(batch.rclass[row] >= 0)[0].tolist():
                code = rclass[i]
                table[asn_list[i]] = Route(
                    RouteClass(code),
                    dist[i],
                    None if code == _ORIGIN else asn_list[next_hop[i]],
                )
            self._tables[dst] = table
        return table

    def _walk_list(self, dst: int) -> tuple[list[int], list[int], int]:
        entry = self._walk_lists.get(dst)
        if entry is None:
            batch_no, row = self._slot[dst]
            batch = self._batches[batch_no]
            entry = (
                batch.next_hop[row].tolist(),
                batch.rclass[row].tolist(),
                self._index_of[dst],
            )
            self._walk_lists[dst] = entry
        return entry

    # ------------------------------------------------------ attachment grid

    def _edge_id_lookup(self, edge_ids: dict[tuple[int, int], int]) -> np.ndarray:
        """Dense (nodes × nodes) edge-id matrix (-1 where not adjacent)."""
        mat = np.full((self._n, self._n), -1, dtype=np.int32)
        index_of = self._index_of
        for (a, b), eid in edge_ids.items():
            mat[index_of[a], index_of[b]] = eid
        return mat

    def build_attachment_grid(
        self,
        walker: "GeoPathWalker",
        attachments: list[tuple[int, str]],
        per_hop_ms: float,
    ) -> tuple[np.ndarray, dict[tuple[int, str], int]]:
        """One-way network delays between every pair of attachment points.

        An attachment is an ``(asn, city_key)`` pair — where a measurement
        node meets the network.  Every destination ASN must already be
        covered (:meth:`ensure`).  Returns the ``(A × A)`` delay matrix
        (``grid[s, t]`` = one-way ms from attachment ``s`` to ``t``, NaN
        when no valley-free route exists) plus the attachment -> row index
        map.

        The walks run as one vectorized wavefront over the predecessor
        arrays: every (attachment, destination-AS) walk advances one AS hop
        per iteration through the walker's dense hop tables, so the whole
        grid costs a handful of NumPy gathers per path-length level instead
        of a Python loop per walk.  Delay assembly mirrors the scalar
        ``LatencyModel.path_one_way_ms`` operation order bit-exactly.
        """
        matrix = walker.matrix
        num = len(attachments)
        att_asn = [asn for asn, _ in attachments]
        att_city = matrix.indices(city for _, city in attachments)
        att_node = np.fromiter(
            (self._index_of[asn] for asn in att_asn), np.intp, num
        )
        dests = sorted(set(att_asn))
        n_dest = len(dests)
        dest_col = {asn: j for j, asn in enumerate(dests)}
        n = self._n
        rcl_rows = np.empty((n_dest, n), dtype=np.int8)
        dist_rows = np.empty((n_dest, n), dtype=np.int32)
        nh_rows = np.empty((n_dest, n), dtype=np.int32)
        dnode = np.empty(n_dest, dtype=np.intp)
        for j, asn in enumerate(dests):
            batch_no, row = self._slot[asn]
            batch = self._batches[batch_no]
            rcl_rows[j] = batch.rclass[row]
            dist_rows[j] = batch.dist[row]
            nh_rows[j] = batch.next_hop[row]
            dnode[j] = self._index_of[asn]

        edge_ids, handover, km_tab = walker.hop_tables()
        eid_mat = self._edge_id_lookup(edge_ids)
        stretch_node = np.fromiter(
            (walker.carrier_stretch(asn) for asn in self._asn_list), float, n
        )

        # flat (attachment × destination) wavefront walk
        node = np.repeat(att_node, n_dest)
        pos = np.repeat(att_city, n_dest)
        drow = np.tile(np.arange(n_dest), num)
        dest_node = dnode[drow]
        routed = rcl_rows[drow, node] >= 0
        hops = dist_rows[drow, node]
        km = np.zeros(num * n_dest)
        active = routed & (node != dest_node)
        guard = 0
        while active.any():
            idx = np.nonzero(active)[0]
            cur = node[idx]
            nxt = nh_rows[drow[idx], cur]
            eid = eid_mat[cur, nxt]
            at = pos[idx]
            km[idx] += km_tab[eid, at] * stretch_node[cur]
            pos[idx] = handover[eid, at]
            node[idx] = nxt
            active[idx] = nxt != dest_node[idx]
            guard += 1
            if guard > n:
                raise RoutingError("routing loop in attachment-grid walk")

        # per (source attachment, target attachment) delay assembly
        full_km = matrix.distance_km_matrix(
            np.arange(matrix.size, dtype=np.intp),
            np.arange(matrix.size, dtype=np.intp),
        )
        km_grid = km.reshape(num, n_dest)
        end_grid = pos.reshape(num, n_dest)
        hops_grid = hops.reshape(num, n_dest)
        routed_grid = routed.reshape(num, n_dest)
        cols = np.fromiter((dest_col[asn] for asn in att_asn), np.intp, num)
        end_t = end_grid[:, cols]  # (A, A): end city of src's walk toward t's AS
        seg = full_km[end_t, att_city[np.newaxis, :]]
        stretch_t = np.fromiter(
            (walker.carrier_stretch(asn) for asn in att_asn), float, num
        )
        grid = (
            (km_grid[:, cols] + seg * stretch_t[np.newaxis, :])
            / SPEED_OF_LIGHT_FIBER_KM_PER_MS
            + per_hop_ms * hops_grid[:, cols]
        )
        grid[~routed_grid[:, cols]] = np.nan
        att_ids = {att: i for i, att in enumerate(attachments)}
        return grid, att_ids

    # ----------------------------------------------------------- relaxation

    def _compute_batch(self, dest_idx: np.ndarray) -> _Batch:
        """Run the three valley-free phases for a whole destination batch."""
        n = self._n
        num = dest_idx.size
        rclass = np.full((num, n), _UNREACHABLE, dtype=np.int8)
        dist = np.full((num, n), -1, dtype=np.int32)
        next_hop = np.full((num, n), -1, dtype=np.int32)
        settled = np.zeros((num, n), dtype=bool)
        rows = np.arange(num)
        rclass[rows, dest_idx] = _ORIGIN
        dist[rows, dest_idx] = 0
        settled[rows, dest_idx] = True

        self._phase_customer(dest_idx, rclass, dist, next_hop, settled)
        self._phase_peer(rclass, dist, next_hop, settled)
        self._phase_provider(rclass, dist, next_hop, settled)
        return _Batch(rclass, dist, next_hop)

    def _settle(
        self,
        csr: _CSR,
        candidate_ranks: np.ndarray,
        settled: np.ndarray,
        invalid: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Segment-minimum + not-yet-settled filter shared by all phases.

        ``candidate_ranks`` is ``(D, edges)``: the (encoded) preference key
        each edge offers its segment's target, ``invalid`` marking edges
        with nothing to offer.  Returns ``(batch_rows, node_indices,
        winning_keys)`` of the nodes that settle this step.
        """
        mins = np.minimum.reduceat(candidate_ranks, csr.indptr, axis=1)
        new = (mins < invalid) & ~settled[:, csr.targets]
        batch_rows, seg = np.nonzero(new)
        return batch_rows, csr.targets[seg], mins[batch_rows, seg]

    def _phase_customer(self, dest_idx, rclass, dist, next_hop, settled) -> None:
        """Customer routes climb the provider DAG, one BFS level at a time."""
        csr = self._up
        if csr.empty:
            return
        num, n = settled.shape
        rank_of, node_of_rank = self._rank_of, self._node_of_rank
        edge_ranks = rank_of[csr.values]
        frontier = np.zeros((num, n), dtype=bool)
        frontier[np.arange(num), dest_idx] = True
        level = 0
        while frontier.any():
            level += 1
            cand = np.where(frontier[:, csr.values], edge_ranks, n)
            batch_rows, nodes, won = self._settle(csr, cand, settled, n)
            if batch_rows.size == 0:
                break
            settled[batch_rows, nodes] = True
            rclass[batch_rows, nodes] = _CUSTOMER
            dist[batch_rows, nodes] = level
            next_hop[batch_rows, nodes] = node_of_rank[won]
            frontier = np.zeros((num, n), dtype=bool)
            frontier[batch_rows, nodes] = True

    def _phase_peer(self, rclass, dist, next_hop, settled) -> None:
        """One relaxation over peering edges from customer/origin routes.

        Preference among a node's peer candidates is ``(dist, next-hop
        ASN)``, encoded as ``dist * n + rank`` so one segment minimum picks
        the scalar algorithm's exact choice.
        """
        csr = self._peer
        if csr.empty:
            return
        n = self._n
        big = np.int64(n) + 2  # beyond any real hop count
        exportable = (rclass == _ORIGIN) | (rclass == _CUSTOMER)
        cdist = np.where(exportable, dist.astype(np.int64), big)
        cand = (cdist[:, csr.values] + 1) * n + self._rank_of[csr.values]
        batch_rows, nodes, won = self._settle(csr, cand, settled, (big + 1) * n)
        if batch_rows.size == 0:
            return
        settled[batch_rows, nodes] = True
        rclass[batch_rows, nodes] = _PEER
        dist[batch_rows, nodes] = won // n
        next_hop[batch_rows, nodes] = self._node_of_rank[won % n]

    def _phase_provider(self, rclass, dist, next_hop, settled) -> None:
        """Provider routes descend the customer DAG, level-synchronously.

        Seeds are every already-settled route (any class); a node settles at
        distance ``d`` via the lowest-ASN provider settled at ``d - 1``,
        which is exactly the scalar Dijkstra's pop order for unit weights.
        """
        csr = self._down
        if csr.empty:
            return
        n = self._n
        rank_of, node_of_rank = self._rank_of, self._node_of_rank
        edge_ranks = rank_of[csr.values]
        max_dist = int(dist.max(initial=0))
        d = 1
        while d <= max_dist + 1:
            cand = np.where(dist[:, csr.values] == d - 1, edge_ranks, n)
            batch_rows, nodes, won = self._settle(csr, cand, settled, n)
            if batch_rows.size:
                settled[batch_rows, nodes] = True
                rclass[batch_rows, nodes] = _PROVIDER
                dist[batch_rows, nodes] = d
                next_hop[batch_rows, nodes] = node_of_rank[won]
                max_dist = max(max_dist, d)
            d += 1
