"""Valley-free (Gao-Rexford) BGP route computation.

For a destination AS ``d``, routes propagate under the classic export
rules:

* ``d`` announces itself to all neighbours;
* a route learned from a *customer* is exported to customers, peers and
  providers;
* a route learned from a *peer* or a *provider* is exported to customers
  only.

Every AS selects one best route per destination with the standard
preference order — customer-learned over peer-learned over
provider-learned, then shortest AS path, then lowest next-hop ASN (a
deterministic stand-in for real-world arbitrary tie-breaks).  The resulting
per-destination tables reproduce the *policy* paths whose geographic detours
("path inflation", Spring et al. 2003) the paper's relays route around.

The computation is the standard three-phase algorithm:

1. customer routes via reverse-BFS up the provider DAG,
2. peer routes in one relaxation step over peering edges,
3. provider routes via Dijkstra down the customer DAG, seeded by each AS's
   already-selected route.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import RoutingError
from repro.topology.graph import ASGraph

if TYPE_CHECKING:
    from repro.routing.fabric import RoutingFabric


class RouteClass(enum.IntEnum):
    """Preference class of a selected route (lower is preferred)."""

    ORIGIN = 0  #: the destination itself
    CUSTOMER = 1  #: learned from a customer
    PEER = 2  #: learned from a settlement-free peer
    PROVIDER = 3  #: learned from a provider


@dataclass(frozen=True, slots=True)
class Route:
    """An AS's selected route toward some destination.

    ``next_hop`` is None only for the destination itself; ``dist`` counts
    AS-level hops to the destination.
    """

    route_class: RouteClass
    dist: int
    next_hop: int | None

    def preference_key(self) -> tuple[int, int, int]:
        """Sort key: lower is better (class, length, next-hop ASN)."""
        return (int(self.route_class), self.dist, self.next_hop if self.next_hop is not None else -1)


class BGPRouting:
    """Per-destination valley-free routing over an :class:`ASGraph`.

    Tables are computed lazily and cached; the graph must not be mutated
    after the first query.  When a :class:`~repro.routing.fabric
    .RoutingFabric` is attached, queries toward destinations the fabric
    covers are served from its precomputed arrays; the scalar computation
    below remains the reference implementation (and the fallback for
    uncovered destinations).
    """

    def __init__(self, graph: ASGraph, fabric: "RoutingFabric | None" = None) -> None:
        self._graph = graph
        self._fabric = fabric
        self._tables: dict[int, dict[int, Route]] = {}
        # reconstructed paths are re-requested constantly by the latency
        # model (every endpoint-relay attachment pair, twice per direction);
        # cache them per (src, dst) regardless of whether they came from the
        # fabric's predecessor arrays or the scalar walk.  Callers must not
        # mutate the lists.
        self._paths: dict[tuple[int, int], list[int] | None] = {}

    @property
    def fabric(self) -> "RoutingFabric | None":
        """The attached precomputed fabric, if any."""
        return self._fabric

    @property
    def graph(self) -> ASGraph:
        """The AS graph routes are computed over."""
        return self._graph

    def table_to(self, dst: int) -> dict[int, Route]:
        """Return the routing table toward ``dst`` (ASN -> selected Route).

        ASes with no valley-free route to ``dst`` are absent from the table.
        """
        if dst not in self._tables:
            if self._fabric is not None and self._fabric.covers(dst):
                self._tables[dst] = self._fabric.table_to(dst)
            else:
                self._graph.get_as(dst)  # raises TopologyError if unknown
                self._tables[dst] = self._compute_table(dst)
        return self._tables[dst]

    def path(self, src: int, dst: int) -> list[int] | None:
        """Return the AS path ``[src, ..., dst]`` or None if unreachable.

        Paths are cached; treat the returned list as read-only.
        """
        key = (src, dst)
        cached = self._paths.get(key, False)
        if cached is not False:
            return cached
        fabric = self._fabric
        if fabric is not None and fabric.covers(dst):
            path = fabric.path(src, dst)
        else:
            path = self._compute_path(src, dst)
        self._paths[key] = path
        return path

    def _compute_path(self, src: int, dst: int) -> list[int] | None:
        if src == dst:
            return [src]
        table = self.table_to(dst)
        if src not in table:
            return None
        path = [src]
        node = src
        seen = {src}
        while node != dst:
            route = table[node]
            if route.next_hop is None:
                # a selected route that dead-ends before the destination
                # means the table is inconsistent; the pair is unreachable
                # (returning the truncated prefix would silently mis-route)
                return None
            node = route.next_hop
            if node in seen:
                raise RoutingError(f"routing loop toward AS{dst} at AS{node}")
            seen.add(node)
            path.append(node)
        return path

    def cached_destinations(self) -> int:
        """Number of destination tables computed so far."""
        return len(self._tables)

    # ----------------------------------------------------------------- impl

    def _compute_table(self, dst: int) -> dict[int, Route]:
        graph = self._graph
        best: dict[int, Route] = {dst: Route(RouteClass.ORIGIN, 0, None)}

        # Phase 1: customer routes climb the provider DAG from dst.
        # heap entries: (dist, next_hop_asn, node)
        cust: dict[int, Route] = {}
        heap: list[tuple[int, int, int]] = []
        for provider in sorted(graph.providers_of(dst)):
            heapq.heappush(heap, (1, dst, provider))
        while heap:
            dist, via, node = heapq.heappop(heap)
            if node in cust:
                continue
            cust[node] = Route(RouteClass.CUSTOMER, dist, via)
            for provider in sorted(graph.providers_of(node)):
                if provider not in cust and provider != dst:
                    heapq.heappush(heap, (dist + 1, node, provider))
        for node, route in cust.items():
            best[node] = route

        # Phase 2: peer routes — one hop over a peering edge from any AS
        # exporting a customer (or origin) route.
        for node in graph.asns():
            if node in best:
                continue  # already has a customer route (preferred)
            candidates = []
            for peer in graph.peers_of(node):
                if peer == dst:
                    candidates.append(Route(RouteClass.PEER, 1, peer))
                elif peer in cust:
                    candidates.append(Route(RouteClass.PEER, cust[peer].dist + 1, peer))
            if candidates:
                best[node] = min(candidates, key=Route.preference_key)

        # Phase 3: provider routes descend the customer DAG from every AS
        # that already selected a route; Dijkstra because chains of
        # provider-learned routes extend each other.
        # heap entries: (dist, next_hop_asn, node)
        heap2: list[tuple[int, int, int]] = []
        for node, route in best.items():
            for customer in sorted(graph.customers_of(node)):
                if customer not in best:
                    heapq.heappush(heap2, (route.dist + 1, node, customer))
        while heap2:
            dist, via, node = heapq.heappop(heap2)
            if node in best:
                continue
            best[node] = Route(RouteClass.PROVIDER, dist, via)
            for customer in sorted(graph.customers_of(node)):
                if customer not in best:
                    heapq.heappush(heap2, (dist + 1, node, customer))
        return best
