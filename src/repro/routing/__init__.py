"""Inter-domain routing: Gao-Rexford valley-free route selection, the
geographic course of each BGP path, and path-inflation metrics."""

from repro.routing.bgp import BGPRouting, Route, RouteClass
from repro.routing.geopath import GeoPathWalker, PathSegment
from repro.routing.inflation import geodesic_inflation, path_length_km

__all__ = [
    "BGPRouting",
    "Route",
    "RouteClass",
    "GeoPathWalker",
    "PathSegment",
    "geodesic_inflation",
    "path_length_km",
]
