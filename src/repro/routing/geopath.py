"""Geographic course of a BGP path.

A BGP AS path says *which* networks carry the traffic, not *where* it
flows.  The walker turns an AS path into a sequence of city waypoints: for
every AS adjacency it picks, hot-potato style, the interconnection city
closest to the packet's current position.  Each segment between waypoints
is attributed to the AS whose backbone carries it, so per-carrier backbone
stretch (see :mod:`repro.latency.backbone`) can be applied.  Summing
(stretched) fiber delay over the segments yields the propagation component
of the RTT, and — because interconnection happens only where the networks
actually meet — geographic detours (path inflation) fall out naturally for
endpoint pairs whose providers interconnect far off the geodesic.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import RoutingError
from repro.geo.cities import City, city as city_of
from repro.geo.distance import fiber_delay_ms, great_circle_km
from repro.topology.graph import ASGraph


@dataclass(frozen=True, slots=True)
class PathSegment:
    """One intra-AS leg of a geographic path.

    Attributes:
        from_city / to_city: City keys of the segment endpoints.
        carrier_asn: The AS whose backbone carries this segment.
    """

    from_city: str
    to_city: str
    carrier_asn: int


class GeoPathWalker:
    """Maps AS paths to city-waypoint sequences over an :class:`ASGraph`.

    ``stretch_of`` maps a carrier ASN to that backbone's stretch factor
    (>= 1) applied to the geodesic fiber delay of its segments; the default
    treats every backbone as a flat 1.2x geodesic.
    """

    DEFAULT_STRETCH = 1.2

    def __init__(
        self,
        graph: ASGraph,
        stretch_of: Callable[[int], float] | None = None,
    ) -> None:
        self._graph = graph
        self._stretch_of = stretch_of
        self._city_cache: dict[str, City] = {}

    def _city(self, key: str) -> City:
        cached = self._city_cache.get(key)
        if cached is None:
            cached = city_of(key)
            self._city_cache[key] = cached
        return cached

    # ---------------------------------------------------------------- walk

    def segments(
        self, src_city: str, as_path: list[int], dst_city: str
    ) -> list[PathSegment]:
        """Return the carrier-attributed segments of the path.

        The packet starts at ``src_city`` inside ``as_path[0]``; each AS
        adjacency hands it over at the interconnection city nearest
        (great-circle) to its current position — the hot-potato rule; the
        final AS carries it to ``dst_city``.  Zero-length segments are
        dropped.

        Raises:
            RoutingError: if ``as_path`` is empty or two consecutive ASes
                are not adjacent.
        """
        if not as_path:
            raise RoutingError("empty AS path")
        segments: list[PathSegment] = []
        position = src_city
        current = self._city(src_city)
        for a, b in zip(as_path, as_path[1:]):
            if not self._graph.are_adjacent(a, b):
                raise RoutingError(f"AS{a} and AS{b} are not adjacent on the path")
            adjacency = self._graph.adjacency(a, b)
            handover = min(
                adjacency.interconnect_cities,
                key=lambda key: great_circle_km(current.location, self._city(key).location),
            )
            if handover != position:
                segments.append(PathSegment(position, handover, a))
                position = handover
                current = self._city(handover)
        if dst_city != position:
            segments.append(PathSegment(position, dst_city, as_path[-1]))
        return segments

    def waypoints(self, src_city: str, as_path: list[int], dst_city: str) -> list[str]:
        """The city keys traffic traverses (collapsed, in order)."""
        segs = self.segments(src_city, as_path, dst_city)
        if not segs:
            return [src_city]
        return [segs[0].from_city] + [seg.to_city for seg in segs]

    # -------------------------------------------------------------- latency

    def _stretch(self, asn: int) -> float:
        if self._stretch_of is None:
            return self.DEFAULT_STRETCH
        return self._stretch_of(asn)

    def propagation_ms(self, src_city: str, as_path: list[int], dst_city: str) -> float:
        """One-way propagation delay along the path, with per-carrier
        backbone stretch applied to every segment, in ms."""
        total = 0.0
        for seg in self.segments(src_city, as_path, dst_city):
            total += fiber_delay_ms(
                self._city(seg.from_city).location,
                self._city(seg.to_city).location,
                stretch=self._stretch(seg.carrier_asn),
            )
        return total

    def waypoint_propagation_ms(self, waypoint_keys: list[str]) -> float:
        """One-way fiber delay along explicit waypoints (flat default
        stretch; no carrier attribution).  Used by display/ablation code.

        Raises:
            RoutingError: on an empty sequence.
        """
        if not waypoint_keys:
            raise RoutingError("empty waypoint sequence")
        total = 0.0
        for a, b in zip(waypoint_keys, waypoint_keys[1:]):
            total += fiber_delay_ms(self._city(a).location, self._city(b).location)
        return total
