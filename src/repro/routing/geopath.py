"""Geographic course of a BGP path.

A BGP AS path says *which* networks carry the traffic, not *where* it
flows.  The walker turns an AS path into a sequence of city waypoints: for
every AS adjacency it picks, hot-potato style, the interconnection city
closest to the packet's current position.  Each segment between waypoints
is attributed to the AS whose backbone carries it, so per-carrier backbone
stretch (see :mod:`repro.latency.backbone`) can be applied.  Summing
(stretched) fiber delay over the segments yields the propagation component
of the RTT, and — because interconnection happens only where the networks
actually meet — geographic detours (path inflation) fall out naturally for
endpoint pairs whose providers interconnect far off the geodesic.

All geometry routes through a :class:`~repro.geo.matrix.CityDelayMatrix`
shared with the rest of the world: city-to-city distances are read from its
cached rows instead of recomputing a haversine per lookup, and the
hot-potato handover choice for a given (position, adjacency) combination is
memoised outright — across the millions of path walks a campaign triggers,
the same handovers recur constantly.

On top of the per-hop memoisation, whole propagation walks are memoised
through the routing fabric's :class:`~repro.routing.fabric.GeoWalkMemo`:
the stretched-fiber prefix of a walk (everything up to the last handover)
depends only on ``(source city, AS-path hops)``, so legs that share a
source city and BGP path — e.g. legs toward relays in different cities of
one destination AS — pay the hop loop once and a single final-segment
lookup thereafter.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import RoutingError
from repro.geo.distance import FIBER_PATH_STRETCH, SPEED_OF_LIGHT_FIBER_KM_PER_MS
from repro.geo.matrix import CityDelayMatrix
from repro.routing.fabric import GeoWalkMemo
from repro.topology.graph import ASGraph


@dataclass(frozen=True, slots=True)
class PathSegment:
    """One intra-AS leg of a geographic path.

    Attributes:
        from_city / to_city: City keys of the segment endpoints.
        carrier_asn: The AS whose backbone carries this segment.
    """

    from_city: str
    to_city: str
    carrier_asn: int


class GeoPathWalker:
    """Maps AS paths to city-waypoint sequences over an :class:`ASGraph`.

    ``stretch_of`` maps a carrier ASN to that backbone's stretch factor
    (>= 1) applied to the geodesic fiber delay of its segments; the default
    treats every backbone as a flat 1.2x geodesic.  ``delay_matrix`` lets
    the caller share one :class:`CityDelayMatrix` across subsystems (the
    world does); without one the walker builds its own.  ``walk_memo``
    likewise shares the routing fabric's walk-prefix memo; without one the
    walker keeps a private memo.
    """

    DEFAULT_STRETCH = 1.2

    def __init__(
        self,
        graph: ASGraph,
        stretch_of: Callable[[int], float] | None = None,
        delay_matrix: CityDelayMatrix | None = None,
        walk_memo: GeoWalkMemo | None = None,
    ) -> None:
        self._graph = graph
        self._stretch_of = stretch_of
        self._matrix = delay_matrix if delay_matrix is not None else CityDelayMatrix()
        # propagation-walk prefixes keyed by (src city, AS-path hops); see
        # propagation_ms.  Shared via the world's fabric when provided.
        # (explicit None check: an empty GeoWalkMemo is falsy)
        self._prefix_cache = (
            walk_memo if walk_memo is not None else GeoWalkMemo()
        ).prefixes
        # adjacency interconnect tuples recur across walks; cache their
        # (city_key, matrix_index) pairs once per distinct tuple.
        self._candidate_cache: dict[tuple[str, ...], list[tuple[str, int]]] = {}
        # hot-potato choices recur even more: (position, adjacency tuple) ->
        # (handover_key, handover_index).
        self._handover_cache: dict[tuple[int, tuple[str, ...]], tuple[str, int]] = {}
        # matrix rows as plain lists: for the walker's few-candidate minimum
        # scalar indexing beats NumPy fancy-indexing overhead.
        self._km_rows: dict[int, list[float]] = {}
        # interconnect tuple per AS adjacency, and validated stretch per
        # carrier, so the per-hop work is one dict hit each.
        self._adjacency_cities: dict[tuple[int, int], tuple[str, ...]] = {}
        self._stretch_cache: dict[int, float] = {}
        # fused hop transitions for the prefix walk: (position_idx, a, b) ->
        # (new_city_key, new_idx, stretched_km_delta); one dict hit covers
        # the adjacency lookup, the hot-potato handover and the segment km.
        self._hop_cache: dict[tuple[int, int, int], tuple[str, int, float]] = {}
        # dense per-edge handover tables for the bulk (wavefront) walker;
        # built lazily by hop_tables()
        self._edge_tables: tuple[dict[tuple[int, int], int], np.ndarray, np.ndarray] | None = None

    @property
    def matrix(self) -> CityDelayMatrix:
        """The city-geometry matrix all walk distances come from."""
        return self._matrix

    # ------------------------------------------------------------- geometry

    def _row(self, city_idx: int) -> list[float]:
        row = self._km_rows.get(city_idx)
        if row is None:
            row = self._matrix.distance_row(city_idx).tolist()
            self._km_rows[city_idx] = row
        return row

    def _candidates(self, cities: tuple[str, ...]) -> list[tuple[str, int]]:
        cached = self._candidate_cache.get(cities)
        if cached is None:
            matrix = self._matrix
            cached = [(key, matrix.index(key)) for key in cities]
            self._candidate_cache[cities] = cached
        return cached

    def _handover(self, position_idx: int, cities: tuple[str, ...]) -> tuple[str, int]:
        key = (position_idx, cities)
        cached = self._handover_cache.get(key)
        if cached is None:
            row = self._row(position_idx)
            cached = min(self._candidates(cities), key=lambda c: row[c[1]])
            self._handover_cache[key] = cached
        return cached

    # ---------------------------------------------------------------- walk

    def _walk(
        self, src_city: str, as_path: list[int], dst_city: str
    ) -> list[tuple[str, str, int, int, int]]:
        """The path's segments as ``(from_key, to_key, from_idx, to_idx,
        carrier_asn)``; the final segment's ``to_idx`` is -1 (the
        destination key is not resolved unless a delay is computed, matching
        the scalar walker's laziness).

        Raises:
            RoutingError: if ``as_path`` is empty or two consecutive ASes
                are not adjacent.
        """
        if not as_path:
            raise RoutingError("empty AS path")
        segments: list[tuple[str, str, int, int, int]] = []
        adjacency_cities = self._adjacency_cities
        handover_cache = self._handover_cache
        position = src_city
        position_idx = self._matrix.index(src_city)
        for a, b in zip(as_path, as_path[1:]):
            cities = adjacency_cities.get((a, b))
            if cities is None:
                if not self._graph.are_adjacent(a, b):
                    raise RoutingError(f"AS{a} and AS{b} are not adjacent on the path")
                cities = self._graph.adjacency(a, b).interconnect_cities
                adjacency_cities[(a, b)] = cities
            choice = handover_cache.get((position_idx, cities))
            if choice is None:
                choice = self._handover(position_idx, cities)
            handover, handover_idx = choice
            if handover != position:
                segments.append((position, handover, position_idx, handover_idx, a))
                position = handover
                position_idx = handover_idx
        if dst_city != position:
            segments.append((position, dst_city, position_idx, -1, as_path[-1]))
        return segments

    def segments(
        self, src_city: str, as_path: list[int], dst_city: str
    ) -> list[PathSegment]:
        """Return the carrier-attributed segments of the path.

        The packet starts at ``src_city`` inside ``as_path[0]``; each AS
        adjacency hands it over at the interconnection city nearest
        (great-circle) to its current position — the hot-potato rule; the
        final AS carries it to ``dst_city``.  Zero-length segments are
        dropped.

        Raises:
            RoutingError: if ``as_path`` is empty or two consecutive ASes
                are not adjacent.
        """
        return [
            PathSegment(from_city, to_city, carrier)
            for from_city, to_city, _, _, carrier in self._walk(
                src_city, as_path, dst_city
            )
        ]

    def waypoints(self, src_city: str, as_path: list[int], dst_city: str) -> list[str]:
        """The city keys traffic traverses (collapsed, in order)."""
        segs = self._walk(src_city, as_path, dst_city)
        if not segs:
            return [src_city]
        return [segs[0][0]] + [seg[1] for seg in segs]

    # ------------------------------------------------------------ bulk walk

    def hop_tables(self) -> tuple[dict[tuple[int, int], int], np.ndarray, np.ndarray]:
        """Dense hop-transition tables for the vectorized wavefront walker.

        Returns ``(edge_ids, handover, km)``: ``edge_ids`` maps an AS
        adjacency (both orientations) to a row of the ``(edges × cities)``
        tables; ``handover[e, p]`` is the hot-potato interconnection city a
        packet at city ``p`` crossing edge ``e`` hands over at (the first
        minimum in the adjacency's ``interconnect_cities`` order, exactly
        like the scalar walker); ``km[e, p]`` is the great-circle distance
        of that hop (0.0 when the handover city *is* the current city —
        matching the scalar walker skipping the zero-length segment).
        Built once per walker, vectorized, and cached.
        """
        if self._edge_tables is not None:
            return self._edge_tables
        matrix = self._matrix
        n_cities = matrix.size
        full_km = matrix.distance_km_matrix(
            np.arange(n_cities, dtype=np.intp), np.arange(n_cities, dtype=np.intp)
        )
        edges = list(self._graph.edges())
        edge_ids: dict[tuple[int, int], int] = {}
        city_lists = []
        for eid, adj in enumerate(edges):
            edge_ids[(adj.a, adj.b)] = eid
            edge_ids[(adj.b, adj.a)] = eid
            city_lists.append(matrix.indices(adj.interconnect_cities))
        num_edges = len(edges)
        width = max((c.size for c in city_lists), default=1)
        padded = np.zeros((num_edges, width), dtype=np.intp)
        pad_mask = np.ones((num_edges, width), dtype=bool)
        for eid, cities in enumerate(city_lists):
            padded[eid, : cities.size] = cities
            pad_mask[eid, : cities.size] = False
        # candidate distances per (city, edge, slot); argmin over slots
        # reproduces the scalar min()'s first-minimum tie-break because
        # slots follow interconnect_cities order
        handover = np.empty((num_edges, n_cities), dtype=np.intp)
        km = np.empty((num_edges, n_cities))
        chunk = max(1, 2_000_000 // (n_cities * width))
        for lo in range(0, num_edges, chunk):
            hi = min(num_edges, lo + chunk)
            cand = full_km[:, padded[lo:hi].ravel()].reshape(n_cities, hi - lo, width)
            cand[:, pad_mask[lo:hi]] = np.inf
            arg = cand.argmin(axis=2)  # (cities, edges_chunk)
            rows = np.arange(hi - lo)[np.newaxis, :]
            handover[lo:hi] = padded[lo:hi][rows, arg].T
            km[lo:hi] = np.take_along_axis(cand, arg[:, :, np.newaxis], 2)[:, :, 0].T
        self._edge_tables = (edge_ids, handover, km)
        return self._edge_tables

    # -------------------------------------------------------------- latency

    def _stretch(self, asn: int) -> float:
        if self._stretch_of is None:
            return self.DEFAULT_STRETCH
        return self._stretch_of(asn)

    def carrier_stretch(self, asn: int) -> float:
        """The carrier's validated stretch, cached per ASN."""
        stretch = self._stretch_cache.get(asn)
        if stretch is None:
            stretch = self._stretch(asn)
            if stretch < 1.0:
                raise ValueError(
                    f"fiber stretch {stretch} < 1 would beat light in fiber"
                )
            self._stretch_cache[asn] = stretch
        return stretch

    def walk_prefix(self, src_city: str, as_path: list[int]) -> tuple[str, int, float]:
        """Stretched fiber km of the walk up to its last handover, memoised.

        Returns ``(end_city_key, end_city_index, stretched_km)``; the
        destination-independent part of :meth:`propagation_ms`'s sum, in
        the same accumulation order (so memoised results are bit-identical
        to un-memoised ones).  Memoised per ``(src_city, AS-path)`` in the
        shared :class:`GeoWalkMemo`.
        """
        key = (src_city, tuple(as_path))
        prefix = self._prefix_cache.get(key)
        if prefix is None:
            prefix = self._walk_prefix_uncached(src_city, as_path)
            self._prefix_cache[key] = prefix
        return prefix

    def _hop(self, position_idx: int, position: str, a: int, b: int) -> tuple[str, int, float]:
        """One fused prefix-walk transition (slow path of the hop cache)."""
        cities = self._adjacency_cities.get((a, b))
        if cities is None:
            if not self._graph.are_adjacent(a, b):
                raise RoutingError(f"AS{a} and AS{b} are not adjacent on the path")
            cities = self._graph.adjacency(a, b).interconnect_cities
            self._adjacency_cities[(a, b)] = cities
        handover, handover_idx = self._handover(position_idx, cities)
        if handover == position:
            # a zero-km hop: += 0.0 keeps the accumulated km bit-exact
            transition = (position, position_idx, 0.0)
        else:
            transition = (
                handover,
                handover_idx,
                self._row(position_idx)[handover_idx] * self.carrier_stretch(a),
            )
        self._hop_cache[(position_idx, a, b)] = transition
        return transition

    def _walk_prefix_uncached(
        self, src_city: str, as_path: list[int]
    ) -> tuple[str, int, float]:
        if not as_path:
            raise RoutingError("empty AS path")
        position = src_city
        position_idx = self._matrix.index(src_city)
        km_stretched = 0.0
        hop_cache = self._hop_cache
        for a, b in zip(as_path, as_path[1:]):
            transition = hop_cache.get((position_idx, a, b))
            if transition is None:
                transition = self._hop(position_idx, position, a, b)
            position, position_idx, delta = transition
            km_stretched += delta
        return position, position_idx, km_stretched

    def propagation_ms(self, src_city: str, as_path: list[int], dst_city: str) -> float:
        """One-way propagation delay along the path, with per-carrier
        backbone stretch applied to every segment, in ms.

        The destination-independent prefix of the walk is memoised per
        ``(src_city, AS-path)`` (see :class:`GeoWalkMemo`); only the final
        segment to ``dst_city`` is computed per call.
        """
        end_city, end_idx, km_stretched = self.walk_prefix(src_city, as_path)
        if dst_city != end_city:
            km_stretched += self._row(end_idx)[
                self._matrix.index(dst_city)
            ] * self.carrier_stretch(as_path[-1])
        return km_stretched / SPEED_OF_LIGHT_FIBER_KM_PER_MS

    def waypoint_propagation_ms(self, waypoint_keys: list[str]) -> float:
        """One-way fiber delay along explicit waypoints (flat default
        stretch; no carrier attribution).  Used by display/ablation code.

        Raises:
            RoutingError: on an empty sequence.
        """
        if not waypoint_keys:
            raise RoutingError("empty waypoint sequence")
        matrix = self._matrix
        km = 0.0
        for a, b in zip(waypoint_keys, waypoint_keys[1:]):
            km += self._row(matrix.index(a))[matrix.index(b)]
        return km * FIBER_PATH_STRETCH / SPEED_OF_LIGHT_FIBER_KM_PER_MS
