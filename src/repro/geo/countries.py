"""Embedded country database (ISO-3166 alpha-2 code, name, continent).

The topology generator assigns every AS a country of operation and the
analyses join on country/continent (e.g. the "Changing Countries and Paths"
result, Sec 3).  We embed a static table of the countries the simulation
places infrastructure in; it is not an exhaustive ISO list, but it spans all
inhabited continents with realistic Internet-market diversity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeoError

#: Continent codes used throughout: EU, NA, SA, AS, AF, OC.
CONTINENTS = ("EU", "NA", "SA", "AS", "AF", "OC")


@dataclass(frozen=True, slots=True)
class Country:
    """A country the simulated Internet has presence in."""

    code: str
    name: str
    continent: str
    #: Rough Internet-user population in millions; drives how many eyeball
    #: ASes the topology generator creates and the APNIC coverage dataset.
    internet_users_m: float

    def __post_init__(self) -> None:
        if len(self.code) != 2 or not self.code.isupper():
            raise GeoError(f"country code {self.code!r} is not ISO alpha-2 uppercase")
        if self.continent not in CONTINENTS:
            raise GeoError(f"unknown continent {self.continent!r} for {self.code}")
        if self.internet_users_m <= 0:
            raise GeoError(f"non-positive user population for {self.code}")


_COUNTRIES: tuple[Country, ...] = (
    # Europe
    Country("GB", "United Kingdom", "EU", 65.0),
    Country("DE", "Germany", "EU", 78.0),
    Country("NL", "Netherlands", "EU", 16.5),
    Country("FR", "France", "EU", 60.0),
    Country("ES", "Spain", "EU", 43.0),
    Country("IT", "Italy", "EU", 51.0),
    Country("SE", "Sweden", "EU", 9.8),
    Country("NO", "Norway", "EU", 5.2),
    Country("FI", "Finland", "EU", 5.3),
    Country("DK", "Denmark", "EU", 5.6),
    Country("PL", "Poland", "EU", 33.0),
    Country("CZ", "Czechia", "EU", 9.5),
    Country("AT", "Austria", "EU", 8.1),
    Country("CH", "Switzerland", "EU", 8.0),
    Country("BE", "Belgium", "EU", 10.5),
    Country("IE", "Ireland", "EU", 4.6),
    Country("PT", "Portugal", "EU", 8.6),
    Country("GR", "Greece", "EU", 8.3),
    Country("RO", "Romania", "EU", 15.0),
    Country("HU", "Hungary", "EU", 8.4),
    Country("BG", "Bulgaria", "EU", 4.9),
    Country("SK", "Slovakia", "EU", 4.6),
    Country("SI", "Slovenia", "EU", 1.7),
    Country("HR", "Croatia", "EU", 3.2),
    Country("RS", "Serbia", "EU", 5.6),
    Country("UA", "Ukraine", "EU", 29.0),
    Country("RU", "Russia", "EU", 110.0),
    Country("TR", "Turkey", "EU", 56.0),
    Country("EE", "Estonia", "EU", 1.2),
    Country("LV", "Latvia", "EU", 1.6),
    Country("LT", "Lithuania", "EU", 2.3),
    Country("IS", "Iceland", "EU", 0.33),
    Country("LU", "Luxembourg", "EU", 0.56),
    # North America
    Country("US", "United States", "NA", 287.0),
    Country("CA", "Canada", "NA", 33.0),
    Country("MX", "Mexico", "NA", 76.0),
    Country("GT", "Guatemala", "NA", 7.0),
    Country("CR", "Costa Rica", "NA", 3.7),
    Country("PA", "Panama", "NA", 2.4),
    Country("DO", "Dominican Republic", "NA", 6.8),
    Country("CU", "Cuba", "NA", 4.0),
    # South America
    Country("BR", "Brazil", "SA", 150.0),
    Country("AR", "Argentina", "SA", 34.0),
    Country("CL", "Chile", "SA", 14.0),
    Country("CO", "Colombia", "SA", 31.0),
    Country("PE", "Peru", "SA", 17.0),
    Country("VE", "Venezuela", "SA", 17.0),
    Country("EC", "Ecuador", "SA", 9.8),
    Country("UY", "Uruguay", "SA", 2.9),
    Country("BO", "Bolivia", "SA", 4.8),
    Country("PY", "Paraguay", "SA", 4.0),
    # Asia
    Country("JP", "Japan", "AS", 116.0),
    Country("KR", "South Korea", "AS", 48.0),
    Country("CN", "China", "AS", 750.0),
    Country("IN", "India", "AS", 460.0),
    Country("SG", "Singapore", "AS", 4.9),
    Country("HK", "Hong Kong", "AS", 6.4),
    Country("TW", "Taiwan", "AS", 20.0),
    Country("TH", "Thailand", "AS", 45.0),
    Country("MY", "Malaysia", "AS", 25.0),
    Country("ID", "Indonesia", "AS", 130.0),
    Country("PH", "Philippines", "AS", 60.0),
    Country("VN", "Vietnam", "AS", 60.0),
    Country("PK", "Pakistan", "AS", 55.0),
    Country("BD", "Bangladesh", "AS", 50.0),
    Country("LK", "Sri Lanka", "AS", 7.0),
    Country("IL", "Israel", "AS", 6.8),
    Country("AE", "United Arab Emirates", "AS", 9.0),
    Country("SA", "Saudi Arabia", "AS", 26.0),
    Country("QA", "Qatar", "AS", 2.6),
    Country("JO", "Jordan", "AS", 6.0),
    Country("KZ", "Kazakhstan", "AS", 13.0),
    Country("IR", "Iran", "AS", 53.0),
    Country("IQ", "Iraq", "AS", 15.0),
    Country("NP", "Nepal", "AS", 9.0),
    Country("KH", "Cambodia", "AS", 6.0),
    Country("MM", "Myanmar", "AS", 15.0),
    # Africa
    Country("ZA", "South Africa", "AF", 31.0),
    Country("EG", "Egypt", "AF", 45.0),
    Country("NG", "Nigeria", "AF", 90.0),
    Country("KE", "Kenya", "AF", 21.0),
    Country("MA", "Morocco", "AF", 21.0),
    Country("TN", "Tunisia", "AF", 7.5),
    Country("DZ", "Algeria", "AF", 21.0),
    Country("GH", "Ghana", "AF", 10.0),
    Country("TZ", "Tanzania", "AF", 10.0),
    Country("UG", "Uganda", "AF", 8.5),
    Country("SN", "Senegal", "AF", 4.0),
    Country("CI", "Ivory Coast", "AF", 6.3),
    Country("ET", "Ethiopia", "AF", 16.0),
    Country("ZM", "Zambia", "AF", 4.0),
    Country("MU", "Mauritius", "AF", 0.8),
    # Oceania
    Country("AU", "Australia", "OC", 21.0),
    Country("NZ", "New Zealand", "OC", 4.2),
    Country("FJ", "Fiji", "OC", 0.45),
    Country("PG", "Papua New Guinea", "OC", 1.0),
)

_BY_CODE: dict[str, Country] = {c.code: c for c in _COUNTRIES}


def country(code: str) -> Country:
    """Return the :class:`Country` for an ISO alpha-2 code.

    Raises:
        GeoError: if the code is not in the embedded database.
    """
    try:
        return _BY_CODE[code]
    except KeyError:
        raise GeoError(f"unknown country code {code!r}") from None


def continent_of(code: str) -> str:
    """Return the continent code of a country code."""
    return country(code).continent


def all_countries() -> tuple[Country, ...]:
    """Return every country in the embedded database (stable order)."""
    return _COUNTRIES
