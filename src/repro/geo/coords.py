"""WGS-84 point type used for every geolocated entity in the simulation."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeoError


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A latitude/longitude pair in decimal degrees (WGS-84).

    Instances are immutable and hashable so they can key caches of pairwise
    distances.
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise GeoError(f"latitude {self.lat} outside [-90, 90]")
        if not -180.0 <= self.lon <= 180.0:
            raise GeoError(f"longitude {self.lon} outside [-180, 180]")

    def as_radians(self) -> tuple[float, float]:
        """Return ``(lat, lon)`` converted to radians."""
        return math.radians(self.lat), math.radians(self.lon)

    def __str__(self) -> str:
        ns = "N" if self.lat >= 0 else "S"
        ew = "E" if self.lon >= 0 else "W"
        return f"{abs(self.lat):.4f}{ns},{abs(self.lon):.4f}{ew}"
