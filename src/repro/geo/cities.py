"""Embedded world-city database.

Every PoP, facility, IXP, probe and relay in the simulation sits in one of
these cities.  Hub cities (``is_hub=True``) model the major interconnection
metros the paper's Table 1 facilities live in (London, Amsterdam, Frankfurt,
New York, ...): the facility generator concentrates large Colos there, and
valley-free transit routes are forced through them, which is the physical
origin of path inflation in the simulation.

Coordinates are approximate city centres; the simulation only needs them to
be mutually consistent, not survey-grade.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeoError
from repro.geo.coords import GeoPoint
from repro.geo.countries import country as _country


@dataclass(frozen=True, slots=True)
class City:
    """A city the simulated Internet has infrastructure in."""

    name: str
    cc: str
    location: GeoPoint
    #: Metro population in millions; weights probe placement.
    population_m: float
    #: True for the major interconnection metros (large Colos, IXPs, transit
    #: PoPs concentrate here).
    is_hub: bool = False

    def __post_init__(self) -> None:
        _country(self.cc)  # validates the country code
        if self.population_m <= 0:
            raise GeoError(f"non-positive population for {self.name}")

    @property
    def continent(self) -> str:
        """Continent code of the city's country."""
        return _country(self.cc).continent

    @property
    def key(self) -> str:
        """Stable unique key, e.g. ``'London/GB'``."""
        return f"{self.name}/{self.cc}"


def _c(name: str, cc: str, lat: float, lon: float, pop: float, hub: bool = False) -> City:
    return City(name, cc, GeoPoint(lat, lon), pop, hub)


_CITIES: tuple[City, ...] = (
    # --- Europe ---
    _c("London", "GB", 51.507, -0.128, 14.0, hub=True),
    _c("Manchester", "GB", 53.483, -2.244, 2.9),
    _c("Amsterdam", "NL", 52.373, 4.892, 2.5, hub=True),
    _c("Frankfurt", "DE", 50.110, 8.682, 2.4, hub=True),
    _c("Berlin", "DE", 52.520, 13.405, 3.8),
    _c("Munich", "DE", 48.135, 11.582, 2.6),
    _c("Hamburg", "DE", 53.551, 9.994, 1.9, hub=True),
    _c("Paris", "FR", 48.857, 2.352, 11.0, hub=True),
    _c("Marseille", "FR", 43.296, 5.370, 1.6, hub=True),
    _c("Madrid", "ES", 40.417, -3.704, 6.7, hub=True),
    _c("Barcelona", "ES", 41.385, 2.173, 5.6),
    _c("Milan", "IT", 45.464, 9.190, 4.3, hub=True),
    _c("Rome", "IT", 41.903, 12.496, 4.3),
    _c("Stockholm", "SE", 59.329, 18.069, 2.4, hub=True),
    _c("Oslo", "NO", 59.914, 10.752, 1.7),
    _c("Helsinki", "FI", 60.170, 24.938, 1.5),
    _c("Copenhagen", "DK", 55.676, 12.568, 2.1),
    _c("Warsaw", "PL", 52.230, 21.012, 3.1, hub=True),
    _c("Prague", "CZ", 50.076, 14.437, 2.7, hub=True),
    _c("Vienna", "AT", 48.208, 16.373, 2.9, hub=True),
    _c("Zurich", "CH", 47.377, 8.541, 1.4, hub=True),
    _c("Geneva", "CH", 46.204, 6.143, 0.6),
    _c("Brussels", "BE", 50.850, 4.352, 2.1, hub=True),
    _c("Dublin", "IE", 53.349, -6.260, 1.9, hub=True),
    _c("Lisbon", "PT", 38.722, -9.139, 2.9),
    _c("Athens", "GR", 37.984, 23.728, 3.2),
    _c("Bucharest", "RO", 44.427, 26.102, 2.3),
    _c("Budapest", "HU", 47.498, 19.040, 2.5),
    _c("Sofia", "BG", 42.698, 23.322, 1.7),
    _c("Bratislava", "SK", 48.149, 17.107, 0.7),
    _c("Ljubljana", "SI", 46.056, 14.506, 0.5),
    _c("Zagreb", "HR", 45.815, 15.982, 1.1),
    _c("Belgrade", "RS", 44.787, 20.449, 1.7),
    _c("Kyiv", "UA", 50.450, 30.524, 3.5),
    _c("Moscow", "RU", 55.756, 37.617, 17.0, hub=True),
    _c("Saint Petersburg", "RU", 59.931, 30.360, 5.5),
    _c("Istanbul", "TR", 41.008, 28.978, 15.0),
    _c("Ankara", "TR", 39.934, 32.860, 5.5),
    _c("Tallinn", "EE", 59.437, 24.754, 0.6),
    _c("Riga", "LV", 56.950, 24.105, 0.9),
    _c("Vilnius", "LT", 54.687, 25.280, 0.8),
    _c("Reykjavik", "IS", 64.147, -21.943, 0.23),
    _c("Luxembourg City", "LU", 49.612, 6.130, 0.13),
    # --- North America ---
    _c("New York", "US", 40.713, -74.006, 19.0, hub=True),
    _c("Ashburn", "US", 39.044, -77.488, 0.4, hub=True),
    _c("Chicago", "US", 41.878, -87.630, 9.5, hub=True),
    _c("Dallas", "US", 32.777, -96.797, 7.6, hub=True),
    _c("Miami", "US", 25.762, -80.192, 6.2, hub=True),
    _c("Atlanta", "US", 33.749, -84.388, 6.1, hub=True),
    _c("Los Angeles", "US", 34.052, -118.244, 13.0, hub=True),
    _c("San Jose", "US", 37.339, -121.895, 2.0, hub=True),
    _c("Seattle", "US", 47.606, -122.332, 4.0, hub=True),
    _c("Denver", "US", 39.739, -104.990, 2.9),
    _c("Houston", "US", 29.760, -95.370, 7.1),
    _c("Boston", "US", 42.360, -71.059, 4.9),
    _c("Phoenix", "US", 33.448, -112.074, 4.9),
    _c("Minneapolis", "US", 44.978, -93.265, 3.7),
    _c("Toronto", "CA", 43.653, -79.383, 6.2, hub=True),
    _c("Montreal", "CA", 45.502, -73.567, 4.3),
    _c("Vancouver", "CA", 49.283, -123.121, 2.6),
    _c("Mexico City", "MX", 19.433, -99.133, 22.0),
    _c("Guadalajara", "MX", 20.660, -103.350, 5.3),
    _c("Guatemala City", "GT", 14.634, -90.507, 3.0),
    _c("San Jose CR", "CR", 9.928, -84.091, 1.4),
    _c("Panama City", "PA", 8.983, -79.519, 1.9),
    _c("Santo Domingo", "DO", 18.486, -69.931, 3.3),
    _c("Havana", "CU", 23.113, -82.366, 2.1),
    # --- South America ---
    _c("Sao Paulo", "BR", -23.551, -46.633, 22.0, hub=True),
    _c("Rio de Janeiro", "BR", -22.907, -43.173, 13.0),
    _c("Fortaleza", "BR", -3.732, -38.527, 4.1, hub=True),
    _c("Buenos Aires", "AR", -34.604, -58.382, 15.0, hub=True),
    _c("Santiago", "CL", -33.449, -70.669, 6.8),
    _c("Bogota", "CO", 4.711, -74.072, 11.0),
    _c("Lima", "PE", -12.046, -77.043, 11.0),
    _c("Caracas", "VE", 10.480, -66.904, 2.9),
    _c("Quito", "EC", -0.180, -78.468, 2.0),
    _c("Montevideo", "UY", -34.901, -56.164, 1.8),
    _c("La Paz", "BO", -16.490, -68.119, 1.9),
    _c("Asuncion", "PY", -25.264, -57.576, 2.3),
    # --- Asia ---
    _c("Tokyo", "JP", 35.677, 139.650, 37.0, hub=True),
    _c("Osaka", "JP", 34.694, 135.502, 19.0),
    _c("Seoul", "KR", 37.566, 126.978, 26.0, hub=True),
    _c("Beijing", "CN", 39.904, 116.407, 21.0),
    _c("Shanghai", "CN", 31.230, 121.474, 27.0),
    _c("Guangzhou", "CN", 23.129, 113.264, 14.0),
    _c("Mumbai", "IN", 19.076, 72.878, 21.0, hub=True),
    _c("Delhi", "IN", 28.614, 77.209, 31.0),
    _c("Chennai", "IN", 13.083, 80.270, 11.0, hub=True),
    _c("Bangalore", "IN", 12.972, 77.594, 13.0),
    _c("Singapore", "SG", 1.352, 103.820, 5.9, hub=True),
    _c("Hong Kong", "HK", 22.319, 114.169, 7.5, hub=True),
    _c("Taipei", "TW", 25.033, 121.565, 7.0),
    _c("Bangkok", "TH", 13.756, 100.502, 11.0),
    _c("Kuala Lumpur", "MY", 3.139, 101.687, 8.0),
    _c("Jakarta", "ID", -6.209, 106.846, 11.0),
    _c("Manila", "PH", 14.599, 120.984, 14.0),
    _c("Hanoi", "VN", 21.028, 105.804, 8.1),
    _c("Ho Chi Minh City", "VN", 10.823, 106.630, 9.3),
    _c("Karachi", "PK", 24.861, 67.010, 16.0),
    _c("Dhaka", "BD", 23.811, 90.412, 22.0),
    _c("Colombo", "LK", 6.927, 79.861, 0.8),
    _c("Tel Aviv", "IL", 32.085, 34.782, 4.2),
    _c("Dubai", "AE", 25.205, 55.271, 3.5, hub=True),
    _c("Riyadh", "SA", 24.714, 46.675, 7.7),
    _c("Doha", "QA", 25.285, 51.531, 2.4),
    _c("Amman", "JO", 31.946, 35.928, 4.0),
    _c("Almaty", "KZ", 43.222, 76.851, 2.0),
    _c("Tehran", "IR", 35.689, 51.389, 9.5),
    _c("Baghdad", "IQ", 33.315, 44.366, 7.5),
    _c("Kathmandu", "NP", 27.717, 85.324, 1.5),
    _c("Phnom Penh", "KH", 11.544, 104.892, 2.2),
    _c("Yangon", "MM", 16.840, 96.173, 5.4),
    # --- Africa ---
    _c("Johannesburg", "ZA", -26.204, 28.047, 10.0, hub=True),
    _c("Cape Town", "ZA", -33.925, 18.424, 4.8),
    _c("Cairo", "EG", 30.044, 31.236, 21.0),
    _c("Lagos", "NG", 6.524, 3.379, 15.0),
    _c("Nairobi", "KE", -1.292, 36.822, 5.0),
    _c("Casablanca", "MA", 33.573, -7.590, 3.8),
    _c("Tunis", "TN", 36.806, 10.181, 2.4),
    _c("Algiers", "DZ", 36.754, 3.059, 2.9),
    _c("Accra", "GH", 5.603, -0.187, 2.6),
    _c("Dar es Salaam", "TZ", -6.793, 39.208, 7.4),
    _c("Kampala", "UG", 0.348, 32.582, 3.6),
    _c("Dakar", "SN", 14.716, -17.467, 3.3),
    _c("Abidjan", "CI", 5.359, -4.008, 5.6),
    _c("Addis Ababa", "ET", 9.024, 38.747, 5.2),
    _c("Lusaka", "ZM", -15.387, 28.323, 3.0),
    _c("Port Louis", "MU", -20.161, 57.500, 0.15),
    # --- Oceania ---
    _c("Sydney", "AU", -33.869, 151.209, 5.4, hub=True),
    _c("Melbourne", "AU", -37.814, 144.963, 5.2),
    _c("Perth", "AU", -31.953, 115.857, 2.1),
    _c("Brisbane", "AU", -27.470, 153.025, 2.6),
    _c("Auckland", "NZ", -36.849, 174.763, 1.7),
    _c("Wellington", "NZ", -41.287, 174.776, 0.4),
    _c("Suva", "FJ", -18.141, 178.442, 0.19),
    _c("Port Moresby", "PG", -9.443, 147.180, 0.4),
)

_BY_KEY: dict[str, City] = {c.key: c for c in _CITIES}
_BY_COUNTRY: dict[str, tuple[City, ...]] = {}
for _city in _CITIES:
    _BY_COUNTRY.setdefault(_city.cc, ())
for _city in _CITIES:
    _BY_COUNTRY[_city.cc] = _BY_COUNTRY[_city.cc] + (_city,)
del _city


def city(key: str) -> City:
    """Return the :class:`City` for a ``'Name/CC'`` key.

    Raises:
        GeoError: if the key is not in the embedded database.
    """
    try:
        return _BY_KEY[key]
    except KeyError:
        raise GeoError(f"unknown city key {key!r}") from None


def all_cities() -> tuple[City, ...]:
    """Return every city in the embedded database (stable order)."""
    return _CITIES


def cities_in_country(cc: str) -> tuple[City, ...]:
    """Return the cities located in country ``cc`` (possibly empty)."""
    return _BY_COUNTRY.get(cc, ())


def hub_cities() -> tuple[City, ...]:
    """Return the interconnection-hub cities (stable order)."""
    return tuple(c for c in _CITIES if c.is_hub)
