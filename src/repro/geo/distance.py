"""Great-circle distance and speed-of-light-in-fiber delay.

The paper's feasibility filter (Sec 2.4) computes the propagation delay
between two nodes as ``t = d / (c * 2/3)`` where ``d`` is the geographic
distance and ``c * 2/3`` is the speed of light in optical fiber (citing
Singla et al., "The Internet at the speed of light").  We use the same
constant here for both the feasibility filter and the latency model, so the
filter is exact with respect to the simulated physics.
"""

from __future__ import annotations

import math

from repro.geo.coords import GeoPoint

#: Mean Earth radius in kilometres (IUGG).
EARTH_RADIUS_KM = 6371.0088

#: Speed of light in vacuum, km per millisecond.
SPEED_OF_LIGHT_KM_PER_MS = 299_792.458 / 1000.0

#: Speed of light in optical fiber (refractive index ~1.5 -> 2/3 c), km/ms.
SPEED_OF_LIGHT_FIBER_KM_PER_MS = SPEED_OF_LIGHT_KM_PER_MS * (2.0 / 3.0)

#: Real fiber does not follow the geodesic; cable routes add slack.  The
#: latency model multiplies geodesic distances by this stretch when computing
#: *actual* path delay.  The feasibility filter deliberately does NOT apply
#: it (the paper's filter is an idealised "speed-of-light Internet" bound).
FIBER_PATH_STRETCH = 1.2


def great_circle_km(a: GeoPoint, b: GeoPoint) -> float:
    """Return the great-circle (haversine) distance between two points, km."""
    lat1, lon1 = a.as_radians()
    lat2, lon2 = b.as_radians()
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def propagation_delay_ms(a: GeoPoint, b: GeoPoint) -> float:
    """One-way idealised propagation delay between two points, ms.

    This is the paper's ``t(n1, n2) = d(n1, n2) / (c * 2/3)``: geodesic
    distance over fiber light speed, with no route stretch.  Used by the
    feasibility filter (Sec 2.4).
    """
    return great_circle_km(a, b) / SPEED_OF_LIGHT_FIBER_KM_PER_MS


def fiber_delay_ms(a: GeoPoint, b: GeoPoint, stretch: float = FIBER_PATH_STRETCH) -> float:
    """One-way delay over a realistic fiber route between two points, ms.

    Applies ``stretch`` to the geodesic to account for cable routing slack.
    Used by the latency model for each segment of a waypoint path.
    """
    if stretch < 1.0:
        raise ValueError(f"fiber stretch {stretch} < 1 would beat light in fiber")
    return great_circle_km(a, b) * stretch / SPEED_OF_LIGHT_FIBER_KM_PER_MS


def min_rtt_ms(a: GeoPoint, b: GeoPoint) -> float:
    """Round-trip idealised lower bound between two points, ms (2x one-way)."""
    return 2.0 * propagation_delay_ms(a, b)
