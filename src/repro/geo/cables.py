"""Submarine cable landing points.

Future-work item (iii) of the paper: correlate relayed-path latency with
the proximity of endpoints/relays to submarine cable landing points
(TeleGeography's map is the cited source).  We embed a static table of
major landing stations — coastal metros where intercontinental capacity
actually lands — and a nearest-landing-point index used by
:mod:`repro.analysis.cables`.

Coordinates are approximate; only relative distances matter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeoError
from repro.geo.coords import GeoPoint
from repro.geo.distance import great_circle_km


@dataclass(frozen=True, slots=True)
class LandingPoint:
    """A submarine cable landing station."""

    name: str
    cc: str
    location: GeoPoint
    #: Rough count of cable systems landing there (weights importance).
    systems: int

    def __post_init__(self) -> None:
        if self.systems < 1:
            raise GeoError(f"landing point {self.name} must land >= 1 system")


def _lp(name: str, cc: str, lat: float, lon: float, systems: int) -> LandingPoint:
    return LandingPoint(name, cc, GeoPoint(lat, lon), systems)


_LANDING_POINTS: tuple[LandingPoint, ...] = (
    # Atlantic / Europe
    _lp("Bude", "GB", 50.83, -4.55, 8),
    _lp("Marseille", "FR", 43.30, 5.37, 14),
    _lp("Lisbon", "PT", 38.72, -9.14, 9),
    _lp("Bilbao", "ES", 43.26, -2.93, 4),
    _lp("Amsterdam Zandvoort", "NL", 52.37, 4.53, 5),
    _lp("Genoa", "IT", 44.41, 8.93, 5),
    _lp("Athens Chania", "GR", 35.51, 24.02, 6),
    # North America
    _lp("New York Wall Township", "US", 40.18, -74.03, 10),
    _lp("Virginia Beach", "US", 36.85, -75.98, 5),
    _lp("Miami Boca Raton", "US", 26.36, -80.07, 9),
    _lp("Los Angeles Hermosa", "US", 33.86, -118.40, 7),
    _lp("Seattle Nedonna", "US", 45.63, -123.94, 4),
    _lp("Halifax", "CA", 44.65, -63.57, 3),
    # South America
    _lp("Fortaleza", "BR", -3.73, -38.52, 10),
    _lp("Santos", "BR", -23.96, -46.33, 6),
    _lp("Buenos Aires Las Toninas", "AR", -36.49, -56.70, 5),
    _lp("Valparaiso", "CL", -33.05, -71.62, 4),
    _lp("Barranquilla", "CO", 10.99, -74.80, 4),
    # Africa
    _lp("Alexandria", "EG", 31.20, 29.92, 11),
    _lp("Mombasa", "KE", -4.04, 39.67, 5),
    _lp("Lagos", "NG", 6.42, 3.40, 6),
    _lp("Cape Town Melkbosstrand", "ZA", -33.72, 18.44, 5),
    _lp("Dakar", "SN", 14.72, -17.48, 4),
    _lp("Djibouti", "ET", 11.60, 43.15, 9),
    # Asia / Middle East
    _lp("Mumbai Versova", "IN", 19.13, 72.81, 11),
    _lp("Chennai", "IN", 13.05, 80.28, 6),
    _lp("Singapore Tuas", "SG", 1.30, 103.64, 15),
    _lp("Hong Kong Deep Water Bay", "HK", 22.24, 114.16, 11),
    _lp("Tokyo Chikura", "JP", 34.95, 139.95, 9),
    _lp("Busan", "KR", 35.10, 129.04, 6),
    _lp("Taipei Toucheng", "TW", 24.85, 121.82, 6),
    _lp("Fujairah", "AE", 25.12, 56.33, 8),
    _lp("Jeddah", "SA", 21.49, 39.18, 6),
    _lp("Manila Batangas", "PH", 13.76, 121.06, 5),
    # Oceania
    _lp("Sydney Alexandria", "AU", -33.92, 151.19, 7),
    _lp("Perth Floreat", "AU", -31.94, 115.75, 4),
    _lp("Auckland Takapuna", "NZ", -36.79, 174.77, 4),
)


def all_landing_points() -> tuple[LandingPoint, ...]:
    """Every landing point in the embedded table (stable order)."""
    return _LANDING_POINTS


class LandingPointIndex:
    """Nearest-landing-point queries over the embedded table."""

    def __init__(self, points: tuple[LandingPoint, ...] | None = None) -> None:
        self._points = points if points is not None else _LANDING_POINTS
        if not self._points:
            raise GeoError("landing point index needs at least one point")

    def nearest(self, location: GeoPoint) -> tuple[LandingPoint, float]:
        """The closest landing point to ``location`` and its distance (km)."""
        best = min(
            self._points, key=lambda lp: great_circle_km(location, lp.location)
        )
        return best, great_circle_km(location, best.location)

    def distance_km(self, location: GeoPoint) -> float:
        """Distance from ``location`` to the nearest landing point, km."""
        return self.nearest(location)[1]
