"""Vectorized city geometry: NumPy distance / fiber-delay matrices.

Every hot path of the measurement engine asks the same question many
thousands of times per round: "how far apart are these two cities, and how
long does light in fiber take between them?".  The scalar answer
(:func:`repro.geo.distance.great_circle_km` plus assorted per-call dict
caches) costs a Python frame per lookup, which dominates the Sec 2.4
feasibility filter (pairs × relays bounds per round) and the hot-potato
handover search of the geographic path walker.

:class:`CityDelayMatrix` packs the city database's coordinates into NumPy
arrays once and answers by city *index*: a full row at a time (lazily
filled and cached, so only cities actually touched pay for their row) or
an arbitrary (rows × cols) submatrix in one broadcast.  The vectorized
haversine matches the scalar one to floating-point noise (well below 1e-9
relative), so the feasibility bound computed from a matrix row is the same
bound the scalar filter computes.

Instances own their cache: a matrix built for one world shares nothing
with any other, replacing the old module-global delay cache in
:mod:`repro.core.feasibility`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import GeoError
from repro.geo.cities import City, all_cities
from repro.geo.distance import EARTH_RADIUS_KM, SPEED_OF_LIGHT_FIBER_KM_PER_MS


class CityDelayMatrix:
    """Great-circle distances and one-way fiber delays between cities, by index.

    Rows are filled lazily on first access and cached for the lifetime of
    the instance; a full matrix over the embedded city database is ~140x140
    floats, so even eager use is cheap.
    """

    def __init__(self, cities: Sequence[City] | None = None) -> None:
        self._cities: tuple[City, ...] = (
            tuple(cities) if cities is not None else all_cities()
        )
        if not self._cities:
            raise GeoError("CityDelayMatrix needs at least one city")
        self._index: dict[str, int] = {c.key: i for i, c in enumerate(self._cities)}
        if len(self._index) != len(self._cities):
            raise GeoError("duplicate city keys in CityDelayMatrix")
        n = len(self._cities)
        lat = np.radians(np.array([c.location.lat for c in self._cities]))
        lon = np.radians(np.array([c.location.lon for c in self._cities]))
        self._lat = lat
        self._lon = lon
        self._cos_lat = np.cos(lat)
        self._km = np.full((n, n), np.nan)
        self._filled = np.zeros(n, dtype=bool)

    # ------------------------------------------------------------- identity

    @property
    def size(self) -> int:
        """Number of cities indexed by the matrix."""
        return len(self._cities)

    @property
    def cities(self) -> tuple[City, ...]:
        """The cities, in index order."""
        return self._cities

    def index(self, city_key: str) -> int:
        """Return the row/column index of a ``'Name/CC'`` city key.

        Raises:
            GeoError: if the key is not in the matrix.
        """
        try:
            return self._index[city_key]
        except KeyError:
            raise GeoError(f"unknown city key {city_key!r}") from None

    def indices(self, city_keys: Iterable[str]) -> np.ndarray:
        """Return the indices of several city keys as an int array."""
        idx = self._index
        try:
            return np.fromiter(
                (idx[k] for k in city_keys), dtype=np.intp
            )
        except KeyError as exc:
            raise GeoError(f"unknown city key {exc.args[0]!r}") from None

    def key_of(self, index: int) -> str:
        """Return the city key at ``index``."""
        return self._cities[index].key

    # ----------------------------------------------------------------- fill

    def _fill(self, rows: np.ndarray) -> None:
        todo = rows[~self._filled[rows]]
        if todo.size == 0:
            return
        todo = np.unique(todo)
        dlat = self._lat[np.newaxis, :] - self._lat[todo, np.newaxis]
        dlon = self._lon[np.newaxis, :] - self._lon[todo, np.newaxis]
        h = (
            np.sin(dlat / 2.0) ** 2
            + self._cos_lat[todo, np.newaxis]
            * self._cos_lat[np.newaxis, :]
            * np.sin(dlon / 2.0) ** 2
        )
        self._km[todo, :] = (
            2.0 * EARTH_RADIUS_KM * np.arcsin(np.minimum(1.0, np.sqrt(h)))
        )
        self._filled[todo] = True

    # -------------------------------------------------------------- lookups

    def distance_row(self, i: int) -> np.ndarray:
        """Distances (km) from city ``i`` to every city; do not mutate."""
        self._fill(np.asarray([i], dtype=np.intp))
        return self._km[i]

    def one_way_ms_row(self, i: int) -> np.ndarray:
        """One-way fiber-light delays (ms) from city ``i`` to every city."""
        return self.distance_row(i) / SPEED_OF_LIGHT_FIBER_KM_PER_MS

    def distance_km(self, i: int, j: int) -> float:
        """Great-circle distance between cities ``i`` and ``j``, km."""
        return float(self.distance_row(i)[j])

    def one_way_ms(self, i: int, j: int) -> float:
        """One-way idealised propagation delay between two cities, ms.

        The paper's ``t(n1, n2) = d(n1, n2) / (c * 2/3)`` (Sec 2.4): geodesic
        over fiber light speed, no route stretch.
        """
        return self.distance_km(i, j) / SPEED_OF_LIGHT_FIBER_KM_PER_MS

    def distance_km_matrix(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """The (len(rows) × len(cols)) distance submatrix, km."""
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        self._fill(rows)
        return self._km[np.ix_(rows, cols)]

    def one_way_ms_matrix(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """The (len(rows) × len(cols)) one-way fiber-delay submatrix, ms.

        This is the round's ``D[endpoint, relay]`` matrix the Sec 2.4
        feasibility bound broadcasts over.
        """
        return self.distance_km_matrix(rows, cols) / SPEED_OF_LIGHT_FIBER_KM_PER_MS

    def distance_km_pairs(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Element-wise distances ``km[rows[i], cols[i]]`` (km).

        The gather the latency model's batched final-segment computation
        uses: one distance per (row, col) pair rather than a full
        submatrix.
        """
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        self._fill(rows)
        return self._km[rows, cols]

    # -------------------------------------------------------- scalar-by-key

    def one_way_ms_between(self, a_key: str, b_key: str) -> float:
        """One-way fiber delay between two city keys, ms (scalar wrapper)."""
        return self.one_way_ms(self.index(a_key), self.index(b_key))

    def distance_km_between(self, a_key: str, b_key: str) -> float:
        """Great-circle distance between two city keys, km (scalar wrapper)."""
        return self.distance_km(self.index(a_key), self.index(b_key))
