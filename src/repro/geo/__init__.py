"""Geographic substrate: coordinates, great-circle distances, fiber delay,
and the embedded world-city / country databases the topology is placed on."""

from repro.geo.coords import GeoPoint
from repro.geo.distance import (
    FIBER_PATH_STRETCH,
    SPEED_OF_LIGHT_FIBER_KM_PER_MS,
    fiber_delay_ms,
    great_circle_km,
    min_rtt_ms,
    propagation_delay_ms,
)
from repro.geo.countries import Country, continent_of, country, all_countries
from repro.geo.cities import City, all_cities, cities_in_country, city, hub_cities
from repro.geo.matrix import CityDelayMatrix

__all__ = [
    "GeoPoint",
    "great_circle_km",
    "fiber_delay_ms",
    "propagation_delay_ms",
    "min_rtt_ms",
    "SPEED_OF_LIGHT_FIBER_KM_PER_MS",
    "FIBER_PATH_STRETCH",
    "Country",
    "country",
    "continent_of",
    "all_countries",
    "City",
    "city",
    "all_cities",
    "cities_in_country",
    "hub_cities",
    "CityDelayMatrix",
]
