"""RIPE Atlas platform emulator.

Generates a worldwide probe population with the metadata the paper's
endpoint-selection filters read (Sec 2.1): firmware version, public
availability, connectivity, geolocation tags and 30-day stability.  Serves
probe queries in the style of the Atlas API, and enforces the platform's
measurement budget so the campaign has real constraints to work under
(Sec 2.5 principle (i)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MeasurementError
from repro.latency.model import Endpoint
from repro.measurement.config import InfrastructureConfig
from repro.measurement.nodes import HostAddressBook, MeasurementNode, NodeKind
from repro.topology.builder import Topology
from repro.topology.types import ASType
from repro.util.rand import SeedSequenceFactory


@dataclass(frozen=True, slots=True)
class AtlasProbe:
    """A RIPE Atlas probe or anchor with its selection-relevant metadata.

    Attributes:
        node: The underlying pingable vantage point.
        firmware: Installed firmware version.
        is_public: Listed in the public probe API.
        is_connected: Currently connected to the platform.
        is_geolocated: Tagged with geolocation coordinates.
        stability_30d: Fraction of the last 30 days the probe was connected.
        is_anchor: True for anchors.
    """

    node: MeasurementNode
    firmware: int
    is_public: bool
    is_connected: bool
    is_geolocated: bool
    stability_30d: float
    is_anchor: bool

    @property
    def probe_id(self) -> str:
        """The probe's node id."""
        return self.node.node_id

    @property
    def asn(self) -> int:
        """AS hosting the probe."""
        return self.node.asn

    @property
    def cc(self) -> str:
        """Country of the probe."""
        return self.node.cc


class RipeAtlasEmulator:
    """Probe registry + measurement budget of the emulated Atlas platform."""

    #: Ping results a single campaign round may request (generous but finite,
    #: standing in for Atlas credits/rate limits).
    ROUND_PING_BUDGET = 6_000_000

    def __init__(
        self,
        topology: Topology,
        address_book: HostAddressBook,
        config: InfrastructureConfig,
        seeds: SeedSequenceFactory,
    ) -> None:
        self._topology = topology
        self._cfg = config
        self._probes: list[AtlasProbe] = []
        self._round_budget_used = 0
        self._generate(address_book, seeds.rng("atlas.generate"))

    # ------------------------------------------------------------ generation

    def _generate(self, book: HostAddressBook, rng) -> None:
        cfg = self._cfg
        graph = self._topology.graph
        counter = 0
        for asys in graph:
            core_types = (
                ASType.TRANSIT_REGIONAL,
                ASType.TRANSIT_GLOBAL,
                ASType.CONTENT,
                ASType.CLOUD,
            )
            if asys.as_type is ASType.EYEBALL:
                count = int(rng.poisson(cfg.probes_per_eyeball_lambda))
                is_core = False
            elif asys.as_type in core_types:
                # core operators host probes/anchors at several of their
                # PoPs (RIPE Atlas has substantial core deployment)
                is_core = True
                count = 0
                if rng.random() < cfg.core_probe_prob:
                    count = 1 + int(rng.poisson(2.2))
            else:
                host_prob = (
                    cfg.research_probe_prob
                    if asys.as_type is ASType.RESEARCH
                    else cfg.enterprise_probe_prob
                )
                count = 1 if rng.random() < host_prob else 0
                is_core = True
            # spread multi-probe hosts across distinct PoP cities
            count = min(count, len(asys.pop_cities)) if is_core else count
            if is_core and count:
                city_picks = rng.choice(len(asys.pop_cities), size=count, replace=False)
            else:
                city_picks = None
            for probe_index in range(count):
                counter += 1
                if city_picks is not None:
                    city_key = asys.pop_cities[int(city_picks[probe_index])]
                else:
                    city_key = asys.pop_cities[int(rng.integers(len(asys.pop_cities)))]
                anchor = is_core and asys.as_type in (
                    ASType.TRANSIT_REGIONAL,
                    ASType.TRANSIT_GLOBAL,
                    ASType.CONTENT,
                ) and rng.random() < cfg.anchor_prob
                if is_core or anchor:
                    low, high = cfg.anchor_access_ms
                else:
                    low, high = cfg.probe_access_ms
                access = float(rng.uniform(low, high))
                loss = float(rng.uniform(*cfg.probe_loss_prob))
                node_id = f"probe-{counter:05d}"
                node = MeasurementNode(
                    node_id=node_id,
                    kind=NodeKind.RA_ANCHOR if anchor else NodeKind.RA_PROBE,
                    ip=book.next_address(asys.asn),
                    endpoint=Endpoint(
                        node_id=node_id,
                        asn=asys.asn,
                        city_key=city_key,
                        access_ms=access,
                        loss_prob=loss,
                    ),
                )
                firmware = cfg.latest_firmware
                if rng.random() < cfg.old_firmware_prob:
                    firmware -= int(rng.integers(1, 40))
                stability = float(rng.beta(14.0, 1.0))
                self._probes.append(
                    AtlasProbe(
                        node=node,
                        firmware=firmware,
                        is_public=rng.random() >= cfg.unlisted_probe_prob,
                        is_connected=rng.random() >= cfg.disconnected_probe_prob,
                        is_geolocated=rng.random() >= cfg.ungeolocated_probe_prob,
                        stability_30d=stability,
                        is_anchor=anchor,
                    )
                )

    # ----------------------------------------------------------------- query

    def all_probes(self) -> tuple[AtlasProbe, ...]:
        """Every registered probe, including unusable ones."""
        return tuple(self._probes)

    def probes(
        self,
        *,
        min_firmware: int | None = None,
        public_only: bool = False,
        connected_only: bool = False,
        geolocated_only: bool = False,
        min_stability: float | None = None,
        asns: set[int] | None = None,
    ) -> list[AtlasProbe]:
        """Filter the probe population, API-style.

        All filters are conjunctive; omitted filters match everything.
        """
        out = []
        for probe in self._probes:
            if min_firmware is not None and probe.firmware < min_firmware:
                continue
            if public_only and not probe.is_public:
                continue
            if connected_only and not probe.is_connected:
                continue
            if geolocated_only and not probe.is_geolocated:
                continue
            if min_stability is not None and probe.stability_30d < min_stability:
                continue
            if asns is not None and probe.asn not in asns:
                continue
            out.append(probe)
        return out

    # ----------------------------------------------------------------- budget

    def begin_round(self) -> None:
        """Reset the per-round measurement budget."""
        self._round_budget_used = 0

    def charge(self, num_pings: int) -> None:
        """Account for scheduled pings against the round budget.

        Raises:
            MeasurementError: if the budget would be exceeded — the caller
                scheduled an unrealistically heavy round.
        """
        if num_pings < 0:
            raise MeasurementError("cannot charge a negative ping count")
        if self._round_budget_used + num_pings > self.ROUND_PING_BUDGET:
            raise MeasurementError(
                f"round ping budget exceeded: {self._round_budget_used} + {num_pings} "
                f"> {self.ROUND_PING_BUDGET}"
            )
        self._round_budget_used += num_pings

    @property
    def round_budget_used(self) -> int:
        """Pings charged in the current round."""
        return self._round_budget_used
