"""Measurement-infrastructure emulators: node registries, the RIPE Atlas
probe platform, PlanetLab, and the ground-truth colocation interface pool
that the (aged) Giotsas-style dataset is derived from."""

from repro.measurement.nodes import HostAddressBook, MeasurementNode, NodeKind
from repro.measurement.config import InfrastructureConfig
from repro.measurement.atlas import AtlasProbe, RipeAtlasEmulator
from repro.measurement.planetlab import PlanetLabEmulator, PlanetLabNode, PlanetLabSite
from repro.measurement.colo import ColoInterface, ColoInterfacePool

__all__ = [
    "NodeKind",
    "MeasurementNode",
    "HostAddressBook",
    "InfrastructureConfig",
    "RipeAtlasEmulator",
    "AtlasProbe",
    "PlanetLabEmulator",
    "PlanetLabSite",
    "PlanetLabNode",
    "ColoInterfacePool",
    "ColoInterface",
]
