"""Ground-truth colocation interface pool.

For every facility, tenant ASes (transit/content/cloud) expose a few
pingable router/server interfaces located *physically at the facility*.
This pool is the reality the aged Giotsas-style dataset
(:mod:`repro.datasets.facility_mapping`) is a noisy 2015 snapshot of, and
the reality the paper's Sec 2.2 filter pipeline tries to recover.

A small fraction of interfaces is generated with deliberate defects that
individual filters must catch: *dead* interfaces no longer answer pings,
and *relocated* interfaces have been physically moved to a different metro
since the snapshot (caught by RTT-based geolocation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.cities import all_cities
from repro.latency.model import Endpoint
from repro.measurement.config import InfrastructureConfig
from repro.measurement.nodes import HostAddressBook, MeasurementNode, NodeKind
from repro.topology.builder import Topology
from repro.topology.types import COLO_TENANT_TYPES
from repro.util.rand import SeedSequenceFactory


@dataclass(frozen=True, slots=True)
class ColoInterface:
    """A pingable interface inside (or formerly inside) a facility.

    Attributes:
        node: The vantage point (its ``city_key`` is where the interface
            *currently* is — for relocated interfaces that differs from the
            facility's city).
        facility_id: Ground-truth facility the interface was deployed at.
        is_dead: True if the interface no longer answers (decommissioned).
        relocated: True if the interface moved metro since deployment.
    """

    node: MeasurementNode
    facility_id: int
    is_dead: bool
    relocated: bool


class ColoInterfacePool:
    """Generates and serves the ground-truth facility interface pool."""

    DEAD_PROB = 0.24
    RELOCATED_PROB = 0.07

    def __init__(
        self,
        topology: Topology,
        address_book: HostAddressBook,
        config: InfrastructureConfig,
        seeds: SeedSequenceFactory,
    ) -> None:
        self._topology = topology
        self._cfg = config
        self._interfaces: list[ColoInterface] = []
        self._generate(address_book, seeds.rng("colo.generate"))

    def _generate(self, book: HostAddressBook, rng) -> None:
        cfg = self._cfg
        graph = self._topology.graph
        counter = 0
        non_hub_cities = [c for c in all_cities() if not c.is_hub]
        for fac in self._topology.facilities.values():
            for asn in sorted(fac.members):
                asys = graph.get_as(asn)
                if asys.as_type not in COLO_TENANT_TYPES:
                    continue
                if rng.random() >= cfg.colo_member_interface_prob:
                    continue
                lo, hi = cfg.interfaces_per_member
                for _ in range(int(rng.integers(lo, hi + 1))):
                    counter += 1
                    node_id = f"colo-{counter:05d}"
                    is_dead = rng.random() < self.DEAD_PROB
                    relocated = (not is_dead) and rng.random() < self.RELOCATED_PROB
                    if relocated:
                        city_key = non_hub_cities[int(rng.integers(len(non_hub_cities)))].key
                    else:
                        city_key = fac.city_key
                    # dead interfaces stop answering: modelled as ~total
                    # packet loss so the pingability filter catches them
                    # through the same ping path as everything else
                    loss = 0.9999 if is_dead else float(rng.uniform(*cfg.colo_loss_prob))
                    node = MeasurementNode(
                        node_id=node_id,
                        kind=NodeKind.COLO_IP,
                        ip=book.next_address(asn),
                        endpoint=Endpoint(
                            node_id=node_id,
                            asn=asn,
                            city_key=city_key,
                            access_ms=float(rng.uniform(*cfg.colo_access_ms)),
                            loss_prob=loss,
                        ),
                    )
                    self._interfaces.append(
                        ColoInterface(
                            node=node,
                            facility_id=fac.fac_id,
                            is_dead=is_dead,
                            relocated=relocated,
                        )
                    )

    def interfaces(self) -> tuple[ColoInterface, ...]:
        """Every interface ever deployed (including dead/relocated ones)."""
        return tuple(self._interfaces)

    def live_interfaces(self) -> list[ColoInterface]:
        """Interfaces that still answer pings."""
        return [itf for itf in self._interfaces if not itf.is_dead]

    def by_node_id(self, node_id: str) -> ColoInterface:
        """Look an interface up by node id.

        Raises:
            KeyError: if no such interface exists.
        """
        for itf in self._interfaces:
            if itf.node.node_id == node_id:
                return itf
        raise KeyError(node_id)
