"""PlanetLab emulator.

PlanetLab sites live at research institutions connected through NRENs; the
paper allocates 500 nodes at 62 sites and, before every round, keeps only
nodes that are *consistently accessible and pingable* (Sec 2.3.1).  The
emulator reproduces the platform's defining operational property — flaky
node availability — so that per-round liveness filtering does real work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.latency.model import Endpoint
from repro.measurement.config import InfrastructureConfig
from repro.measurement.nodes import HostAddressBook, MeasurementNode, NodeKind
from repro.topology.builder import Topology
from repro.topology.types import ASType
from repro.util.rand import SeedSequenceFactory


@dataclass(frozen=True, slots=True)
class PlanetLabNode:
    """One PlanetLab machine.

    Attributes:
        node: The underlying vantage point.
        site_id: Site the machine belongs to.
        availability: Long-run probability the node is up in a given round.
    """

    node: MeasurementNode
    site_id: str
    availability: float


@dataclass(frozen=True, slots=True)
class PlanetLabSite:
    """A PlanetLab site: an institution hosting several nodes."""

    site_id: str
    asn: int
    city_key: str
    nodes: tuple[PlanetLabNode, ...]


class PlanetLabEmulator:
    """Site/node registry with per-round availability sampling."""

    def __init__(
        self,
        topology: Topology,
        address_book: HostAddressBook,
        config: InfrastructureConfig,
        seeds: SeedSequenceFactory,
    ) -> None:
        self._cfg = config
        self._seeds = seeds
        self._sites: list[PlanetLabSite] = []
        self._generate(topology, address_book, seeds.rng("planetlab.generate"))

    def _generate(self, topology: Topology, book: HostAddressBook, rng) -> None:
        cfg = self._cfg
        node_counter = 0
        site_counter = 0
        for asn in topology.asns_of_type(ASType.RESEARCH):
            asys = topology.graph.get_as(asn)
            if "Backbone" in asys.name:
                continue  # backbones carry traffic; sites live at members
            lo, hi = cfg.sites_per_research_as
            for _ in range(int(rng.integers(lo, hi + 1))):
                site_counter += 1
                site_id = f"site-{site_counter:03d}"
                city_key = asys.pop_cities[int(rng.integers(len(asys.pop_cities)))]
                nodes = []
                n_lo, n_hi = cfg.nodes_per_site
                for _ in range(int(rng.integers(n_lo, n_hi + 1))):
                    node_counter += 1
                    node_id = f"pl-{node_counter:04d}"
                    node = MeasurementNode(
                        node_id=node_id,
                        kind=NodeKind.PLANETLAB,
                        ip=book.next_address(asn),
                        endpoint=Endpoint(
                            node_id=node_id,
                            asn=asn,
                            city_key=city_key,
                            access_ms=float(rng.uniform(*cfg.planetlab_access_ms)),
                            loss_prob=float(rng.uniform(*cfg.planetlab_loss_prob)),
                        ),
                    )
                    availability = float(
                        rng.beta(cfg.planetlab_avail_alpha, cfg.planetlab_avail_beta)
                    )
                    nodes.append(
                        PlanetLabNode(node=node, site_id=site_id, availability=availability)
                    )
                self._sites.append(
                    PlanetLabSite(
                        site_id=site_id, asn=asn, city_key=city_key, nodes=tuple(nodes)
                    )
                )

    # ----------------------------------------------------------------- query

    def sites(self) -> tuple[PlanetLabSite, ...]:
        """All sites (stable order)."""
        return tuple(self._sites)

    def all_nodes(self) -> list[PlanetLabNode]:
        """All nodes across all sites."""
        return [node for site in self._sites for node in site.nodes]

    def available_nodes(self, round_index: int) -> list[PlanetLabNode]:
        """Nodes that are up in the given round.

        Availability is sampled from a per-round named stream, so the same
        round of the same world always sees the same liveness pattern.
        """
        rng = self._seeds.rng(f"planetlab.round.{round_index}")
        return [
            node
            for site in self._sites
            for node in site.nodes
            if rng.random() < node.availability
        ]
