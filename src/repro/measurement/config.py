"""Configuration of the measurement-infrastructure emulators.

The access-latency ranges are the main calibration lever behind the
paper's relay-type ordering: Colo interfaces sit on facility routers
(sub-millisecond host latency), PlanetLab nodes are servers on campus
networks, and RIPE Atlas probes mostly hang behind home access links —
so a relayed path through an eyeball probe pays that last-mile latency
twice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class InfrastructureConfig:
    """Knobs for Atlas/PlanetLab/colo/LG node generation."""

    # --- RIPE Atlas -------------------------------------------------------
    probes_per_eyeball_lambda: float = 1.8
    """Poisson mean of probes hosted per eyeball AS."""

    core_probe_prob: float = 0.75
    """Probability a transit/content/cloud AS hosts a probe (RIPE Atlas has
    significant core-network deployment; these seed the RAR_other pool)."""

    research_probe_prob: float = 0.6
    """Probability a research AS hosts a probe."""

    enterprise_probe_prob: float = 0.3
    """Probability an enterprise AS hosts a probe."""

    anchor_prob: float = 0.7
    """Probability a transit/content AS hosts an anchor."""

    latest_firmware: int = 4790
    """Current probe firmware version."""

    old_firmware_prob: float = 0.15
    """Fraction of probes stuck on older firmware (filtered out, Sec 2.1)."""

    unlisted_probe_prob: float = 0.08
    """Fraction of probes not publicly available."""

    disconnected_probe_prob: float = 0.08
    """Fraction of probes currently disconnected."""

    ungeolocated_probe_prob: float = 0.10
    """Fraction of probes without geolocation tags."""

    probe_access_ms: tuple[float, float] = (1.0, 6.0)
    """Uniform one-way access-latency range for home probes."""

    anchor_access_ms: tuple[float, float] = (0.5, 2.0)
    """Access-latency range for anchors and core-hosted probes."""

    probe_loss_prob: tuple[float, float] = (0.002, 0.02)
    """Per-packet loss range contributed by a probe."""

    # --- PlanetLab ---------------------------------------------------------
    sites_per_research_as: tuple[int, int] = (1, 3)
    """Sites hosted per national NREN (uniform integer range)."""

    nodes_per_site: tuple[int, int] = (2, 6)
    """Nodes per PlanetLab site (uniform integer range)."""

    planetlab_access_ms: tuple[float, float] = (0.5, 1.5)
    """Access-latency range for PlanetLab nodes."""

    planetlab_avail_alpha: float = 3.0
    planetlab_avail_beta: float = 1.2
    """Beta distribution of a node's per-round availability probability
    (PlanetLab nodes are notoriously flaky, Sec 2.3.1 footnote 3)."""

    planetlab_loss_prob: tuple[float, float] = (0.005, 0.03)
    """Loss range for (often overloaded) PlanetLab nodes."""

    # --- Colo interfaces ----------------------------------------------------
    colo_member_interface_prob: float = 0.35
    """Probability a tenant AS at a facility exposes pingable interfaces."""

    interfaces_per_member: tuple[int, int] = (1, 2)
    """Interfaces per (facility, member) when exposed."""

    colo_access_ms: tuple[float, float] = (0.05, 0.3)
    """Access-latency range for facility router interfaces."""

    colo_loss_prob: tuple[float, float] = (0.0005, 0.005)
    """Loss range for facility interfaces."""

    # --- Looking glasses ------------------------------------------------------
    lg_city_prob: float = 0.8
    """Probability a facility city hosts at least one looking glass."""

    lgs_per_city: tuple[int, int] = (2, 6)
    """LG count per covered city."""

    lg_access_ms: tuple[float, float] = (0.3, 1.5)
    """Access-latency range for LG servers."""

    def __post_init__(self) -> None:
        for name in (
            "probe_access_ms",
            "anchor_access_ms",
            "probe_loss_prob",
            "planetlab_access_ms",
            "planetlab_loss_prob",
            "colo_access_ms",
            "colo_loss_prob",
            "lg_access_ms",
        ):
            low, high = getattr(self, name)
            if low < 0 or high < low:
                raise ConfigError(f"{name}=({low}, {high}) is not a valid range")
        for name in (
            "core_probe_prob",
            "research_probe_prob",
            "enterprise_probe_prob",
            "anchor_prob",
            "old_firmware_prob",
            "unlisted_probe_prob",
            "disconnected_probe_prob",
            "ungeolocated_probe_prob",
            "colo_member_interface_prob",
            "lg_city_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name}={value} outside [0, 1]")
        if self.probes_per_eyeball_lambda <= 0:
            raise ConfigError("probes_per_eyeball_lambda must be positive")
        for name in ("sites_per_research_as", "nodes_per_site", "interfaces_per_member", "lgs_per_city"):
            low, high = getattr(self, name)
            if low < 1 or high < low:
                raise ConfigError(f"{name}=({low}, {high}) is not a valid integer range")
