"""Measurement node primitives shared by all infrastructure emulators."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import MeasurementError, TopologyError
from repro.latency.model import Endpoint
from repro.net.ipv4 import IPv4Address
from repro.topology.graph import ASGraph


class NodeKind(enum.Enum):
    """What kind of vantage point a node is."""

    RA_PROBE = "ra_probe"  #: RIPE Atlas probe (usually behind a home link)
    RA_ANCHOR = "ra_anchor"  #: RIPE Atlas anchor (well-connected server)
    PLANETLAB = "planetlab"  #: PlanetLab node at a research site
    COLO_IP = "colo_ip"  #: router/server interface inside a facility
    LOOKING_GLASS = "looking_glass"  #: LG server used by Periscope


@dataclass(frozen=True, slots=True)
class MeasurementNode:
    """A pingable vantage point: identity plus its latency endpoint.

    Attributes:
        node_id: Globally unique id, e.g. ``'probe-0042'``.
        kind: Vantage-point kind.
        ip: The node's IPv4 address.
        endpoint: Latency-model endpoint (ASN, city, access delay, loss).
    """

    node_id: str
    kind: NodeKind
    ip: IPv4Address
    endpoint: Endpoint

    def __post_init__(self) -> None:
        if self.node_id != self.endpoint.node_id:
            raise MeasurementError(
                f"node_id {self.node_id!r} != endpoint id {self.endpoint.node_id!r}"
            )

    @property
    def asn(self) -> int:
        """AS hosting the node."""
        return self.endpoint.asn

    @property
    def city_key(self) -> str:
        """City the node is in."""
        return self.endpoint.city_key

    @property
    def cc(self) -> str:
        """Country code of the node's city."""
        return self.city_key.rsplit("/", 1)[1]


class HostAddressBook:
    """Assigns deterministic host addresses inside each AS's prefixes.

    Every emulator asks the same shared book for addresses, so the world's
    addressing plan has no collisions and is reproducible for a given
    creation order.
    """

    def __init__(self, graph: ASGraph) -> None:
        self._graph = graph
        self._cursor: dict[int, int] = {}

    def next_address(self, asn: int) -> IPv4Address:
        """Return the next unused host address originated by ``asn``.

        Raises:
            TopologyError: if the AS is unknown.
            MeasurementError: if the AS's prefixes are exhausted.
        """
        asys = self._graph.get_as(asn)
        if not asys.prefixes:
            raise MeasurementError(f"AS{asn} originates no prefixes")
        cursor = self._cursor.get(asn, 0)
        offset = cursor + 1  # skip each prefix's network address
        for prefix in asys.prefixes:
            usable = prefix.num_addresses() - 1
            if offset <= usable:
                self._cursor[asn] = cursor + 1
                return prefix.host(offset)
            offset -= usable
        raise MeasurementError(f"AS{asn} has no free host addresses left")
