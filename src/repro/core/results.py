"""Result containers of the measurement campaign.

Storage is columnar: relays live once in a registry and are referenced by
integer index, and the per-case data (best stitched RTTs, improving-relay
lists, feasibility counts, country groups) lives in each round's
:class:`~repro.core.table.ObservationTable` — structure-of-arrays NumPy
columns the analyses reduce directly.  :class:`PairObservation` survives
as a lazily materialized per-case adapter: ``round.observations`` and
``result.observations()`` build the objects on first access, so object-
oriented callers keep working while the hot paths never leave NumPy.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.core.table import ObservationTable
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.errors import AnalysisError
from repro.geo.countries import continent_of


@dataclass(frozen=True, slots=True)
class RelayRecord:
    """One relay's identity in the campaign's registry.

    Attributes:
        index: Registry index (the id observations refer to).
        node_id: The underlying node id.
        relay_type: COR / PLR / RAR_OTHER / RAR_EYE.
        asn: Hosting AS.
        cc: Country code of the relay's city.
        city_key: The relay's city.
        facility_id: Hosting facility (COR only).
        site_id: PlanetLab site (PLR only).
    """

    index: int
    node_id: str
    relay_type: RelayType
    asn: int
    cc: str
    city_key: str
    facility_id: int | None = None
    site_id: str | None = None


class RelayRegistry:
    """Deduplicating registry of every relay the campaign ever used."""

    def __init__(self) -> None:
        self._records: list[RelayRecord] = []
        self._by_node_id: dict[str, int] = {}

    def register(
        self,
        node_id: str,
        relay_type: RelayType,
        asn: int,
        cc: str,
        city_key: str,
        facility_id: int | None = None,
        site_id: str | None = None,
    ) -> int:
        """Register a relay (idempotent per node id) and return its index.

        Raises:
            AnalysisError: if the same node is re-registered under a
                different relay type (a node has exactly one role).
        """
        existing = self._by_node_id.get(node_id)
        if existing is not None:
            if self._records[existing].relay_type is not relay_type:
                raise AnalysisError(
                    f"node {node_id} registered as {self._records[existing].relay_type}"
                    f" and again as {relay_type}"
                )
            return existing
        index = len(self._records)
        self._records.append(
            RelayRecord(
                index=index,
                node_id=node_id,
                relay_type=relay_type,
                asn=asn,
                cc=cc,
                city_key=city_key,
                facility_id=facility_id,
                site_id=site_id,
            )
        )
        self._by_node_id[node_id] = index
        return index

    def get(self, index: int) -> RelayRecord:
        """The record at a registry index."""
        return self._records[index]

    def by_node_id(self, node_id: str) -> RelayRecord:
        """Find a relay by node id.

        Raises:
            KeyError: if the node was never registered.
        """
        return self._records[self._by_node_id[node_id]]

    def of_type(self, relay_type: RelayType) -> list[RelayRecord]:
        """All relays of a type, in registration order."""
        return [r for r in self._records if r.relay_type is relay_type]

    def absorb(self, other: RelayRegistry) -> "np.ndarray":
        """Merge every record of ``other``; return the index mapping.

        The cross-world unification primitive: relay *identity* is
        ``(node_id, relay_type)``.  Node ids are stable across world
        seeds (like a real Atlas probe id), but independently generated
        worlds may cast the same node in different roles — e.g. an
        eyeball relay in one world, a generic remote relay in another —
        so the role is part of the cross-world identity (lanes are
        per-type anyway, so distinct roles never alias in a directory).
        Within one campaign :meth:`register` still enforces a single
        role per node.  Returns an ``int32`` array mapping ``other``'s
        registry indices to this registry's; first-seen attributes win
        for an already-known identity.
        """
        import numpy as np

        by_identity = {
            (record.node_id, record.relay_type): record.index
            for record in self._records
        }
        mapping = np.empty(len(other._records), np.int32)
        for record in other._records:
            identity = (record.node_id, record.relay_type)
            index = by_identity.get(identity)
            if index is None:
                index = len(self._records)
                self._records.append(
                    RelayRecord(
                        index=index,
                        node_id=record.node_id,
                        relay_type=record.relay_type,
                        asn=record.asn,
                        cc=record.cc,
                        city_key=record.city_key,
                        facility_id=record.facility_id,
                        site_id=record.site_id,
                    )
                )
                by_identity[identity] = index
                self._by_node_id.setdefault(record.node_id, index)
            mapping[record.index] = index
        return mapping

    def to_payload(self) -> dict[str, list]:
        """Flat identity columns for cheap IPC transport (sweep workers)."""
        return {
            "node_ids": [r.node_id for r in self._records],
            "relay_types": [r.relay_type.value for r in self._records],
            "asns": [r.asn for r in self._records],
            "ccs": [r.cc for r in self._records],
            "city_keys": [r.city_key for r in self._records],
            "facility_ids": [
                -1 if r.facility_id is None else r.facility_id for r in self._records
            ],
            "site_ids": ["" if r.site_id is None else r.site_id for r in self._records],
        }

    @classmethod
    def from_payload(cls, payload: dict[str, list]) -> RelayRegistry:
        """Rebuild a registry from :meth:`to_payload` output."""
        registry = cls()
        for node_id, type_value, asn, cc, city_key, facility_id, site_id in zip(
            payload["node_ids"],
            payload["relay_types"],
            payload["asns"],
            payload["ccs"],
            payload["city_keys"],
            payload["facility_ids"],
            payload["site_ids"],
        ):
            registry.register(
                node_id,
                RelayType(type_value),
                asn,
                cc,
                city_key,
                facility_id=None if facility_id < 0 else facility_id,
                site_id=site_id or None,
            )
        return registry

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RelayRecord]:
        return iter(self._records)


def unify_relay_identities(
    tables: list[ObservationTable],
    registries: list[RelayRegistry],
) -> tuple[list[ObservationTable], RelayRegistry, dict[str, int]]:
    """Re-key per-world tables onto one unified relay registry.

    Each world (seed) registers relays independently, so registry index
    ``7`` means a different relay in every world and a naive cross-world
    table concat silently aliases them.  ``(node_id, relay_type)`` is the
    stable identity (the same synthetic Internet node reappears across
    seeds; its role is part of the identity since worlds may cast it
    differently), so the unification absorbs every registry into one —
    first world first — and remaps each table's ``imp_relay`` /
    ``best_relay`` columns through the absorb mapping.

    Returns the remapped tables (pools untouched — concat re-codes
    those), the unified registry, and an info dict: ``worlds``,
    ``relays`` (unified count), ``relays_before`` (summed per-world
    counts) and ``attribute_conflicts`` (identities whose non-identity
    attributes drifted between worlds; first-seen attributes win).
    """
    if len(tables) != len(registries):
        raise AnalysisError(
            f"{len(tables)} tables but {len(registries)} registries"
        )
    unified = RelayRegistry()
    conflicts = 0
    remapped: list[ObservationTable] = []
    for table, registry in zip(tables, registries):
        mapping = unified.absorb(registry)
        for record in registry:
            merged = unified.get(int(mapping[record.index]))
            if (merged.asn, merged.cc, merged.city_key) != (
                record.asn, record.cc, record.city_key
            ):
                conflicts += 1
        remapped.append(table.remap_relays(mapping))
    return remapped, unified, {
        "worlds": len(tables),
        "relays": len(unified),
        "relays_before": sum(len(r) for r in registries),
        "attribute_conflicts": conflicts,
    }


@dataclass(frozen=True, slots=True)
class PairObservation:
    """One endpoint pair in one round — the campaign's unit of analysis
    (a "case" in the paper's terminology).

    Attributes:
        round_index: The round the pair was measured in.
        e1_id / e2_id: Endpoint probe ids.
        e1_cc / e2_cc: Endpoint countries (always different, Sec 2.1).
        e1_city / e2_city: Endpoint cities.
        direct_rtt_ms: Median direct-path RTT (step 4 re-measurement).
        best_by_type: Per relay type, ``(relay_index, stitched_rtt_ms)`` of
            the minimum-latency *feasible* relay with valid legs.
        improving_by_type: Per relay type, ``(relay_index,
            improvement_ms)`` for every relay that beat the direct path.
        feasible_by_type: Per relay type, how many sampled relays passed
            the speed-of-light bound for this pair.
        country_groups_by_type: Per relay type, four booleans supporting
            the "Changing Countries and Paths" analysis:
            ``(usable_same_cc, improving_same_cc, usable_diff_cc,
            improving_diff_cc)`` — whether a relay sharing a country with
            an endpoint (resp. in a third country) was usable (feasible
            with both legs measured) and whether one improved the pair.
    """

    round_index: int
    e1_id: str
    e2_id: str
    e1_cc: str
    e2_cc: str
    e1_city: str
    e2_city: str
    direct_rtt_ms: float
    best_by_type: dict[RelayType, tuple[int, float]]
    improving_by_type: dict[RelayType, tuple[tuple[int, float], ...]]
    feasible_by_type: dict[RelayType, int]
    country_groups_by_type: dict[RelayType, tuple[bool, bool, bool, bool]] = field(
        default_factory=dict
    )

    def best_stitched(self, relay_type: RelayType) -> float | None:
        """Best stitched RTT for a type, or None if no usable relay."""
        entry = self.best_by_type.get(relay_type)
        return entry[1] if entry else None

    def best_improvement(self, relay_type: RelayType) -> float | None:
        """Improvement of the type's best relay (may be negative), or None."""
        stitched = self.best_stitched(relay_type)
        if stitched is None:
            return None
        return self.direct_rtt_ms - stitched

    def improved(self, relay_type: RelayType) -> bool:
        """True if any relay of the type beat the direct path."""
        return bool(self.improving_by_type.get(relay_type))

    def num_improving(self, relay_type: RelayType) -> int:
        """How many relays of the type beat the direct path."""
        return len(self.improving_by_type.get(relay_type, ()))

    @property
    def is_intercontinental(self) -> bool:
        """True if the endpoints are on different continents."""
        return continent_of(self.e1_cc) != continent_of(self.e2_cc)


@dataclass(slots=True)
class RoundResult:
    """Everything measured in one campaign round.

    The per-case data lives columnar in ``table``; ``observations`` is a
    lazily materialized (and cached) object view over it.
    ``direct_medians`` / ``relay_medians`` keep the raw per-pair medians so
    the temporal-stability analysis can compute per-pair CVs across rounds;
    ``relay_medians`` may be None when the campaign is configured not to
    record them.
    """

    round_index: int
    timestamp_hours: float
    endpoint_ids: tuple[str, ...]
    relay_indices_by_type: dict[RelayType, tuple[int, ...]]
    table: ObservationTable
    direct_medians: dict[tuple[str, str], float]
    relay_medians: dict[tuple[str, int], float] | None
    pings_sent: int

    @property
    def observations(self) -> list[PairObservation]:
        """The round's cases as objects (materialized once, then cached)."""
        return self.table.materialized()

    def num_pairs(self) -> int:
        """Endpoint pairs with a valid direct measurement this round."""
        return self.table.num_cases


@dataclass(slots=True)
class CampaignResult:
    """The full campaign: all rounds plus the shared relay registry."""

    rounds: list[RoundResult]
    registry: RelayRegistry
    verified_eyeball_tuples: int = 0
    colo_filter_funnel: tuple[int, ...] = field(default=())
    _table: ObservationTable | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def table(self) -> ObservationTable:
        """All rounds' cases as one columnar table (concatenated lazily).

        Round tables share the campaign's string pools, so this is a plain
        array concatenation, built once and cached.
        """
        if self._table is None:
            self._table = ObservationTable.concat([r.table for r in self.rounds])
        return self._table

    def observations(self) -> Iterator[PairObservation]:
        """Every pair observation across every round."""
        for rnd in self.rounds:
            yield from rnd.observations

    @property
    def total_cases(self) -> int:
        """Total pair observations (the paper's "total cases")."""
        return sum(rnd.table.num_cases for rnd in self.rounds)

    @property
    def total_pings(self) -> int:
        """Pings sent across the campaign."""
        return sum(rnd.pings_sent for rnd in self.rounds)

    def improved_fraction(self, relay_type: RelayType) -> float:
        """Fraction of total cases the type's relays improved.

        Served from the table's cached per-type improving counts — O(1)
        after the first call instead of an object walk per relay type.

        Raises:
            AnalysisError: if the campaign has no observations.
        """
        total = self.total_cases
        if total == 0:
            raise AnalysisError("campaign produced no observations")
        code = RELAY_TYPE_ORDER.index(relay_type)
        return self.table.improved_count(code) / total

    def summary(self) -> dict[str, float | int]:
        """Headline numbers: totals plus per-type improved fractions."""
        info: dict[str, float | int] = {
            "rounds": len(self.rounds),
            "total_cases": self.total_cases,
            "total_pings": self.total_pings,
            "relays_registered": len(self.registry),
        }
        for relay_type in RELAY_TYPE_ORDER:
            info[f"improved_frac_{relay_type.value}"] = round(
                self.improved_fraction(relay_type), 4
            )
        return info
