"""Configuration of the measurement campaign (Sec 2.5 parameters)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.timeline.events import TimelineConfig


@dataclass(frozen=True, slots=True)
class CampaignConfig:
    """Knobs of :class:`~repro.core.campaign.MeasurementCampaign`.

    Paper values: 45 rounds at 12-hour spacing, 6 single-packet pings per
    pair per 30-minute window at 5-minute intervals, medians over at least
    3 valid replies, a 10% APNIC coverage cutoff for the eyeball
    characterisation, 1-3 sampled IPs per facility and 1-2 PlanetLab nodes
    per site.  The default round count is smaller so interactive use stays
    fast; benchmarks pass the paper's 45 explicitly where it matters.
    """

    num_rounds: int = 6
    """Measurement rounds; the paper ran 45 (one per 12 h for ~1 month)."""

    round_interval_hours: float = 12.0
    """Spacing between rounds (diurnal coverage)."""

    pings_per_pair: int = 6
    """Single-packet pings per node pair per measurement window."""

    min_valid_rtts: int = 3
    """Minimum valid replies for a batch median to count."""

    eyeball_cutoff_pct: float = 10.0
    """APNIC user-coverage cutoff for the eyeball characterisation."""

    min_probe_stability: float = 0.95
    """Minimum 30-day connectivity for endpoint/relay probes."""

    colo_ips_per_facility: tuple[int, int] = (1, 3)
    """Colo relay IPs sampled per facility per round."""

    plr_per_site: tuple[int, int] = (1, 2)
    """PlanetLab nodes sampled per site per round."""

    plr_consistency_threshold: float = 0.6
    """Minimum long-run availability for a PlanetLab node to be considered
    *consistently* accessible."""

    max_countries: int | None = None
    """Optional cap on endpoint countries per round (None = all with
    eligible probes); useful to shrink experiments."""

    relay_mix: tuple[str, ...] = ("COR", "PLR", "RAR_OTHER", "RAR_EYE")
    """Relay types the campaign samples each round (RelayType names).
    Scenario regimes restrict this — e.g. a no-probe-relays deployment
    runs ``("COR", "PLR")`` — while analyses keep reporting every type
    (absent ones observe zero cases)."""

    record_relay_medians: bool = True
    """Keep per-round endpoint-relay medians (needed by the stability
    analysis; costs memory on long campaigns)."""

    timeline: TimelineConfig | None = None
    """Optional fault schedule (:mod:`repro.timeline`) the campaign
    compiles against its world and applies between rounds: relay
    outages, probe churn, link-degradation windows, traffic shifts.
    None (and an event-free schedule) runs the static path byte for
    byte."""

    def __post_init__(self) -> None:
        if self.num_rounds < 1:
            raise ConfigError("num_rounds must be >= 1")
        if self.round_interval_hours <= 0:
            raise ConfigError("round_interval_hours must be positive")
        if self.pings_per_pair < 1:
            raise ConfigError("pings_per_pair must be >= 1")
        if not 1 <= self.min_valid_rtts <= self.pings_per_pair:
            raise ConfigError(
                f"min_valid_rtts={self.min_valid_rtts} must be in "
                f"[1, pings_per_pair={self.pings_per_pair}]"
            )
        if not 0.0 <= self.eyeball_cutoff_pct <= 100.0:
            raise ConfigError("eyeball_cutoff_pct outside [0, 100]")
        if not 0.0 <= self.min_probe_stability <= 1.0:
            raise ConfigError("min_probe_stability outside [0, 1]")
        for name in ("colo_ips_per_facility", "plr_per_site"):
            low, high = getattr(self, name)
            if low < 1 or high < low:
                raise ConfigError(f"{name}=({low}, {high}) is not a valid range")
        if not 0.0 <= self.plr_consistency_threshold <= 1.0:
            raise ConfigError("plr_consistency_threshold outside [0, 1]")
        if self.max_countries is not None and self.max_countries < 2:
            raise ConfigError("max_countries must be >= 2 (need endpoint pairs)")
        if not self.relay_mix:
            raise ConfigError("relay_mix must keep at least one relay type")
        valid = {"COR", "PLR", "RAR_OTHER", "RAR_EYE"}
        unknown = set(self.relay_mix) - valid
        if unknown:
            raise ConfigError(f"unknown relay types in relay_mix: {sorted(unknown)}")
        if len(set(self.relay_mix)) != len(self.relay_mix):
            raise ConfigError(f"duplicate relay types in relay_mix: {self.relay_mix}")
        if self.timeline is not None and not isinstance(self.timeline, TimelineConfig):
            raise ConfigError(
                f"timeline must be a TimelineConfig, got {type(self.timeline).__name__}"
            )
