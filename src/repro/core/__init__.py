"""The paper's methodology: endpoint selection at eyeballs (Sec 2.1), relay
selection at Colos (2.2) and elsewhere (2.3), speed-of-light feasibility
(2.4), and the round-based measurement campaign with overlay stitching
(2.5)."""

from repro.core.types import RelayType
from repro.core.config import CampaignConfig
from repro.core.eyeballs import EyeballSelector
from repro.core.colo import ColoRelayPipeline, FilterReport, VerifiedColoRelay
from repro.core.relays import AtlasRelaySelector, PlanetLabRelaySelector
from repro.core.feasibility import feasibility_mask, feasible_relays, is_feasible
from repro.core.stitching import stitch_rtt, is_tiv
from repro.core.results import CampaignResult, PairObservation, RelayRecord, RoundResult
from repro.core.campaign import MeasurementCampaign

__all__ = [
    "RelayType",
    "CampaignConfig",
    "EyeballSelector",
    "ColoRelayPipeline",
    "FilterReport",
    "VerifiedColoRelay",
    "AtlasRelaySelector",
    "PlanetLabRelaySelector",
    "is_feasible",
    "feasible_relays",
    "feasibility_mask",
    "stitch_rtt",
    "is_tiv",
    "RelayRecord",
    "PairObservation",
    "RoundResult",
    "CampaignResult",
    "MeasurementCampaign",
]
