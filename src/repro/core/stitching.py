"""Overlay path stitching and TIV detection (Sec 2.5, step 4).

The RTT of a single-relay overlay path ``(n1, relay, n2)`` is inferred by
*stitching*: adding the measured median RTTs of its two legs.  A stitched
path that undercuts the direct path is a Triangle Inequality Violation of
the Internet's latency space — the phenomenon the whole study quantifies.
"""

from __future__ import annotations

from repro.errors import AnalysisError


def stitch_rtt(leg1_rtt_ms: float, leg2_rtt_ms: float) -> float:
    """RTT of the stitched overlay path from its two leg RTTs.

    Raises:
        AnalysisError: on non-positive leg RTTs (a median over valid pings
            can never be <= 0; such input indicates a caller bug).
    """
    if leg1_rtt_ms <= 0 or leg2_rtt_ms <= 0:
        raise AnalysisError(
            f"leg RTTs must be positive, got {leg1_rtt_ms} and {leg2_rtt_ms}"
        )
    return leg1_rtt_ms + leg2_rtt_ms


def is_tiv(direct_rtt_ms: float, stitched_rtt_ms: float) -> bool:
    """True if the relayed path beats the direct path (a TIV)."""
    return stitched_rtt_ms < direct_rtt_ms


def improvement_ms(direct_rtt_ms: float, stitched_rtt_ms: float) -> float:
    """Latency improvement of the relayed path (positive when faster)."""
    return direct_rtt_ms - stitched_rtt_ms
