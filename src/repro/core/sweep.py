"""Multi-seed, multi-scenario campaign sweeps.

One seed is one synthetic Internet; one scenario is one measurement
regime (a named world/latency/workload configuration from
:mod:`repro.scenarios`).  The paper's qualitative claims (colo relays win
most cases, median RTT reductions in the tens of ms) should hold across
*worlds* and survive *regimes*, not just rounds of one world —
:func:`run_sweep` runs the full campaign for every (scenario, seed)
combination — optionally in parallel via :mod:`concurrent.futures` — and
aggregates each run's paper-shape metrics into a single JSON-ready
artifact.

Transport is columnar: each worker returns its campaign's
:class:`~repro.core.table.ObservationTable` as a compact payload (a dozen
flat NumPy buffers plus string pools) and its relay registry as flat
identity columns, rather than pickling one Python object per case.  The
parent computes every metric from the received columns and pools each
scenario's seeds into one cross-world table — relay identities unified
by ``(node_id, relay_type)`` first, so the pooled table is servable
directly (see :mod:`repro.service.cluster`) — which
also feeds the scenario's paper-shape verdict
(:func:`repro.analysis.scenarios.paper_shapes` against the preset's
expectations) and the cross-scenario ``comparison`` section.

Determinism: every per-run metric depends only on ``(scenario, seed,
rounds, countries, max_countries)``, so everything except the ``timing``
section is identical regardless of the worker count (the CLI test asserts
this byte for byte).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.analysis.improvements import ImprovementAnalysis
from repro.analysis.scenarios import (
    check_expectations,
    compare_scenarios,
    relay_type_metrics,
    scenario_report,
)
from repro.core.campaign import MeasurementCampaign
from repro.core.results import RelayRegistry, unify_relay_identities
from repro.core.table import ObservationTable
from repro.errors import ConfigError
from repro.scenarios import get_scenario, scenario_with
from repro.world import build_world


@dataclass(frozen=True, slots=True)
class SweepConfig:
    """Parameters of a multi-seed, multi-scenario campaign sweep."""

    seeds: tuple[int, ...]
    """World seeds to run, one full campaign each per scenario."""

    rounds: int = 4
    """Measurement rounds per campaign."""

    countries: int | None = None
    """Optional world country limit (None = the scenario's own scope)."""

    max_countries: int | None = None
    """Optional cap on endpoint countries per round."""

    workers: int = 1
    """Process-pool size; 1 runs the campaigns inline."""

    scenarios: tuple[str, ...] = ("baseline",)
    """Registered scenario names to fan out over (see
    :mod:`repro.scenarios`); every scenario runs every seed."""

    world_cache: str | None = None
    """Optional world-snapshot cache directory (see
    :mod:`repro.core.worldcache`): workers restore each ``(config, seed)``
    world from its deterministic snapshot when present — the fabric and
    delay-grid arrays arrive memory-mapped and read-only, so N workers
    share one on-disk copy — and the first builder of a missing key
    captures it.  Results are byte-identical either way; None (the
    default) still honours ``$REPRO_WORLD_CACHE``."""

    use_world_cache: bool = True
    """False forces the from-scratch reference path in every worker,
    ignoring both ``world_cache`` and the environment override."""

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ConfigError("sweep needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigError(f"duplicate seeds in sweep: {self.seeds}")
        if self.rounds < 1:
            raise ConfigError("rounds must be >= 1")
        if self.workers < 1:
            raise ConfigError("workers must be >= 1")
        if not self.scenarios:
            raise ConfigError("sweep needs at least one scenario")
        if len(set(self.scenarios)) != len(self.scenarios):
            raise ConfigError(f"duplicate scenarios in sweep: {self.scenarios}")
        for name in self.scenarios:
            get_scenario(name)  # raises ConfigError for unknown names


def _run_seed_columns(
    scenario_name: str,
    seed: int,
    rounds: int,
    countries: int | None = None,
    max_countries: int | None = None,
    world_cache: str | None = None,
    use_world_cache: bool = True,
) -> dict:
    """Run one (scenario, seed) campaign; return its columns + scalars.

    This is the worker side of the sweep: the scenario is resolved from
    the registry by name (names travel cheaply to pool processes), and the
    campaign result travels back as a columnar payload (flat arrays) plus
    the few scalars the table does not carry, never as pickled
    ``PairObservation`` lists.

    Wall clock is reported split into ``world_build_s`` (world assembly +
    routing fabric/grid — snapshot-restored when ``world_cache`` hits) and
    ``campaign_s`` (the measurement itself), so the bench drift guard can
    see regressions in either half.
    """
    scenario = scenario_with(
        get_scenario(scenario_name),
        rounds=rounds,
        countries=countries,
        max_countries=max_countries,
    )
    start = time.perf_counter()
    world = build_world(
        seed=seed,
        config=scenario.world,
        world_cache=world_cache,
        use_world_cache=use_world_cache,
    )
    world.ensure_routing_fabric()
    build_done = time.perf_counter()
    campaign = MeasurementCampaign(world, scenario.campaign)
    result = campaign.run()
    end = time.perf_counter()
    return {
        "scenario": scenario_name,
        "seed": seed,
        "columns": result.table.to_payload(),
        "registry": result.registry.to_payload(),
        "total_pings": result.total_pings,
        "relays_registered": len(result.registry),
        "world_build_s": round(build_done - start, 3),
        "campaign_s": round(end - build_done, 3),
        "wall_clock_s": round(end - start, 3),
    }


def _metrics_from_columns(outcome: dict, table: ObservationTable) -> dict:
    """The per-run metrics dict, computed parent-side from the columns."""
    metrics: dict = {
        "scenario": outcome["scenario"],
        "seed": outcome["seed"],
        "total_cases": table.num_cases,
        "total_pings": outcome["total_pings"],
        "relays_registered": outcome["relays_registered"],
    }
    analysis = ImprovementAnalysis.from_table(table) if table.num_cases else None
    metrics.update(relay_type_metrics(analysis))
    return metrics


def run_seed_campaign(
    seed: int,
    rounds: int,
    countries: int | None = None,
    max_countries: int | None = None,
    scenario: str = "baseline",
) -> dict:
    """Run one (scenario, seed) campaign and return its metrics.

    The returned dict is deterministic given the arguments except for
    ``wall_clock_s`` (reported under the same key the sweep's ``timing``
    section uses, and stripped from the deterministic sections).
    """
    outcome = _run_seed_columns(scenario, seed, rounds, countries, max_countries)
    table = ObservationTable.from_payload(outcome["columns"])
    return {
        "metrics": _metrics_from_columns(outcome, table),
        "wall_clock_s": outcome["wall_clock_s"],
    }


def _sweep_job(
    args: tuple[str, int, int, int | None, int | None, str | None, bool],
) -> dict:
    """Picklable process-pool entry point."""
    return _run_seed_columns(*args)


def _aggregate(per_seed: list[dict]) -> dict:
    """Mean / min / max of every numeric metric across runs.

    ``None`` entries (a relay type that improved nothing for some seed) are
    skipped; a metric that is None for every seed aggregates to None.
    """
    aggregate: dict = {}
    for key in per_seed[0]:
        if key in ("seed", "scenario"):
            continue
        values = [m[key] for m in per_seed if m[key] is not None]
        if not values:
            aggregate[key] = None
            continue
        aggregate[key] = {
            "mean": round(sum(values) / len(values), 4),
            "min": min(values),
            "max": max(values),
        }
    return aggregate


def run_sweep(config: SweepConfig) -> dict:
    """Run the sweep and return the aggregated artifact (JSON-ready).

    Artifact sections, all deterministic across worker counts:

    * ``config`` — the sweep parameters;
    * ``per_seed`` — each (scenario, seed) run's metrics, scenario-major
      in ``config.scenarios`` × ``config.seeds`` order;
    * ``scenarios`` — per scenario: its description, the same metrics
      over all its seeds' cases pooled into one cross-world table
      (``pooled``), the paper-shape booleans of that pooled table
      (``shapes``), the verdict against the scenario's expectations
      (``expectations``: ``{"ok": bool, "failed": [...]}``) and the
      across-seed ``aggregate`` (mean/min/max per metric);
    * ``comparison`` — pooled metrics pivoted metric-first so regimes
      read side by side;
    * ``shapes_ok`` — True iff every scenario met its expectations;
    * ``pooled`` / ``aggregate`` — single-scenario sweeps only: aliases
      of that scenario's sections (the pre-scenario artifact shape).

    A separate ``timing`` section carries wall clocks and worker count.

    Pooling unifies relay identities first (see
    :func:`repro.core.results.unify_relay_identities`): every seed's
    registry indices remap onto one cross-world registry keyed by
    ``(node_id, relay_type)`` before the tables concat, so the pooled
    table is directly servable (``repro.service.cluster``) — a naive
    concat would alias unrelated relays that happen to share an index.
    The ``pooled`` *metrics* are identity-free (fractions and gains) and
    are unchanged by the remap; each scenario section reports the
    unification census under ``cross_world``.
    """
    jobs = [
        (
            scenario,
            seed,
            config.rounds,
            config.countries,
            config.max_countries,
            config.world_cache,
            config.use_world_cache,
        )
        for scenario in config.scenarios
        for seed in config.seeds
    ]
    start = time.perf_counter()
    if config.workers == 1:
        outcomes = [_sweep_job(job) for job in jobs]
    else:
        with ProcessPoolExecutor(max_workers=config.workers) as pool:
            outcomes = list(pool.map(_sweep_job, jobs))
    wall_clock_s = time.perf_counter() - start

    tables = [ObservationTable.from_payload(o["columns"]) for o in outcomes]
    registries = [RelayRegistry.from_payload(o["registry"]) for o in outcomes]
    per_seed = [
        _metrics_from_columns(outcome, table)
        for outcome, table in zip(outcomes, tables)
    ]

    scenario_sections: dict[str, dict] = {}
    for pos, name in enumerate(config.scenarios):
        scenario = get_scenario(name)
        lo = pos * len(config.seeds)
        hi = lo + len(config.seeds)
        unified_tables, _, cross_world = unify_relay_identities(
            tables[lo:hi], registries[lo:hi]
        )
        pooled_table = ObservationTable.concat(unified_tables)
        pooled_metrics, shapes = scenario_report(pooled_table)
        scenario_sections[name] = {
            "description": scenario.description,
            "pooled": pooled_metrics,
            "shapes": shapes,
            "expectations": check_expectations(shapes, scenario.expect),
            "aggregate": _aggregate(per_seed[lo:hi]),
            "cross_world": cross_world,
        }

    artifact = {
        "workload": (
            f"{len(config.seeds)}-seed x {len(config.scenarios)}-scenario "
            f"sweep, {config.rounds} rounds each"
        ),
        "config": {
            "seeds": list(config.seeds),
            "rounds": config.rounds,
            "countries": config.countries,
            "max_countries": config.max_countries,
            "scenarios": list(config.scenarios),
        },
        "per_seed": per_seed,
        "scenarios": scenario_sections,
        "comparison": compare_scenarios(
            {name: section["pooled"] for name, section in scenario_sections.items()}
        ),
        "shapes_ok": all(
            section["expectations"]["ok"] for section in scenario_sections.values()
        ),
    }
    if len(config.scenarios) == 1:
        only = scenario_sections[config.scenarios[0]]
        artifact["pooled"] = only["pooled"]
        artifact["aggregate"] = only["aggregate"]
    artifact["timing"] = {
        "workers": config.workers,
        "world_cache": config.world_cache,
        "wall_clock_s": round(wall_clock_s, 3),
        "per_seed_s": [outcome["wall_clock_s"] for outcome in outcomes],
        "world_build_s": [outcome["world_build_s"] for outcome in outcomes],
        "campaign_s": [outcome["campaign_s"] for outcome in outcomes],
    }
    return artifact
