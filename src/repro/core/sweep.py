"""Multi-seed campaign sweeps.

One seed is one synthetic Internet; the paper's qualitative claims (colo
relays win most cases, median RTT reductions in the tens of ms) should hold
across *worlds*, not just across rounds of one world.  :func:`run_sweep`
runs the full campaign for N seeds — optionally in parallel via
:mod:`concurrent.futures` — and aggregates each seed's paper-shape metrics
(per-relay-type win rates, median RTT reduction of improved cases) into a
single JSON-ready artifact.

Transport is columnar: each worker returns its campaign's
:class:`~repro.core.table.ObservationTable` as a compact payload (a dozen
flat NumPy buffers plus string pools) rather than pickling one Python
object per case.  The parent computes every per-seed metric from the
received columns and, because whole campaigns come back, can also pool
all seeds' cases into one cross-world table (the ``pooled`` section) —
something that previously required shipping object lists.

Determinism: every per-seed metric depends only on ``(seed, rounds,
countries, max_countries)``, so the ``config``, ``per_seed``, ``pooled``
and ``aggregate`` sections of the artifact are identical regardless of the
worker count (the CLI test asserts this).  Wall-clock measurements live in
a separate ``timing`` section.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.analysis.improvements import ImprovementAnalysis
from repro.core.campaign import MeasurementCampaign
from repro.core.config import CampaignConfig
from repro.core.table import ObservationTable
from repro.core.types import RELAY_TYPE_ORDER
from repro.errors import ConfigError
from repro.topology.config import TopologyConfig
from repro.world import WorldConfig, build_world


@dataclass(frozen=True, slots=True)
class SweepConfig:
    """Parameters of a multi-seed campaign sweep."""

    seeds: tuple[int, ...]
    """World seeds to run, one full campaign each."""

    rounds: int = 4
    """Measurement rounds per seed."""

    countries: int | None = None
    """Optional world country limit (None = all countries)."""

    max_countries: int | None = None
    """Optional cap on endpoint countries per round."""

    workers: int = 1
    """Process-pool size; 1 runs the seeds inline."""

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ConfigError("sweep needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigError(f"duplicate seeds in sweep: {self.seeds}")
        if self.rounds < 1:
            raise ConfigError("rounds must be >= 1")
        if self.workers < 1:
            raise ConfigError("workers must be >= 1")


def _run_seed_columns(
    seed: int,
    rounds: int,
    countries: int | None = None,
    max_countries: int | None = None,
) -> dict:
    """Run one seed's campaign; return its observation columns + scalars.

    This is the worker side of the sweep: the campaign result travels back
    as a columnar payload (flat arrays) plus the few scalars the table does
    not carry, never as pickled ``PairObservation`` lists.
    """
    world = build_world(
        seed=seed,
        config=WorldConfig(topology=TopologyConfig(country_limit=countries)),
    )
    campaign = MeasurementCampaign(
        world, CampaignConfig(num_rounds=rounds, max_countries=max_countries)
    )
    start = time.perf_counter()
    result = campaign.run()
    wall_clock_s = time.perf_counter() - start
    return {
        "seed": seed,
        "columns": result.table.to_payload(),
        "total_pings": result.total_pings,
        "relays_registered": len(result.registry),
        "wall_clock_s": round(wall_clock_s, 3),
    }


def _type_metrics(table: ObservationTable) -> dict:
    """Win rate and median reduction per relay type from a table."""
    analysis = ImprovementAnalysis.from_table(table)
    metrics: dict = {}
    for relay_type in RELAY_TYPE_ORDER:
        name = relay_type.value
        metrics[f"win_rate_{name}"] = round(analysis.improved_fraction(relay_type), 4)
        median = analysis.median_improvement(relay_type)
        metrics[f"median_rtt_reduction_ms_{name}"] = (
            round(median, 3) if median is not None else None
        )
    return metrics


def _metrics_from_columns(outcome: dict, table: ObservationTable) -> dict:
    """The per-seed metrics dict, computed parent-side from the columns."""
    metrics: dict = {
        "seed": outcome["seed"],
        "total_cases": table.num_cases,
        "total_pings": outcome["total_pings"],
        "relays_registered": outcome["relays_registered"],
    }
    metrics.update(_type_metrics(table))
    return metrics


def run_seed_campaign(
    seed: int,
    rounds: int,
    countries: int | None = None,
    max_countries: int | None = None,
) -> dict:
    """Run one seed's campaign and return its paper-shape metrics.

    The returned dict is deterministic given the arguments except for
    ``wall_clock_s`` (reported under the same key the sweep's ``timing``
    section uses, and stripped from the deterministic sections).
    """
    outcome = _run_seed_columns(seed, rounds, countries, max_countries)
    table = ObservationTable.from_payload(outcome["columns"])
    return {
        "metrics": _metrics_from_columns(outcome, table),
        "wall_clock_s": outcome["wall_clock_s"],
    }


def _sweep_job(args: tuple[int, int, int | None, int | None]) -> dict:
    """Picklable process-pool entry point."""
    return _run_seed_columns(*args)


def _aggregate(per_seed: list[dict]) -> dict:
    """Mean / min / max of every numeric metric across seeds.

    ``None`` entries (a relay type that improved nothing for some seed) are
    skipped; a metric that is None for every seed aggregates to None.
    """
    aggregate: dict = {}
    for key in per_seed[0]:
        if key == "seed":
            continue
        values = [m[key] for m in per_seed if m[key] is not None]
        if not values:
            aggregate[key] = None
            continue
        aggregate[key] = {
            "mean": round(sum(values) / len(values), 4),
            "min": min(values),
            "max": max(values),
        }
    return aggregate


def run_sweep(config: SweepConfig) -> dict:
    """Run the sweep and return the aggregated artifact (JSON-ready).

    Artifact sections: ``config`` (the sweep parameters), ``per_seed``
    (each seed's metrics, in ``config.seeds`` order), ``pooled`` (the same
    metrics over all seeds' cases pooled into one cross-world table),
    ``aggregate`` (mean/min/max across seeds) — all deterministic across
    worker counts — plus ``timing`` (wall clocks, worker count).

    ``pooled`` metrics are identity-free (fractions and gains): relay
    registry indices are per-seed and are not unified by the pooling.
    """
    jobs = [
        (seed, config.rounds, config.countries, config.max_countries)
        for seed in config.seeds
    ]
    start = time.perf_counter()
    if config.workers == 1:
        outcomes = [_sweep_job(job) for job in jobs]
    else:
        with ProcessPoolExecutor(max_workers=config.workers) as pool:
            outcomes = list(pool.map(_sweep_job, jobs))
    wall_clock_s = time.perf_counter() - start

    tables = [ObservationTable.from_payload(o["columns"]) for o in outcomes]
    per_seed = [
        _metrics_from_columns(outcome, table)
        for outcome, table in zip(outcomes, tables)
    ]
    pooled_table = ObservationTable.concat(tables)
    pooled = {"total_cases": pooled_table.num_cases}
    pooled.update(_type_metrics(pooled_table))
    return {
        "workload": f"{len(config.seeds)}-seed sweep, {config.rounds} rounds each",
        "config": {
            "seeds": list(config.seeds),
            "rounds": config.rounds,
            "countries": config.countries,
            "max_countries": config.max_countries,
        },
        "per_seed": per_seed,
        "pooled": pooled,
        "aggregate": _aggregate(per_seed),
        "timing": {
            "workers": config.workers,
            "wall_clock_s": round(wall_clock_s, 3),
            "per_seed_s": [outcome["wall_clock_s"] for outcome in outcomes],
        },
    }
