"""Multi-seed, multi-scenario campaign sweeps behind a typed request API.

One seed is one synthetic Internet; one scenario is one measurement
regime (a named world/latency/workload configuration from
:mod:`repro.scenarios`).  The paper's qualitative claims (colo relays win
most cases, median RTT reductions in the tens of ms) should hold across
*worlds* and survive *regimes*, not just rounds of one world —
:func:`run_sweep` runs the full campaign for every entry x seed
combination — optionally in parallel via :mod:`concurrent.futures` — and
aggregates each run's paper-shape metrics into one
:class:`SweepResult`.

The programmatic surface mirrors the service API redesign:

* :class:`SweepRequest` is the typed, frozen request.  Build it with
  :meth:`SweepRequest.from_scenario` (registered preset names, one
  shared seed list) or :meth:`SweepRequest.from_configs` (explicit
  ``WorldConfig``/``CampaignConfig`` pairs — the Monte-Carlo manager's
  path, where every sampled draw is its own entry with its own seed).
* :class:`SweepResult` is the typed, frozen return value.  It carries
  the JSON-ready artifact sections as attributes plus the pooled
  per-entry :class:`~repro.core.table.ObservationTable` objects
  (``tables``; never serialized), and bridges read-only mapping access
  (``result["per_seed"]``, ``dict(result)``) over :meth:`as_dict` so
  callers that treated the old artifact dict as JSON keep working.
* The pre-redesign call shape — ``run_sweep(SweepConfig(...))`` — still
  works behind a ``DeprecationWarning`` and produces a byte-identical
  artifact (asserted in ``tests/test_sweep.py``).

Transport is columnar: each worker returns its campaign's
:class:`~repro.core.table.ObservationTable` as a compact payload (a dozen
flat NumPy buffers plus string pools) and its relay registry as flat
identity columns, rather than pickling one Python object per case.  The
parent computes every metric from the received columns and pools each
entry's seeds into one cross-world table — relay identities unified
by ``(node_id, relay_type)`` first, so the pooled table is servable
directly (see :mod:`repro.service.cluster`) — which
also feeds the entry's paper-shape verdict
(:func:`repro.analysis.scenarios.paper_shapes` against the preset's
expectations) and the cross-entry ``comparison`` section.

Determinism: every per-run metric depends only on ``(configs, seed,
rounds, countries, max_countries)``, so everything except the ``timing``
section is identical regardless of the worker count (the CLI test asserts
this byte for byte).
"""

from __future__ import annotations

import os
import time
import warnings
from collections.abc import Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro import obs
from repro.analysis.improvements import ImprovementAnalysis
from repro.analysis.scenarios import (
    check_expectations,
    compare_scenarios,
    relay_type_metrics,
    scenario_report,
)
from repro.core.campaign import MeasurementCampaign
from repro.core.config import CampaignConfig
from repro.core.results import RelayRegistry, unify_relay_identities
from repro.core.table import ObservationTable
from repro.errors import ConfigError
from repro.obs.profile import active_worker_dir, profile_worker_job
from repro.scenarios import Scenario, get_scenario, scenario_with
from repro.world import WorldConfig, build_world


@dataclass(frozen=True, slots=True)
class SweepConfig:
    """Parameters of a multi-seed, multi-scenario campaign sweep.

    The pre-redesign request shape: registry names plus one shared seed
    list.  Passing one to :func:`run_sweep` still works behind a
    ``DeprecationWarning``; new callers build a :class:`SweepRequest`
    (``SweepRequest.from_config`` converts losslessly).
    """

    seeds: tuple[int, ...]
    """World seeds to run, one full campaign each per scenario."""

    rounds: int = 4
    """Measurement rounds per campaign."""

    countries: int | None = None
    """Optional world country limit (None = the scenario's own scope)."""

    max_countries: int | None = None
    """Optional cap on endpoint countries per round."""

    workers: int = 1
    """Process-pool size; 1 runs the campaigns inline."""

    scenarios: tuple[str, ...] = ("baseline",)
    """Registered scenario names to fan out over (see
    :mod:`repro.scenarios`); every scenario runs every seed."""

    world_cache: str | None = None
    """Optional world-snapshot cache directory (see
    :mod:`repro.core.worldcache`): workers restore each ``(config, seed)``
    world from its deterministic snapshot when present — the fabric and
    delay-grid arrays arrive memory-mapped and read-only, so N workers
    share one on-disk copy — and the first builder of a missing key
    captures it.  Results are byte-identical either way; None (the
    default) still honours ``$REPRO_WORLD_CACHE``."""

    use_world_cache: bool = True
    """False forces the from-scratch reference path in every worker,
    ignoring both ``world_cache`` and the environment override."""

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ConfigError("sweep needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigError(f"duplicate seeds in sweep: {self.seeds}")
        if self.rounds < 1:
            raise ConfigError("rounds must be >= 1")
        if self.workers < 1:
            raise ConfigError("workers must be >= 1")
        if not self.scenarios:
            raise ConfigError("sweep needs at least one scenario")
        if len(set(self.scenarios)) != len(self.scenarios):
            raise ConfigError(f"duplicate scenarios in sweep: {self.scenarios}")
        for name in self.scenarios:
            get_scenario(name)  # raises UnknownScenarioError for unknown names


@dataclass(frozen=True, slots=True)
class SweepEntry:
    """One labelled regime of a sweep, with its own seed list.

    ``label`` keys the artifact's per-entry sections (for registry-backed
    sweeps it is the scenario name; the Monte-Carlo manager labels each
    sampled draw ``draw-NNNN``).  ``scenario`` carries the complete
    world/campaign configuration plus the paper-shape expectations the
    pooled table is checked against.
    """

    label: str
    scenario: Scenario
    seeds: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.label:
            raise ConfigError("sweep entry needs a label")
        if not self.seeds:
            raise ConfigError(f"sweep entry {self.label!r} needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigError(
                f"duplicate seeds in sweep entry {self.label!r}: {self.seeds}"
            )


@dataclass(frozen=True, slots=True)
class SweepRequest:
    """The typed sweep request :func:`run_sweep` executes.

    Build one with :meth:`from_scenario` (registered presets, shared
    seeds — the CLI path) or :meth:`from_configs` (explicit configs, the
    programmatic/Monte-Carlo path); the bare constructor takes
    pre-assembled :class:`SweepEntry` rows for full control (per-entry
    seed lists).
    """

    entries: tuple[SweepEntry, ...]
    """The labelled regimes to run; every entry runs its own seeds."""

    rounds: int = 4
    """Measurement rounds per campaign (overrides each scenario's own)."""

    countries: int | None = None
    """Optional world country limit (None = each scenario's own scope)."""

    max_countries: int | None = None
    """Optional cap on endpoint countries per round."""

    workers: int = 1
    """Process-pool size; 1 runs the campaigns inline."""

    world_cache: str | None = None
    """World-snapshot cache directory (see :class:`SweepConfig`)."""

    use_world_cache: bool = True
    """False forces the from-scratch reference path in every worker."""

    def __post_init__(self) -> None:
        if not self.entries:
            raise ConfigError("sweep needs at least one entry")
        labels = [entry.label for entry in self.entries]
        if len(set(labels)) != len(labels):
            raise ConfigError(f"duplicate labels in sweep entries: {labels}")
        if self.rounds < 1:
            raise ConfigError("rounds must be >= 1")
        if self.workers < 1:
            raise ConfigError("workers must be >= 1")

    @classmethod
    def from_scenario(
        cls,
        names: str | Sequence[str],
        *,
        seeds: Sequence[int],
        rounds: int = 4,
        countries: int | None = None,
        max_countries: int | None = None,
        workers: int = 1,
        world_cache: str | None = None,
        use_world_cache: bool = True,
    ) -> "SweepRequest":
        """A request over registered scenario presets, one shared seed list.

        Raises:
            UnknownScenarioError: for names missing from the registry.
        """
        if isinstance(names, str):
            names = (names,)
        if not names:
            raise ConfigError("sweep needs at least one scenario")
        seed_tuple = tuple(seeds)
        return cls(
            entries=tuple(
                SweepEntry(label=name, scenario=get_scenario(name), seeds=seed_tuple)
                for name in names
            ),
            rounds=rounds,
            countries=countries,
            max_countries=max_countries,
            workers=workers,
            world_cache=world_cache,
            use_world_cache=use_world_cache,
        )

    @classmethod
    def from_configs(
        cls,
        world: WorldConfig | None = None,
        campaign: CampaignConfig | None = None,
        *,
        seeds: Sequence[int],
        label: str = "custom",
        description: str = "explicit world/campaign configuration",
        expect: Mapping[str, bool] | None = None,
        rounds: int = 4,
        countries: int | None = None,
        max_countries: int | None = None,
        workers: int = 1,
        world_cache: str | None = None,
        use_world_cache: bool = True,
    ) -> "SweepRequest":
        """A single-entry request over explicit configs (no registry).

        ``expect`` optionally asserts paper shapes on the pooled table
        exactly like a registered preset's expectations would.
        """
        scenario = Scenario(
            name=label,
            description=description,
            world=world if world is not None else WorldConfig(),
            campaign=campaign if campaign is not None else CampaignConfig(),
            expect=dict(expect) if expect else {},
        )
        return cls(
            entries=(SweepEntry(label=label, scenario=scenario, seeds=tuple(seeds)),),
            rounds=rounds,
            countries=countries,
            max_countries=max_countries,
            workers=workers,
            world_cache=world_cache,
            use_world_cache=use_world_cache,
        )

    @classmethod
    def from_config(cls, config: SweepConfig) -> "SweepRequest":
        """Lossless conversion of the pre-redesign :class:`SweepConfig`."""
        return cls.from_scenario(
            config.scenarios,
            seeds=config.seeds,
            rounds=config.rounds,
            countries=config.countries,
            max_countries=config.max_countries,
            workers=config.workers,
            world_cache=config.world_cache,
            use_world_cache=config.use_world_cache,
        )

    @property
    def shared_seeds(self) -> tuple[int, ...] | None:
        """The one seed list every entry runs, or None when they differ."""
        first = self.entries[0].seeds
        if all(entry.seeds == first for entry in self.entries):
            return first
        return None


@dataclass(frozen=True, slots=True)
class SweepResult:
    """One sweep's typed outcome (see :func:`run_sweep`).

    Attribute-typed, with a read-only mapping bridge (``result["key"]``,
    ``"key" in result``, ``dict(result)``) over :meth:`as_dict` so
    callers that treated the old artifact dict as JSON keep working.
    ``tables`` / ``registries`` expose each entry's pooled cross-world
    observation table and unified relay registry for further analysis
    (the Monte-Carlo manager's per-draw metrics); they never appear in
    :meth:`as_dict`.
    """

    workload: str
    config: dict
    per_seed: tuple[dict, ...]
    scenarios: dict[str, dict]
    comparison: dict
    shapes_ok: bool
    timing: dict
    pooled: dict | None = None
    aggregate: dict | None = None
    tables: dict[str, ObservationTable] = field(default_factory=dict, repr=False)
    registries: dict[str, RelayRegistry] = field(default_factory=dict, repr=False)

    def as_dict(self, *, include_timing: bool = True) -> dict[str, Any]:
        """The JSON-ready artifact (the old ``run_sweep`` dict shape).

        ``include_timing=False`` drops the one non-deterministic section,
        leaving bytes that are identical across runs and worker counts.
        """
        out: dict[str, Any] = {
            "workload": self.workload,
            "config": dict(self.config),
            "per_seed": list(self.per_seed),
            "scenarios": dict(self.scenarios),
            "comparison": dict(self.comparison),
            "shapes_ok": self.shapes_ok,
        }
        if self.pooled is not None:
            out["pooled"] = self.pooled
        if self.aggregate is not None:
            out["aggregate"] = self.aggregate
        if include_timing:
            out["timing"] = dict(self.timing)
        return out

    # ------------------------------------------------- mapping bridge
    def __getitem__(self, key: str) -> Any:
        return self.as_dict()[key]

    def __contains__(self, key: object) -> bool:
        return key in self.as_dict()

    def __iter__(self) -> Iterator[str]:
        return iter(self.as_dict())

    def keys(self):
        return self.as_dict().keys()

    def values(self):
        return self.as_dict().values()

    def items(self):
        return self.as_dict().items()

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default


def _run_seed_columns(
    label: str,
    world_config: WorldConfig,
    campaign_config: CampaignConfig,
    seed: int,
    world_cache: str | None = None,
    use_world_cache: bool = True,
    obs_modes: dict | None = None,
    profile_dir: str | None = None,
) -> dict:
    """Run one (configs, seed) campaign; return its columns + scalars.

    This is the worker side of the sweep: the parent resolves each
    entry's scenario into explicit configs (registry scenarios hold
    unpicklable mapping proxies; plain config dataclasses travel cheaply
    to pool processes), and the campaign result travels back as a
    columnar payload (flat arrays) plus the few scalars the table does
    not carry, never as pickled ``PairObservation`` lists.

    Wall clock is reported split into ``world_build_s`` (world assembly +
    routing fabric/grid — snapshot-restored when ``world_cache`` hits) and
    ``campaign_s`` (the measurement itself), so the bench drift guard can
    see regressions in either half.

    ``obs_modes`` (pool workers only, when the driver has observability
    on) starts fresh recorders on this process's own trace lane and ships
    their snapshot back under the outcome's ``obs`` key; ``profile_dir``
    (pool workers under ``--profile``) dumps this job's cProfile stats
    there for the driver to merge.  Both default off, leaving the
    outcome shape untouched.
    """
    if obs_modes is not None:
        obs.enable(**obs_modes)
        obs.begin_worker(
            lane=os.getpid(), lane_name=f"sweep-worker-{os.getpid()}"
        )
    with profile_worker_job(profile_dir, f"{label}-{seed}"):
        with obs.span(f"sweep.seed {label}:{seed}"):
            start = time.perf_counter()
            world = build_world(
                seed=seed,
                config=world_config,
                world_cache=world_cache,
                use_world_cache=use_world_cache,
            )
            world.ensure_routing_fabric()
            build_done = time.perf_counter()
            campaign = MeasurementCampaign(world, campaign_config)
            result = campaign.run()
            end = time.perf_counter()
    outcome = {
        "scenario": label,
        "seed": seed,
        "columns": result.table.to_payload(),
        "registry": result.registry.to_payload(),
        "total_pings": result.total_pings,
        "relays_registered": len(result.registry),
        "world_build_s": round(build_done - start, 3),
        "campaign_s": round(end - build_done, 3),
        "wall_clock_s": round(end - start, 3),
    }
    if obs_modes is not None:
        outcome["obs"] = {"payload": obs.worker_payload(), "pid": os.getpid()}
        obs.disable()
    return outcome


def _metrics_from_columns(outcome: dict, table: ObservationTable) -> dict:
    """The per-run metrics dict, computed parent-side from the columns."""
    metrics: dict = {
        "scenario": outcome["scenario"],
        "seed": outcome["seed"],
        "total_cases": table.num_cases,
        "total_pings": outcome["total_pings"],
        "relays_registered": outcome["relays_registered"],
    }
    analysis = ImprovementAnalysis.from_table(table) if table.num_cases else None
    metrics.update(relay_type_metrics(analysis))
    return metrics


def _resolved_configs(
    request: SweepRequest, entry: SweepEntry
) -> tuple[WorldConfig, CampaignConfig]:
    """The entry's configs with the request's workload overrides applied."""
    scenario = scenario_with(
        entry.scenario,
        rounds=request.rounds,
        countries=request.countries,
        max_countries=request.max_countries,
    )
    return scenario.world, scenario.campaign


def run_seed_campaign(
    seed: int,
    rounds: int,
    countries: int | None = None,
    max_countries: int | None = None,
    scenario: str = "baseline",
) -> dict:
    """Run one (scenario, seed) campaign and return its metrics.

    The returned dict is deterministic given the arguments except for
    ``wall_clock_s`` (reported under the same key the sweep's ``timing``
    section uses, and stripped from the deterministic sections).
    """
    resolved = scenario_with(
        get_scenario(scenario),
        rounds=rounds,
        countries=countries,
        max_countries=max_countries,
    )
    outcome = _run_seed_columns(scenario, resolved.world, resolved.campaign, seed)
    table = ObservationTable.from_payload(outcome["columns"])
    return {
        "metrics": _metrics_from_columns(outcome, table),
        "wall_clock_s": outcome["wall_clock_s"],
    }


def _sweep_job(args: tuple) -> dict:
    """Picklable process-pool entry point (a ``_run_seed_columns`` arg tuple)."""
    return _run_seed_columns(*args)


def _pooled_clock_stats(values: Sequence[float]) -> dict:
    """min/median/max of one per-seed wall-clock column."""
    ordered = sorted(values)
    n = len(ordered)
    if n % 2:
        median = ordered[n // 2]
    else:
        median = round((ordered[n // 2 - 1] + ordered[n // 2]) / 2, 3)
    return {"min": ordered[0], "median": median, "max": ordered[-1]}


def _aggregate(per_seed: list[dict]) -> dict:
    """Mean / min / max of every numeric metric across runs.

    ``None`` entries (a relay type that improved nothing for some seed) are
    skipped; a metric that is None for every seed aggregates to None.
    """
    aggregate: dict = {}
    for key in per_seed[0]:
        if key in ("seed", "scenario"):
            continue
        values = [m[key] for m in per_seed if m[key] is not None]
        if not values:
            aggregate[key] = None
            continue
        aggregate[key] = {
            "mean": round(sum(values) / len(values), 4),
            "min": min(values),
            "max": max(values),
        }
    return aggregate


def _config_section(request: SweepRequest) -> dict:
    """The artifact's ``config`` section.

    Keeps the pre-redesign shape byte for byte when every entry shares one
    seed list (``seeds`` + ``scenarios``); per-entry seed lists (the
    Monte-Carlo fan-out) additionally carry an ``entries`` mapping and
    report ``seeds: null``.
    """
    shared = request.shared_seeds
    section: dict = {
        "seeds": list(shared) if shared is not None else None,
        "rounds": request.rounds,
        "countries": request.countries,
        "max_countries": request.max_countries,
        "scenarios": [entry.label for entry in request.entries],
    }
    if shared is None:
        section["entries"] = {
            entry.label: list(entry.seeds) for entry in request.entries
        }
    return section


def run_sweep(request: SweepRequest | SweepConfig) -> SweepResult:
    """Run the sweep and return its :class:`SweepResult`.

    Passing the pre-redesign :class:`SweepConfig` still works behind a
    ``DeprecationWarning`` (the artifact bytes are identical — asserted
    in ``tests/test_sweep.py``); new callers build a
    :class:`SweepRequest`.

    Artifact sections (:meth:`SweepResult.as_dict`), all deterministic
    across worker counts:

    * ``config`` — the sweep parameters;
    * ``per_seed`` — each (entry, seed) run's metrics, entry-major in
      ``entries`` x ``seeds`` order;
    * ``scenarios`` — per entry label: its description, the same metrics
      over all its seeds' cases pooled into one cross-world table
      (``pooled``), the paper-shape booleans of that pooled table
      (``shapes``), the verdict against the scenario's expectations
      (``expectations``: ``{"ok": bool, "failed": [...]}``) and the
      across-seed ``aggregate`` (mean/min/max per metric);
    * ``comparison`` — pooled metrics pivoted metric-first so regimes
      read side by side;
    * ``shapes_ok`` — True iff every entry met its expectations;
    * ``pooled`` / ``aggregate`` — single-entry sweeps only: aliases
      of that entry's sections (the pre-scenario artifact shape).

    A separate ``timing`` section carries wall clocks and worker count.

    Pooling unifies relay identities first (see
    :func:`repro.core.results.unify_relay_identities`): every seed's
    registry indices remap onto one cross-world registry keyed by
    ``(node_id, relay_type)`` before the tables concat, so the pooled
    table is directly servable (``repro.service.cluster``) — a naive
    concat would alias unrelated relays that happen to share an index.
    The ``pooled`` *metrics* are identity-free (fractions and gains) and
    are unchanged by the remap; each entry section reports the
    unification census under ``cross_world``.
    """
    if isinstance(request, SweepConfig):
        warnings.warn(
            "run_sweep(SweepConfig) is deprecated; build a SweepRequest "
            "(SweepRequest.from_scenario / from_configs) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        request = SweepRequest.from_config(request)

    # pool workers record observability/profiles locally and ship them
    # back with their outcome; inline jobs record straight into the
    # driver's recorders (both no-ops when obs/profiling are off)
    fan_out = request.workers > 1
    obs_modes = (
        {"metrics": obs.metrics_on(), "trace": obs.tracing_on()}
        if fan_out and obs.active()
        else None
    )
    profile_dir = active_worker_dir() if fan_out else None
    jobs = []
    for entry in request.entries:
        world_config, campaign_config = _resolved_configs(request, entry)
        jobs.extend(
            (
                entry.label,
                world_config,
                campaign_config,
                seed,
                request.world_cache,
                request.use_world_cache,
                obs_modes,
                profile_dir,
            )
            for seed in entry.seeds
        )
    start = time.perf_counter()
    if request.workers == 1:
        outcomes = [_sweep_job(job) for job in jobs]
    else:
        with ProcessPoolExecutor(max_workers=request.workers) as pool:
            outcomes = list(pool.map(_sweep_job, jobs))
    wall_clock_s = time.perf_counter() - start
    if obs_modes is not None:
        # merge worker recorders; per-worker busy seconds (grouped by pool
        # pid) land in the sweep.worker.busy histogram = utilization view
        busy: dict[int, float] = {}
        for outcome in outcomes:
            shipped = outcome.pop("obs", None)
            if shipped is None:
                continue
            obs.merge_worker_payload(shipped["payload"])
            pid = shipped["pid"]
            busy[pid] = busy.get(pid, 0.0) + outcome["wall_clock_s"]
        for pid in sorted(busy):
            obs.observe("sweep.worker.busy", busy[pid])
    obs.inc("sweep.jobs", len(jobs))
    obs.set_gauge("sweep.workers", request.workers)

    tables = [ObservationTable.from_payload(o["columns"]) for o in outcomes]
    registries = [RelayRegistry.from_payload(o["registry"]) for o in outcomes]
    per_seed = [
        _metrics_from_columns(outcome, table)
        for outcome, table in zip(outcomes, tables)
    ]

    scenario_sections: dict[str, dict] = {}
    pooled_tables: dict[str, ObservationTable] = {}
    pooled_registries: dict[str, RelayRegistry] = {}
    lo = 0
    for entry in request.entries:
        hi = lo + len(entry.seeds)
        unified_tables, unified_registry, cross_world = unify_relay_identities(
            tables[lo:hi], registries[lo:hi]
        )
        pooled_table = ObservationTable.concat(unified_tables)
        pooled_metrics, shapes = scenario_report(pooled_table)
        scenario_sections[entry.label] = {
            "description": entry.scenario.description,
            "pooled": pooled_metrics,
            "shapes": shapes,
            "expectations": check_expectations(shapes, entry.scenario.expect),
            "aggregate": _aggregate(per_seed[lo:hi]),
            "cross_world": cross_world,
        }
        pooled_tables[entry.label] = pooled_table
        pooled_registries[entry.label] = unified_registry
        lo = hi

    shared = request.shared_seeds
    if shared is not None:
        workload = (
            f"{len(shared)}-seed x {len(request.entries)}-scenario "
            f"sweep, {request.rounds} rounds each"
        )
    else:
        workload = (
            f"{len(jobs)}-run x {len(request.entries)}-entry "
            f"sweep, {request.rounds} rounds each"
        )

    single = scenario_sections[request.entries[0].label] if (
        len(request.entries) == 1
    ) else None
    return SweepResult(
        workload=workload,
        config=_config_section(request),
        per_seed=tuple(per_seed),
        scenarios=scenario_sections,
        comparison=compare_scenarios(
            {name: section["pooled"] for name, section in scenario_sections.items()}
        ),
        shapes_ok=all(
            section["expectations"]["ok"] for section in scenario_sections.values()
        ),
        pooled=single["pooled"] if single is not None else None,
        aggregate=single["aggregate"] if single is not None else None,
        timing={
            "workers": request.workers,
            "world_cache": request.world_cache,
            "wall_clock_s": round(wall_clock_s, 3),
            "per_seed_s": [outcome["wall_clock_s"] for outcome in outcomes],
            "world_build_s": [outcome["world_build_s"] for outcome in outcomes],
            "campaign_s": [outcome["campaign_s"] for outcome in outcomes],
            "world_build": _pooled_clock_stats(
                [outcome["world_build_s"] for outcome in outcomes]
            ),
            "campaign": _pooled_clock_stats(
                [outcome["campaign_s"] for outcome in outcomes]
            ),
        },
        tables=pooled_tables,
        registries=pooled_registries,
    )
