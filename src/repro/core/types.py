"""Shared core vocabulary: the paper's four relay types."""

from __future__ import annotations

import enum


class RelayType(enum.Enum):
    """The relay categories the paper compares (Sec 2.2-2.3)."""

    # enum's default __hash__ is a Python-level function; members are
    # singletons, so identity hashing is equivalent and C-speed.  Result
    # packaging builds several small per-type dicts per pair observation,
    # which makes this hash one of the campaign's hottest calls.
    __hash__ = object.__hash__

    COR = "COR"
    """Colo relay: interface located in a colocation facility."""

    PLR = "PLR"
    """PlanetLab relay: node at a research site."""

    RAR_OTHER = "RAR_OTHER"
    """RIPE Atlas relay in a network *not* verified as an eyeball
    (often core/transit networks)."""

    RAR_EYE = "RAR_EYE"
    """RIPE Atlas relay in a verified eyeball network."""

    @property
    def display_name(self) -> str:
        """Label used in figures ("COR", "PLR", "RAR OTHER", "RAR EYE")."""
        return self.value.replace("_", " ")


#: Plot/report order used throughout (matches the paper's legends).
RELAY_TYPE_ORDER = (
    RelayType.COR,
    RelayType.PLR,
    RelayType.RAR_OTHER,
    RelayType.RAR_EYE,
)
