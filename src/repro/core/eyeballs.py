"""Endpoint selection at eyeball networks (Sec 2.1).

The selection runs in three stages, mirroring the paper:

1. **Coverage cutoff** — keep (ASN, country) tuples whose APNIC user
   coverage reaches the cutoff (the paper uses 10%, justified by the Fig. 1
   curve);
2. **Eyeball verification** — the paper manually checked each candidate's
   website for end-user services; our stand-in for that ground-truth check
   is the topology's AS role (enterprise networks face web users and appear
   in the coverage data, but are not eyeballs and fail this stage);
3. **Probe filtering and 2-step sampling** — keep RIPE Atlas probes with
   current firmware, publicly listed, connected, geolocated and stable over
   30 days; then, per round, sample one eyeball AS per country and one
   probe per sampled AS.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CampaignConfig
from repro.measurement.atlas import AtlasProbe
from repro.topology.types import ASType
from repro.world import World


class EyeballSelector:
    """Implements the Sec 2.1 endpoint-selection methodology."""

    def __init__(self, world: World, config: CampaignConfig) -> None:
        self._world = world
        self._cfg = config
        self._verified: set[tuple[int, str]] | None = None
        self._eligible: list[AtlasProbe] | None = None

    # ------------------------------------------------------------ stage 1+2

    def candidate_tuples(self) -> list[tuple[int, str]]:
        """(ASN, CC) tuples at or above the coverage cutoff (stage 1)."""
        return self._world.apnic.tuples_above(self._cfg.eyeball_cutoff_pct)

    def verified_tuples(self) -> set[tuple[int, str]]:
        """Tuples that also pass eyeball verification (stage 2)."""
        if self._verified is None:
            graph = self._world.graph
            self._verified = {
                (asn, cc)
                for asn, cc in self.candidate_tuples()
                if graph.get_as(asn).as_type is ASType.EYEBALL
            }
        return self._verified

    # --------------------------------------------------------------- stage 3

    def eligible_probes(self) -> list[AtlasProbe]:
        """Probes in verified eyeball tuples passing all platform filters."""
        if self._eligible is None:
            verified_asns = {asn for asn, _ in self.verified_tuples()}
            cfg = self._cfg
            atlas = self._world.atlas
            self._eligible = atlas.probes(
                min_firmware=self._world.config.infrastructure.latest_firmware,
                public_only=True,
                connected_only=True,
                geolocated_only=True,
                min_stability=cfg.min_probe_stability,
                asns=verified_asns,
            )
        return list(self._eligible)

    def covered_countries(self) -> list[str]:
        """Countries with at least one eligible endpoint probe."""
        return sorted({p.cc for p in self.eligible_probes()})

    def sample_endpoints(self, rng: np.random.Generator) -> list[AtlasProbe]:
        """One probe per country via the paper's 2-step sampling.

        Step (i): pick one eyeball AS per country uniformly among the
        country's represented ASes; step (ii): pick one probe uniformly
        inside the chosen AS.  This bounds endpoints per round to the
        number of covered countries while avoiding the bias of densely
        deployed eyeballs.
        """
        by_country: dict[str, dict[int, list[AtlasProbe]]] = {}
        for probe in self.eligible_probes():
            by_country.setdefault(probe.cc, {}).setdefault(probe.asn, []).append(probe)
        countries = sorted(by_country)
        if self._cfg.max_countries is not None and len(countries) > self._cfg.max_countries:
            idx = rng.choice(len(countries), size=self._cfg.max_countries, replace=False)
            countries = [countries[i] for i in sorted(idx)]
        sampled: list[AtlasProbe] = []
        for cc in countries:
            asn_map = by_country[cc]
            asns = sorted(asn_map)
            asn = asns[int(rng.integers(len(asns)))]
            probes = asn_map[asn]
            sampled.append(probes[int(rng.integers(len(probes)))])
        return sampled
