"""Colo relay selection: the five-filter pipeline of Sec 2.2.

Starting from the aged facility-mapping dataset, apply in order:

1. **Single-facility & active PeeringDB presence** — keep records whose
   candidate set converged to exactly one facility that still exists;
2. **Pingability** — keep addresses that still answer pings;
3. **Same IP-ownership** — keep addresses whose current prefix2as origin
   equals the recorded ASN and is not MOAS;
4. **Active facility presence of ASN** — keep addresses whose owner is
   still a member of the candidate facility per current PeeringDB;
5. **RTT-based geolocation** — keep addresses whose minimum last-hop RTT
   from looking glasses in the facility's city stays under the threshold
   (1 ms), using Periscope.

The pipeline reports per-stage survivor counts (the paper's
2675 -> 1008 -> 764 -> 725 -> 725 -> 356 funnel) and yields the verified
relay pool the campaign samples 1-3 IPs per facility from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import CampaignConfig
from repro.datasets.facility_mapping import FacilityMappingRecord
from repro.errors import MeasurementError
from repro.latency.model import Endpoint
from repro.measurement.nodes import MeasurementNode
from repro.topology.types import ASType
from repro.world import World


@dataclass(frozen=True, slots=True)
class VerifiedColoRelay:
    """A colo IP that survived all five filters.

    Attributes:
        node: The pingable interface.
        facility_id: The (verified) facility hosting it.
        record: The originating dataset row.
    """

    node: MeasurementNode
    facility_id: int
    record: FacilityMappingRecord


@dataclass(frozen=True, slots=True)
class FilterReport:
    """Survivor counts after each pipeline stage.

    ``stages`` maps stage name to the number of records still alive after
    the stage ran; ``initial`` is the dataset size going in.
    """

    initial: int
    stages: tuple[tuple[str, int], ...]

    def funnel(self) -> list[int]:
        """[initial, after-stage-1, ..., after-stage-5]."""
        return [self.initial] + [count for _, count in self.stages]

    def __str__(self) -> str:
        parts = [f"initial={self.initial}"]
        parts.extend(f"{name}={count}" for name, count in self.stages)
        return " -> ".join(parts)


class ColoRelayPipeline:
    """Runs the Sec 2.2 filters against a world's datasets."""

    STAGE_NAMES = (
        "single_facility_active_pdb",
        "pingability",
        "same_ip_ownership",
        "active_facility_presence",
        "rtt_geolocation",
    )

    def __init__(
        self,
        world: World,
        config: CampaignConfig | None = None,
        batch_geolocation: bool = True,
    ) -> None:
        self._world = world
        self._cfg = config or CampaignConfig()
        self._batch_geolocation = batch_geolocation
        self._verified: list[VerifiedColoRelay] | None = None
        self._report: FilterReport | None = None
        self._monitor = self._make_monitor_endpoint()

    def _make_monitor_endpoint(self) -> Endpoint:
        """A well-connected vantage the pipeline pings targets from
        (standing in for the authors' measurement server)."""
        tier1s = self._world.topology.asns_of_type(ASType.TRANSIT_GLOBAL)
        if not tier1s:
            raise MeasurementError("world has no tier-1 AS to host the monitor")
        asys = self._world.graph.get_as(tier1s[0])
        return Endpoint(
            node_id="pipeline-monitor",
            asn=asys.asn,
            city_key=asys.primary_city,
            access_ms=1.0,
            loss_prob=0.001,
        )

    # -------------------------------------------------------------- pipeline

    def run(self) -> tuple[list[VerifiedColoRelay], FilterReport]:
        """Execute all five filters; cached after the first call."""
        if self._verified is not None and self._report is not None:
            return list(self._verified), self._report
        world = self._world
        rng = world.seeds.rng("colo_pipeline")
        records = list(world.facility_mapping.records())
        initial = len(records)
        counts: list[tuple[str, int]] = []

        # 1. single facility, still present in PeeringDB
        records = [
            r
            for r in records
            if r.is_single_facility
            and world.peeringdb.has_facility(next(iter(r.candidate_facility_ids)))
        ]
        counts.append((self.STAGE_NAMES[0], len(records)))

        # 2. pingability (3 probe packets from the monitor, one batched
        # sweep over every candidate instead of one ping batch each)
        candidates = [
            (record, node)
            for record in records
            if (node := world.node_by_ip(record.ip)) is not None
        ]
        alive = world.ping_engine.any_response_many(
            [(self._monitor, node.endpoint) for _, node in candidates], rng
        )
        records = [record for (record, _), ok in zip(candidates, alive) if ok]
        counts.append((self.STAGE_NAMES[1], len(records)))

        # 3. same IP-ownership, no MOAS
        survivors = []
        for record in records:
            origins = set(world.prefix2as.origins(record.ip))
            if origins == {record.recorded_asn}:
                survivors.append(record)
        records = survivors
        counts.append((self.STAGE_NAMES[2], len(records)))

        # 4. owner still present at the facility
        records = [
            r
            for r in records
            if world.peeringdb.is_present(
                r.recorded_asn, next(iter(r.candidate_facility_ids))
            )
        ]
        counts.append((self.STAGE_NAMES[3], len(records)))

        # 5. RTT-based geolocation from same-city looking glasses
        threshold = world.config.datasets.geolocation_rtt_threshold_ms
        targets: list[tuple[FacilityMappingRecord, int, str, MeasurementNode]] = []
        for record in records:
            fac_id = next(iter(record.candidate_facility_ids))
            city_key = world.peeringdb.city_of(fac_id)
            node = world.node_by_ip(record.ip)
            assert node is not None  # survived the pingability filter
            targets.append((record, fac_id, city_key, node))
        if self._batch_geolocation:
            # resolve every (LG, target) leg's deterministic base/loss entry
            # in one batched pass; the scalar min-RTT loop below then hits a
            # warm pair cache and consumes the RNG exactly as the unbatched
            # loop would, so the verified pool is bit-identical (asserted in
            # tests/test_colo_pipeline.py) while the per-leg path resolution
            # — the pipeline's dominant one-time cost — runs vectorized
            world.latency.warm_pairs(
                [
                    (lg.node.endpoint, node.endpoint)
                    for _, _, city_key, node in targets
                    for lg in world.periscope.lgs_in(city_key)
                ]
            )
        verified: list[VerifiedColoRelay] = []
        for record, fac_id, city_key, node in targets:
            min_rtt = world.periscope.min_last_hop_rtt(node.endpoint, city_key, rng)
            if min_rtt is not None and min_rtt <= threshold:
                verified.append(
                    VerifiedColoRelay(node=node, facility_id=fac_id, record=record)
                )
        counts.append((self.STAGE_NAMES[4], len(verified)))

        self._verified = verified
        self._report = FilterReport(initial=initial, stages=tuple(counts))
        return list(verified), self._report

    # -------------------------------------------------------------- sampling

    def verified_relays(self) -> list[VerifiedColoRelay]:
        """The full verified pool (runs the pipeline if needed)."""
        relays, _ = self.run()
        return relays

    def report(self) -> FilterReport:
        """The per-stage survivor counts (runs the pipeline if needed)."""
        _, report = self.run()
        return report

    def facilities_covered(self) -> set[int]:
        """Facility ids with at least one verified relay."""
        return {relay.facility_id for relay in self.verified_relays()}

    def sample_relays(self, rng: np.random.Generator) -> list[VerifiedColoRelay]:
        """Per-round sample: 1-3 IPs per facility (Sec 2.2, last paragraph).

        Covers every facility with a verified relay while capturing
        within-facility variance.
        """
        low, high = self._cfg.colo_ips_per_facility
        by_facility: dict[int, list[VerifiedColoRelay]] = {}
        for relay in self.verified_relays():
            by_facility.setdefault(relay.facility_id, []).append(relay)
        sampled: list[VerifiedColoRelay] = []
        for fac_id in sorted(by_facility):
            pool = by_facility[fac_id]
            want = int(rng.integers(low, high + 1))
            take = min(want, len(pool))
            idx = rng.choice(len(pool), size=take, replace=False)
            sampled.extend(pool[i] for i in sorted(idx))
        return sampled
