"""Campaign result persistence.

The paper publishes its measurement data alongside the software; this
module provides the equivalent: a versioned JSON representation of a
:class:`~repro.core.results.CampaignResult` that round-trips exactly, so a
campaign can be run once and analysed many times (or shared).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.core.results import (
    CampaignResult,
    PairObservation,
    RelayRecord,
    RelayRegistry,
    RoundResult,
)
from repro.core.table import ObservationTable, TablePools
from repro.core.types import RelayType
from repro.errors import AnalysisError

#: Format version written into every file; bumped on breaking changes.
FORMAT_VERSION = 1


def _relay_to_json(record: RelayRecord) -> dict[str, Any]:
    return {
        "index": record.index,
        "node_id": record.node_id,
        "relay_type": record.relay_type.value,
        "asn": record.asn,
        "cc": record.cc,
        "city_key": record.city_key,
        "facility_id": record.facility_id,
        "site_id": record.site_id,
    }


def _obs_to_json(obs: PairObservation) -> dict[str, Any]:
    return {
        "round": obs.round_index,
        "e1": [obs.e1_id, obs.e1_cc, obs.e1_city],
        "e2": [obs.e2_id, obs.e2_cc, obs.e2_city],
        "direct": obs.direct_rtt_ms,
        "best": {t.value: list(v) for t, v in obs.best_by_type.items()},
        "improving": {
            t.value: [list(entry) for entry in entries]
            for t, entries in obs.improving_by_type.items()
            if entries
        },
        "feasible": {t.value: n for t, n in obs.feasible_by_type.items() if n},
        "groups": {
            t.value: list(flags) for t, flags in obs.country_groups_by_type.items()
        },
    }


def _obs_from_json(data: dict[str, Any]) -> PairObservation:
    improving = {
        RelayType(t): tuple((e[0], e[1]) for e in entries)
        for t, entries in data["improving"].items()
    }
    feasible = {RelayType(t): n for t, n in data["feasible"].items()}
    # empty entries are elided on save; restore them for exact round-trips
    for relay_type in RelayType:
        improving.setdefault(relay_type, ())
        feasible.setdefault(relay_type, 0)
    return PairObservation(
        round_index=data["round"],
        e1_id=data["e1"][0],
        e2_id=data["e2"][0],
        e1_cc=data["e1"][1],
        e2_cc=data["e2"][1],
        e1_city=data["e1"][2],
        e2_city=data["e2"][2],
        direct_rtt_ms=data["direct"],
        best_by_type={
            RelayType(t): (v[0], v[1]) for t, v in data["best"].items()
        },
        improving_by_type=improving,
        feasible_by_type=feasible,
        country_groups_by_type={
            RelayType(t): tuple(bool(f) for f in flags)
            for t, flags in data.get("groups", {}).items()
        },
    )


def save_result(result: CampaignResult, path: str | pathlib.Path) -> None:
    """Write a campaign result to ``path`` as versioned JSON."""
    payload = {
        "format_version": FORMAT_VERSION,
        "verified_eyeball_tuples": result.verified_eyeball_tuples,
        "colo_filter_funnel": list(result.colo_filter_funnel),
        "relays": [_relay_to_json(r) for r in result.registry],
        "rounds": [
            {
                "round_index": rnd.round_index,
                "timestamp_hours": rnd.timestamp_hours,
                "endpoint_ids": list(rnd.endpoint_ids),
                "relay_indices_by_type": {
                    t.value: list(indices)
                    for t, indices in rnd.relay_indices_by_type.items()
                },
                "observations": [_obs_to_json(o) for o in rnd.observations],
                "direct_medians": [
                    [k[0], k[1], v] for k, v in rnd.direct_medians.items()
                ],
                "relay_medians": (
                    [[k[0], k[1], v] for k, v in rnd.relay_medians.items()]
                    if rnd.relay_medians is not None
                    else None
                ),
                "pings_sent": rnd.pings_sent,
            }
            for rnd in result.rounds
        ],
    }
    pathlib.Path(path).write_text(json.dumps(payload))


def load_result(path: str | pathlib.Path) -> CampaignResult:
    """Read a campaign result previously written by :func:`save_result`.

    Raises:
        AnalysisError: on a missing file, bad JSON, or an unsupported
            format version.
    """
    file_path = pathlib.Path(path)
    if not file_path.exists():
        raise AnalysisError(f"no such result file: {file_path}")
    try:
        payload = json.loads(file_path.read_text())
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"{file_path} is not valid JSON: {exc}") from exc
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise AnalysisError(
            f"{file_path} has format version {version}; this build reads "
            f"{FORMAT_VERSION}"
        )

    registry = RelayRegistry()
    for relay in payload["relays"]:
        index = registry.register(
            relay["node_id"],
            RelayType(relay["relay_type"]),
            relay["asn"],
            relay["cc"],
            relay["city_key"],
            facility_id=relay["facility_id"],
            site_id=relay["site_id"],
        )
        if index != relay["index"]:
            raise AnalysisError(
                f"relay index mismatch in {file_path}: {index} != {relay['index']}"
            )

    rounds = []
    # one pools object across rounds so the campaign-level table
    # concatenation stays a plain array concatenate (as in a live campaign)
    pools = TablePools.fresh()
    for rnd in payload["rounds"]:
        rounds.append(
            RoundResult(
                round_index=rnd["round_index"],
                timestamp_hours=rnd["timestamp_hours"],
                endpoint_ids=tuple(rnd["endpoint_ids"]),
                relay_indices_by_type={
                    RelayType(t): tuple(indices)
                    for t, indices in rnd["relay_indices_by_type"].items()
                },
                table=ObservationTable.from_observations(
                    [_obs_from_json(o) for o in rnd["observations"]],
                    pools=pools,
                    cache_objects=True,
                ),
                direct_medians={
                    (entry[0], entry[1]): entry[2] for entry in rnd["direct_medians"]
                },
                relay_medians=(
                    {(entry[0], entry[1]): entry[2] for entry in rnd["relay_medians"]}
                    if rnd["relay_medians"] is not None
                    else None
                ),
                pings_sent=rnd["pings_sent"],
            )
        )
    return CampaignResult(
        rounds=rounds,
        registry=registry,
        verified_eyeball_tuples=payload["verified_eyeball_tuples"],
        colo_filter_funnel=tuple(payload["colo_filter_funnel"]),
    )
