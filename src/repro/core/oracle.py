"""History-based relay prediction (VIA-style baseline).

VIA (Jiang et al., SIGCOMM 2016) improves call quality by picking relays
from *history*: even when prediction misses the optimal relay, the optimal
one is usually among the top few predicted.  The paper cites this as the
practical way a real overlay would use its measurements, so we provide the
baseline: rank relays per endpoint-country-pair by how often they improved
that pair in past rounds, predict the top-k for the next round, and score
the prediction against that round's oracle-best relay.

Two implementations live here:

* :class:`LaneHistory` / :func:`evaluate_prediction` — the columnar path:
  history is accumulated and ranked as NumPy reductions over
  :class:`~repro.core.table.ObservationTable` columns (country pairs packed
  into int64 *lane* keys, per-lane relay counts ranked ``(-count, relay)``
  in one lexsort).  The serving layer (:mod:`repro.service`) compiles its
  relay directory through the same kernels (:func:`rank_lane_entries`,
  :func:`csr_top_k`), so service rankings and predictor rankings cannot
  drift apart.
* :class:`RelayPredictor` / :func:`evaluate_prediction_loop` — the original
  per-:class:`~repro.core.results.PairObservation` loops, kept as the
  reference implementation; the columnar path is asserted bit-equal to it
  (same ``PredictionScore`` fields, including the float sum) in
  ``tests/test_oracle_multihop.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import CampaignResult, PairObservation
from repro.core.table import ObservationTable
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.errors import AnalysisError


@dataclass(frozen=True, slots=True)
class PredictionScore:
    """Outcome of evaluating history-based prediction on one round.

    Attributes:
        evaluated: Pairs with both history and an improving relay in the
            evaluation round.
        hit_at_k: Pairs where the oracle-best relay was among the top-k
            predictions.
        captured_gain_frac: Fraction of the oracle-achievable improvement
            captured by the best *predicted* relay, averaged over pairs.
    """

    evaluated: int
    hit_at_k: int
    captured_gain_frac: float

    @property
    def hit_rate(self) -> float:
        """Fraction of evaluated pairs where prediction contained the
        oracle-best relay."""
        if self.evaluated == 0:
            return 0.0
        return self.hit_at_k / self.evaluated


class RelayPredictor:
    """Frequency-based relay prediction over campaign history.

    The *loop reference*: one dict update per observation, one sort per
    prediction.  The hot paths use :class:`LaneHistory` instead; this class
    stays as the semantics oracle the columnar path is tested against.
    """

    def __init__(self, relay_type: RelayType = RelayType.COR) -> None:
        self._relay_type = relay_type
        # (cc1, cc2) -> relay index -> improvement count
        self._history: dict[tuple[str, str], dict[int, int]] = {}

    @staticmethod
    def _pair_key(obs: PairObservation) -> tuple[str, str]:
        return (
            (obs.e1_cc, obs.e2_cc) if obs.e1_cc <= obs.e2_cc else (obs.e2_cc, obs.e1_cc)
        )

    def observe(self, obs: PairObservation) -> None:
        """Fold one observation into the history."""
        counts = self._history.setdefault(self._pair_key(obs), {})
        for idx, _ in obs.improving_by_type.get(self._relay_type, ()):
            counts[idx] = counts.get(idx, 0) + 1

    def predict(self, obs: PairObservation, k: int = 3) -> list[int]:
        """Top-k relay indices predicted for the observation's country pair.

        Raises:
            AnalysisError: if ``k`` is not positive.
        """
        if k < 1:
            raise AnalysisError(f"k must be >= 1, got {k}")
        counts = self._history.get(self._pair_key(obs), {})
        ranked = sorted(counts, key=lambda idx: (-counts[idx], idx))
        return ranked[:k]

    def has_history(self, obs: PairObservation) -> bool:
        """True if the observation's country pair has any history."""
        return bool(self._history.get(self._pair_key(obs)))


class LaneHistory:
    """Columnar relay history: per country-pair *lane*, relays ranked by
    how often they improved the lane.

    Built in three NumPy passes over a table's CSR improving block (filter,
    group-count, rank) instead of one dict update per observation.  Ranking
    is ``(-count, relay index)`` — identical to
    :meth:`RelayPredictor.predict`'s sort key — and lanes are canonical
    unordered country pairs, so the two implementations group and rank
    identically (asserted bit-equal in the tests).

    Attributes:
        lane_keys: ``(L,) int64`` sorted canonical country-pair keys
            (:meth:`ObservationTable.pack_pairs` over ``e1_cc``/``e2_cc``).
        indptr: ``(L+1,) int64`` CSR pointer into the ranked arrays.
        relays: ``(E,) int32`` relay registry indices, ranked per lane.
        counts: ``(E,) int32`` improvement count behind each ranked entry.
    """

    __slots__ = ("lane_keys", "indptr", "relays", "counts", "_pools")

    def __init__(
        self,
        lane_keys: np.ndarray,
        indptr: np.ndarray,
        relays: np.ndarray,
        counts: np.ndarray,
        pools=None,
    ) -> None:
        self.lane_keys = lane_keys
        self.indptr = indptr
        self.relays = relays
        self.counts = counts
        self._pools = pools

    @classmethod
    def from_table(
        cls,
        table: ObservationTable,
        relay_type: RelayType = RelayType.COR,
        case_mask: np.ndarray | None = None,
    ) -> LaneHistory:
        """Accumulate history from a table's improving entries.

        ``case_mask`` restricts which cases feed the history (the training
        rounds of an evaluation, or one round of an incremental ingest).
        """
        code = RELAY_TYPE_ORDER.index(relay_type)
        cases, relays, _ = table.type_entries(code)
        if case_mask is not None and cases.size:
            keep = case_mask[cases]
            cases, relays = cases[keep], relays[keep]
        if cases.size == 0:
            return cls(
                np.zeros(0, np.int64),
                np.zeros(1, np.int64),
                np.zeros(0, np.int32),
                np.zeros(0, np.int32),
                table.pools,
            )
        lanes = table.cc_pair_keys()[cases]
        lane_keys, indptr, ranked_relays, ranked_counts = rank_lane_entries(
            lanes, relays
        )
        return cls(lane_keys, indptr, ranked_relays, ranked_counts, table.pools)

    @property
    def num_lanes(self) -> int:
        """Number of country pairs with any history."""
        return self.lane_keys.shape[0]

    def lane_index(self, keys: np.ndarray) -> np.ndarray:
        """Per query key: the lane's row, or -1 when the lane is unknown."""
        pos = np.searchsorted(self.lane_keys, keys)
        pos_c = np.minimum(pos, max(self.lane_keys.size - 1, 0))
        found = (
            (pos < self.lane_keys.size) & (self.lane_keys[pos_c] == keys)
            if self.lane_keys.size
            else np.zeros(len(keys), bool)
        )
        return np.where(found, pos_c, -1)

    def top_k(self, lane_idx: np.ndarray, k: int) -> np.ndarray:
        """``(m, k) int32`` top-k ranked relays per lane row, -1 padded.

        Rows with ``lane_idx == -1`` (no history) are all -1.
        """
        return csr_top_k(self.indptr, lane_idx, k, (self.relays,), (-1,))[0]

    def predict_ccs(self, cc1: str, cc2: str, k: int = 3) -> list[int]:
        """Top-k relays for a country pair given as strings.

        The scalar convenience mirroring :meth:`RelayPredictor.predict`;
        unknown countries (or lanes with no history) predict empty.
        """
        if self._pools is None:
            raise AnalysisError("history was built without pools")
        a = self._pools.countries.lookup(cc1)
        b = self._pools.countries.lookup(cc2)
        if a < 0 or b < 0:
            if k < 1:
                raise AnalysisError(f"k must be >= 1, got {k}")
            return []
        key = np.asarray([(min(a, b) << 32) | max(a, b)], np.int64)
        row = self.top_k(self.lane_index(key), k)[0]
        return [int(r) for r in row if r >= 0]


def rank_lane_entries(
    lanes: np.ndarray,
    relays: np.ndarray,
    counts: np.ndarray | None = None,
    gains: np.ndarray | None = None,
) -> tuple[np.ndarray, ...]:
    """Group ``(lane, relay)`` rows and rank relays per lane.

    Returns ``(lane_keys, indptr, ranked_relays, ranked_counts[,
    ranked_gain_sums])`` — lanes sorted ascending, relays within a lane
    ordered by ``(-count, relay)``, the same total order
    :meth:`RelayPredictor.predict` sorts by.  ``counts`` defaults to one
    per row (occurrence counting); when ``gains`` is given, per-group gain
    sums are reduced alongside, in the rows' stable order (what makes the
    service's incremental recompiles bit-identical to full ones).  The
    shared kernel of every columnar history consumer: evaluation here,
    lane-block compilation in :mod:`repro.service.directory`.
    """
    order = np.lexsort((relays, lanes))  # stable: preserves row order
    lane_s, relay_s = lanes[order], relays[order]
    boundary = np.flatnonzero((np.diff(lane_s) != 0) | (np.diff(relay_s) != 0))
    starts = np.concatenate(([0], boundary + 1))
    uniq_lane = lane_s[starts]
    uniq_relay = relay_s[starts]
    if counts is None:
        total_count = np.diff(np.append(starts, lane_s.size)).astype(np.int64)
    else:
        total_count = np.add.reduceat(counts[order], starts)
    rank = np.lexsort((uniq_relay, -total_count, uniq_lane))
    ranked_lane = uniq_lane[rank]
    lane_starts = np.flatnonzero(np.diff(ranked_lane, prepend=-1))
    lane_keys = ranked_lane[lane_starts]
    indptr = np.append(lane_starts, ranked_lane.size).astype(np.int64)
    out = (
        lane_keys,
        indptr,
        uniq_relay[rank].astype(np.int32),
        total_count[rank].astype(np.int32),
    )
    if gains is None:
        return out
    return out + (np.add.reduceat(gains[order], starts)[rank],)


def csr_top_k(
    indptr: np.ndarray,
    lane_rows: np.ndarray,
    k: int,
    columns: tuple[np.ndarray, ...],
    fills: tuple,
) -> tuple[np.ndarray, ...]:
    """First ``k`` entries of each lane row from parallel CSR columns.

    Returns one ``(m, k)`` array per entry column, padded with the
    corresponding fill value past a lane's entry count; rows with
    ``lane_rows == -1`` are entirely padding.  Shared by
    :meth:`LaneHistory.top_k` and the service's ``LaneBlock.top_k``.

    Raises:
        AnalysisError: if ``k`` is not positive.
    """
    if k < 1:
        raise AnalysisError(f"k must be >= 1, got {k}")
    m = lane_rows.shape[0]
    out = tuple(
        np.full((m, k), fill, col.dtype) for col, fill in zip(columns, fills)
    )
    if m == 0 or int(indptr[-1]) == 0:
        return out
    safe = np.maximum(lane_rows, 0)
    starts = indptr[safe]
    lengths = np.where(lane_rows >= 0, indptr[safe + 1] - starts, 0)
    offsets = np.arange(k)[np.newaxis, :]
    take = offsets < lengths[:, np.newaxis]
    idx = starts[:, np.newaxis] + np.where(take, offsets, 0)
    for col, dst in zip(columns, out):
        dst[take] = col[idx][take]
    return out


def _first_max_per_segment(
    starts: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per CSR segment: (position of the first maximal value, the max).

    Mirrors ``max(d, key=d.get)`` over an insertion-ordered dict: ties keep
    the earliest entry.
    """
    seg_max = np.maximum.reduceat(values, starts)
    seg_len = np.diff(np.append(starts, values.size))
    pos = np.arange(values.size) - np.repeat(starts, seg_len)
    cand = np.where(values == np.repeat(seg_max, seg_len), pos, values.size)
    first = np.minimum.reduceat(cand, starts)
    return starts + first, seg_max


def evaluate_prediction(
    result: CampaignResult,
    relay_type: RelayType = RelayType.COR,
    k: int = 3,
) -> PredictionScore:
    """Train on all rounds but the last; evaluate on the last round.

    The columnar implementation: history via :class:`LaneHistory`, the
    evaluation round reduced segment-wise (oracle = first max-gain entry
    per case, predicted gain via one packed ``(case, relay)`` searchsorted)
    — bit-equal to :func:`evaluate_prediction_loop`, including the
    sequential float accumulation of ``captured_gain_frac``.

    Raises:
        AnalysisError: with fewer than 2 rounds, or non-positive ``k`` when
            any pair is evaluated (matching the loop's lazy validation).
    """
    if len(result.rounds) < 2:
        raise AnalysisError("prediction evaluation needs >= 2 rounds")
    table = result.table
    code = RELAY_TYPE_ORDER.index(relay_type)
    last_round = result.rounds[-1].round_index
    train_rounds = np.asarray(
        sorted({r.round_index for r in result.rounds[:-1]}), np.int64
    )
    train_mask = np.isin(table.round_idx, train_rounds)
    history = LaneHistory.from_table(table, relay_type, case_mask=train_mask)

    eval_mask = table.round_mask(last_round)
    cases, relays, gains = table.type_entries(code)
    if cases.size:
        keep = eval_mask[cases]
        cases, relays, gains = cases[keep], relays[keep], gains[keep]
    if cases.size == 0:
        return PredictionScore(evaluated=0, hit_at_k=0, captured_gain_frac=0.0)

    starts = np.flatnonzero(np.diff(cases, prepend=-1))
    ecases = cases[starts]
    lane_idx = history.lane_index(table.cc_pair_keys()[ecases])
    has_hist = lane_idx >= 0
    evaluated = int(np.count_nonzero(has_hist))
    if evaluated == 0:
        return PredictionScore(evaluated=0, hit_at_k=0, captured_gain_frac=0.0)
    if k < 1:
        raise AnalysisError(f"k must be >= 1, got {k}")

    oracle_at, oracle_gain = _first_max_per_segment(starts, gains)
    oracle_relay = relays[oracle_at]
    predicted = history.top_k(lane_idx, k)
    hits = np.any(predicted == oracle_relay[:, np.newaxis], axis=1) & has_hist

    # gains.get(relay, 0.0) for every (evaluated case, predicted relay):
    # one searchsorted over the packed (case << 32 | relay) entry keys
    pkey = (cases.astype(np.int64) << 32) | relays.astype(np.int64)
    order = np.argsort(pkey, kind="stable")
    pkey_s, gain_s = pkey[order], gains[order]
    flat_pred = predicted.reshape(-1)
    query = (
        np.repeat(ecases.astype(np.int64), k) << 32
    ) | np.maximum(flat_pred, 0).astype(np.int64)
    pos = np.minimum(np.searchsorted(pkey_s, query), pkey_s.size - 1)
    found = (pkey_s[pos] == query) & (flat_pred >= 0)
    pred_gain = np.where(found, gain_s[pos], 0.0).reshape(-1, k).max(axis=1)

    ratios = (pred_gain / oracle_gain)[has_hist]
    captured = float(sum(ratios.tolist()))  # sequential, like the loop's +=
    return PredictionScore(
        evaluated=evaluated,
        hit_at_k=int(np.count_nonzero(hits)),
        captured_gain_frac=captured / evaluated,
    )


def evaluate_prediction_loop(
    result: CampaignResult,
    relay_type: RelayType = RelayType.COR,
    k: int = 3,
) -> PredictionScore:
    """The original per-observation evaluation (reference implementation).

    Raises:
        AnalysisError: with fewer than 2 rounds.
    """
    if len(result.rounds) < 2:
        raise AnalysisError("prediction evaluation needs >= 2 rounds")
    predictor = RelayPredictor(relay_type)
    for rnd in result.rounds[:-1]:
        for obs in rnd.observations:
            predictor.observe(obs)

    evaluated = hits = 0
    captured = 0.0
    for obs in result.rounds[-1].observations:
        entries = obs.improving_by_type.get(relay_type, ())
        if not entries or not predictor.has_history(obs):
            continue
        evaluated += 1
        gains = dict(entries)
        oracle_idx = max(gains, key=lambda idx: gains[idx])
        predicted = predictor.predict(obs, k)
        if oracle_idx in predicted:
            hits += 1
        predicted_gain = max((gains.get(idx, 0.0) for idx in predicted), default=0.0)
        captured += predicted_gain / gains[oracle_idx]
    return PredictionScore(
        evaluated=evaluated,
        hit_at_k=hits,
        captured_gain_frac=captured / evaluated if evaluated else 0.0,
    )
