"""History-based relay prediction (VIA-style baseline).

VIA (Jiang et al., SIGCOMM 2016) improves call quality by picking relays
from *history*: even when prediction misses the optimal relay, the optimal
one is usually among the top few predicted.  The paper cites this as the
practical way a real overlay would use its measurements, so we provide the
baseline: rank relays per endpoint-country-pair by how often they improved
that pair in past rounds, predict the top-k for the next round, and score
the prediction against that round's oracle-best relay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import CampaignResult, PairObservation
from repro.core.types import RelayType
from repro.errors import AnalysisError


@dataclass(frozen=True, slots=True)
class PredictionScore:
    """Outcome of evaluating history-based prediction on one round.

    Attributes:
        evaluated: Pairs with both history and an improving relay in the
            evaluation round.
        hit_at_k: Pairs where the oracle-best relay was among the top-k
            predictions.
        captured_gain_frac: Fraction of the oracle-achievable improvement
            captured by the best *predicted* relay, averaged over pairs.
    """

    evaluated: int
    hit_at_k: int
    captured_gain_frac: float

    @property
    def hit_rate(self) -> float:
        """Fraction of evaluated pairs where prediction contained the
        oracle-best relay."""
        if self.evaluated == 0:
            return 0.0
        return self.hit_at_k / self.evaluated


class RelayPredictor:
    """Frequency-based relay prediction over campaign history."""

    def __init__(self, relay_type: RelayType = RelayType.COR) -> None:
        self._relay_type = relay_type
        # (cc1, cc2) -> relay index -> improvement count
        self._history: dict[tuple[str, str], dict[int, int]] = {}

    @staticmethod
    def _pair_key(obs: PairObservation) -> tuple[str, str]:
        return (
            (obs.e1_cc, obs.e2_cc) if obs.e1_cc <= obs.e2_cc else (obs.e2_cc, obs.e1_cc)
        )

    def observe(self, obs: PairObservation) -> None:
        """Fold one observation into the history."""
        counts = self._history.setdefault(self._pair_key(obs), {})
        for idx, _ in obs.improving_by_type.get(self._relay_type, ()):
            counts[idx] = counts.get(idx, 0) + 1

    def predict(self, obs: PairObservation, k: int = 3) -> list[int]:
        """Top-k relay indices predicted for the observation's country pair.

        Raises:
            AnalysisError: if ``k`` is not positive.
        """
        if k < 1:
            raise AnalysisError(f"k must be >= 1, got {k}")
        counts = self._history.get(self._pair_key(obs), {})
        ranked = sorted(counts, key=lambda idx: (-counts[idx], idx))
        return ranked[:k]

    def has_history(self, obs: PairObservation) -> bool:
        """True if the observation's country pair has any history."""
        return bool(self._history.get(self._pair_key(obs)))


def evaluate_prediction(
    result: CampaignResult,
    relay_type: RelayType = RelayType.COR,
    k: int = 3,
) -> PredictionScore:
    """Train on all rounds but the last; evaluate on the last round.

    Raises:
        AnalysisError: with fewer than 2 rounds.
    """
    if len(result.rounds) < 2:
        raise AnalysisError("prediction evaluation needs >= 2 rounds")
    predictor = RelayPredictor(relay_type)
    for rnd in result.rounds[:-1]:
        for obs in rnd.observations:
            predictor.observe(obs)

    evaluated = hits = 0
    captured = 0.0
    for obs in result.rounds[-1].observations:
        entries = obs.improving_by_type.get(relay_type, ())
        if not entries or not predictor.has_history(obs):
            continue
        evaluated += 1
        gains = dict(entries)
        oracle_idx = max(gains, key=lambda idx: gains[idx])
        predicted = predictor.predict(obs, k)
        if oracle_idx in predicted:
            hits += 1
        predicted_gain = max((gains.get(idx, 0.0) for idx in predicted), default=0.0)
        captured += predicted_gain / gains[oracle_idx]
    return PredictionScore(
        evaluated=evaluated,
        hit_at_k=hits,
        captured_gain_frac=captured / evaluated if evaluated else 0.0,
    )
