"""Columnar observation storage: the campaign's results as NumPy columns.

The paper's unit of analysis is the *case* — one endpoint pair in one
round.  A campaign produces tens of thousands of them, and every analysis
is a reduction over the whole set (fractions, medians, CDFs, rankings).
Packaging each case into a :class:`~repro.core.results.PairObservation`
object at the round boundary therefore throws away the matrix shape the
measurement engine already computed, only for the analyses to re-iterate
the objects in pure Python.

:class:`ObservationTable` keeps the campaign matrix-shaped end to end:
a structure-of-arrays layout with one int/float/bool column per field,
string identities (probe ids, country codes, cities) interned to integer
codes, and the ragged per-case improving-relay lists stored as one CSR
block (``imp_indptr`` over ``case * num_types + type_code`` groups into
flat ``imp_relay`` / ``imp_gain`` arrays).  The stitching step fills the
columns directly from the matrices it already holds; analyses reduce them
with NumPy; :class:`PairObservation` objects survive as a *lazily
materialized adapter* for callers that want per-case records.

Tables are cheap to ship between processes (a handful of flat arrays —
see :meth:`ObservationTable.to_payload`), which is what the multi-seed
sweep uses to return whole campaigns from worker processes without
pickling object lists.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.types import RELAY_TYPE_ORDER
from repro.errors import AnalysisError
from repro.geo.countries import continent_of

if TYPE_CHECKING:  # circular at runtime: results.py holds tables
    from repro.core.results import PairObservation

#: Number of relay-type lanes every per-type column carries.
NUM_RELAY_TYPES = len(RELAY_TYPE_ORDER)

#: Order of the four country-group flags in the ``country_flags`` column
#: (matches ``PairObservation.country_groups_by_type`` tuples).
COUNTRY_FLAG_LABELS = (
    "usable_same_cc",
    "improving_same_cc",
    "usable_diff_cc",
    "improving_diff_cc",
)


class Interner:
    """Append-only string pool mapping strings to stable integer codes."""

    __slots__ = ("_code_of", "values")

    def __init__(self, values: Iterable[str] = ()) -> None:
        self.values: list[str] = []
        self._code_of: dict[str, int] = {}
        for value in values:
            self.code(value)

    def code(self, value: str) -> int:
        """The value's code, interning it on first sight."""
        code = self._code_of.get(value)
        if code is None:
            code = len(self.values)
            self._code_of[value] = code
            self.values.append(value)
        return code

    def codes(self, values: Iterable[str]) -> np.ndarray:
        """Codes for a value sequence as an ``int32`` array."""
        code = self.code
        return np.fromiter((code(v) for v in values), np.int32)

    def lookup(self, value: str) -> int:
        """The value's code without interning it; -1 when unknown."""
        return self._code_of.get(value, -1)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, code: int) -> str:
        return self.values[code]


@dataclass(frozen=True, slots=True)
class TablePools:
    """The three string pools a table's integer codes point into.

    One pools object is shared by every round table of a campaign (and by
    their concatenation), so codes are globally consistent and
    concatenation is a plain array concatenate.
    """

    endpoint_ids: Interner
    countries: Interner
    cities: Interner

    @classmethod
    def fresh(cls) -> TablePools:
        return cls(Interner(), Interner(), Interner())


class ObservationTable:
    """Structure-of-arrays storage for a set of pair observations.

    Columns (``n`` = cases, ``T`` = :data:`NUM_RELAY_TYPES`):

    * ``round_idx`` — ``(n,) int32`` round of each case;
    * ``e1_id`` / ``e2_id`` — ``(n,) int32`` endpoint-id pool codes;
    * ``e1_cc`` / ``e2_cc`` — ``(n,) int32`` country pool codes;
    * ``e1_city`` / ``e2_city`` — ``(n,) int32`` city pool codes;
    * ``direct_rtt_ms`` — ``(n,) float64`` direct-path medians;
    * ``best_relay`` — ``(T, n) int32`` registry index of the type's best
      usable relay, ``-1`` when the type had none;
    * ``best_stitched`` — ``(T, n) float64`` its stitched RTT (NaN = none);
    * ``feasible`` — ``(T, n) int32`` relays passing the Sec 2.4 bound;
    * ``country_flags`` — ``(T, 4, n) bool`` in
      :data:`COUNTRY_FLAG_LABELS` order;
    * ``imp_indptr`` / ``imp_relay`` / ``imp_gain`` — CSR block of the
      ragged improving-relay lists: group ``i * T + c`` holds case ``i``'s
      type-``c`` entries, ``imp_relay`` is the registry index and
      ``imp_gain`` the improvement in ms.
    """

    __slots__ = (
        "pools",
        "round_idx",
        "e1_id",
        "e2_id",
        "e1_cc",
        "e2_cc",
        "e1_city",
        "e2_city",
        "direct_rtt_ms",
        "best_relay",
        "best_stitched",
        "feasible",
        "country_flags",
        "imp_indptr",
        "imp_relay",
        "imp_gain",
        "_imp_counts",
        "_type_entries",
        "_materialized",
    )

    _ARRAY_FIELDS = (
        "round_idx",
        "e1_id",
        "e2_id",
        "e1_cc",
        "e2_cc",
        "e1_city",
        "e2_city",
        "direct_rtt_ms",
        "best_relay",
        "best_stitched",
        "feasible",
        "country_flags",
        "imp_indptr",
        "imp_relay",
        "imp_gain",
    )

    def __init__(self, pools: TablePools, **columns: np.ndarray) -> None:
        self.pools = pools
        for name in self._ARRAY_FIELDS:
            setattr(self, name, columns[name])
        n = self.round_idx.shape[0]
        if self.best_relay.shape != (NUM_RELAY_TYPES, n):
            raise AnalysisError(
                f"best_relay shape {self.best_relay.shape} != ({NUM_RELAY_TYPES}, {n})"
            )
        if self.imp_indptr.shape[0] != n * NUM_RELAY_TYPES + 1:
            raise AnalysisError(
                f"imp_indptr length {self.imp_indptr.shape[0]} != "
                f"{n * NUM_RELAY_TYPES + 1}"
            )
        self._imp_counts: np.ndarray | None = None
        self._type_entries: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._materialized: list[PairObservation] | None = None

    # ------------------------------------------------------------ basic shape

    @property
    def num_cases(self) -> int:
        """Number of cases (rows) in the table."""
        return self.round_idx.shape[0]

    @classmethod
    def empty(cls, pools: TablePools | None = None) -> ObservationTable:
        """A zero-case table (e.g. a round that measured nothing)."""
        pools = pools or TablePools.fresh()
        i32 = np.zeros(0, np.int32)
        return cls(
            pools,
            round_idx=i32,
            e1_id=i32,
            e2_id=i32,
            e1_cc=i32,
            e2_cc=i32,
            e1_city=i32,
            e2_city=i32,
            direct_rtt_ms=np.zeros(0, float),
            best_relay=np.full((NUM_RELAY_TYPES, 0), -1, np.int32),
            best_stitched=np.full((NUM_RELAY_TYPES, 0), np.nan),
            feasible=np.zeros((NUM_RELAY_TYPES, 0), np.int32),
            country_flags=np.zeros((NUM_RELAY_TYPES, 4, 0), bool),
            imp_indptr=np.zeros(1, np.int64),
            imp_relay=np.zeros(0, np.int32),
            imp_gain=np.zeros(0, float),
        )

    # ------------------------------------------------------- column reductions

    def improving_counts(self) -> np.ndarray:
        """``(T, n)`` number of improving relays per case and type."""
        if self._imp_counts is None:
            counts = np.diff(self.imp_indptr)
            self._imp_counts = (
                counts.reshape(self.num_cases, NUM_RELAY_TYPES).T.copy()
            )
        return self._imp_counts

    def improved_mask(self, type_code: int) -> np.ndarray:
        """``(n,)`` bool: did any relay of the type beat the direct path?"""
        return self.improving_counts()[type_code] > 0

    def improved_count(self, type_code: int) -> int:
        """How many cases the type improved (served from cached counts)."""
        return int(np.count_nonzero(self.improved_mask(type_code)))

    def type_entries(self, type_code: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The type's improving entries as ``(case_idx, relay, gain)`` arrays.

        Entries are ordered by case, and within a case in the round's relay
        order — exactly the order the object path iterates them.
        """
        cached = self._type_entries.get(type_code)
        if cached is not None:
            return cached
        counts = self.improving_counts()[type_code]
        cases = np.repeat(np.nonzero(counts)[0], counts[counts > 0])
        groups = cases.astype(np.int64) * NUM_RELAY_TYPES + type_code
        starts = self.imp_indptr[groups]
        # per-entry offset within its group: 0,1,... per run of equal cases
        offsets = np.arange(cases.size) - np.repeat(
            np.concatenate(([0], np.cumsum(counts[counts > 0])))[:-1],
            counts[counts > 0],
        )
        idx = starts + offsets
        entry = (cases, self.imp_relay[idx], self.imp_gain[idx])
        self._type_entries[type_code] = entry
        return entry

    def best_gain_per_improved_case(
        self, type_code: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per improved case (in case order): ``(case_idx, max gain)``.

        The columnar translation of ``max(gain for _, gain in entries)``
        over each case's improving list — identical floats, since the max
        of a set does not depend on reduction order.
        """
        cases, _, gains = self.type_entries(type_code)
        if cases.size == 0:
            return cases, gains
        starts = np.flatnonzero(np.diff(cases, prepend=-1))
        return cases[starts], np.maximum.reduceat(gains, starts)

    # ------------------------------------------------------- lane accessors
    #
    # The serving layer (:mod:`repro.service`) and the columnar history
    # predictor group cases into *lanes*: an unordered endpoint or country
    # pair packed into one int64 key.  Packing is (min << 32) | max over the
    # two codes, so a lane key is a pure function of the unordered pair and
    # two cases land in the same lane iff they connect the same pair —
    # regardless of which side the table stored as e1/e2.

    @staticmethod
    def pack_pairs(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Canonical int64 lane keys for two parallel code columns."""
        lo = np.minimum(a, b).astype(np.int64)
        hi = np.maximum(a, b).astype(np.int64)
        return (lo << 32) | hi

    @staticmethod
    def unpack_pair(key: int) -> tuple[int, int]:
        """The (low, high) codes a :meth:`pack_pairs` key was built from."""
        return int(key) >> 32, int(key) & 0xFFFFFFFF

    def cc_pair_keys(self) -> np.ndarray:
        """``(n,) int64`` canonical country-pair lane key per case."""
        return self.pack_pairs(self.e1_cc, self.e2_cc)

    def endpoint_pair_keys(self) -> np.ndarray:
        """``(n,) int64`` canonical endpoint-pair lane key per case."""
        return self.pack_pairs(self.e1_id, self.e2_id)

    def round_values(self) -> np.ndarray:
        """Sorted unique round indices present in the table."""
        return np.unique(self.round_idx)

    def round_mask(self, round_index: int) -> np.ndarray:
        """``(n,) bool`` mask selecting one round's cases."""
        return self.round_idx == round_index

    def country_codes_for(self, ccs: Iterable[str]) -> np.ndarray:
        """Codes (in this table's country pool) for a cc sequence.

        Used to translate relay-registry countries into the same code
        space as the ``e1_cc`` / ``e2_cc`` columns.  Read-only: a country
        absent from the pool maps to -1 (it can never equal an endpoint's
        code), leaving the shared pools untouched by analyses.
        """
        lookup = self.pools.countries.lookup
        return np.fromiter((lookup(cc) for cc in ccs), np.int32)

    def continent_codes(self) -> np.ndarray:
        """Per country-pool entry: an integer continent code."""
        continents = Interner()
        return np.fromiter(
            (continents.code(continent_of(cc)) for cc in self.pools.countries.values),
            np.int32,
            len(self.pools.countries),
        )

    # --------------------------------------------------------- materialization

    def observation(self, i: int) -> PairObservation:
        """Materialize case ``i`` as a :class:`PairObservation`."""
        from repro.core.results import PairObservation

        pools = self.pools
        ptr = self.imp_indptr
        base = i * NUM_RELAY_TYPES
        best: dict = {}
        improving: dict = {}
        feasible: dict = {}
        groups: dict = {}
        for code, relay_type in enumerate(RELAY_TYPE_ORDER):
            relay = int(self.best_relay[code, i])
            if relay >= 0:
                best[relay_type] = (relay, float(self.best_stitched[code, i]))
            j0, j1 = int(ptr[base + code]), int(ptr[base + code + 1])
            improving[relay_type] = tuple(
                zip(self.imp_relay[j0:j1].tolist(), self.imp_gain[j0:j1].tolist())
            )
            feasible[relay_type] = int(self.feasible[code, i])
            groups[relay_type] = tuple(self.country_flags[code, :, i].tolist())
        return PairObservation(
            round_index=int(self.round_idx[i]),
            e1_id=pools.endpoint_ids[self.e1_id[i]],
            e2_id=pools.endpoint_ids[self.e2_id[i]],
            e1_cc=pools.countries[self.e1_cc[i]],
            e2_cc=pools.countries[self.e2_cc[i]],
            e1_city=pools.cities[self.e1_city[i]],
            e2_city=pools.cities[self.e2_city[i]],
            direct_rtt_ms=float(self.direct_rtt_ms[i]),
            best_by_type=best,
            improving_by_type=improving,
            feasible_by_type=feasible,
            country_groups_by_type=groups,
        )

    def materialized(self) -> list[PairObservation]:
        """All cases as objects; built once and cached on the table."""
        if self._materialized is None:
            self._materialized = [self.observation(i) for i in range(self.num_cases)]
        return self._materialized

    def __iter__(self) -> Iterator[PairObservation]:
        return iter(self.materialized())

    def __len__(self) -> int:
        return self.num_cases

    # ---------------------------------------------------------- constructors

    @classmethod
    def from_observations(
        cls,
        observations: Sequence[PairObservation],
        pools: TablePools | None = None,
        cache_objects: bool = False,
    ) -> ObservationTable:
        """Build a table from existing objects (result files, tests).

        The adapter direction: object in, columns out.  Missing per-type
        entries get the same defaults the campaign writes (no best relay,
        zero feasible, all-false country flags, empty improving list).
        ``cache_objects`` seeds the table's materialized-object cache with
        the input list, so a caller that already paid for the objects
        (the result-file loader) never rebuilds them.
        """
        pools = pools or TablePools.fresh()
        n = len(observations)
        if n == 0:
            return cls.empty(pools)
        round_idx = np.fromiter((o.round_index for o in observations), np.int32, n)
        e1_id = pools.endpoint_ids.codes(o.e1_id for o in observations)
        e2_id = pools.endpoint_ids.codes(o.e2_id for o in observations)
        e1_cc = pools.countries.codes(o.e1_cc for o in observations)
        e2_cc = pools.countries.codes(o.e2_cc for o in observations)
        e1_city = pools.cities.codes(o.e1_city for o in observations)
        e2_city = pools.cities.codes(o.e2_city for o in observations)
        direct = np.fromiter((o.direct_rtt_ms for o in observations), float, n)
        best_relay = np.full((NUM_RELAY_TYPES, n), -1, np.int32)
        best_stitched = np.full((NUM_RELAY_TYPES, n), np.nan)
        feasible = np.zeros((NUM_RELAY_TYPES, n), np.int32)
        country_flags = np.zeros((NUM_RELAY_TYPES, 4, n), bool)
        indptr = np.zeros(n * NUM_RELAY_TYPES + 1, np.int64)
        imp_relay: list[int] = []
        imp_gain: list[float] = []
        for i, obs in enumerate(observations):
            for code, relay_type in enumerate(RELAY_TYPE_ORDER):
                entry = obs.best_by_type.get(relay_type)
                if entry is not None:
                    best_relay[code, i] = entry[0]
                    best_stitched[code, i] = entry[1]
                feasible[code, i] = obs.feasible_by_type.get(relay_type, 0)
                flags = obs.country_groups_by_type.get(relay_type)
                if flags is not None:
                    country_flags[code, :, i] = flags
                entries = obs.improving_by_type.get(relay_type, ())
                for relay, gain in entries:
                    imp_relay.append(relay)
                    imp_gain.append(gain)
                indptr[i * NUM_RELAY_TYPES + code + 1] = len(imp_relay)
        table = cls(
            pools,
            round_idx=round_idx,
            e1_id=e1_id,
            e2_id=e2_id,
            e1_cc=e1_cc,
            e2_cc=e2_cc,
            e1_city=e1_city,
            e2_city=e2_city,
            direct_rtt_ms=direct,
            best_relay=best_relay,
            best_stitched=best_stitched,
            feasible=feasible,
            country_flags=country_flags,
            imp_indptr=indptr,
            imp_relay=np.asarray(imp_relay, np.int32),
            imp_gain=np.asarray(imp_gain, float),
        )
        if cache_objects:
            table._materialized = list(observations)
        return table

    @classmethod
    def concat(cls, tables: Sequence[ObservationTable]) -> ObservationTable:
        """Concatenate round tables into one campaign table.

        Tables sharing one pools object (the campaign case) concatenate
        without touching any codes; tables with distinct pools (e.g. sweep
        payloads from different seeds) are re-coded into a fresh union
        pool first.
        """
        tables = [t for t in tables]
        if not tables:
            return cls.empty()
        if len(tables) == 1:
            return tables[0]
        shared = all(t.pools is tables[0].pools for t in tables)
        if shared:
            pools = tables[0].pools
            remaps = None
        else:
            pools = TablePools.fresh()
            remaps = [
                {
                    "id": pools.endpoint_ids.codes(t.pools.endpoint_ids.values),
                    "cc": pools.countries.codes(t.pools.countries.values),
                    "city": pools.cities.codes(t.pools.cities.values),
                }
                for t in tables
            ]

        def col(name: str, idx: int, table: ObservationTable) -> np.ndarray:
            arr = getattr(table, name)
            if remaps is None:
                return arr
            remap = remaps[idx]
            if name in ("e1_id", "e2_id"):
                return remap["id"][arr] if arr.size else arr
            if name in ("e1_cc", "e2_cc"):
                return remap["cc"][arr] if arr.size else arr
            if name in ("e1_city", "e2_city"):
                return remap["city"][arr] if arr.size else arr
            return arr

        columns: dict[str, np.ndarray] = {}
        for name in cls._ARRAY_FIELDS:
            if name == "imp_indptr":
                continue
            axis = -1 if name in ("best_relay", "best_stitched", "feasible", "country_flags") else 0
            columns[name] = np.concatenate(
                [col(name, i, t) for i, t in enumerate(tables)], axis=axis
            )
        parts = [tables[0].imp_indptr]
        offset = int(tables[0].imp_indptr[-1])
        for t in tables[1:]:
            parts.append(t.imp_indptr[1:] + offset)
            offset += int(t.imp_indptr[-1])
        columns["imp_indptr"] = np.concatenate(parts)
        return cls(pools, **columns)

    def remap_relays(self, mapping: np.ndarray) -> ObservationTable:
        """A copy with every relay registry index sent through ``mapping``.

        ``mapping`` maps this table's registry indices to another
        registry's (see :meth:`repro.core.results.RelayRegistry.absorb`);
        ``-1`` sentinels in ``best_relay`` are preserved.  String pools
        are shared with the original, so concatenating remapped tables
        from different seeds still goes through the union-pool path.
        """
        columns = {name: getattr(self, name) for name in self._ARRAY_FIELDS}
        if self.imp_relay.size:
            columns["imp_relay"] = mapping[self.imp_relay].astype(np.int32)
        best = self.best_relay.copy()
        known = best >= 0
        if known.any():
            best[known] = mapping[best[known]]
        columns["best_relay"] = best
        return type(self)(self.pools, **columns)

    # ------------------------------------------------------------- transport

    def to_payload(self) -> dict[str, Any]:
        """A compact, picklable representation (flat arrays + pools).

        This is what sweep workers send back over IPC: a dozen contiguous
        buffers instead of one Python object per case.
        """
        return {
            "pools": {
                "endpoint_ids": list(self.pools.endpoint_ids.values),
                "countries": list(self.pools.countries.values),
                "cities": list(self.pools.cities.values),
            },
            "columns": {name: getattr(self, name) for name in self._ARRAY_FIELDS},
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> ObservationTable:
        """Rebuild a table from :meth:`to_payload` output."""
        pools = TablePools(
            Interner(payload["pools"]["endpoint_ids"]),
            Interner(payload["pools"]["countries"]),
            Interner(payload["pools"]["cities"]),
        )
        return cls(pools, **payload["columns"])

    # -------------------------------------------------------------- equality

    def columns_equal(self, other: ObservationTable) -> bool:
        """True if both tables hold identical decoded content.

        Codes are compared *decoded* (through the pools), so two tables
        built with different interning orders still compare equal when
        they describe the same observations.
        """
        if self.num_cases != other.num_cases:
            return False
        for name, pool in (
            ("e1_id", "endpoint_ids"),
            ("e2_id", "endpoint_ids"),
            ("e1_cc", "countries"),
            ("e2_cc", "countries"),
            ("e1_city", "cities"),
            ("e2_city", "cities"),
        ):
            mine = [getattr(self.pools, pool)[c] for c in getattr(self, name)]
            theirs = [getattr(other.pools, pool)[c] for c in getattr(other, name)]
            if mine != theirs:
                return False
        for name in ("round_idx", "best_relay", "feasible", "country_flags",
                     "imp_indptr", "imp_relay"):
            if not np.array_equal(getattr(self, name), getattr(other, name)):
                return False
        for name in ("direct_rtt_ms", "best_stitched", "imp_gain"):
            if not np.array_equal(
                getattr(self, name), getattr(other, name), equal_nan=True
            ):
                return False
        return True
