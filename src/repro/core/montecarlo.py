"""Monte-Carlo scenario manager: sample configs, bound the paper's claims.

The enumerated preset x seed sweeps answer "does the paper's shape hold
under these hand-picked regimes"; this module answers the stronger
question "with what *probability* does each claim hold when the regime
itself is uncertain".  A :class:`~repro.scenarios.regimes.Regime` attaches
parameter distributions (:class:`ParamSpec`) to a base scenario's
``WorldConfig``/``CampaignConfig`` knobs; :class:`MonteCarloManager`
samples complete configurations from them, fans each batch of draws out
through the typed sweep runner (:class:`~repro.core.sweep.SweepRequest`,
one entry per draw, so the whole fan-out parallelizes and reuses the
world-snapshot cache across draws that share a config digest), computes
the paper-shape metrics per draw and keeps drawing adaptive batches until
the bootstrap confidence intervals on every tracked metric — and the
Wilson intervals on every claim-hold probability — are tighter than the
configured half-width targets (or a hard draw cap trips, recorded in the
convergence report).

Determinism is per-draw, not per-run: draw ``i`` samples everything it
needs (the world seed, then one value per spec, in spec order) from the
dedicated ``montecarlo.draw{i}`` stream of the manager's root seed, so
the sampled sequence is invariant to batch size and worker count, and
the emitted artifact is byte-identical across runs
(``tests/test_montecarlo.py`` asserts all three).
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from repro import obs
from repro.analysis.montecarlo import draw_metrics, risk_summary, summary_converged
from repro.core.sweep import SweepEntry, SweepRequest, run_sweep
from repro.errors import ConfigError
from repro.util.rand import derive_rng

if TYPE_CHECKING:
    from repro.scenarios.regimes import Regime

#: Distribution kinds a :class:`ParamSpec` can draw from.
PARAM_KINDS = ("uniform", "log_uniform", "choice")

#: Prefixes a spec target may address (the two config trees a
#: :class:`~repro.scenarios.Scenario` bundles).
_TARGET_ROOTS = ("world", "campaign")


@dataclass(frozen=True, slots=True)
class ParamSpec:
    """A distribution over one configuration knob.

    Attributes:
        target: Dotted path into the scenario's configs, rooted at
            ``world`` or ``campaign`` — e.g.
            ``"world.latency.jitter_sigma"`` or
            ``"campaign.pings_per_pair"``.
        kind: ``"uniform"`` (float in ``[low, high)``), ``"log_uniform"``
            (float whose log is uniform — scale parameters), or
            ``"choice"`` (one of ``choices``, uniformly).
        low / high: Bounds for the numeric kinds.
        choices: The candidate values for ``"choice"``.
        integer: Round ``uniform`` draws to int (e.g. round counts).
    """

    target: str
    kind: str
    low: float | None = None
    high: float | None = None
    choices: tuple = ()
    integer: bool = False

    def __post_init__(self) -> None:
        root, _, rest = self.target.partition(".")
        if root not in _TARGET_ROOTS or not rest:
            raise ConfigError(
                f"param target must be '<root>.<field>[...]' with root in "
                f"{_TARGET_ROOTS}, got {self.target!r}"
            )
        if self.kind not in PARAM_KINDS:
            raise ConfigError(
                f"param kind must be one of {PARAM_KINDS}, got {self.kind!r}"
            )
        if self.kind == "choice":
            if not self.choices:
                raise ConfigError(f"choice param {self.target!r} needs choices")
            if self.low is not None or self.high is not None:
                raise ConfigError(
                    f"choice param {self.target!r} takes choices, not low/high"
                )
        else:
            if self.low is None or self.high is None:
                raise ConfigError(
                    f"{self.kind} param {self.target!r} needs low and high"
                )
            if not self.low < self.high:
                raise ConfigError(
                    f"{self.kind} param {self.target!r}: low {self.low} must be "
                    f"< high {self.high}"
                )
            if self.kind == "log_uniform" and self.low <= 0:
                raise ConfigError(
                    f"log_uniform param {self.target!r} needs low > 0, "
                    f"got {self.low}"
                )
            if self.integer and self.kind != "uniform":
                raise ConfigError(
                    f"integer rounding only applies to uniform params "
                    f"({self.target!r} is {self.kind})"
                )

    def sample(self, rng) -> Any:
        """Draw one value from the spec's distribution."""
        if self.kind == "choice":
            return self.choices[int(rng.integers(len(self.choices)))]
        if self.kind == "log_uniform":
            return float(
                math.exp(rng.uniform(math.log(self.low), math.log(self.high)))
            )
        value = rng.uniform(self.low, self.high)
        return int(round(value)) if self.integer else float(value)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready description (the artifact's ``params`` section)."""
        out: dict[str, Any] = {"target": self.target, "kind": self.kind}
        if self.kind == "choice":
            out["choices"] = list(self.choices)
        else:
            out["low"] = self.low
            out["high"] = self.high
            if self.integer:
                out["integer"] = True
        return out


def replace_field(config: Any, path: str, value: Any) -> Any:
    """A copy of a (nested, frozen) config dataclass with one field set.

    ``path`` is dotted relative to ``config`` (``"latency.jitter_sigma"``);
    every dataclass along the way is rebuilt via :func:`dataclasses.replace`
    so the original stays untouched and ``__post_init__`` validation
    re-runs at each level.
    """
    head, _, rest = path.partition(".")
    if not dataclasses.is_dataclass(config):
        raise ConfigError(
            f"cannot descend into {type(config).__name__!r} at {path!r}"
        )
    if not hasattr(config, head):
        raise ConfigError(
            f"{type(config).__name__} has no field {head!r} (path {path!r})"
        )
    if not rest:
        return dataclasses.replace(config, **{head: value})
    child = replace_field(getattr(config, head), rest, value)
    return dataclasses.replace(config, **{head: child})


@dataclass(frozen=True, slots=True)
class DrawSpec:
    """One sampled configuration: ``(index, world seed, param values)``."""

    index: int
    world_seed: int
    values: tuple[tuple[str, Any], ...]

    @property
    def label(self) -> str:
        return f"draw-{self.index:04d}"

    def as_dict(self) -> dict[str, Any]:
        return {
            "draw": self.index,
            "world_seed": self.world_seed,
            "params": {target: value for target, value in self.values},
        }


@dataclass(frozen=True, slots=True)
class MonteCarloConfig:
    """Knobs of a :class:`MonteCarloManager` run."""

    regime: str
    """Registered regime name (see :mod:`repro.scenarios.regimes`)."""

    seed: int = 0
    """Root seed of the ``montecarlo.draw{i}`` sampling streams."""

    batch_size: int = 8
    """Draws fanned out per adaptive batch (convergence is re-checked
    after every batch; the draw *stream* is batch-size invariant)."""

    max_draws: int = 64
    """Hard cap on total draws; hitting it ends the run unconverged
    (recorded in the convergence report, never an error)."""

    confidence: float = 0.95
    """Confidence level of the bootstrap and Wilson intervals."""

    target_half_width: float = 0.1
    """Convergence target for every claim-hold probability interval."""

    metric_targets: Mapping[str, float] | None = None
    """Per-metric bootstrap CI half-width targets (None = the regime's
    own defaults)."""

    rounds: int = 2
    """Measurement rounds per draw campaign."""

    countries: int | None = None
    """Optional world country limit applied to every draw."""

    max_countries: int | None = None
    """Optional cap on endpoint countries per round."""

    workers: int = 1
    """Sweep process-pool size used for each batch's fan-out."""

    world_cache: str | None = None
    """World-snapshot cache shared across draws and batches: draws whose
    sampled ``WorldConfig`` and world seed repeat (choice-valued or
    campaign-only regimes, and any re-run) restore instead of rebuilding."""

    use_world_cache: bool = True
    """False forces from-scratch world builds in every draw."""

    bootstrap_resamples: int = 2000
    """Resamples per bootstrap interval (seeded; see
    :func:`repro.analysis.montecarlo.bootstrap_ci`)."""

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        if self.max_draws < 1:
            raise ConfigError("max_draws must be >= 1")
        if not 0.0 < self.confidence < 1.0:
            raise ConfigError("confidence must be in (0, 1)")
        if self.target_half_width <= 0:
            raise ConfigError("target_half_width must be positive")
        if self.rounds < 1:
            raise ConfigError("rounds must be >= 1")
        if self.workers < 1:
            raise ConfigError("workers must be >= 1")
        if self.bootstrap_resamples < 1:
            raise ConfigError("bootstrap_resamples must be >= 1")
        if self.metric_targets is not None:
            for name, target in self.metric_targets.items():
                if target <= 0:
                    raise ConfigError(
                        f"metric target for {name!r} must be positive, "
                        f"got {target}"
                    )
        # resolve the regime now so bad names fail at construction
        from repro.scenarios.regimes import get_regime

        get_regime(self.regime)


class MonteCarloManager:
    """Samples scenario configurations and bounds the paper's claims.

    One manager owns one regime run: it deterministically samples draw
    configurations, executes them in adaptive batches through
    :func:`repro.core.sweep.run_sweep`, accumulates per-draw paper-shape
    metrics, and stops when every tracked interval is tight enough (or
    the draw cap trips).  :meth:`run` returns the JSON-ready risk
    artifact; everything except its ``timing`` section is deterministic.
    """

    def __init__(self, config: MonteCarloConfig) -> None:
        from repro.scenarios import get_scenario
        from repro.scenarios.regimes import get_regime

        self.config = config
        self.regime: "Regime" = get_regime(config.regime)
        self.base = get_scenario(self.regime.base)
        self.metric_targets: dict[str, float] = dict(
            config.metric_targets
            if config.metric_targets is not None
            else self.regime.metric_targets
        )
        self.claims: dict[str, bool] = dict(
            self.regime.claims
            if self.regime.claims is not None
            else self.base.expect
        )
        if not self.claims:
            raise ConfigError(
                f"regime {self.regime.name!r} tracks no claims (neither the "
                f"regime nor its base scenario declares expectations)"
            )

    # ------------------------------------------------------------ sampling

    def sample_draw(self, index: int) -> DrawSpec:
        """Draw ``index``'s sampled configuration.

        Depends only on ``(config.seed, index)`` — each draw owns the
        dedicated ``montecarlo.draw{index}`` stream and samples the world
        seed first, then one value per spec in regime order, so adding a
        spec to the *end* of a regime leaves earlier values unchanged.
        """
        rng = derive_rng(self.config.seed, f"montecarlo.draw{index}")
        world_seed = int(rng.integers(self.regime.seed_pool))
        values = tuple(
            (spec.target, spec.sample(rng)) for spec in self.regime.params
        )
        return DrawSpec(index=index, world_seed=world_seed, values=values)

    def draw_scenario(self, draw: DrawSpec):
        """The base scenario with the draw's sampled values applied."""
        scenario = self.base
        for target, value in draw.values:
            root, _, rest = target.partition(".")
            scenario = dataclasses.replace(
                scenario,
                **{root: replace_field(getattr(scenario, root), rest, value)},
            )
        return scenario

    def _batch_request(self, draws: list[DrawSpec]) -> SweepRequest:
        return SweepRequest(
            entries=tuple(
                SweepEntry(
                    label=draw.label,
                    scenario=self.draw_scenario(draw),
                    seeds=(draw.world_seed,),
                )
                for draw in draws
            ),
            rounds=self.config.rounds,
            countries=self.config.countries,
            max_countries=self.config.max_countries,
            workers=self.config.workers,
            world_cache=self.config.world_cache,
            use_world_cache=self.config.use_world_cache,
        )

    # ----------------------------------------------------------------- run

    def run(self) -> dict:
        """Execute adaptive batches until convergence or the draw cap.

        Returns the risk artifact::

            regime / base_scenario / description — what ran;
            config — the manager knobs;
            params — the regime's distributions (JSON-ready);
            claims — the expected value of each tracked paper shape;
            draws — per draw: world seed, sampled params, metrics, shapes;
            risk — per-claim hold probability with Wilson CI, per-metric
                bootstrap CI (see :func:`repro.analysis.montecarlo.risk_summary`);
            convergence — did the intervals reach their targets, in how
                many draws/batches, and what was still too wide if not;
            world_cache — distinct (config digest, seed) census: how much
                snapshot reuse the draw stream allowed;
            timing — wall clocks (the one non-deterministic section).
        """
        from repro.core.worldcache import config_digest

        records: list[dict] = []
        batch_walls: list[float] = []
        batches = 0
        summary: dict = {}
        sp_batch = obs.span("montecarlo.batch")
        start = time.perf_counter()
        while len(records) < self.config.max_draws:
            size = min(self.config.batch_size, self.config.max_draws - len(records))
            draws = [
                self.sample_draw(index)
                for index in range(len(records), len(records) + size)
            ]
            batch_start = time.perf_counter()
            with sp_batch:
                result = run_sweep(self._batch_request(draws))
            batch_walls.append(round(time.perf_counter() - batch_start, 3))
            for draw in draws:
                metrics, shapes = draw_metrics(result.tables[draw.label])
                record = draw.as_dict()
                record["metrics"] = metrics
                record["shapes"] = shapes
                records.append(record)
            batches += 1
            summary = risk_summary(
                records,
                claims=self.claims,
                metric_targets=self.metric_targets,
                confidence=self.config.confidence,
                target_half_width=self.config.target_half_width,
                seed=self.config.seed,
                resamples=self.config.bootstrap_resamples,
            )
            obs.inc("montecarlo.batches")
            obs.inc("montecarlo.draws", size)
            if obs.metrics_on():
                # per-batch convergence trail: each claim's Wilson
                # half-width after this batch (deterministic values)
                for name, entry in summary["claims"].items():
                    half = entry.get("half_width")
                    if half is not None:
                        obs.set_gauge(
                            f"montecarlo.batch{batches}.half_width.{name}", half
                        )
            if summary_converged(summary):
                break
        wall_clock_s = time.perf_counter() - start

        converged = summary_converged(summary)
        too_wide = [
            f"claim:{name}"
            for name, entry in summary["claims"].items()
            if not entry["within_target"]
        ] + [
            f"metric:{name}"
            for name, entry in summary["metrics"].items()
            if not entry["within_target"]
        ]
        world_keys = {
            (config_digest(self.draw_scenario(self.sample_draw(r["draw"])).world),
             r["world_seed"])
            for r in records
        }
        artifact = {
            "regime": self.regime.name,
            "base_scenario": self.regime.base,
            "description": self.regime.description,
            "config": {
                "seed": self.config.seed,
                "batch_size": self.config.batch_size,
                "max_draws": self.config.max_draws,
                "confidence": self.config.confidence,
                "target_half_width": self.config.target_half_width,
                "metric_targets": dict(self.metric_targets),
                "rounds": self.config.rounds,
                "countries": self.config.countries,
                "max_countries": self.config.max_countries,
            },
            "params": [spec.as_dict() for spec in self.regime.params],
            "claims": dict(self.claims),
            "draws": records,
            "risk": summary,
            "convergence": {
                "converged": converged,
                "draws": len(records),
                "batches": batches,
                "max_draws": self.config.max_draws,
                "target_half_width": self.config.target_half_width,
                "metric_targets": dict(self.metric_targets),
                "too_wide": sorted(too_wide),
                "reason": (
                    "every interval within its half-width target"
                    if converged
                    else "draw cap reached before the half-width targets"
                ),
            },
            "world_cache": {
                "distinct_worlds": len(world_keys),
                "distinct_configs": len({key for key, _ in world_keys}),
                "draws": len(records),
            },
            "timing": {
                "workers": self.config.workers,
                "world_cache": self.config.world_cache,
                "wall_clock_s": round(wall_clock_s, 3),
                "batch_s": batch_walls,
            },
        }
        return artifact


def run_montecarlo(config: MonteCarloConfig) -> dict:
    """One-shot helper: ``MonteCarloManager(config).run()``."""
    return MonteCarloManager(config).run()
