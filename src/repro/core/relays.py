"""Relay selection at PlanetLab and RIPE Atlas networks (Sec 2.3).

* **PLR** — PlanetLab nodes: before each round, keep nodes that are up
  *and* consistently accessible (long-run availability above a threshold)
  *and* answer pings, then sample 1-2 per site.
* **RAR_eye** — Atlas probes at verified eyeball (ASN, CC) tuples, sampled
  one per country with the Sec 2.1 methodology (endpoints of the current
  round are excluded so a node never relays for itself).
* **RAR_other** — Atlas probes at all remaining tuples (core/transit
  networks, enterprises, sub-cutoff ISPs), one per country.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CampaignConfig
from repro.core.eyeballs import EyeballSelector
from repro.latency.model import Endpoint
from repro.measurement.atlas import AtlasProbe
from repro.measurement.planetlab import PlanetLabNode
from repro.topology.types import ASType
from repro.world import World


class PlanetLabRelaySelector:
    """Per-round PlanetLab relay sampling with liveness checks."""

    def __init__(self, world: World, config: CampaignConfig) -> None:
        self._world = world
        self._cfg = config
        tier1s = world.topology.asns_of_type(ASType.TRANSIT_GLOBAL)
        asys = world.graph.get_as(tier1s[0])
        self._monitor = Endpoint(
            node_id="plr-monitor",
            asn=asys.asn,
            city_key=asys.primary_city,
            access_ms=1.0,
            loss_prob=0.001,
        )

    def sample(self, round_index: int, rng: np.random.Generator) -> list[PlanetLabNode]:
        """Sample 1-2 consistently-accessible, pingable nodes per site."""
        cfg = self._cfg
        candidates = [
            node
            for node in self._world.planetlab.available_nodes(round_index)
            if node.availability >= cfg.plr_consistency_threshold
        ]
        by_site: dict[str, list[PlanetLabNode]] = {}
        for node in candidates:
            by_site.setdefault(node.site_id, []).append(node)
        low, high = cfg.plr_per_site
        chosen: list[PlanetLabNode] = []
        for site_id in sorted(by_site):
            pool = by_site[site_id]
            want = int(rng.integers(low, high + 1))
            take = min(want, len(pool))
            idx = rng.choice(len(pool), size=take, replace=False)
            chosen.extend(pool[i] for i in sorted(idx))
        # liveness for the whole round's candidates in one batched sweep
        alive = self._world.ping_engine.any_response_many(
            [(self._monitor, node.node.endpoint) for node in chosen], rng
        )
        return [node for node, ok in zip(chosen, alive) if ok]


class AtlasRelaySelector:
    """Per-round RAR_eye / RAR_other sampling."""

    def __init__(self, world: World, config: CampaignConfig) -> None:
        self._world = world
        self._cfg = config
        self._eyeballs = EyeballSelector(world, config)
        self._other_pool: list[AtlasProbe] | None = None

    def _eligible_other(self) -> list[AtlasProbe]:
        """Probes passing platform filters in *non-verified* tuples."""
        if self._other_pool is None:
            verified = self._eyeballs.verified_tuples()
            cfg = self._cfg
            candidates = self._world.atlas.probes(
                min_firmware=self._world.config.infrastructure.latest_firmware,
                public_only=True,
                connected_only=True,
                geolocated_only=True,
                min_stability=cfg.min_probe_stability,
            )
            self._other_pool = [
                p for p in candidates if (p.asn, self._as_cc(p)) not in verified
            ]
        return list(self._other_pool)

    def _as_cc(self, probe: AtlasProbe) -> str:
        return self._world.graph.get_as(probe.asn).cc

    def sample_eye(
        self, rng: np.random.Generator, exclude_ids: set[str]
    ) -> list[AtlasProbe]:
        """One verified-eyeball probe per country, excluding endpoints."""
        probes = [
            p for p in self._eyeballs.eligible_probes() if p.probe_id not in exclude_ids
        ]
        return self._one_per_country(probes, rng)

    def sample_other(
        self, rng: np.random.Generator, exclude_ids: set[str]
    ) -> list[AtlasProbe]:
        """One non-eyeball-tuple probe per country, excluding endpoints.

        Anchors are preferred within each country: the paper's RAR_other
        description points at the public anchors list ("potentially in core
        locations"), and anchors are the platform's well-connected,
        server-grade vantage points.
        """
        probes = [p for p in self._eligible_other() if p.probe_id not in exclude_ids]
        return self._one_per_country(probes, rng, anchor_preference=0.6)

    @staticmethod
    def _one_per_country(
        probes: list[AtlasProbe],
        rng: np.random.Generator,
        anchor_preference: float = 0.0,
    ) -> list[AtlasProbe]:
        by_country: dict[str, list[AtlasProbe]] = {}
        for probe in probes:
            by_country.setdefault(probe.cc, []).append(probe)
        sampled = []
        for cc in sorted(by_country):
            pool = by_country[cc]
            if anchor_preference > 0.0 and rng.random() < anchor_preference:
                anchors = [p for p in pool if p.is_anchor]
                if anchors:
                    pool = anchors
            sampled.append(pool[int(rng.integers(len(pool)))])
        return sampled
