"""On-disk world snapshots: build once per ``(config, seed)``, share.

A sweep rebuilds the same synthetic Internet in every worker: topology
generation, the routing fabric's bulk relaxation and the attachment delay
grid together dwarf the measurement itself (ROADMAP: ~8 s/seed of which
<1 s is measurement).  This module serializes exactly that expensive state
into one deterministic ``.npz`` snapshot per ``(WorldConfig, seed,
SNAPSHOT_VERSION)`` and restores it without re-running any of it:

* **topology** — AS records, adjacencies, facilities and IXPs as flat
  arrays, preserving every insertion order, so the rebuilt
  :class:`~repro.topology.builder.Topology` is observationally identical
  to the generated one (graph node/edge order drives fabric indexing and
  neighbour-set layouts downstream);
* **PeeringDB churn** — the one dataset whose generation iterates
  ``frozenset`` fields of the topology while drawing randomness; a
  rebuilt frozenset does not reproduce the original's iteration order, so
  the churn *outcome* travels in the snapshot instead of being re-derived;
* **routing fabric** — the merged per-destination predecessor tables
  (``rclass`` / ``dist`` / ``next_hop``), restored as one read-only batch;
* **attachment grid** — the ``(A x A)`` one-way delay matrix plus its
  attachment row order, installed directly into the latency model;
* **walk memo** — the geographic walker's memoized walk prefixes.

Everything else (emulators, datasets, node indexing) is rebuilt live:
each subsystem draws from its own named seed stream
(:class:`~repro.util.rand.SeedSequenceFactory` streams are independent of
request order), so skipping the builder cannot perturb them, and a
restored world's campaign output is byte-identical to a fresh build's
(asserted in ``tests/test_worldcache.py``).

Snapshots are deterministic at the byte level — capturing the same state
twice yields identical files (``np.savez`` writes members in a fixed
order with constant timestamps) — and are written atomically (tmp +
``os.replace``), so concurrent sweep workers racing on one key are safe.
Loads memory-map every member (``np.savez`` stores them uncompressed, so
each payload is a contiguous byte range of the archive), which keeps the
per-worker resident cost of the fabric and grid near zero.  Unreadable,
truncated, version-bumped or key-mismatched files are treated as cache
misses, never errors: the caller rebuilds and overwrites.
"""

from __future__ import annotations

import dataclasses
import json
import os
import struct
import tempfile
import zipfile
from hashlib import blake2b
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from repro import obs
from repro.errors import WorldCacheError
from repro.net.ipv4 import IPv4Address, IPv4Prefix
from repro.topology.builder import Topology
from repro.topology.facilities import IXP, Facility
from repro.topology.graph import ASGraph, Relationship
from repro.topology.types import ASType, AutonomousSystem

if TYPE_CHECKING:
    from repro.world import World, WorldConfig

#: Bump on any change to the snapshot layout or to what must be captured;
#: older files then miss cleanly and are rebuilt.
SNAPSHOT_VERSION = 1

#: Environment variable consulted by :func:`resolve_cache` when no explicit
#: cache directory is given (the CLI's ``--world-cache`` wins over it).
CACHE_ENV_VAR = "REPRO_WORLD_CACHE"

_ASTYPES = tuple(ASType)
_ASTYPE_CODE = {t: i for i, t in enumerate(_ASTYPES)}
_REL_CODE = {Relationship.C2P: 0, Relationship.P2P: 1}


def config_digest(config: "WorldConfig") -> str:
    """A stable content digest of a :class:`~repro.world.WorldConfig`.

    Canonical JSON (sorted keys, tuples as lists) over the nested frozen
    dataclasses, hashed with blake2b.  Any changed field — topology knobs,
    latency tunables, infrastructure or dataset probabilities — changes
    the digest and therefore the cache key.
    """
    canonical = json.dumps(
        dataclasses.asdict(config), sort_keys=True, separators=(",", ":")
    )
    return blake2b(canonical.encode(), digest_size=16).hexdigest()


def snapshot_key(seed: int, config: "WorldConfig") -> str:
    """The cache key (and file stem) for ``(config, seed, version)``."""
    return f"world-{config_digest(config)}-s{seed}-v{SNAPSHOT_VERSION}"


# --------------------------------------------------------------- capture


def _csr(rows: Iterable[Iterable]) -> tuple[np.ndarray, list]:
    """Ragged rows -> (indptr, flat python list)."""
    indptr = [0]
    flat: list = []
    for row in rows:
        flat.extend(row)
        indptr.append(len(flat))
    return np.asarray(indptr, dtype=np.int64), flat


def _str_array(values: list) -> np.ndarray:
    return np.asarray(values, dtype=np.str_) if values else np.empty(0, dtype="U1")


def capture_arrays(world: "World") -> dict[str, np.ndarray]:
    """Snapshot a world's expensive state into named flat arrays.

    The world must have its routing fabric and attachment grid built
    (:meth:`~repro.world.World.ensure_routing_fabric`); raises
    :class:`~repro.errors.WorldCacheError` otherwise.  The mapping's key
    order is fixed, so serializing it yields identical bytes for
    identical state.
    """
    grid_state = world.latency.attachment_grid()
    if grid_state is None:
        raise WorldCacheError(
            "cannot capture a world before ensure_routing_fabric() built "
            "its attachment grid"
        )
    grid, att_ids = grid_state
    topo = world.topology
    graph = topo.graph

    arrays: dict[str, np.ndarray] = {}
    meta = {
        "snapshot_version": SNAPSHOT_VERSION,
        "seed": world.seed,
        "config_digest": config_digest(world.config),
        "num_graph_nodes": len(graph),
    }
    arrays["meta"] = np.asarray([json.dumps(meta, sort_keys=True)])

    # ---- autonomous systems, in graph insertion order
    ases = list(graph)
    arrays["as_asn"] = np.asarray([a.asn for a in ases], dtype=np.int64)
    arrays["as_name"] = _str_array([a.name for a in ases])
    arrays["as_type"] = np.asarray(
        [_ASTYPE_CODE[a.as_type] for a in ases], dtype=np.int8
    )
    arrays["as_cc"] = _str_array([a.cc for a in ases])
    arrays["as_pop_indptr"], pops = _csr(a.pop_cities for a in ases)
    arrays["as_pop_cities"] = _str_array(pops)
    arrays["as_prefix_indptr"], prefixes = _csr(a.prefixes for a in ases)
    arrays["as_prefix_net"] = np.asarray(
        [p.network.value for p in prefixes], dtype=np.uint32
    )
    arrays["as_prefix_len"] = np.asarray(
        [p.length for p in prefixes], dtype=np.int8
    )

    # ---- adjacencies, in graph insertion order
    edges = list(graph.edges())
    arrays["edge_a"] = np.asarray([e.a for e in edges], dtype=np.int64)
    arrays["edge_b"] = np.asarray([e.b for e in edges], dtype=np.int64)
    arrays["edge_rel"] = np.asarray(
        [_REL_CODE[e.rel] for e in edges], dtype=np.int8
    )
    arrays["edge_city_indptr"], cities = _csr(
        e.interconnect_cities for e in edges
    )
    arrays["edge_cities"] = _str_array(cities)

    # ---- role index, rows in ASType declaration order
    arrays["bytype_indptr"], bytype = _csr(
        topo.asns_of_type(t) for t in _ASTYPES
    )
    arrays["bytype_asns"] = np.asarray(bytype, dtype=np.int64)

    # ---- facilities and IXPs, dict insertion order; frozenset fields are
    # stored sorted (canonical) — no consumer outside the serialized
    # PeeringDB churn depends on their iteration order
    facs = list(topo.facilities.values())
    arrays["fac_id"] = np.asarray([f.fac_id for f in facs], dtype=np.int64)
    arrays["fac_name"] = _str_array([f.name for f in facs])
    arrays["fac_operator"] = _str_array([f.operator for f in facs])
    arrays["fac_city"] = _str_array([f.city_key for f in facs])
    arrays["fac_cloud"] = np.asarray(
        [f.cloud_services for f in facs], dtype=bool
    )
    arrays["fac_members_indptr"], fac_members = _csr(
        sorted(f.members) for f in facs
    )
    arrays["fac_members"] = np.asarray(fac_members, dtype=np.int64)
    arrays["fac_ixps_indptr"], fac_ixps = _csr(sorted(f.ixp_ids) for f in facs)
    arrays["fac_ixps"] = np.asarray(fac_ixps, dtype=np.int64)

    ixps = list(topo.ixps.values())
    arrays["ixp_id"] = np.asarray([x.ixp_id for x in ixps], dtype=np.int64)
    arrays["ixp_name"] = _str_array([x.name for x in ixps])
    arrays["ixp_city"] = _str_array([x.city_key for x in ixps])
    arrays["ixp_fac_indptr"], ixp_facs = _csr(
        sorted(x.facility_ids) for x in ixps
    )
    arrays["ixp_facs"] = np.asarray(ixp_facs, dtype=np.int64)
    arrays["ixp_members_indptr"], ixp_members = _csr(
        sorted(x.members) for x in ixps
    )
    arrays["ixp_members"] = np.asarray(ixp_members, dtype=np.int64)

    # ---- PeeringDB churn outcome (see module docstring)
    closed, departed = world.peeringdb.churn_state()
    arrays["pdb_closed"] = np.asarray(sorted(closed), dtype=np.int64)
    departed_sorted = sorted(departed)
    arrays["pdb_departed"] = np.asarray(
        departed_sorted, dtype=np.int64
    ).reshape(len(departed_sorted), 2)

    # ---- routing fabric destination tables
    dests, rclass, dist, next_hop = world.fabric.export_tables()
    arrays["fab_dest"] = np.asarray(dests, dtype=np.int64)
    arrays["fab_rclass"] = rclass
    arrays["fab_dist"] = dist
    arrays["fab_next_hop"] = next_hop

    # ---- attachment delay grid, rows in attachment id order
    arrays["grid"] = np.ascontiguousarray(grid)
    arrays["att_asn"] = np.asarray([asn for asn, _ in att_ids], dtype=np.int64)
    arrays["att_city"] = _str_array([city for _, city in att_ids])

    # ---- geographic walk memo
    memo = world.fabric.walk_memo.prefixes
    arrays["memo_src"] = _str_array([src for src, _ in memo])
    arrays["memo_path_indptr"], memo_paths = _csr(
        path for _, path in memo
    )
    arrays["memo_path"] = np.asarray(memo_paths, dtype=np.int64)
    arrays["memo_end"] = _str_array([v[0] for v in memo.values()])
    arrays["memo_km"] = np.asarray(
        [v[2] for v in memo.values()], dtype=np.float64
    )
    return arrays


# --------------------------------------------------------------- restore


class WorldSnapshot:
    """A loaded snapshot, ready to rebuild a world's expensive state.

    Constructed by :meth:`WorldCache.load`; consumed by
    :class:`~repro.world.World` (``snapshot=`` argument).  Arrays may be
    memory-mapped; nothing here writes to them.
    """

    def __init__(self, arrays: Mapping[str, np.ndarray]) -> None:
        self._a = arrays

    def restore_topology(self, config) -> Topology:
        """Rebuild the :class:`Topology`, preserving every insertion order."""
        a = self._a
        graph = ASGraph()
        pop_indptr = a["as_pop_indptr"].tolist()
        pops = a["as_pop_cities"].tolist()
        pfx_indptr = a["as_prefix_indptr"].tolist()
        pfx_net = a["as_prefix_net"].tolist()
        pfx_len = a["as_prefix_len"].tolist()
        for i, (asn, name, code, cc) in enumerate(
            zip(
                a["as_asn"].tolist(),
                a["as_name"].tolist(),
                a["as_type"].tolist(),
                a["as_cc"].tolist(),
            )
        ):
            lo, hi = pfx_indptr[i], pfx_indptr[i + 1]
            graph.add_as(
                AutonomousSystem(
                    asn=asn,
                    name=name,
                    as_type=_ASTYPES[code],
                    cc=cc,
                    pop_cities=tuple(pops[pop_indptr[i] : pop_indptr[i + 1]]),
                    prefixes=tuple(
                        IPv4Prefix(IPv4Address(net), length)
                        for net, length in zip(pfx_net[lo:hi], pfx_len[lo:hi])
                    ),
                )
            )
        city_indptr = a["edge_city_indptr"].tolist()
        edge_cities = a["edge_cities"].tolist()
        for i, (ea, eb, rel) in enumerate(
            zip(
                a["edge_a"].tolist(),
                a["edge_b"].tolist(),
                a["edge_rel"].tolist(),
            )
        ):
            cities = edge_cities[city_indptr[i] : city_indptr[i + 1]]
            if rel == 0:
                graph.add_c2p(ea, eb, cities)
            else:
                graph.add_p2p(ea, eb, cities)

        facilities: dict[int, Facility] = {}
        fm_indptr = a["fac_members_indptr"].tolist()
        fm = a["fac_members"].tolist()
        fx_indptr = a["fac_ixps_indptr"].tolist()
        fx = a["fac_ixps"].tolist()
        for i, fac_id in enumerate(a["fac_id"].tolist()):
            facilities[fac_id] = Facility(
                fac_id=fac_id,
                name=str(a["fac_name"][i]),
                operator=str(a["fac_operator"][i]),
                city_key=str(a["fac_city"][i]),
                members=frozenset(fm[fm_indptr[i] : fm_indptr[i + 1]]),
                ixp_ids=frozenset(fx[fx_indptr[i] : fx_indptr[i + 1]]),
                cloud_services=bool(a["fac_cloud"][i]),
            )
        ixps: dict[int, IXP] = {}
        xf_indptr = a["ixp_fac_indptr"].tolist()
        xf = a["ixp_facs"].tolist()
        xm_indptr = a["ixp_members_indptr"].tolist()
        xm = a["ixp_members"].tolist()
        for i, ixp_id in enumerate(a["ixp_id"].tolist()):
            ixps[ixp_id] = IXP(
                ixp_id=ixp_id,
                name=str(a["ixp_name"][i]),
                city_key=str(a["ixp_city"][i]),
                facility_ids=frozenset(xf[xf_indptr[i] : xf_indptr[i + 1]]),
                members=frozenset(xm[xm_indptr[i] : xm_indptr[i + 1]]),
            )

        bt_indptr = a["bytype_indptr"].tolist()
        bt = a["bytype_asns"].tolist()
        by_type = {
            t: tuple(bt[bt_indptr[i] : bt_indptr[i + 1]])
            for i, t in enumerate(_ASTYPES)
        }
        return Topology(
            graph=graph,
            facilities=facilities,
            ixps=ixps,
            config=config,
            _by_type=by_type,
        )

    def peeringdb_churn(
        self,
    ) -> tuple[frozenset[int], frozenset[tuple[int, int]]]:
        """The serialized PeeringDB churn outcome."""
        closed = frozenset(self._a["pdb_closed"].tolist())
        departed = frozenset(
            (fac, asn) for fac, asn in self._a["pdb_departed"].tolist()
        )
        return closed, departed

    def attach_routing(self, world: "World") -> None:
        """Install the fabric tables, attachment grid and walk memo."""
        a = self._a
        world.fabric.restore_tables(
            a["fab_dest"].tolist(),
            a["fab_rclass"],
            a["fab_dist"],
            a["fab_next_hop"],
        )
        att_ids = {
            (asn, city): i
            for i, (asn, city) in enumerate(
                zip(a["att_asn"].tolist(), a["att_city"].tolist())
            )
        }
        world.latency.set_attachment_grid(a["grid"], att_ids)
        memo_src = a["memo_src"].tolist()
        if memo_src:
            matrix = world.delay_matrix
            indptr = a["memo_path_indptr"].tolist()
            paths = a["memo_path"].tolist()
            ends = a["memo_end"].tolist()
            kms = a["memo_km"].tolist()
            prefixes = world.fabric.walk_memo.prefixes
            for i, src in enumerate(memo_src):
                path = tuple(paths[indptr[i] : indptr[i + 1]])
                end = ends[i]
                prefixes[(src, path)] = (end, matrix.index(end), kms[i])


# --------------------------------------------------------------- the cache


def _mmap_npz(path: str) -> dict[str, np.ndarray]:
    """Map every member of an uncompressed ``.npz`` without copying.

    Same technique as the service cluster's snapshot loader: ``np.savez``
    stores members ``ZIP_STORED``, so each ``.npy`` payload is a
    contiguous byte range of the archive — parse the zip local header for
    the data offset, the npy header for dtype/shape, and ``np.memmap``
    the rest.  Raises on anything unexpected; the caller treats that as
    a cache miss.
    """
    members: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise WorldCacheError(f"member {info.filename} is compressed")
            raw.seek(info.header_offset)
            local = raw.read(30)
            if local[:4] != b"PK\x03\x04":
                raise WorldCacheError(f"bad local header for {info.filename}")
            name_len, extra_len = struct.unpack("<HH", local[26:30])
            raw.seek(info.header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(raw)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(raw)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(raw)
            else:
                raise WorldCacheError(f"unsupported npy version {version}")
            if dtype.hasobject:
                raise WorldCacheError(f"member {info.filename} holds objects")
            name = info.filename
            if name.endswith(".npy"):
                name = name[:-4]
            if int(np.prod(shape)) == 0:
                members[name] = np.zeros(shape, dtype)
            else:
                members[name] = np.memmap(
                    path,
                    dtype=dtype,
                    mode="r",
                    offset=raw.tell(),
                    shape=shape,
                    order="F" if fortran else "C",
                )
    return members


class WorldCache:
    """An on-disk directory of world snapshots keyed by (config, seed).

    ``load`` returns None for any file that is absent, unreadable, from a
    different snapshot version or keyed to a different config — the
    caller builds fresh and ``store`` overwrites atomically.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    def path_for(self, seed: int, config: "WorldConfig") -> Path:
        """Where the snapshot for ``(config, seed)`` lives."""
        return self.root / f"{snapshot_key(seed, config)}.npz"

    def load(self, seed: int, config: "WorldConfig") -> WorldSnapshot | None:
        """Load and validate a snapshot; None on miss or any defect."""
        with obs.span("world.cache.load"):
            return self._load(seed, config)

    def _load(self, seed: int, config: "WorldConfig") -> WorldSnapshot | None:
        path = self.path_for(seed, config)
        try:
            arrays = _mmap_npz(os.fspath(path))
            meta = json.loads(str(arrays["meta"][0]))
            if meta["snapshot_version"] != SNAPSHOT_VERSION:
                return None
            if meta["seed"] != seed:
                return None
            if meta["config_digest"] != config_digest(config):
                return None
            # touch the members restore needs, so truncated files miss here
            for name in (
                "as_asn",
                "edge_a",
                "fab_dest",
                "fab_rclass",
                "grid",
                "att_asn",
            ):
                arrays[name].shape  # noqa: B018 — existence check
            return WorldSnapshot(arrays)
        except FileNotFoundError:
            return None
        except Exception:
            obs.inc("world.cache.defects")
            return None

    def store(self, world: "World") -> Path:
        """Capture and write the world's snapshot atomically.

        Safe under concurrent writers racing on the same key: each writes
        a private temp file in the cache directory and ``os.replace``\\ s
        it over the final name.
        """
        with obs.span("world.cache.store"):
            return self._store(world)

    def _store(self, world: "World") -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(world.seed, world.config)
        arrays = capture_arrays(world)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=path.stem + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **arrays)
            # mkstemp files are 0600; open the snapshot up to the umask's
            # default so a shared cache directory works across users
            umask = os.umask(0)
            os.umask(umask)
            os.chmod(tmp, 0o666 & ~umask)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path


def resolve_cache(
    world_cache: str | os.PathLike | None = None,
) -> WorldCache | None:
    """The cache to use: explicit path, else ``$REPRO_WORLD_CACHE``, else None."""
    if world_cache is not None:
        return WorldCache(world_cache)
    env = os.environ.get(CACHE_ENV_VAR)
    if env:
        return WorldCache(env)
    return None
