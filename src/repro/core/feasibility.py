"""Speed-of-light relay feasibility (Sec 2.4).

A relay ``f`` can only beat the direct path between endpoints ``n1`` and
``n2`` if, even in an idealised "speed-of-light Internet", the detour
through it is no longer than the measured direct RTT::

    2 * [t(n1, f) + t(f, n2)] <= RTT(n1, n2)

with ``t(a, b) = d(a, b) / (c * 2/3)`` the one-way fiber-light propagation
between the nodes' geolocations.  Everything else about the relay is
ignored at this stage — the filter is a pure geometry bound, so it can
never discard a relay that would actually have improved the pair.

The campaign evaluates the bound for a whole round at once with
:func:`feasibility_mask` over a :class:`~repro.geo.matrix.CityDelayMatrix`
delay submatrix; the scalar :func:`is_feasible` / :func:`feasible_relays`
API remains for external callers and accepts an optional matrix to reuse
its cached rows.  Without one, delays are recomputed from the coordinates —
pure functions, no shared module state (the old module-global delay cache
is gone; per-world caching lives in the world's ``CityDelayMatrix``).
"""

from __future__ import annotations

import numpy as np

from repro.geo.cities import city as city_of
from repro.geo.distance import propagation_delay_ms
from repro.geo.matrix import CityDelayMatrix
from repro.latency.model import Endpoint


def _city_delay_ms(a_key: str, b_key: str, matrix: CityDelayMatrix | None) -> float:
    if matrix is not None:
        return matrix.one_way_ms_between(a_key, b_key)
    return propagation_delay_ms(city_of(a_key).location, city_of(b_key).location)


def is_feasible(
    relay: Endpoint,
    n1: Endpoint,
    n2: Endpoint,
    direct_rtt_ms: float,
    matrix: CityDelayMatrix | None = None,
) -> bool:
    """True if the relay passes the speed-of-light bound for the pair.

    Pass a :class:`CityDelayMatrix` (e.g. ``world.delay_matrix``) to reuse
    its cached city-delay rows when calling in a loop.
    """
    detour = _city_delay_ms(n1.city_key, relay.city_key, matrix) + _city_delay_ms(
        relay.city_key, n2.city_key, matrix
    )
    return 2.0 * detour <= direct_rtt_ms


def feasible_relays(
    relays: list[Endpoint],
    n1: Endpoint,
    n2: Endpoint,
    direct_rtt_ms: float,
    matrix: CityDelayMatrix | None = None,
) -> list[Endpoint]:
    """The subset of ``relays`` passing the bound for the pair."""
    return [r for r in relays if is_feasible(r, n1, n2, direct_rtt_ms, matrix)]


def feasibility_mask(
    one_way_ms: np.ndarray,
    e1_rows: np.ndarray,
    e2_rows: np.ndarray,
    direct_rtt_ms: np.ndarray,
) -> np.ndarray:
    """The Sec 2.4 bound for every (pair, relay) at once, as one broadcast.

    Args:
        one_way_ms: ``(endpoints × relays)`` one-way delay matrix ``D`` from
            :meth:`CityDelayMatrix.one_way_ms_matrix`.
        e1_rows / e2_rows: ``(pairs,)`` row indices into ``one_way_ms`` of
            each pair's two endpoints.
        direct_rtt_ms: ``(pairs,)`` measured direct medians.

    Returns:
        ``(pairs × relays)`` boolean mask of
        ``2 * (D[e1, r] + D[r, e2]) <= RTT(e1, e2)`` — bit-for-bit the
        decisions :func:`is_feasible` makes relay by relay when given the
        same matrix.  (The matrix-less scalar fallback recomputes the
        delays with ``math`` trigonometry, which can differ in the last
        ulp; a pair sitting exactly on the bound could then flip.)
    """
    detour = one_way_ms[e1_rows, :] + one_way_ms[e2_rows, :]
    return 2.0 * detour <= np.asarray(direct_rtt_ms, dtype=float)[:, np.newaxis]
