"""Speed-of-light relay feasibility (Sec 2.4).

A relay ``f`` can only beat the direct path between endpoints ``n1`` and
``n2`` if, even in an idealised "speed-of-light Internet", the detour
through it is no longer than the measured direct RTT::

    2 * [t(n1, f) + t(f, n2)] <= RTT(n1, n2)

with ``t(a, b) = d(a, b) / (c * 2/3)`` the one-way fiber-light propagation
between the nodes' geolocations.  Everything else about the relay is
ignored at this stage — the filter is a pure geometry bound, so it can
never discard a relay that would actually have improved the pair.
"""

from __future__ import annotations

from repro.geo.cities import city as city_of
from repro.geo.distance import propagation_delay_ms
from repro.latency.model import Endpoint

#: Memoised city-to-city one-way light-in-fiber delays.
_DELAY_CACHE: dict[tuple[str, str], float] = {}


def _city_delay_ms(a_key: str, b_key: str) -> float:
    key = (a_key, b_key) if a_key <= b_key else (b_key, a_key)
    cached = _DELAY_CACHE.get(key)
    if cached is None:
        cached = propagation_delay_ms(city_of(key[0]).location, city_of(key[1]).location)
        _DELAY_CACHE[key] = cached
    return cached


def is_feasible(relay: Endpoint, n1: Endpoint, n2: Endpoint, direct_rtt_ms: float) -> bool:
    """True if the relay passes the speed-of-light bound for the pair."""
    detour = _city_delay_ms(n1.city_key, relay.city_key) + _city_delay_ms(
        relay.city_key, n2.city_key
    )
    return 2.0 * detour <= direct_rtt_ms


def feasible_relays(
    relays: list[Endpoint], n1: Endpoint, n2: Endpoint, direct_rtt_ms: float
) -> list[Endpoint]:
    """The subset of ``relays`` passing the bound for the pair."""
    return [r for r in relays if is_feasible(r, n1, n2, direct_rtt_ms)]
