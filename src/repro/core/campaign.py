"""The measurement campaign: Sec 2.5's 4-step round workflow.

Each round, repeated every 12 simulated hours:

1. sample the round's endpoint set (one eyeball probe per country);
2. measure the direct RTT of every endpoint pair (median of 6 pings);
3. assemble the round's relay sets (COR / PLR / RAR_eye / RAR_other) and
   keep, per pair, only relays passing the speed-of-light bound computed
   from step 2's medians;
4. re-measure the direct paths (so direct and relayed numbers are in
   sync), measure every needed endpoint-relay leg, and stitch the overlay
   RTTs per pair.

The campaign accounts every ping against the Atlas emulator's round budget,
mirroring the paper's constraint of operating within platform limits.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.core.colo import ColoRelayPipeline
from repro.core.config import CampaignConfig
from repro.core.eyeballs import EyeballSelector
from repro.core.feasibility import is_feasible
from repro.core.relays import AtlasRelaySelector, PlanetLabRelaySelector
from repro.core.results import (
    CampaignResult,
    PairObservation,
    RelayRegistry,
    RoundResult,
)
from repro.core.stitching import stitch_rtt
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.latency.model import Endpoint
from repro.measurement.atlas import AtlasProbe
from repro.world import World


class MeasurementCampaign:
    """Runs the paper's measurement methodology against a world."""

    def __init__(self, world: World, config: CampaignConfig | None = None) -> None:
        self._world = world
        self._cfg = config or CampaignConfig()
        self._eyeballs = EyeballSelector(world, self._cfg)
        self._colo = ColoRelayPipeline(world, self._cfg)
        self._atlas_relays = AtlasRelaySelector(world, self._cfg)
        self._plr = PlanetLabRelaySelector(world, self._cfg)
        self._registry = RelayRegistry()

    @property
    def config(self) -> CampaignConfig:
        """The campaign configuration."""
        return self._cfg

    @property
    def world(self) -> World:
        """The world being measured."""
        return self._world

    @property
    def colo_pipeline(self) -> ColoRelayPipeline:
        """The Sec 2.2 filter pipeline (shared with analyses)."""
        return self._colo

    @property
    def eyeball_selector(self) -> EyeballSelector:
        """The Sec 2.1 endpoint selector (shared with analyses)."""
        return self._eyeballs

    # ------------------------------------------------------------------- run

    def run(
        self, progress: Callable[[int, RoundResult], None] | None = None
    ) -> CampaignResult:
        """Run all configured rounds and return the collected results.

        ``progress``, if given, is called after each round with
        ``(round_index, round_result)``.
        """
        rounds = []
        for round_index in range(self._cfg.num_rounds):
            result = self.run_round(round_index)
            rounds.append(result)
            if progress is not None:
                progress(round_index, result)
        return CampaignResult(
            rounds=rounds,
            registry=self._registry,
            verified_eyeball_tuples=len(self._eyeballs.verified_tuples()),
            colo_filter_funnel=tuple(self._colo.report().funnel()),
        )

    # ----------------------------------------------------------------- round

    def run_round(self, round_index: int) -> RoundResult:
        """Execute one 4-step measurement round."""
        world = self._world
        cfg = self._cfg
        rng = world.seeds.rng(f"campaign.round.{round_index}")
        world.atlas.begin_round()
        pings_sent = 0

        # step 1: endpoints
        endpoints = self._eyeballs.sample_endpoints(rng)
        endpoint_ids = {p.probe_id for p in endpoints}

        # step 2: direct medians (drive feasibility)
        step2_direct, sent = self._measure_direct(endpoints, rng)
        pings_sent += sent

        # step 3: relay sets + per-pair feasibility
        relays = self._assemble_relays(round_index, rng, endpoint_ids)
        relay_endpoints = {idx: ep for idx, ep in relays}
        feasible: dict[tuple[str, str], list[int]] = {}
        for (id1, id2), direct in step2_direct.items():
            e1 = self._probe_endpoint(id1, endpoints)
            e2 = self._probe_endpoint(id2, endpoints)
            feasible[(id1, id2)] = [
                idx
                for idx, relay_ep in relays
                if is_feasible(relay_ep, e1, e2, direct)
            ]

        # step 4: synced re-measurement + legs + stitching
        step4_direct, sent = self._measure_direct(endpoints, rng)
        pings_sent += sent
        needed: dict[str, set[int]] = {}
        for (id1, id2), relay_indices in feasible.items():
            if (id1, id2) not in step4_direct:
                continue
            for idx in relay_indices:
                needed.setdefault(id1, set()).add(idx)
                needed.setdefault(id2, set()).add(idx)
        leg_medians, sent = self._measure_legs(endpoints, needed, relay_endpoints, rng)
        pings_sent += sent

        observations = self._stitch_observations(
            round_index, endpoints, step4_direct, feasible, leg_medians
        )

        return RoundResult(
            round_index=round_index,
            timestamp_hours=round_index * cfg.round_interval_hours,
            endpoint_ids=tuple(sorted(endpoint_ids)),
            relay_indices_by_type=self._indices_by_type(relays),
            observations=observations,
            direct_medians=step4_direct,
            relay_medians=dict(leg_medians) if cfg.record_relay_medians else None,
            pings_sent=pings_sent,
        )

    # --------------------------------------------------------------- helpers

    @staticmethod
    def _probe_endpoint(probe_id: str, endpoints: list[AtlasProbe]) -> Endpoint:
        for probe in endpoints:
            if probe.probe_id == probe_id:
                return probe.node.endpoint
        raise KeyError(probe_id)

    def _measure_direct(
        self, endpoints: list[AtlasProbe], rng: np.random.Generator
    ) -> tuple[dict[tuple[str, str], float], int]:
        """Median direct RTT per endpoint pair (ping direction randomised)."""
        cfg = self._cfg
        engine = self._world.ping_engine
        medians: dict[tuple[str, str], float] = {}
        sent = 0
        for i, p1 in enumerate(endpoints):
            for p2 in endpoints[i + 1 :]:
                src, dst = (p1, p2) if rng.random() < 0.5 else (p2, p1)
                result = engine.ping(
                    src.node.endpoint, dst.node.endpoint, rng, count=cfg.pings_per_pair
                )
                sent += cfg.pings_per_pair
                med = result.median_rtt(cfg.min_valid_rtts)
                if med is not None:
                    medians[self._pair_key(p1.probe_id, p2.probe_id)] = med
        self._world.atlas.charge(sent)
        return medians, sent

    @staticmethod
    def _pair_key(id1: str, id2: str) -> tuple[str, str]:
        return (id1, id2) if id1 <= id2 else (id2, id1)

    def _assemble_relays(
        self, round_index: int, rng: np.random.Generator, endpoint_ids: set[str]
    ) -> list[tuple[int, Endpoint]]:
        """The round's relay sample, registered in the campaign registry."""
        world = self._world
        relays: list[tuple[int, Endpoint]] = []

        for colo in self._colo.sample_relays(rng):
            node = colo.node
            idx = self._registry.register(
                node.node_id,
                RelayType.COR,
                node.asn,
                node.cc,
                node.city_key,
                facility_id=colo.facility_id,
            )
            relays.append((idx, node.endpoint))

        for pl_node in self._plr.sample(round_index, rng):
            node = pl_node.node
            idx = self._registry.register(
                node.node_id,
                RelayType.PLR,
                node.asn,
                node.cc,
                node.city_key,
                site_id=pl_node.site_id,
            )
            relays.append((idx, node.endpoint))

        for probe in self._atlas_relays.sample_other(rng, endpoint_ids):
            node = probe.node
            idx = self._registry.register(
                node.node_id, RelayType.RAR_OTHER, node.asn, node.cc, node.city_key
            )
            relays.append((idx, node.endpoint))

        for probe in self._atlas_relays.sample_eye(rng, endpoint_ids):
            node = probe.node
            idx = self._registry.register(
                node.node_id, RelayType.RAR_EYE, node.asn, node.cc, node.city_key
            )
            relays.append((idx, node.endpoint))

        return relays

    def _measure_legs(
        self,
        endpoints: list[AtlasProbe],
        needed: dict[str, set[int]],
        relay_endpoints: dict[int, Endpoint],
        rng: np.random.Generator,
    ) -> tuple[dict[tuple[str, int], float], int]:
        """Median RTT for every needed (endpoint, relay) leg."""
        cfg = self._cfg
        engine = self._world.ping_engine
        by_id = {p.probe_id: p for p in endpoints}
        medians: dict[tuple[str, int], float] = {}
        sent = 0
        for probe_id in sorted(needed):
            probe = by_id[probe_id]
            for idx in sorted(needed[probe_id]):
                result = engine.ping(
                    probe.node.endpoint,
                    relay_endpoints[idx],
                    rng,
                    count=cfg.pings_per_pair,
                )
                sent += cfg.pings_per_pair
                med = result.median_rtt(cfg.min_valid_rtts)
                if med is not None:
                    medians[(probe_id, idx)] = med
        self._world.atlas.charge(sent)
        return medians, sent

    def _stitch_observations(
        self,
        round_index: int,
        endpoints: list[AtlasProbe],
        direct: dict[tuple[str, str], float],
        feasible: dict[tuple[str, str], list[int]],
        legs: dict[tuple[str, int], float],
    ) -> list[PairObservation]:
        by_id = {p.probe_id: p for p in endpoints}
        observations = []
        for (id1, id2), direct_rtt in direct.items():
            p1, p2 = by_id[id1], by_id[id2]
            best: dict[RelayType, tuple[int, float]] = {}
            improving: dict[RelayType, list[tuple[int, float]]] = {
                t: [] for t in RELAY_TYPE_ORDER
            }
            feasible_counts: dict[RelayType, int] = {t: 0 for t in RELAY_TYPE_ORDER}
            # (usable_same, improving_same, usable_diff, improving_diff)
            groups: dict[RelayType, list[bool]] = {
                t: [False, False, False, False] for t in RELAY_TYPE_ORDER
            }
            for idx in feasible.get((id1, id2), ()):
                record = self._registry.get(idx)
                relay_type = record.relay_type
                feasible_counts[relay_type] += 1
                leg1 = legs.get((id1, idx))
                leg2 = legs.get((id2, idx))
                if leg1 is None or leg2 is None:
                    continue
                stitched = stitch_rtt(leg1, leg2)
                same_country = record.cc in (p1.cc, p2.cc)
                flags = groups[relay_type]
                flags[0 if same_country else 2] = True
                current = best.get(relay_type)
                if current is None or stitched < current[1]:
                    best[relay_type] = (idx, stitched)
                if stitched < direct_rtt:
                    improving[relay_type].append((idx, direct_rtt - stitched))
                    flags[1 if same_country else 3] = True
            observations.append(
                PairObservation(
                    round_index=round_index,
                    e1_id=id1,
                    e2_id=id2,
                    e1_cc=p1.cc,
                    e2_cc=p2.cc,
                    e1_city=p1.node.city_key,
                    e2_city=p2.node.city_key,
                    direct_rtt_ms=direct_rtt,
                    best_by_type=best,
                    improving_by_type={
                        t: tuple(entries) for t, entries in improving.items()
                    },
                    feasible_by_type=feasible_counts,
                    country_groups_by_type={
                        t: tuple(flags) for t, flags in groups.items()
                    },
                )
            )
        return observations

    def _indices_by_type(
        self, relays: list[tuple[int, Endpoint]]
    ) -> dict[RelayType, tuple[int, ...]]:
        grouped: dict[RelayType, list[int]] = {t: [] for t in RELAY_TYPE_ORDER}
        for idx, _ in relays:
            grouped[self._registry.get(idx).relay_type].append(idx)
        return {t: tuple(indices) for t, indices in grouped.items()}

    # ------------------------------------------------------------- symmetry

    def measure_direction_symmetry(
        self, round_index: int = 0
    ) -> list[tuple[float, float]]:
        """Measure every endpoint pair in *both* directions once.

        Supports the Sec 2.5 sanity check that ping direction barely
        matters (~80% of pairs differ by <5%).  Returns ``(rtt_ab,
        rtt_ba)`` tuples for pairs where both directions produced a valid
        median.
        """
        world = self._world
        cfg = self._cfg
        rng = world.seeds.rng(f"campaign.symmetry.{round_index}")
        endpoints = self._eyeballs.sample_endpoints(rng)
        engine = world.ping_engine
        out = []
        for i, p1 in enumerate(endpoints):
            for p2 in endpoints[i + 1 :]:
                fwd = engine.ping(
                    p1.node.endpoint, p2.node.endpoint, rng, cfg.pings_per_pair
                ).median_rtt(cfg.min_valid_rtts)
                rev = engine.ping(
                    p2.node.endpoint, p1.node.endpoint, rng, cfg.pings_per_pair
                ).median_rtt(cfg.min_valid_rtts)
                if fwd is not None and rev is not None:
                    out.append((fwd, rev))
        return out
