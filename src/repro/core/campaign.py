"""The measurement campaign: Sec 2.5's 4-step round workflow.

Each round, repeated every 12 simulated hours:

1. sample the round's endpoint set (one eyeball probe per country);
2. measure the direct RTT of every endpoint pair (median of 6 pings);
3. assemble the round's relay sets (COR / PLR / RAR_eye / RAR_other) and
   keep, per pair, only relays passing the speed-of-light bound computed
   from step 2's medians;
4. re-measure the direct paths (so direct and relayed numbers are in
   sync), measure every needed endpoint-relay leg, and stitch the overlay
   RTTs per pair.

The campaign accounts every ping against the Atlas emulator's round budget,
mirroring the paper's constraint of operating within platform limits.

The hot path is vectorized end to end.  Every measurement step hands its
whole leg list to :meth:`PingEngine.median_many` (per-packet terms drawn in
a handful of RNG calls).  Step 3's Sec 2.4 bound is evaluated for all
(pair, relay) combinations at once as a NumPy broadcast over the round's
(endpoints × relays) delay matrix from the world's
:class:`~repro.geo.matrix.CityDelayMatrix`, and the resulting boolean mask
flows matrix-shaped through leg selection, overlay stitching and straight
into the round's columnar :class:`~repro.core.table.ObservationTable` — no
Python-level per-(pair, relay) loop survives anywhere between feasibility
and the stored result, and no per-pair observation objects are built
unless a caller materializes them.

Routing is precomputed rather than faulted in: before the first round the
campaign asks the world to build its :class:`~repro.routing.fabric
.RoutingFabric` for the full endpoint+relay destination set, so every BGP
path a round needs is a predecessor-array walk instead of a first-time
scalar table computation mid-measurement.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.colo import ColoRelayPipeline
from repro.core.config import CampaignConfig
from repro.core.eyeballs import EyeballSelector
from repro.core.feasibility import feasibility_mask
from repro.core.relays import AtlasRelaySelector, PlanetLabRelaySelector
from repro.core.results import (
    CampaignResult,
    RelayRegistry,
    RoundResult,
)
from repro.core.table import ObservationTable, TablePools
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.errors import AnalysisError, ConfigError
from repro.latency.model import Endpoint
from repro.measurement.atlas import AtlasProbe
from repro.timeline.schedule import compile_timeline
from repro.world import World


@dataclass(frozen=True, slots=True)
class _RelayArrays:
    """The round's relay sample unpacked into parallel NumPy arrays."""

    items: tuple[tuple[int, Endpoint], ...]
    registry_idx: np.ndarray  #: (relays,) registry indices
    type_codes: np.ndarray  #: (relays,) positions into RELAY_TYPE_ORDER
    ccs: np.ndarray  #: (relays,) country codes
    cc_codes: np.ndarray  #: (relays,) campaign-interned ints for the ccs
    city_idx: np.ndarray  #: (relays,) CityDelayMatrix indices

    @property
    def count(self) -> int:
        return len(self.items)


@dataclass(frozen=True, slots=True)
class _RoundFeasibility:
    """Step 3's output: the Sec 2.4 bound for every (pair, relay) at once."""

    pair_keys: tuple[tuple[str, str], ...]
    e1_rows: np.ndarray  #: (pairs,) endpoint rows of each pair's first id
    e2_rows: np.ndarray  #: (pairs,) endpoint rows of each pair's second id
    mask: np.ndarray  #: (pairs × relays) feasibility mask


class MeasurementCampaign:
    """Runs the paper's measurement methodology against a world."""

    def __init__(
        self,
        world: World,
        config: CampaignConfig | None = None,
        *,
        use_pair_grid: bool = True,
    ) -> None:
        self._world = world
        self._cfg = config or CampaignConfig()
        #: Resolve measurement legs through per-round
        #: :class:`~repro.latency.model.PairGrid` matrices (the default)
        #: instead of the per-leg pair-cache loop.  Both paths are
        #: bit-identical (asserted by tests/test_latency_model.py's parity
        #: suite); the flag exists so the legacy path stays exercisable.
        self._use_pair_grid = use_pair_grid
        self._eyeballs = EyeballSelector(world, self._cfg)
        #: The campaign's compiled fault timeline (None when the config
        #: carries no schedule).  Compiled from dedicated ``timeline.*``
        #: seed streams at construction, so cohort resolution never
        #: perturbs the round streams — an event-free schedule leaves
        #: every measurement byte identical to the static path.  Sampled
        #: link pairs draw from the endpoint-covered countries so every
        #: degradation window hits lanes the campaign measures.
        self.timeline = (
            compile_timeline(
                world,
                self._cfg.timeline,
                self._cfg.num_rounds,
                eyeball_countries=self._eyeballs.covered_countries(),
            )
            if self._cfg.timeline is not None
            else None
        )
        if (
            self.timeline is not None
            and self.timeline.has_link_events
            and not use_pair_grid
        ):
            raise ConfigError(
                "link-degradation timeline events require the pair-grid "
                "measurement path (use_pair_grid=True)"
            )
        self._colo = ColoRelayPipeline(world, self._cfg)
        self._atlas_relays = AtlasRelaySelector(world, self._cfg)
        self._plr = PlanetLabRelaySelector(world, self._cfg)
        self._registry = RelayRegistry()
        # string pools shared by every round's observation table, so the
        # campaign-level concatenation never has to re-code columns
        self._pools = TablePools.fresh()
        # campaign-private country interner for the same-country broadcast:
        # equality on these ints replaces a per-round np.unique over U3
        # strings.  Never serialized, so assignment order is free.
        self._cc_cmp: dict[str, int] = {}
        # pre-bound observability handles: null singletons unless metrics
        # or tracing were enabled before construction, so the disabled
        # path costs one no-op context manager per phase and nothing else
        self._sp_round = obs.span("campaign.round")
        self._sp_sampling = obs.span("campaign.sampling")
        self._sp_pair_grid = obs.span("campaign.pair_grid")
        self._sp_timeline = obs.span("campaign.timeline")
        self._sp_direct = obs.span("campaign.measure_direct")
        self._sp_relays = obs.span("campaign.assemble_relays")
        self._sp_feasibility = obs.span("campaign.feasibility")
        self._sp_legs = obs.span("campaign.measure_legs")
        self._sp_stitch = obs.span("campaign.stitch")
        self._c_rounds = obs.counter("campaign.rounds")
        self._c_pairs = obs.counter("campaign.pairs")
        self._c_pings = obs.counter("campaign.pings")

    def _cc_cmp_code(self, cc: str) -> int:
        code = self._cc_cmp.get(cc)
        if code is None:
            code = len(self._cc_cmp)
            self._cc_cmp[cc] = code
        return code

    @property
    def config(self) -> CampaignConfig:
        """The campaign configuration."""
        return self._cfg

    @property
    def world(self) -> World:
        """The world being measured."""
        return self._world

    @property
    def colo_pipeline(self) -> ColoRelayPipeline:
        """The Sec 2.2 filter pipeline (shared with analyses)."""
        return self._colo

    @property
    def eyeball_selector(self) -> EyeballSelector:
        """The Sec 2.1 endpoint selector (shared with analyses)."""
        return self._eyeballs

    # ------------------------------------------------------------------- run

    def run(
        self, progress: Callable[[int, RoundResult], None] | None = None
    ) -> CampaignResult:
        """Run all configured rounds and return the collected results.

        ``progress``, if given, is called after each round with
        ``(round_index, round_result)``.
        """
        self._world.ensure_routing_fabric()
        rounds = []
        for round_index in range(self._cfg.num_rounds):
            with self._sp_round:
                result = self.run_round(round_index)
            self._c_rounds.inc()
            self._c_pairs.inc(result.num_pairs())
            self._c_pings.inc(result.pings_sent)
            rounds.append(result)
            if progress is not None:
                progress(round_index, result)
        return CampaignResult(
            rounds=rounds,
            registry=self._registry,
            verified_eyeball_tuples=len(self._eyeballs.verified_tuples()),
            colo_filter_funnel=tuple(self._colo.report().funnel()),
        )

    # ----------------------------------------------------------------- round

    def run_round(self, round_index: int) -> RoundResult:
        """Execute one 4-step measurement round."""
        world = self._world
        cfg = self._cfg
        rng = world.seeds.rng(f"campaign.round.{round_index}")
        world.atlas.begin_round()
        pings_sent = 0
        # the round's fault effects; every application below is guarded on
        # the effect being non-empty, so an event-free timeline (or none)
        # executes exactly the static code path on the same RNG sequence
        effects = (
            self.timeline.effects(round_index) if self.timeline is not None else None
        )
        absent = effects.absent_ids if effects is not None else frozenset()

        # step 1: endpoints (one probe-id lookup table for the whole round)
        with self._sp_sampling:
            endpoints = self._eyeballs.sample_endpoints(rng)
        if absent:
            # churn filters *after* sampling: selector RNG consumption is
            # unchanged, only the dark probes drop out of the round
            endpoints = [p for p in endpoints if p.probe_id not in absent]
        by_id = {p.probe_id: p for p in endpoints}
        endpoint_ids = set(by_id)

        n_ep = len(endpoints)
        direct_pairs = [
            (p1, p2) for i, p1 in enumerate(endpoints) for p2 in endpoints[i + 1 :]
        ]
        # pair keys are shared by the two direct steps (they measure the
        # same pair list), so they are built once per round
        direct_keys = [
            self._pair_key(p1.probe_id, p2.probe_id) for p1, p2 in direct_pairs
        ]
        # the round's deterministic pair terms as one (endpoints × endpoints)
        # grid: both direct steps gather their legs' base/loss by index
        # instead of resolving each leg through the pair cache
        endpoint_eps = [p.node.endpoint for p in endpoints]
        endpoint_ccs = (
            np.array([p.cc for p in endpoints], dtype="U3")
            if effects is not None and effects.links
            else None
        )
        if self._use_pair_grid:
            with self._sp_pair_grid:
                egrid = self._world.latency.pair_grid(endpoint_eps, endpoint_eps)
            if endpoint_ccs is not None:
                with self._sp_timeline:
                    egrid = self.timeline.apply_link_overrides(
                        egrid, endpoint_ccs, endpoint_ccs, round_index
                    )
            pair_idx = (
                np.repeat(np.arange(n_ep), np.arange(n_ep - 1, -1, -1)),
                np.concatenate(
                    [np.arange(i + 1, n_ep) for i in range(n_ep)]
                    or [np.empty(0, np.intp)]
                ),
            )
        else:
            egrid = pair_idx = None

        # step 2: direct medians (drive feasibility)
        with self._sp_direct:
            step2_direct, sent = self._measure_direct(
                direct_pairs, direct_keys, rng, egrid, pair_idx
            )
        pings_sent += sent

        # step 3: relay sets + per-pair feasibility as one broadcast mask
        with self._sp_relays:
            relay_arrays = self._assemble_relays(
                round_index, rng, endpoint_ids, absent
            )
        with self._sp_feasibility:
            feasibility = self._feasible_relays(
                endpoints, relay_arrays, step2_direct
            )

        # step 4: synced re-measurement + legs + stitching
        with self._sp_direct:
            step4_direct, sent = self._measure_direct(
                direct_pairs, direct_keys, rng, egrid, pair_idx
            )
        pings_sent += sent
        keep = np.fromiter(
            (pair in step4_direct for pair in feasibility.pair_keys),
            dtype=bool,
            count=len(feasibility.pair_keys),
        )
        needed = np.zeros((len(endpoints), relay_arrays.count), dtype=bool)
        if relay_arrays.count:
            kept_mask = feasibility.mask[keep]
            # accumulate per-endpoint rows with |= instead of
            # np.logical_or.at: the ufunc.at path is an order of magnitude
            # slower than ~2 vector ORs per pair
            e1_kept = feasibility.e1_rows[keep].tolist()
            e2_kept = feasibility.e2_rows[keep].tolist()
            for r1, r2, m in zip(e1_kept, e2_kept, kept_mask):
                needed[r1] |= m
                needed[r2] |= m
        if self._use_pair_grid and relay_arrays.count:
            with self._sp_pair_grid:
                rgrid = self._world.latency.pair_grid(
                    endpoint_eps, [ep for _, ep in relay_arrays.items]
                )
        else:
            rgrid = None
        if rgrid is not None and endpoint_ccs is not None:
            with self._sp_timeline:
                rgrid = self.timeline.apply_link_overrides(
                    rgrid, endpoint_ccs, relay_arrays.ccs, round_index
                )
        with self._sp_legs:
            leg_matrix, leg_medians, sent = self._measure_legs(
                endpoints, needed, relay_arrays, rng, rgrid
            )
        pings_sent += sent

        with self._sp_stitch:
            table = self._stitch_table(
                round_index,
                by_id,
                step4_direct,
                feasibility,
                relay_arrays,
                leg_matrix,
            )

        return RoundResult(
            round_index=round_index,
            timestamp_hours=round_index * cfg.round_interval_hours,
            endpoint_ids=tuple(sorted(endpoint_ids)),
            relay_indices_by_type=self._indices_by_type(relay_arrays),
            table=table,
            direct_medians=step4_direct,
            relay_medians=leg_medians,
            pings_sent=pings_sent,
        )

    # --------------------------------------------------------------- helpers

    def _median_legs(
        self,
        legs: list[tuple[Endpoint, Endpoint]],
        rng: np.random.Generator,
        charge_budget: bool = True,
    ) -> tuple[np.ndarray, int]:
        """Batch medians for a leg list (NaN = invalid).

        Campaign steps charge the Atlas round budget; out-of-band sweeps
        (the symmetry sanity check) pass ``charge_budget=False``.
        """
        cfg = self._cfg
        medians = self._world.ping_engine.median_many(
            legs, rng, count=cfg.pings_per_pair, min_valid=cfg.min_valid_rtts
        )
        sent = len(legs) * cfg.pings_per_pair
        if charge_budget:
            self._world.atlas.charge(sent)
        return medians, sent

    def _median_entries(
        self,
        base: np.ndarray,
        loss: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, int]:
        """Batch medians for legs gathered from a pair grid (NaN = invalid)."""
        cfg = self._cfg
        medians = self._world.ping_engine.median_from_entries(
            base, loss, rng, count=cfg.pings_per_pair, min_valid=cfg.min_valid_rtts
        )
        sent = len(base) * cfg.pings_per_pair
        self._world.atlas.charge(sent)
        return medians, sent

    def _measure_direct(
        self,
        pairs: list[tuple[AtlasProbe, AtlasProbe]],
        pair_keys: list[tuple[str, str]],
        rng: np.random.Generator,
        grid=None,
        pair_idx: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[dict[tuple[str, str], float], int]:
        """Median direct RTT per endpoint pair (ping direction randomised).

        With a round grid, each leg's deterministic terms are gathered by
        endpoint index (flips swap indices instead of building swapped leg
        tuples); without one, the legacy per-leg path runs.  Both consume
        the RNG identically and produce bit-identical medians.
        """
        flips = rng.random(len(pairs)) < 0.5
        if grid is not None:
            i_idx, j_idx = pair_idx
            src = np.where(flips, j_idx, i_idx)
            dst = np.where(flips, i_idx, j_idx)
            medians, sent = self._median_entries(
                grid.base[src, dst], grid.loss[src, dst], rng
            )
        else:
            legs = [
                (p2.node.endpoint, p1.node.endpoint)
                if flip
                else (p1.node.endpoint, p2.node.endpoint)
                for (p1, p2), flip in zip(pairs, flips.tolist())
            ]
            medians, sent = self._median_legs(legs, rng)
        return {
            key: med
            for key, med in zip(pair_keys, medians.tolist())
            if med == med
        }, sent

    @staticmethod
    def _pair_key(id1: str, id2: str) -> tuple[str, str]:
        return (id1, id2) if id1 <= id2 else (id2, id1)

    def _feasible_relays(
        self,
        endpoints: list[AtlasProbe],
        relays: _RelayArrays,
        direct: dict[tuple[str, str], float],
    ) -> _RoundFeasibility:
        """Sec 2.4 filter for the whole round: one (pairs × relays) broadcast.

        Builds the round's (endpoints × relays) one-way delay matrix once
        and evaluates ``2 * (D[e1, r] + D[r, e2]) <= RTT(e1, e2)`` for every
        pair and relay in a single :func:`feasibility_mask` call.
        """
        matrix = self._world.delay_matrix
        row_of = {p.probe_id: k for k, p in enumerate(endpoints)}
        pair_keys = tuple(direct)
        n = len(pair_keys)
        e1_rows = np.fromiter((row_of[id1] for id1, _ in pair_keys), np.intp, n)
        e2_rows = np.fromiter((row_of[id2] for _, id2 in pair_keys), np.intp, n)
        if not relays.count or not n:
            mask = np.zeros((n, relays.count), dtype=bool)
            return _RoundFeasibility(pair_keys, e1_rows, e2_rows, mask)
        endpoint_cities = matrix.indices(p.node.endpoint.city_key for p in endpoints)
        one_way = matrix.one_way_ms_matrix(endpoint_cities, relays.city_idx)
        direct_ms = np.fromiter((direct[pair] for pair in pair_keys), float, n)
        mask = feasibility_mask(one_way, e1_rows, e2_rows, direct_ms)
        return _RoundFeasibility(pair_keys, e1_rows, e2_rows, mask)

    def _assemble_relays(
        self,
        round_index: int,
        rng: np.random.Generator,
        endpoint_ids: set[str],
        absent: frozenset[str] = frozenset(),
    ) -> _RelayArrays:
        """The round's relay sample, registered in the campaign registry.

        ``absent`` is the timeline's dark-node set for the round: sampled
        relays whose node id is in it drop out *after* selection (the
        selectors' RNG consumption is unchanged) and are never pinged nor
        registered this round.
        """
        relays: list[tuple[int, Endpoint]] = []
        type_codes: list[int] = []
        ccs: list[str] = []
        cc_codes: list[int] = []
        mix = {RelayType[name] for name in self._cfg.relay_mix}

        def _add(idx: int, node, relay_type: RelayType) -> None:
            relays.append((idx, node.endpoint))
            type_codes.append(RELAY_TYPE_ORDER.index(relay_type))
            ccs.append(node.cc)
            cc_codes.append(self._cc_cmp_code(node.cc))

        for colo in self._colo.sample_relays(rng) if RelayType.COR in mix else ():
            node = colo.node
            if node.node_id in absent:
                continue
            idx = self._registry.register(
                node.node_id,
                RelayType.COR,
                node.asn,
                node.cc,
                node.city_key,
                facility_id=colo.facility_id,
            )
            _add(idx, node, RelayType.COR)

        for pl_node in (
            self._plr.sample(round_index, rng) if RelayType.PLR in mix else ()
        ):
            node = pl_node.node
            if node.node_id in absent:
                continue
            idx = self._registry.register(
                node.node_id,
                RelayType.PLR,
                node.asn,
                node.cc,
                node.city_key,
                site_id=pl_node.site_id,
            )
            _add(idx, node, RelayType.PLR)

        for probe in (
            self._atlas_relays.sample_other(rng, endpoint_ids)
            if RelayType.RAR_OTHER in mix
            else ()
        ):
            node = probe.node
            if node.node_id in absent:
                continue
            idx = self._registry.register(
                node.node_id, RelayType.RAR_OTHER, node.asn, node.cc, node.city_key
            )
            _add(idx, node, RelayType.RAR_OTHER)

        for probe in (
            self._atlas_relays.sample_eye(rng, endpoint_ids)
            if RelayType.RAR_EYE in mix
            else ()
        ):
            node = probe.node
            if node.node_id in absent:
                continue
            idx = self._registry.register(
                node.node_id, RelayType.RAR_EYE, node.asn, node.cc, node.city_key
            )
            _add(idx, node, RelayType.RAR_EYE)

        matrix = self._world.delay_matrix
        n = len(relays)
        codes = np.asarray(type_codes, dtype=np.intp)
        # the stitching reductions slice type columns contiguously and group
        # improving entries by a (pair, type) key — both require the sample
        # to stay in RELAY_TYPE_ORDER
        if codes.size and np.any(np.diff(codes) < 0):
            raise AnalysisError("relay sample not grouped in RELAY_TYPE_ORDER")
        return _RelayArrays(
            items=tuple(relays),
            registry_idx=np.fromiter((idx for idx, _ in relays), np.intp, n),
            type_codes=codes,
            ccs=np.array(ccs, dtype="U3"),
            cc_codes=np.asarray(cc_codes, dtype=np.intp),
            city_idx=matrix.indices(ep.city_key for _, ep in relays),
        )

    def _measure_legs(
        self,
        endpoints: list[AtlasProbe],
        needed: np.ndarray,
        relays: _RelayArrays,
        rng: np.random.Generator,
        grid=None,
    ) -> tuple[np.ndarray, dict[tuple[str, int], float] | None, int]:
        """Median RTT for every needed (endpoint, relay) leg.

        Returns the (endpoints × relays) leg-median matrix (NaN where a leg
        was not measured or had too few replies), the same medians keyed by
        ``(probe_id, registry_idx)`` for the round record (None — not built
        at all — when the config says not to record them), and pings sent.
        With a round (endpoints × relays) grid, the needed legs' terms are
        gathered straight off it — no leg tuple list is built at all.
        """
        e_rows, cols = np.nonzero(needed)
        e_list, c_list = e_rows.tolist(), cols.tolist()
        if grid is not None:
            medians, sent = self._median_entries(
                grid.base[e_rows, cols], grid.loss[e_rows, cols], rng
            )
        else:
            endpoint_eps = [p.node.endpoint for p in endpoints]
            relay_eps = [ep for _, ep in relays.items]
            legs = [(endpoint_eps[e], relay_eps[c]) for e, c in zip(e_list, c_list)]
            medians, sent = self._median_legs(legs, rng)
        leg_matrix = np.full(needed.shape, np.nan)
        leg_matrix[e_rows, cols] = medians
        if not self._cfg.record_relay_medians:
            return leg_matrix, None, sent
        probe_ids = [p.probe_id for p in endpoints]
        registry_idx = relays.registry_idx.tolist()
        leg_medians = {
            (probe_ids[e], registry_idx[c]): med
            for e, c, med in zip(e_list, c_list, medians.tolist())
            if med == med
        }
        return leg_matrix, leg_medians, sent

    def _stitch_table(
        self,
        round_index: int,
        by_id: dict[str, AtlasProbe],
        direct: dict[tuple[str, str], float],
        feasibility: _RoundFeasibility,
        relays: _RelayArrays,
        leg_matrix: np.ndarray,
    ) -> ObservationTable:
        """Assemble the round's columnar observation table from its matrices.

        All per-(pair, relay) arithmetic — stitching, improvement, best-relay
        selection, same-country grouping — happens as broadcasts, and the
        results land directly in :class:`ObservationTable` columns.  No
        per-pair packaging loop: the only remaining Python iteration interns
        the round's endpoint identity strings — once per *endpoint*, fanned
        out to pairs by index gathers.
        """
        # per-endpoint identity codes, interned once; every per-pair column
        # below is a row gather out of these three small arrays.  The pool
        # interning order (by_id iteration) is unchanged, so table payloads
        # stay byte-identical to the per-pair generator path this replaces.
        pools = self._pools
        n_ep = len(by_id)
        row_of: dict[str, int] = {}
        ep_codes = np.empty((n_ep, 3), np.int32)
        ep_cmp = np.empty(n_ep, np.intp)
        for k, (pid, probe) in enumerate(by_id.items()):
            row_of[pid] = k
            ep_codes[k, 0] = pools.endpoint_ids.code(pid)
            ep_codes[k, 1] = pools.countries.code(probe.cc)
            ep_codes[k, 2] = pools.cities.code(probe.node.city_key)
            ep_cmp[k] = self._cc_cmp_code(probe.cc)

        pair_rows = {
            pair: k for k, pair in enumerate(feasibility.pair_keys) if pair in direct
        }
        num_types = len(RELAY_TYPE_ORDER)
        n_pairs = len(pair_rows)
        rows = np.fromiter(pair_rows.values(), np.intp, n_pairs)
        e1_rows = feasibility.e1_rows[rows]
        e2_rows = feasibility.e2_rows[rows]
        mask = feasibility.mask[rows]
        direct_ms = np.fromiter(
            (direct[pair] for pair in pair_rows), float, n_pairs
        )

        # (pairs × relays) stitched overlay RTTs and derived masks
        stitched = leg_matrix[e1_rows] + leg_matrix[e2_rows]
        usable = mask & ~np.isnan(stitched)
        improving = usable & (stitched < direct_ms[:, np.newaxis])
        # country comparison on the campaign's interned int codes:
        # elementwise U3 string equality over a (pairs × relays) broadcast
        # is far slower than int equality, and re-deriving codes per round
        # (np.unique over all the round's strings) costs more than the
        # comparison itself
        relay_cc = relays.cc_codes
        cc1 = ep_cmp[e1_rows]
        cc2 = ep_cmp[e2_rows]
        same_country = (relay_cc[np.newaxis, :] == cc1[:, np.newaxis]) | (
            relay_cc[np.newaxis, :] == cc2[:, np.newaxis]
        )
        diff_country = ~same_country

        # per relay-type reductions, each (pairs,).  _assemble_relays adds
        # relays in RELAY_TYPE_ORDER, so a type's columns are one contiguous
        # slice — every reduction below works on a view instead of paying a
        # full-width masked pass per type.
        type_bounds = np.searchsorted(
            relays.type_codes, np.arange(num_types + 1)
        ).tolist()
        feasible_counts = np.zeros((num_types, n_pairs), dtype=np.intp)
        best_cols = np.zeros((num_types, n_pairs), dtype=np.intp)
        best_vals = np.full((num_types, n_pairs), np.inf)
        flags = np.zeros((num_types, 4, n_pairs), dtype=bool)
        arange = np.arange(n_pairs)
        for code in range(num_types if relays.count else 0):
            lo, hi = type_bounds[code], type_bounds[code + 1]
            if lo == hi:
                continue  # no relays of the type: zeros / inf defaults hold
            usable_t = usable[:, lo:hi]
            improving_t = improving[:, lo:hi]
            same_t = same_country[:, lo:hi]
            diff_t = diff_country[:, lo:hi]
            feasible_counts[code] = np.count_nonzero(mask[:, lo:hi], axis=1)
            # (usable_same, improving_same, usable_diff, improving_diff)
            flags[code, 0] = np.any(usable_t & same_t, axis=1)
            flags[code, 1] = np.any(improving_t & same_t, axis=1)
            flags[code, 2] = np.any(usable_t & diff_t, axis=1)
            flags[code, 3] = np.any(improving_t & diff_t, axis=1)
            candidates = np.where(usable_t, stitched[:, lo:hi], np.inf)
            cols = np.argmin(candidates, axis=1)
            best_cols[code] = cols + lo
            best_vals[code] = candidates[arange, cols]

        # improving (relay, gain) entries: np.nonzero walks row-major and
        # type columns are contiguous, so entries arrive grouped by
        # (pair, type) — exactly the CSR group order the table stores
        imp_pair, imp_col = np.nonzero(improving)
        imp_reg = relays.registry_idx[imp_col].astype(np.int32)
        imp_gain = direct_ms[imp_pair] - stitched[imp_pair, imp_col]
        imp_group = imp_pair * num_types + relays.type_codes[imp_col]
        group_counts = np.bincount(imp_group, minlength=n_pairs * num_types)

        # scatter the packed (step-2 ∩ step-4) rows into step-4 case order.
        # Both pair_rows and `direct` iterate subsequences of the round's
        # pair list, so the packed pairs appear in the same relative order
        # in both — the entry arrays above are already in case order and
        # only the per-case counts need scattering.
        n_obs = len(direct)
        if len(pair_rows) == n_obs:  # pair_rows ⊆ direct, so equal size ⇒ equal
            case_of_packed = np.arange(n_obs)
        else:
            packed = set(pair_rows)
            case_of_packed = np.fromiter(
                (j for j, pair in enumerate(direct) if pair in packed),
                np.intp,
                len(pair_rows),
            )

        usable_best = best_vals != np.inf
        best_relay_col = np.full((num_types, n_obs), -1, np.int32)
        if relays.count:
            best_relay_col[:, case_of_packed] = np.where(
                usable_best, relays.registry_idx[best_cols], -1
            )
        best_stitched_col = np.full((num_types, n_obs), np.nan)
        best_stitched_col[:, case_of_packed] = np.where(
            usable_best, best_vals, np.nan
        )
        feasible_col = np.zeros((num_types, n_obs), np.int32)
        feasible_col[:, case_of_packed] = feasible_counts
        flags_col = np.zeros((num_types, 4, n_obs), bool)
        flags_col[:, :, case_of_packed] = flags
        counts_col = np.zeros((n_obs, num_types), np.int64)
        counts_col[case_of_packed] = group_counts.reshape(n_pairs, num_types)
        indptr = np.zeros(n_obs * num_types + 1, np.int64)
        np.cumsum(counts_col.reshape(-1), out=indptr[1:])

        # endpoint identity columns: one row-index per pair side, then a
        # fused gather out of the per-endpoint code array built above
        d_e1 = np.fromiter((row_of[p1] for p1, _ in direct), np.intp, n_obs)
        d_e2 = np.fromiter((row_of[p2] for _, p2 in direct), np.intp, n_obs)
        e1_codes = ep_codes[d_e1]
        e2_codes = ep_codes[d_e2]

        return ObservationTable(
            pools,
            round_idx=np.full(n_obs, round_index, np.int32),
            e1_id=e1_codes[:, 0].copy(),
            e2_id=e2_codes[:, 0].copy(),
            e1_cc=e1_codes[:, 1].copy(),
            e2_cc=e2_codes[:, 1].copy(),
            e1_city=e1_codes[:, 2].copy(),
            e2_city=e2_codes[:, 2].copy(),
            direct_rtt_ms=np.fromiter(direct.values(), float, n_obs),
            best_relay=best_relay_col,
            best_stitched=best_stitched_col,
            feasible=feasible_col,
            country_flags=flags_col,
            imp_indptr=indptr,
            imp_relay=imp_reg,
            imp_gain=imp_gain,
        )

    def _indices_by_type(self, relays: _RelayArrays) -> dict[RelayType, tuple[int, ...]]:
        return {
            t: tuple(
                int(i)
                for i in relays.registry_idx[relays.type_codes == code]
            )
            for code, t in enumerate(RELAY_TYPE_ORDER)
        }

    # ------------------------------------------------------------- symmetry

    def measure_direction_symmetry(
        self, round_index: int = 0
    ) -> list[tuple[float, float]]:
        """Measure every endpoint pair in *both* directions once.

        Supports the Sec 2.5 sanity check that ping direction barely
        matters (~80% of pairs differ by <5%).  Returns ``(rtt_ab,
        rtt_ba)`` tuples for pairs where both directions produced a valid
        median.
        """
        world = self._world
        rng = world.seeds.rng(f"campaign.symmetry.{round_index}")
        endpoints = self._eyeballs.sample_endpoints(rng)
        legs: list[tuple[Endpoint, Endpoint]] = []
        for i, p1 in enumerate(endpoints):
            for p2 in endpoints[i + 1 :]:
                e1, e2 = p1.node.endpoint, p2.node.endpoint
                legs.append((e1, e2))
                legs.append((e2, e1))
        # a side-effect-free sanity sweep: not charged to the round budget
        medians, _ = self._median_legs(legs, rng, charge_budget=False)
        return [
            (float(fwd), float(rev))
            for fwd, rev in zip(medians[0::2], medians[1::2])
            if fwd == fwd and rev == rev
        ]
