"""CAIDA-style prefix-to-AS dataset.

Built from the ground-truth prefixes the topology originates, served
through a longest-prefix-match trie.  A small fraction of prefixes is
marked MOAS (announced by more than one origin AS) — the paper drops IPs in
MOAS prefixes to keep the IP-to-ASN mapping trustworthy (Sec 2.2,
"Same IP-ownership" filter).
"""

from __future__ import annotations

from repro.datasets.config import DatasetConfig
from repro.net.ipv4 import IPv4Address, IPv4Prefix
from repro.net.trie import PrefixTrie
from repro.topology.builder import Topology
from repro.util.rand import SeedSequenceFactory


class Prefix2AS:
    """Longest-prefix-match IP-to-origin-AS mapping."""

    def __init__(
        self,
        topology: Topology,
        config: DatasetConfig,
        seeds: SeedSequenceFactory,
    ) -> None:
        rng = seeds.rng("prefix2as.generate")
        self._trie: PrefixTrie[int] = PrefixTrie()
        asns = topology.graph.asns()
        for asys in topology.graph:
            for prefix in asys.prefixes:
                self._trie.insert(prefix, asys.asn)
                if rng.random() < config.moas_prefix_prob:
                    # a second origin also announces the prefix (MOAS)
                    other = asns[int(rng.integers(len(asns)))]
                    if other != asys.asn:
                        self._trie.insert(prefix, other)

    def lookup(self, address: IPv4Address) -> tuple[IPv4Prefix, list[int]] | None:
        """Most specific covering prefix and its origin ASNs, or None."""
        return self._trie.longest_match(address)

    def origins(self, address: IPv4Address) -> list[int]:
        """Origin ASNs of the best-matching prefix (empty if unrouted)."""
        match = self._trie.longest_match(address)
        if match is None:
            return []
        return match[1]

    def is_moas(self, address: IPv4Address) -> bool:
        """True if the best-matching prefix has multiple origins."""
        return len(set(self.origins(address))) > 1

    def num_prefixes(self) -> int:
        """Distinct prefixes in the dataset."""
        return len(self._trie)
