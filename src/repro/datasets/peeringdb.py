"""PeeringDB substrate: the *current* view of facilities, memberships and
IXPs.

The ground-truth topology is a 2015-style snapshot; PeeringDB presents
what still exists *today*: facilities that have shut down since are absent,
and ASes that left a facility are no longer listed there.  The Sec 2.2
filters and Table 1's feature columns (#Nets, #IXPs, cloud services,
PeeringDB top-10) all read from here.
"""

from __future__ import annotations

from repro.datasets.config import DatasetConfig
from repro.errors import DatasetError
from repro.topology.builder import Topology
from repro.topology.facilities import IXP, Facility
from repro.util.rand import SeedSequenceFactory


class PeeringDB:
    """Query interface over the current facility/IXP ecosystem."""

    def __init__(
        self,
        topology: Topology,
        config: DatasetConfig,
        seeds: SeedSequenceFactory,
        *,
        churn: tuple[frozenset[int], frozenset[tuple[int, int]]] | None = None,
    ) -> None:
        if churn is not None:
            # restored from a world snapshot: the churn draws below iterate
            # ``fac.members`` frozensets, whose iteration order cannot be
            # reproduced by rebuilding the sets from their elements, so the
            # outcome travels with the snapshot instead of being re-derived
            closed, departed = churn
            self._closed = set(closed)
            self._departed = set(departed)
        else:
            rng = seeds.rng("peeringdb.generate")
            self._closed: set[int] = {
                fac_id
                for fac_id in topology.facilities
                if rng.random() < config.closed_facility_prob
            }
            # membership churn: (facility, asn) pairs dissolved since 2015
            self._departed: set[tuple[int, int]] = set()
            for fac_id, fac in topology.facilities.items():
                if fac_id in self._closed:
                    continue
                for asn in fac.members:
                    if rng.random() < config.membership_churn_prob:
                        self._departed.add((fac_id, asn))
        self._facilities = topology.facilities
        self._ixps = topology.ixps

    def churn_state(self) -> tuple[frozenset[int], frozenset[tuple[int, int]]]:
        """The generated ``(closed facilities, departed memberships)``.

        Serialized into world snapshots and fed back through ``churn=`` so a
        restored world reproduces this dataset byte-for-byte.
        """
        return frozenset(self._closed), frozenset(self._departed)

    # ------------------------------------------------------------ facilities

    def has_facility(self, fac_id: int) -> bool:
        """True if the facility exists and is still open."""
        return fac_id in self._facilities and fac_id not in self._closed

    def facility(self, fac_id: int) -> Facility:
        """The facility record.

        Raises:
            DatasetError: if unknown or closed.
        """
        if not self.has_facility(fac_id):
            raise DatasetError(f"facility {fac_id} not present in PeeringDB")
        return self._facilities[fac_id]

    def facilities(self) -> list[Facility]:
        """Every open facility."""
        return [f for fid, f in self._facilities.items() if fid not in self._closed]

    def closed_facility_ids(self) -> frozenset[int]:
        """Facilities that existed in 2015 but are gone today."""
        return frozenset(self._closed)

    # ------------------------------------------------------------ membership

    def current_members(self, fac_id: int) -> frozenset[int]:
        """ASNs present at the facility today.

        Raises:
            DatasetError: if the facility is unknown or closed.
        """
        fac = self.facility(fac_id)
        return frozenset(
            asn for asn in fac.members if (fac_id, asn) not in self._departed
        )

    def is_present(self, asn: int, fac_id: int) -> bool:
        """True if ``asn`` is listed at the facility today."""
        return self.has_facility(fac_id) and asn in self.current_members(fac_id)

    def network_count(self, fac_id: int) -> int:
        """Table 1 ``#Nets``: networks currently at the facility."""
        return len(self.current_members(fac_id))

    # ----------------------------------------------------------------- IXPs

    def ixps_at(self, fac_id: int) -> list[IXP]:
        """IXPs whose fabric reaches into the facility."""
        fac = self.facility(fac_id)
        return [self._ixps[ixp_id] for ixp_id in sorted(fac.ixp_ids)]

    def ixp_count(self, fac_id: int) -> int:
        """Table 1 ``#IXPs``."""
        return len(self.facility(fac_id).ixp_ids)

    # ------------------------------------------------------------- rankings

    def top_facility_ids(self, n: int = 10) -> list[int]:
        """The ``n`` largest open facilities by current network count
        (the paper's "top-10 of PeeringDB w.r.t. colocated networks")."""
        open_ids = [fid for fid in self._facilities if fid not in self._closed]
        open_ids.sort(key=lambda fid: (-self.network_count(fid), fid))
        return open_ids[:n]

    def city_of(self, fac_id: int) -> str:
        """City key of a facility (used by RTT-based geolocation)."""
        return self.facility(fac_id).city_key
