"""APNIC-style per-(AS, country) Internet-user coverage estimates.

The paper selects eyeball networks from APNIC's measurement campaign:
per-country percentages of the Internet-user population served by each
measured AS (Sec 2.1).  This substrate derives equivalent coverage figures
from the generated topology: eyeball ASes split most of each country's
users Zipf-style, while enterprise and research networks appear in the data
with small coverages — they face web users, but fail the paper's 10%
"actual eyeball" cutoff, which is exactly the distinction Fig. 1 is about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DatasetError
from repro.geo.countries import all_countries
from repro.topology.builder import Topology
from repro.topology.types import ASType
from repro.util.rand import SeedSequenceFactory


@dataclass(frozen=True, slots=True)
class CoverageRecord:
    """Coverage of one AS in one country.

    Attributes:
        asn: The measured AS.
        cc: Country of operation.
        coverage_pct: Percentage (0-100) of the country's Internet users
            the AS serves.
    """

    asn: int
    cc: str
    coverage_pct: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage_pct <= 100.0:
            raise DatasetError(f"coverage {self.coverage_pct} outside [0, 100]")


class ApnicCoverage:
    """The synthetic APNIC coverage dataset."""

    def __init__(self, topology: Topology, seeds: SeedSequenceFactory) -> None:
        self._records: list[CoverageRecord] = []
        self._by_key: dict[tuple[int, str], float] = {}
        self._generate(topology, seeds.rng("apnic.generate"))

    def _generate(self, topology: Topology, rng) -> None:
        graph = topology.graph
        by_country: dict[str, list[int]] = {}
        for asn in topology.asns_of_type(ASType.EYEBALL):
            by_country.setdefault(graph.get_as(asn).cc, []).append(asn)
        small_players: dict[str, list[int]] = {}
        for as_type in (ASType.ENTERPRISE, ASType.RESEARCH):
            for asn in topology.asns_of_type(as_type):
                small_players.setdefault(graph.get_as(asn).cc, []).append(asn)

        for ctry in all_countries():
            eyeballs = by_country.get(ctry.code, [])
            if eyeballs:
                # Zipf-like market shares covering 75-95% of the country.
                total_share = float(rng.uniform(75.0, 95.0))
                weights = [1.0 / (rank + 1) ** float(rng.uniform(0.9, 1.4))
                           for rank in range(len(eyeballs))]
                weight_sum = sum(weights)
                order = list(eyeballs)
                rng.shuffle(order)
                for asn, weight in zip(order, weights):
                    pct = total_share * weight / weight_sum
                    self._add(CoverageRecord(asn, ctry.code, round(pct, 2)))
            for asn in small_players.get(ctry.code, []):
                pct = float(rng.uniform(0.05, 3.0))
                self._add(CoverageRecord(asn, ctry.code, round(pct, 2)))

    def _add(self, record: CoverageRecord) -> None:
        key = (record.asn, record.cc)
        if key in self._by_key:
            raise DatasetError(f"duplicate coverage record for {key}")
        self._records.append(record)
        self._by_key[key] = record.coverage_pct

    # ----------------------------------------------------------------- query

    def records(self) -> tuple[CoverageRecord, ...]:
        """All coverage records (stable order)."""
        return tuple(self._records)

    def coverage(self, asn: int, cc: str) -> float | None:
        """Coverage of an (AS, country) tuple, or None if unmeasured."""
        return self._by_key.get((asn, cc))

    def tuples_above(self, cutoff_pct: float) -> list[tuple[int, str]]:
        """(ASN, CC) tuples at or above the coverage cutoff."""
        return [
            (r.asn, r.cc) for r in self._records if r.coverage_pct >= cutoff_pct
        ]

    def fig1_curve(self, cutoffs: list[float]) -> list[tuple[float, int, int]]:
        """The Fig. 1 series: for each cutoff, (cutoff, #ASes, #countries).

        A country is *covered* at a cutoff if at least one of its measured
        ASes reaches that coverage level.
        """
        out = []
        for cutoff in cutoffs:
            selected = self.tuples_above(cutoff)
            num_ases = len({asn for asn, _ in selected})
            num_countries = len({cc for _, cc in selected})
            out.append((cutoff, num_ases, num_countries))
        return out
