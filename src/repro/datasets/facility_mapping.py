"""The aged, Giotsas-style IP-to-facility dataset (2015 vintage).

Giotsas et al. ("Mapping peering interconnections to a facility", CoNEXT
2015) inferred, from traceroutes, which facility each interconnection IP
lives in; the paper starts from their published dataset and filters out two
years of staleness (Sec 2.2).  This substrate derives the same *kind* of
records from the ground-truth colo interface pool, injecting every defect
class the filters check:

* non-converged records list 2-3 candidate facilities instead of one;
* some candidate facilities have since closed (checked against PeeringDB);
* some interfaces are dead (fail the pingability filter);
* some addresses changed hands, so the recorded ASN disagrees with today's
  prefix2as origin;
* some ASes left the facility (checked against current PeeringDB
  membership);
* some interfaces were physically relocated (caught by RTT geolocation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.config import DatasetConfig
from repro.measurement.colo import ColoInterfacePool
from repro.net.ipv4 import IPv4Address
from repro.topology.builder import Topology
from repro.util.rand import SeedSequenceFactory


@dataclass(frozen=True, slots=True)
class FacilityMappingRecord:
    """One row of the 2015 dataset.

    Attributes:
        ip: The interconnection IP address.
        recorded_asn: The ASN the 2015 dataset attributed the IP to.
        candidate_facility_ids: The facility (or, when the constrained
            facility search did not converge, facilities) the IP was mapped
            to.
        neighbour_ixp_ids: IXPs adjacent to the interface in 2015.
    """

    ip: IPv4Address
    recorded_asn: int
    candidate_facility_ids: frozenset[int]
    neighbour_ixp_ids: frozenset[int]

    @property
    def is_single_facility(self) -> bool:
        """True if the facility search converged to exactly one facility."""
        return len(self.candidate_facility_ids) == 1


class FacilityMappingDataset:
    """Generates and serves the aged facility-mapping records."""

    def __init__(
        self,
        topology: Topology,
        pool: ColoInterfacePool,
        config: DatasetConfig,
        seeds: SeedSequenceFactory,
    ) -> None:
        self._records: list[FacilityMappingRecord] = []
        self._generate(topology, pool, config, seeds.rng("facility_mapping.generate"))

    def _generate(self, topology: Topology, pool: ColoInterfacePool, cfg, rng) -> None:
        all_fac_ids = sorted(topology.facilities)
        all_asns = topology.graph.asns()
        by_city: dict[str, list[int]] = {}
        for fac_id, fac in topology.facilities.items():
            by_city.setdefault(fac.city_key, []).append(fac_id)

        for interface in pool.interfaces():
            if rng.random() >= cfg.dataset_coverage:
                continue  # the 2015 crawl missed this interface
            true_fac = interface.facility_id
            candidates = {true_fac}
            if rng.random() < cfg.multi_facility_prob:
                # non-convergence: add facilities from the same metro when
                # possible (the realistic ambiguity), else anywhere
                same_city = [f for f in by_city.get(
                    topology.facilities[true_fac].city_key, []) if f != true_fac]
                extra_pool = same_city if same_city else [
                    f for f in all_fac_ids if f != true_fac]
                n_extra = int(rng.integers(1, 3))
                for _ in range(min(n_extra, len(extra_pool))):
                    candidates.add(extra_pool[int(rng.integers(len(extra_pool)))])
            recorded_asn = interface.node.asn
            if rng.random() < cfg.asn_churn_prob:
                other = all_asns[int(rng.integers(len(all_asns)))]
                if other != recorded_asn:
                    recorded_asn = other
            self._records.append(
                FacilityMappingRecord(
                    ip=interface.node.ip,
                    recorded_asn=recorded_asn,
                    candidate_facility_ids=frozenset(candidates),
                    neighbour_ixp_ids=topology.facilities[true_fac].ixp_ids,
                )
            )

    def records(self) -> tuple[FacilityMappingRecord, ...]:
        """All dataset rows (stable order)."""
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)
