"""Periscope: looking-glass-based RTT geolocation.

Periscope (Giotsas et al., PAM 2016) federates public looking-glass
servers; the paper uses LGs *in the same city as a candidate facility* to
verify that a colo IP really is in that city, keeping IPs whose minimum
last-hop traceroute RTT stays under 1 ms (Sec 2.2, last filter).  This
substrate places LG servers in transit PoPs at a subset of facility metros
and answers minimum-RTT queries through the traceroute engine, so city
coverage gaps (no LG in town -> no measurement -> IP dropped) occur just
like they did in the real study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.cities import city as city_of
from repro.latency.model import Endpoint
from repro.latency.traceroute import TracerouteEngine
from repro.measurement.config import InfrastructureConfig
from repro.measurement.nodes import HostAddressBook, MeasurementNode, NodeKind
from repro.topology.builder import Topology
from repro.topology.types import ASType
from repro.util.rand import SeedSequenceFactory


@dataclass(frozen=True, slots=True)
class LookingGlass:
    """A looking-glass server: a traceroute vantage point in some city."""

    node: MeasurementNode

    @property
    def city_key(self) -> str:
        """City the LG is in."""
        return self.node.city_key


class Periscope:
    """LG registry plus the minimum-last-hop-RTT query the filter needs."""

    def __init__(
        self,
        topology: Topology,
        traceroute: TracerouteEngine,
        address_book: HostAddressBook,
        config: InfrastructureConfig,
        seeds: SeedSequenceFactory,
    ) -> None:
        self._traceroute = traceroute
        self._seeds = seeds
        self._lgs_by_city: dict[str, list[LookingGlass]] = {}
        self._generate(topology, address_book, config, seeds.rng("periscope.generate"))

    def _generate(self, topology: Topology, book: HostAddressBook, cfg, rng) -> None:
        graph = topology.graph
        facility_cities = sorted({f.city_key for f in topology.facilities.values()})
        counter = 0
        for city_key in facility_cities:
            # major metros practically always have public looking glasses
            # (Periscope federates 1800+ LGs in 500+ cities); smaller
            # facility metros are covered with the configured probability
            coverage_prob = 0.97 if city_of(city_key).population_m >= 8.0 else cfg.lg_city_prob
            if rng.random() >= coverage_prob:
                continue
            hosts = [
                asys.asn
                for asys in graph
                if asys.as_type in (ASType.TRANSIT_GLOBAL, ASType.TRANSIT_REGIONAL)
                and asys.has_pop_in(city_key)
            ]
            if not hosts:
                continue
            lo, hi = cfg.lgs_per_city
            for _ in range(int(rng.integers(lo, hi + 1))):
                counter += 1
                asn = hosts[int(rng.integers(len(hosts)))]
                node_id = f"lg-{counter:04d}"
                node = MeasurementNode(
                    node_id=node_id,
                    kind=NodeKind.LOOKING_GLASS,
                    ip=book.next_address(asn),
                    endpoint=Endpoint(
                        node_id=node_id,
                        asn=asn,
                        city_key=city_key,
                        access_ms=float(rng.uniform(*cfg.lg_access_ms)),
                        loss_prob=0.001,
                    ),
                )
                self._lgs_by_city.setdefault(city_key, []).append(LookingGlass(node))

    # ----------------------------------------------------------------- query

    def covered_cities(self) -> list[str]:
        """Cities that have at least one looking glass."""
        return sorted(self._lgs_by_city)

    def lgs_in(self, city_key: str) -> list[LookingGlass]:
        """Looking glasses in a city (possibly empty)."""
        return list(self._lgs_by_city.get(city_key, []))

    def num_lgs(self) -> int:
        """Total LG count."""
        return sum(len(v) for v in self._lgs_by_city.values())

    def min_last_hop_rtt(
        self, target: Endpoint, city_key: str, rng: np.random.Generator
    ) -> float | None:
        """Minimum last-hop traceroute RTT from the city's LGs to ``target``.

        The paper keeps the minimum across same-city LGs "to avoid RTT
        inflation effects affecting other LGs".  Returns None when the city
        has no LGs or no LG obtained a response.
        """
        best: float | None = None
        for lg in self._lgs_by_city.get(city_key, []):
            rtt = self._traceroute.last_hop_rtt(lg.node.endpoint, target, rng)
            if rtt is not None and (best is None or rtt < best):
                best = rtt
        return best
