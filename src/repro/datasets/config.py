"""Aging/noise knobs of the dataset substrates.

The Sec 2.2 filter pipeline only earns its keep if the 2015-vintage
facility-mapping dataset disagrees with today's ground truth in all the
ways the paper's filters check for.  Each probability below injects one
defect class; the defaults are tuned so the filter funnel's proportions
resemble the paper's (2675 -> 1008 -> 764 -> 725 -> 725 -> 356).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class DatasetConfig:
    """Knobs of the synthetic dataset generators."""

    closed_facility_prob: float = 0.08
    """Probability a 2015 facility has since shut down (filter 1)."""

    membership_churn_prob: float = 0.04
    """Probability an AS left a facility it was in (filter 4)."""

    dataset_coverage: float = 0.92
    """Fraction of ground-truth interfaces the 2015 dataset captured."""

    multi_facility_prob: float = 0.38
    """Fraction of records whose candidate set has >1 facility — the
    constrained-facility-search non-convergence the paper excludes
    (filter 1, footnote 2)."""

    asn_churn_prob: float = 0.04
    """Fraction of records whose address changed hands since 2015
    (filter 3)."""

    moas_prefix_prob: float = 0.03
    """Fraction of prefixes announced by multiple origin ASes (filter 3)."""

    geolocation_rtt_threshold_ms: float = 5.0
    """Max last-hop RTT from a same-city LG for an IP to pass RTT-based
    geolocation (filter 5).  The paper uses 1 ms against real intra-metro
    RTTs; our latency model charges a per-AS-hop processing cost that puts
    even same-city paths at 2-4 ms RTT, so 5 ms is the simulator-equivalent
    cutoff (still far below the ~10+ ms a wrong-metro interface shows)."""

    def __post_init__(self) -> None:
        for name in (
            "closed_facility_prob",
            "membership_churn_prob",
            "dataset_coverage",
            "multi_facility_prob",
            "asn_churn_prob",
            "moas_prefix_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name}={value} outside [0, 1]")
        if self.geolocation_rtt_threshold_ms <= 0:
            raise ConfigError("geolocation_rtt_threshold_ms must be positive")
