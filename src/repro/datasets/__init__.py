"""Dataset substrates: synthetic equivalents of the external data sources
the paper consumes (APNIC user coverage, PeeringDB, CAIDA prefix2as, the
Giotsas et al. facility-mapping dataset, and Periscope looking glasses)."""

from repro.datasets.config import DatasetConfig
from repro.datasets.apnic import ApnicCoverage, CoverageRecord
from repro.datasets.peeringdb import PeeringDB
from repro.datasets.prefix2as import Prefix2AS
from repro.datasets.facility_mapping import FacilityMappingDataset, FacilityMappingRecord
from repro.datasets.periscope import LookingGlass, Periscope

__all__ = [
    "DatasetConfig",
    "ApnicCoverage",
    "CoverageRecord",
    "PeeringDB",
    "Prefix2AS",
    "FacilityMappingDataset",
    "FacilityMappingRecord",
    "Periscope",
    "LookingGlass",
]
