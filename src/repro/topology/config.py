"""Configuration for the synthetic topology generator.

Every knob that shapes the generated Internet lives here, with defaults
calibrated so the paper's qualitative structure emerges: a flattened core
(content/cloud peering widely at hub IXPs), national eyeball ecosystems
behind regional transit, and large colocation facilities concentrated at a
handful of hub metros.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class TopologyConfig:
    """Knobs of :class:`~repro.topology.builder.TopologyBuilder`.

    Attributes:
        num_tier1: Number of global (tier-1) transit providers.
        regional_per_continent: Tier-2 transit providers per continent code.
        max_eyeballs_per_country: Cap on eyeball ASes per country; the
            actual count scales with the country's Internet-user population.
        num_content: Content/CDN networks present at most hubs.
        num_cloud: Cloud providers present at most hubs.
        research_country_prob: Probability a country gets a national NREN.
        enterprise_country_prob: Probability a country gets an enterprise AS.
        eyeball_remote_hub_prob: Probability an eyeball AS buys remote
            presence at 1-2 hub metros (Internet flattening).
        eyeball_multihome_tier1_prob: Probability an eyeball also buys
            transit directly from a tier-1.
        regional_peering_prob: Probability two same-continent regionals with
            a shared hub PoP peer.
        eyeball_content_peering_prob: Probability an eyeball peers with a
            content/cloud network at a shared IXP (flattening).
        eyeball_eyeball_peering_prob: Probability two eyeballs with a shared
            IXP peer directly.
        content_regional_peering_prob: Probability a content/cloud network
            peers with a regional transit at a shared IXP.
        facility_base_membership_prob: Baseline probability a candidate AS
            joins a given facility in a city (scaled by facility weight).
        max_facilities_per_hub: Upper bound on facilities per hub metro.
        cloud_facility_prob: Probability a facility offers cloud services
            directly or via a colocated provider.
    """

    country_limit: int | None = None
    """Optional cap on the number of countries the world has ASes in
    (selected round-robin across continents to preserve intercontinental
    diversity); None means every country in the embedded database.  Use
    small values to build fast test worlds."""

    continent_scope: tuple[str, ...] | None = None
    """Optional continent whitelist (codes like ``"EU"``, ``"NA"``): the
    world only places ASes in countries on these continents, and only the
    scoped entries of :attr:`regional_per_continent` apply.  None means the
    whole globe.  Regional-only scenarios (e.g. an intra-EU deployment)
    use this to study relay gains without intercontinental pairs."""

    num_tier1: int = 12
    regional_per_continent: tuple[tuple[str, int], ...] = (
        ("EU", 14),
        ("NA", 10),
        ("AS", 12),
        ("SA", 6),
        ("AF", 6),
        ("OC", 4),
    )
    max_eyeballs_per_country: int = 8
    num_content: int = 18
    num_cloud: int = 12
    research_country_prob: float = 0.55
    enterprise_country_prob: float = 0.45
    eyeball_remote_hub_prob: float = 0.65
    eyeball_multihome_tier1_prob: float = 0.30
    regional_peering_prob: float = 0.40
    eyeball_content_peering_prob: float = 0.70
    eyeball_eyeball_peering_prob: float = 0.30
    content_regional_peering_prob: float = 0.50
    facility_base_membership_prob: float = 0.55
    max_facilities_per_hub: int = 4
    cloud_facility_prob: float = 0.75
    mesh_interconnect_sites: int = 6
    """Interconnection metros sampled per tier-1 peering edge; more sites
    means hot-potato exits closer to the geodesic (less path inflation)."""
    c2p_interconnect_sites: int = 4
    """Interconnection metros sampled per customer-provider edge."""
    first_asn: int = 1000

    def __post_init__(self) -> None:
        if self.country_limit is not None and self.country_limit < 4:
            raise ConfigError("country_limit must be >= 4 for a meaningful world")
        if self.num_tier1 < 2:
            raise ConfigError("need at least 2 tier-1 providers")
        if self.max_eyeballs_per_country < 1:
            raise ConfigError("need at least 1 eyeball per country")
        if self.num_content < 1 or self.num_cloud < 1:
            raise ConfigError("need at least one content and one cloud AS")
        for name in (
            "research_country_prob",
            "enterprise_country_prob",
            "eyeball_remote_hub_prob",
            "eyeball_multihome_tier1_prob",
            "regional_peering_prob",
            "eyeball_content_peering_prob",
            "eyeball_eyeball_peering_prob",
            "content_regional_peering_prob",
            "facility_base_membership_prob",
            "cloud_facility_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name}={value} outside [0, 1]")
        if self.max_facilities_per_hub < 1:
            raise ConfigError("need at least 1 facility per hub")
        if self.first_asn < 1:
            raise ConfigError("first_asn must be positive")
        if self.mesh_interconnect_sites < 1 or self.c2p_interconnect_sites < 1:
            raise ConfigError("interconnect site counts must be >= 1")
        continents = [cc for cc, _ in self.regional_per_continent]
        if len(set(continents)) != len(continents):
            raise ConfigError("duplicate continent in regional_per_continent")
        if self.continent_scope is not None:
            if not self.continent_scope:
                raise ConfigError("continent_scope must name at least one continent")
            unknown = set(self.continent_scope) - set(continents)
            if unknown:
                raise ConfigError(
                    f"continent_scope names continents without regional transit "
                    f"configuration: {sorted(unknown)}"
                )
