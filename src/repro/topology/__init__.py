"""AS-level topology substrate: autonomous systems with geographic PoPs,
colocation facilities, IXPs, and a Gao-Rexford relationship graph, all
produced deterministically by :class:`~repro.topology.builder.TopologyBuilder`.
"""

from repro.topology.types import ASType, AutonomousSystem
from repro.topology.facilities import Facility, IXP
from repro.topology.graph import ASGraph, Relationship
from repro.topology.config import TopologyConfig
from repro.topology.builder import TopologyBuilder, Topology

__all__ = [
    "ASType",
    "AutonomousSystem",
    "Facility",
    "IXP",
    "ASGraph",
    "Relationship",
    "TopologyConfig",
    "TopologyBuilder",
    "Topology",
]
