"""Autonomous-system entities.

Each AS has a *role* (eyeball access ISP, regional transit, global tier-1
transit, content, cloud, research/NREN or enterprise), a primary country,
and a set of PoP cities where it can interconnect with other networks.  The
roles matter because the paper's methodology classifies measurement vantage
points by the network hosting them (Sec 2.1-2.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.geo.cities import city as _city
from repro.net.ipv4 import IPv4Prefix


class ASType(enum.Enum):
    """Functional role of an autonomous system in the simulated Internet."""

    EYEBALL = "eyeball"
    """Access ISP serving end users at the last mile."""

    TRANSIT_REGIONAL = "transit_regional"
    """Tier-2 transit: national/continental carrier, customer of tier-1s."""

    TRANSIT_GLOBAL = "transit_global"
    """Tier-1 transit: global backbone peering with the other tier-1s."""

    CONTENT = "content"
    """Content/CDN network present at many interconnection hubs."""

    CLOUD = "cloud"
    """Cloud provider with compute in colocation facilities."""

    RESEARCH = "research"
    """Research & education network (NREN); hosts PlanetLab sites."""

    ENTERPRISE = "enterprise"
    """Business network; faces users but is not an eyeball ISP."""


#: AS roles whose routers commonly appear in colocation facilities; colo
#: relay IPs (Sec 2.2) belong to these.
COLO_TENANT_TYPES = frozenset(
    {
        ASType.TRANSIT_REGIONAL,
        ASType.TRANSIT_GLOBAL,
        ASType.CONTENT,
        ASType.CLOUD,
    }
)


@dataclass(frozen=True, slots=True)
class AutonomousSystem:
    """An autonomous system of the simulated Internet.

    Attributes:
        asn: AS number (unique).
        name: Human-readable operator name.
        as_type: Functional role.
        cc: Primary country of operation (ISO alpha-2).
        pop_cities: City keys (``'Name/CC'``) where the AS has PoPs; the
            first entry is the AS's primary/headquarters city.
        prefixes: IPv4 prefixes originated by this AS.
    """

    asn: int
    name: str
    as_type: ASType
    cc: str
    pop_cities: tuple[str, ...]
    prefixes: tuple[IPv4Prefix, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise TopologyError(f"ASN must be positive, got {self.asn}")
        if not self.pop_cities:
            raise TopologyError(f"AS{self.asn} ({self.name}) has no PoP cities")
        for key in self.pop_cities:
            _city(key)  # validates the key
        if len(set(self.pop_cities)) != len(self.pop_cities):
            raise TopologyError(f"AS{self.asn} has duplicate PoP cities")

    @property
    def primary_city(self) -> str:
        """The AS's headquarters / main PoP city key."""
        return self.pop_cities[0]

    def has_pop_in(self, city_key: str) -> bool:
        """True if the AS has a PoP in the given city."""
        return city_key in self.pop_cities

    def __str__(self) -> str:
        return f"AS{self.asn}({self.name},{self.as_type.value},{self.cc})"
