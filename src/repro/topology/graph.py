"""The AS relationship graph (Gao-Rexford model).

Edges carry a business relationship — customer-to-provider (``c2p``) or
peer-to-peer (``p2p``) — plus the set of cities where the two networks
interconnect.  Valley-free routing (:mod:`repro.routing.bgp`) and the
geographic waypoint walker (:mod:`repro.routing.geopath`) both read from
this structure.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.errors import TopologyError
from repro.topology.types import AutonomousSystem


class Relationship(enum.Enum):
    """Business relationship of an AS adjacency."""

    C2P = "c2p"  #: first AS is a customer of the second
    P2P = "p2p"  #: settlement-free peers


@dataclass(frozen=True, slots=True)
class Adjacency:
    """An interconnection between two ASes.

    ``rel`` is interpreted from ``a``'s perspective: ``C2P`` means ``a`` is
    a customer of ``b``.  ``interconnect_cities`` lists the city keys where
    the two networks exchange traffic; the geographic path walker picks one
    hot-potato-style.
    """

    a: int
    b: int
    rel: Relationship
    interconnect_cities: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"self-adjacency on AS{self.a}")
        if not self.interconnect_cities:
            raise TopologyError(f"adjacency AS{self.a}-AS{self.b} has no interconnection city")


class ASGraph:
    """Mutable AS-level graph with relationship-typed adjacencies."""

    def __init__(self) -> None:
        self._as_by_asn: dict[int, AutonomousSystem] = {}
        self._providers: dict[int, set[int]] = {}
        self._customers: dict[int, set[int]] = {}
        self._peers: dict[int, set[int]] = {}
        self._edges: dict[tuple[int, int], Adjacency] = {}

    # -- nodes ------------------------------------------------------------

    def add_as(self, asys: AutonomousSystem) -> None:
        """Register an AS.

        Raises:
            TopologyError: if the ASN is already present.
        """
        if asys.asn in self._as_by_asn:
            raise TopologyError(f"duplicate ASN {asys.asn}")
        self._as_by_asn[asys.asn] = asys
        self._providers[asys.asn] = set()
        self._customers[asys.asn] = set()
        self._peers[asys.asn] = set()

    def get_as(self, asn: int) -> AutonomousSystem:
        """Return the AS with the given ASN.

        Raises:
            TopologyError: if unknown.
        """
        try:
            return self._as_by_asn[asn]
        except KeyError:
            raise TopologyError(f"unknown ASN {asn}") from None

    def has_as(self, asn: int) -> bool:
        """True if the ASN is registered."""
        return asn in self._as_by_asn

    def asns(self) -> list[int]:
        """All registered ASNs in insertion order."""
        return list(self._as_by_asn)

    def __len__(self) -> int:
        return len(self._as_by_asn)

    def __iter__(self) -> Iterator[AutonomousSystem]:
        return iter(self._as_by_asn.values())

    # -- edges ------------------------------------------------------------

    @staticmethod
    def _edge_key(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a < b else (b, a)

    def add_c2p(self, customer: int, provider: int, cities: Iterable[str]) -> None:
        """Add a customer-to-provider adjacency."""
        self._check_new_edge(customer, provider)
        adj = Adjacency(customer, provider, Relationship.C2P, tuple(cities))
        self._edges[self._edge_key(customer, provider)] = adj
        self._providers[customer].add(provider)
        self._customers[provider].add(customer)

    def add_p2p(self, a: int, b: int, cities: Iterable[str]) -> None:
        """Add a settlement-free peering adjacency."""
        self._check_new_edge(a, b)
        adj = Adjacency(a, b, Relationship.P2P, tuple(cities))
        self._edges[self._edge_key(a, b)] = adj
        self._peers[a].add(b)
        self._peers[b].add(a)

    def _check_new_edge(self, a: int, b: int) -> None:
        if a not in self._as_by_asn:
            raise TopologyError(f"unknown ASN {a}")
        if b not in self._as_by_asn:
            raise TopologyError(f"unknown ASN {b}")
        if self._edge_key(a, b) in self._edges:
            raise TopologyError(f"duplicate adjacency AS{a}-AS{b}")

    def adjacency(self, a: int, b: int) -> Adjacency:
        """Return the adjacency record between two ASes.

        Raises:
            TopologyError: if the ASes are not adjacent.
        """
        try:
            return self._edges[self._edge_key(a, b)]
        except KeyError:
            raise TopologyError(f"AS{a} and AS{b} are not adjacent") from None

    def are_adjacent(self, a: int, b: int) -> bool:
        """True if an adjacency exists between the two ASes."""
        return self._edge_key(a, b) in self._edges

    def num_edges(self) -> int:
        """Total number of adjacencies."""
        return len(self._edges)

    def edges(self) -> Iterator[Adjacency]:
        """Iterate all adjacency records (insertion order)."""
        return iter(self._edges.values())

    # -- neighbour views ----------------------------------------------------

    def providers_of(self, asn: int) -> frozenset[int]:
        """Provider ASNs of ``asn``."""
        self.get_as(asn)
        return frozenset(self._providers[asn])

    def customers_of(self, asn: int) -> frozenset[int]:
        """Customer ASNs of ``asn``."""
        self.get_as(asn)
        return frozenset(self._customers[asn])

    def peers_of(self, asn: int) -> frozenset[int]:
        """Peer ASNs of ``asn``."""
        self.get_as(asn)
        return frozenset(self._peers[asn])

    def degree(self, asn: int) -> int:
        """Total adjacency count of ``asn``."""
        return len(self._providers[asn]) + len(self._customers[asn]) + len(self._peers[asn])

    # -- invariants ---------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise TopologyError on violation.

        Invariants: no provider loops among the transit hierarchy (the
        customer-of relation must be acyclic) and every AS reachable from at
        least one provider or peer (no isolated stubs).
        """
        # Kahn's algorithm over customer->provider edges to detect cycles.
        indegree = {asn: 0 for asn in self._as_by_asn}
        for asn in self._as_by_asn:
            for provider in self._providers[asn]:
                indegree[provider] += 1
        queue = [asn for asn, deg in indegree.items() if deg == 0]
        seen = 0
        while queue:
            node = queue.pop()
            seen += 1
            for provider in self._providers[node]:
                indegree[provider] -= 1
                if indegree[provider] == 0:
                    queue.append(provider)
        if seen != len(self._as_by_asn):
            raise TopologyError("customer-provider hierarchy contains a cycle")
        for asn in self._as_by_asn:
            if self.degree(asn) == 0:
                raise TopologyError(f"AS{asn} is isolated (no adjacencies)")
