"""AS-graph analytics: the standard structural statistics used to sanity-
check generated topologies against the real Internet's shape.

* **customer cone** — the set of ASes reachable from an AS by walking only
  provider-to-customer edges (CAIDA's AS-rank metric); tier-1s should have
  cones covering most of the graph, eyeballs cones of size 1;
* **degree distribution** — heavy-tailed in the real Internet;
* **relationship mix** — modern (flattened) topologies carry more peering
  than transit edges.
"""

from __future__ import annotations

from collections import Counter

from repro.topology.graph import ASGraph, Relationship


def customer_cone(graph: ASGraph, asn: int) -> frozenset[int]:
    """The AS's customer cone, including the AS itself."""
    cone = {asn}
    stack = [asn]
    while stack:
        node = stack.pop()
        for customer in graph.customers_of(node):
            if customer not in cone:
                cone.add(customer)
                stack.append(customer)
    return frozenset(cone)


def cone_sizes(graph: ASGraph) -> dict[int, int]:
    """Customer cone size per ASN, computed bottom-up in one pass.

    Sizes count *distinct* ASes in the cone (not paths), so the result
    matches calling :func:`customer_cone` per AS, at a fraction of the
    cost for large graphs.
    """
    # topological order over provider->customer DAG (leaves first)
    order: list[int] = []
    pending = {asn: len(graph.customers_of(asn)) for asn in graph.asns()}
    stack = [asn for asn, count in pending.items() if count == 0]
    seen = set(stack)
    # Kahn over reversed edges: process an AS once all customers are done
    remaining = dict(pending)
    while stack:
        node = stack.pop()
        order.append(node)
        for provider in graph.providers_of(node):
            remaining[provider] -= 1
            if remaining[provider] == 0 and provider not in seen:
                seen.add(provider)
                stack.append(provider)
    cones: dict[int, frozenset[int]] = {}
    for asn in order:
        cone = {asn}
        for customer in graph.customers_of(asn):
            cone |= cones[customer]
        cones[asn] = frozenset(cone)
    return {asn: len(cone) for asn, cone in cones.items()}


def degree_distribution(graph: ASGraph) -> dict[int, int]:
    """Histogram: degree value -> number of ASes with that degree."""
    return dict(Counter(graph.degree(asn) for asn in graph.asns()))


def relationship_mix(graph: ASGraph) -> dict[str, int]:
    """Edge counts by relationship type (``c2p`` / ``p2p``)."""
    counts = {"c2p": 0, "p2p": 0}
    for adjacency in graph.edges():
        if adjacency.rel is Relationship.P2P:
            counts["p2p"] += 1
        else:
            counts["c2p"] += 1
    return counts


def topology_report(graph: ASGraph) -> dict[str, float]:
    """Headline structural statistics of a generated topology."""
    sizes = cone_sizes(graph)
    degrees = [graph.degree(asn) for asn in graph.asns()]
    mix = relationship_mix(graph)
    n = len(graph)
    return {
        "num_ases": float(n),
        "num_edges": float(graph.num_edges()),
        "max_cone_frac": max(sizes.values()) / n,
        "median_cone_size": float(sorted(sizes.values())[n // 2]),
        "max_degree": float(max(degrees)),
        "mean_degree": sum(degrees) / n,
        "peering_edge_frac": mix["p2p"] / max(1, mix["p2p"] + mix["c2p"]),
    }
