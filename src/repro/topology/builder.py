"""Deterministic generator of the synthetic Internet topology.

The builder creates, in order: tier-1 transit, regional transit per
continent, eyeball ISPs per country, content/cloud networks, research
(NREN) networks and enterprise stubs; then colocation facilities and IXPs
at hub metros; then the Gao-Rexford adjacencies (transit mesh, customer
cones, IXP peering).  All randomness comes from named streams of a
:class:`~repro.util.rand.SeedSequenceFactory`, so one seed reproduces the
entire world bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, TopologyError
from repro.geo.cities import City, all_cities, cities_in_country, city as city_of, hub_cities
from repro.geo.countries import all_countries
from repro.geo.distance import great_circle_km
from repro.net.allocator import PrefixAllocator
from repro.topology.config import TopologyConfig
from repro.topology.facilities import IXP, Facility
from repro.topology.graph import ASGraph
from repro.topology.types import ASType, AutonomousSystem, COLO_TENANT_TYPES
from repro.util.rand import SeedSequenceFactory

_FACILITY_OPERATORS = (
    "Equinox",
    "Telihouse",
    "Interxchange",
    "Digital Realm",
    "CoreLocate",
    "GlobalRack",
    "NetHaus",
    "DataDock",
    "ColoCentral",
    "HubOne",
)

_TIER1_NAMES = (
    "Centuria Backbone",
    "Levant-3",
    "GTT-like Global",
    "Cogentia",
    "TeliaNet Intl",
    "NTT-like Global",
    "Zayo-like",
    "Tata-like Comm",
    "PCCW-like Global",
    "Orange Intl",
    "Sparkle Intl",
    "Lumen-like",
)

_CONTENT_NAMES = (
    "StreamCast CDN",
    "VideoPrime CDN",
    "EdgeServe",
    "FastPath CDN",
    "Cachely",
    "MediaGrid",
    "PixelFlow",
    "ClipNet",
    "SurgeCDN",
    "RapidEdge",
    "MirrorWave",
    "ByteSpring",
    "NodeFront",
    "SwiftCache",
    "OriginX",
    "PulseCDN",
    "VectorStream",
    "PrimeEdge",
)

_CLOUD_NAMES = (
    "Nimbus Cloud",
    "StratusCompute",
    "AltoCloud",
    "CirrusHost",
    "VaporStack",
    "SkyForge",
    "CumulusGrid",
    "AetherCloud",
    "ZenithCompute",
    "ApexHosting",
    "OrbitCloud",
    "NovaCompute",
)


@dataclass
class Topology:
    """The generated Internet: graph + facility/IXP ecosystem.

    Attributes:
        graph: AS relationship graph.
        facilities: Facility records keyed by facility id.
        ixps: IXP records keyed by IXP id.
        config: The configuration the world was generated from.
    """

    graph: ASGraph
    facilities: dict[int, Facility]
    ixps: dict[int, IXP]
    config: TopologyConfig
    _by_type: dict[ASType, tuple[int, ...]] = field(default_factory=dict)

    def asns_of_type(self, as_type: ASType) -> tuple[int, ...]:
        """Return the ASNs of a given role, in creation order."""
        return self._by_type.get(as_type, ())

    def eyeball_asns(self) -> tuple[int, ...]:
        """Convenience accessor for eyeball ISPs."""
        return self.asns_of_type(ASType.EYEBALL)

    def facilities_in_city(self, city_key: str) -> tuple[Facility, ...]:
        """Facilities located in the given city."""
        return tuple(f for f in self.facilities.values() if f.city_key == city_key)

    def facilities_of_member(self, asn: int) -> tuple[Facility, ...]:
        """Facilities where the given AS has equipment."""
        return tuple(f for f in self.facilities.values() if asn in f.members)

    def summary(self) -> dict[str, int]:
        """Entity counts, for logging and sanity tests."""
        counts = {f"as_{t.value}": len(self.asns_of_type(t)) for t in ASType}
        counts["as_total"] = len(self.graph)
        counts["edges"] = self.graph.num_edges()
        counts["facilities"] = len(self.facilities)
        counts["ixps"] = len(self.ixps)
        return counts


class TopologyBuilder:
    """Builds a :class:`Topology` from a config and a seed factory."""

    def __init__(self, config: TopologyConfig, seeds: SeedSequenceFactory) -> None:
        self._cfg = config
        self._seeds = seeds
        self._graph = ASGraph()
        self._allocator = PrefixAllocator("10.0.0.0/8")
        self._next_asn = config.first_asn
        self._by_type: dict[ASType, list[int]] = {t: [] for t in ASType}
        self._hub_list: tuple[City, ...] = hub_cities()
        if config.continent_scope is not None:
            scope = set(config.continent_scope)
            # scoping the hub list scopes everything placed at hubs —
            # tier-1 PoPs, content/cloud presence, facilities and IXPs —
            # so a regional world has no out-of-scope infrastructure
            self._hub_list = tuple(c for c in self._hub_list if c.continent in scope)
            if not self._hub_list:
                raise ConfigError(
                    f"continent_scope {config.continent_scope} has no hub metros"
                )
        self._hub_weights = self._compute_hub_weights()
        self._countries = self._select_countries(
            config.country_limit, config.continent_scope
        )

    @staticmethod
    def _select_countries(limit: int | None, scope: tuple[str, ...] | None = None):
        """The countries the world places ASes in.

        With a limit, pick round-robin across continents so a small world
        still spans the globe (intercontinental pairs dominate the paper's
        dataset and drive its path-inflation findings).  A continent scope
        restricts the pool before the limit applies.
        """
        countries = all_countries()
        if scope is not None:
            allowed = set(scope)
            countries = [c for c in countries if c.continent in allowed]
        if limit is None or limit >= len(countries):
            return list(countries)
        by_continent: dict[str, list] = {}
        for ctry in countries:
            by_continent.setdefault(ctry.continent, []).append(ctry)
        picked = []
        rotation = sorted(by_continent)
        cursor = {continent: 0 for continent in rotation}
        while len(picked) < limit:
            progressed = False
            for continent in rotation:
                pool = by_continent[continent]
                if cursor[continent] < len(pool):
                    picked.append(pool[cursor[continent]])
                    cursor[continent] += 1
                    progressed = True
                    if len(picked) == limit:
                        break
            if not progressed:
                break
        return picked

    # ------------------------------------------------------------------ API

    def build(self) -> Topology:
        """Generate the full topology; deterministic for a given seed."""
        self._create_tier1s()
        self._create_regionals()
        self._create_eyeballs()
        self._create_content_and_cloud()
        self._create_research()
        self._create_enterprises()
        facilities = self._create_facilities()
        ixps = self._create_ixps(facilities)
        self._wire_transit_mesh()
        self._wire_regional_transit()
        self._wire_eyeball_transit()
        self._wire_content_cloud_transit()
        self._wire_research()
        self._wire_enterprises()
        self._wire_peering(ixps)
        self._graph.validate()
        topo = Topology(
            graph=self._graph,
            facilities=facilities,
            ixps=ixps,
            config=self._cfg,
            _by_type={t: tuple(asns) for t, asns in self._by_type.items()},
        )
        return topo

    # -------------------------------------------------------------- helpers

    def _compute_hub_weights(self) -> np.ndarray:
        """Hub attractiveness: population plus a flat interconnection bonus.

        Small metros that are major interconnection points (e.g. Ashburn)
        still attract presence, hence the flat bonus.
        """
        weights = np.array([c.population_m + 6.0 for c in self._hub_list])
        return weights / weights.sum()

    def _claim_asn(self) -> int:
        asn = self._next_asn
        self._next_asn += 1
        return asn

    def _register(
        self,
        name: str,
        as_type: ASType,
        cc: str,
        pop_cities: list[str],
        num_prefixes: int,
        prefix_len: int,
    ) -> int:
        asn = self._claim_asn()
        prefixes = tuple(self._allocator.allocate_prefix(prefix_len) for _ in range(num_prefixes))
        asys = AutonomousSystem(
            asn=asn,
            name=name,
            as_type=as_type,
            cc=cc,
            pop_cities=tuple(pop_cities),
            prefixes=prefixes,
        )
        self._graph.add_as(asys)
        self._by_type[as_type].append(asn)
        return asn

    def _sample_hubs(self, rng: np.random.Generator, count: int) -> list[str]:
        """Sample distinct hub city keys, weighted by attractiveness."""
        count = min(count, len(self._hub_list))
        idx = rng.choice(len(self._hub_list), size=count, replace=False, p=self._hub_weights)
        return [self._hub_list[i].key for i in sorted(idx)]

    @staticmethod
    def _nearest_city_key(target: City, candidates: list[str]) -> str:
        """The candidate city key geographically closest to ``target``."""
        if not candidates:
            raise TopologyError("no candidate interconnection city")
        return min(
            candidates,
            key=lambda key: great_circle_km(target.location, city_of(key).location),
        )

    # ------------------------------------------------------------ AS layers

    def _create_tier1s(self) -> None:
        rng = self._seeds.rng("topology.tier1")
        home_ccs = ("US", "US", "GB", "DE", "FR", "JP", "US", "IN", "HK", "FR", "IT", "US")
        for i in range(self._cfg.num_tier1):
            name = _TIER1_NAMES[i % len(_TIER1_NAMES)]
            cc = home_ccs[i % len(home_ccs)]
            # Tier-1s are present at most hubs.
            pops = [c.key for c in self._hub_list if rng.random() < 0.85]
            if len(pops) < 8:
                pops = [c.key for c in self._hub_list[:10]]
            # Primary city: a hub in the home country if any, else first PoP.
            home = [k for k in pops if k.endswith(f"/{cc}")]
            if home:
                pops.remove(home[0])
                pops.insert(0, home[0])
            self._register(name, ASType.TRANSIT_GLOBAL, cc, pops, 2, 20)

    def _create_regionals(self) -> None:
        rng = self._seeds.rng("topology.regional")
        countries_by_continent: dict[str, list] = {}
        for ctry in self._countries:
            countries_by_continent.setdefault(ctry.continent, []).append(ctry)
        for continent, count in self._cfg.regional_per_continent:
            continent_hubs = [c for c in self._hub_list if c.continent == continent]
            continent_cities = [c for c in all_cities() if c.continent == continent]
            candidates = countries_by_continent.get(continent, [])
            if not candidates:
                continue  # continent outside the world's scope
            for i in range(count):
                home = candidates[int(rng.integers(len(candidates)))]
                home_cities = list(cities_in_country(home.code))
                primary = home_cities[int(rng.integers(len(home_cities)))]
                pops = [primary.key]
                # presence at most continent hubs plus a few other cities
                for hub in continent_hubs:
                    if hub.key not in pops and rng.random() < 0.7:
                        pops.append(hub.key)
                extra = [c for c in continent_cities if c.key not in pops]
                if extra:
                    n_extra = int(rng.integers(2, min(6, len(extra) + 1)))
                    for idx in rng.choice(len(extra), size=min(n_extra, len(extra)), replace=False):
                        pops.append(extra[idx].key)
                name = f"{home.name} Carrier {i + 1}"
                self._register(name, ASType.TRANSIT_REGIONAL, home.code, pops, 2, 20)

    def _eyeball_count(self, users_m: float) -> int:
        """Eyeball AS count for a country scales with its user population."""
        count = 1 + int(round(math.log2(users_m + 1.0) / 1.5))
        return max(1, min(self._cfg.max_eyeballs_per_country, count))

    def _create_eyeballs(self) -> None:
        rng = self._seeds.rng("topology.eyeball")
        for ctry in self._countries:
            home_cities = list(cities_in_country(ctry.code))
            if not home_cities:
                continue
            for i in range(self._eyeball_count(ctry.internet_users_m)):
                n_cities = int(rng.integers(1, min(4, len(home_cities)) + 1))
                chosen = list(
                    rng.choice(len(home_cities), size=n_cities, replace=False)
                )
                pops = [home_cities[j].key for j in chosen]
                # largest chosen city first (headquarters)
                pops.sort(key=lambda k: -city_of(k).population_m)
                if rng.random() < self._cfg.eyeball_remote_hub_prob:
                    for hub_key in self._sample_hubs(rng, int(rng.integers(1, 3))):
                        if hub_key not in pops:
                            pops.append(hub_key)
                name = f"{ctry.name} Broadband {i + 1}"
                self._register(name, ASType.EYEBALL, ctry.code, pops, 2, 20)

    def _create_content_and_cloud(self) -> None:
        rng = self._seeds.rng("topology.content")
        for i in range(self._cfg.num_content):
            pops = [c.key for c in self._hub_list if rng.random() < 0.75]
            if len(pops) < 6:
                pops = [c.key for c in self._hub_list[:8]]
            cc = city_of(pops[0]).cc
            self._register(_CONTENT_NAMES[i % len(_CONTENT_NAMES)], ASType.CONTENT, cc, pops, 2, 21)
        for i in range(self._cfg.num_cloud):
            pops = [c.key for c in self._hub_list if rng.random() < 0.65]
            if len(pops) < 5:
                pops = [c.key for c in self._hub_list[:6]]
            cc = city_of(pops[0]).cc
            self._register(_CLOUD_NAMES[i % len(_CLOUD_NAMES)], ASType.CLOUD, cc, pops, 2, 21)

    def _create_research(self) -> None:
        rng = self._seeds.rng("topology.research")
        # Continental research backbones first (GEANT-like), present at hubs.
        self._backbones_by_continent: dict[str, int] = {}
        for continent, _ in self._cfg.regional_per_continent:
            hubs = [c.key for c in self._hub_list if c.continent == continent]
            if not hubs:
                continue
            asn = self._register(
                f"{continent} Research Backbone", ASType.RESEARCH, city_of(hubs[0]).cc, hubs, 1, 21
            )
            self._backbones_by_continent[continent] = asn
        # National NRENs.
        for ctry in self._countries:
            if ctry.continent not in self._backbones_by_continent:
                continue
            if rng.random() >= self._cfg.research_country_prob:
                continue
            home_cities = list(cities_in_country(ctry.code))
            if not home_cities:
                continue
            n = min(2, len(home_cities))
            chosen = rng.choice(len(home_cities), size=n, replace=False)
            pops = [home_cities[j].key for j in chosen]
            self._register(f"{ctry.name} NREN", ASType.RESEARCH, ctry.code, pops, 1, 22)

    def _create_enterprises(self) -> None:
        rng = self._seeds.rng("topology.enterprise")
        for ctry in self._countries:
            if rng.random() >= self._cfg.enterprise_country_prob:
                continue
            home_cities = list(cities_in_country(ctry.code))
            if not home_cities:
                continue
            primary = home_cities[int(rng.integers(len(home_cities)))]
            self._register(
                f"{ctry.name} Enterprise Net", ASType.ENTERPRISE, ctry.code, [primary.key], 1, 22
            )

    # --------------------------------------------------------- colo & IXPs

    def _facility_candidates(self, city_key: str) -> list[int]:
        """ASes with a PoP in the city, colo-tenant roles first."""
        tenants, others = [], []
        for asys in self._graph:
            if not asys.has_pop_in(city_key):
                continue
            if asys.as_type in COLO_TENANT_TYPES:
                tenants.append(asys.asn)
            else:
                others.append(asys.asn)
        return tenants + others

    def _create_facilities(self) -> dict[int, Facility]:
        rng = self._seeds.rng("topology.facility")
        facilities: dict[int, Facility] = {}
        fac_id = 1
        for hub in self._hub_list:
            candidates = self._facility_candidates(hub.key)
            if len(candidates) < 3:
                continue
            n_fac = 1 + int(rng.integers(0, self._cfg.max_facilities_per_hub))
            # attractiveness: first facility in a metro is the flagship
            weights = sorted((rng.pareto(1.5) + 0.3 for _ in range(n_fac)), reverse=True)
            for j in range(n_fac):
                operator = _FACILITY_OPERATORS[int(rng.integers(len(_FACILITY_OPERATORS)))]
                name = f"{operator} {hub.name} {j + 1}"
                if j == 0:
                    # the metro's flagship facility lands nearly every
                    # network in town (Telehouse-North-style mega sites)
                    prob = 0.85
                else:
                    prob = min(
                        0.75, self._cfg.facility_base_membership_prob * min(1.3, weights[j])
                    )
                members = {asn for asn in candidates if rng.random() < prob}
                # flagship facilities always land the tier-1s present in town
                if j == 0:
                    members.update(
                        asn
                        for asn in candidates
                        if self._graph.get_as(asn).as_type == ASType.TRANSIT_GLOBAL
                    )
                if len(members) < 3:
                    members = set(candidates[:3])
                facilities[fac_id] = Facility(
                    fac_id=fac_id,
                    name=name,
                    operator=operator,
                    city_key=hub.key,
                    members=frozenset(members),
                    ixp_ids=frozenset(),  # filled once IXPs exist
                    cloud_services=bool(rng.random() < self._cfg.cloud_facility_prob),
                )
                fac_id += 1
        return facilities

    def _create_ixps(self, facilities: dict[int, Facility]) -> dict[int, IXP]:
        rng = self._seeds.rng("topology.ixp")
        ixps: dict[int, IXP] = {}
        ixp_id = 1
        by_city: dict[str, list[Facility]] = {}
        for fac in facilities.values():
            by_city.setdefault(fac.city_key, []).append(fac)
        for city_key, facs in by_city.items():
            hub = city_of(city_key)
            # every hub metro gets a main exchange; the biggest get a second
            n_ixps = 2 if hub.population_m > 10 and len(facs) >= 2 else 1
            for j in range(n_ixps):
                attached = [f for f in facs if j == 0 or rng.random() < 0.6]
                if not attached:
                    attached = facs[:1]
                pool = set().union(*(f.members for f in attached))
                members = set()
                for asn in pool:
                    as_type = self._graph.get_as(asn).as_type
                    join_prob = {
                        ASType.CONTENT: 0.85,
                        ASType.CLOUD: 0.8,
                        ASType.TRANSIT_GLOBAL: 0.6,
                        ASType.TRANSIT_REGIONAL: 0.7,
                        ASType.EYEBALL: 0.5,
                        ASType.RESEARCH: 0.5,
                        ASType.ENTERPRISE: 0.2,
                    }[as_type]
                    if rng.random() < join_prob:
                        members.add(asn)
                if len(members) < 3:
                    members = set(list(pool)[:3])
                suffix = "-IX" if j == 0 else f"-IX{j + 1}"
                ixps[ixp_id] = IXP(
                    ixp_id=ixp_id,
                    name=f"{hub.name}{suffix}",
                    city_key=city_key,
                    facility_ids=frozenset(f.fac_id for f in attached),
                    members=frozenset(members),
                )
                ixp_id += 1
        # back-fill facility -> IXP links
        fac_to_ixps: dict[int, set[int]] = {fid: set() for fid in facilities}
        for ixp in ixps.values():
            for fid in ixp.facility_ids:
                fac_to_ixps[fid].add(ixp.ixp_id)
        for fid, fac in list(facilities.items()):
            facilities[fid] = Facility(
                fac_id=fac.fac_id,
                name=fac.name,
                operator=fac.operator,
                city_key=fac.city_key,
                members=fac.members,
                ixp_ids=frozenset(fac_to_ixps[fid]),
                cloud_services=fac.cloud_services,
            )
        return ixps

    # ---------------------------------------------------------------- edges

    def _shared_cities(self, a: int, b: int) -> list[str]:
        pops_a = set(self._graph.get_as(a).pop_cities)
        pops_b = self._graph.get_as(b).pop_cities
        return [key for key in pops_b if key in pops_a]

    def _interconnect_cities(
        self, rng: np.random.Generator, customer: int, provider: int, max_sites: int | None = None
    ) -> list[str]:
        """Choose interconnection cities for a c2p edge.

        Prefer cities where both networks have PoPs; otherwise the customer
        reaches the provider's PoP nearest to the customer's primary city
        over a private line.
        """
        if max_sites is None:
            max_sites = self._cfg.c2p_interconnect_sites
        shared = self._shared_cities(customer, provider)
        if shared:
            k = min(max_sites, len(shared))
            idx = rng.choice(len(shared), size=k, replace=False)
            return [shared[i] for i in sorted(idx)]
        cust_primary = city_of(self._graph.get_as(customer).primary_city)
        provider_pops = list(self._graph.get_as(provider).pop_cities)
        return [self._nearest_city_key(cust_primary, provider_pops)]

    def _wire_transit_mesh(self) -> None:
        rng = self._seeds.rng("topology.mesh")
        tier1s = self._by_type[ASType.TRANSIT_GLOBAL]
        for i, a in enumerate(tier1s):
            for b in tier1s[i + 1 :]:
                shared = self._shared_cities(a, b)
                if not shared:
                    continue
                k = min(self._cfg.mesh_interconnect_sites, len(shared))
                idx = rng.choice(len(shared), size=k, replace=False)
                self._graph.add_p2p(a, b, [shared[j] for j in sorted(idx)])

    def _wire_regional_transit(self) -> None:
        rng = self._seeds.rng("topology.regional_transit")
        tier1s = self._by_type[ASType.TRANSIT_GLOBAL]
        for asn in self._by_type[ASType.TRANSIT_REGIONAL]:
            n_providers = int(rng.integers(2, 4))
            providers = rng.choice(len(tier1s), size=min(n_providers, len(tier1s)), replace=False)
            for idx in providers:
                provider = tier1s[idx]
                self._graph.add_c2p(
                    asn, provider, self._interconnect_cities(rng, asn, provider)
                )

    def _wire_eyeball_transit(self) -> None:
        rng = self._seeds.rng("topology.eyeball_transit")
        regionals = self._by_type[ASType.TRANSIT_REGIONAL]
        tier1s = self._by_type[ASType.TRANSIT_GLOBAL]
        for asn in self._by_type[ASType.EYEBALL]:
            asys = self._graph.get_as(asn)
            continent = city_of(asys.primary_city).continent
            # prefer same-continent regionals; same-country even more
            same_country = [
                r for r in regionals if self._graph.get_as(r).cc == asys.cc
            ]
            same_continent = [
                r
                for r in regionals
                if city_of(self._graph.get_as(r).primary_city).continent == continent
            ]
            pool = same_country if same_country else same_continent
            if not pool:
                pool = list(regionals)
            n_providers = int(rng.integers(1, 3))
            chosen = rng.choice(len(pool), size=min(n_providers, len(pool)), replace=False)
            for idx in chosen:
                provider = pool[idx]
                if not self._graph.are_adjacent(asn, provider):
                    self._graph.add_c2p(
                        asn, provider, self._interconnect_cities(rng, asn, provider)
                    )
            if rng.random() < self._cfg.eyeball_multihome_tier1_prob:
                provider = tier1s[int(rng.integers(len(tier1s)))]
                if not self._graph.are_adjacent(asn, provider):
                    self._graph.add_c2p(
                        asn, provider, self._interconnect_cities(rng, asn, provider)
                    )

    def _wire_content_cloud_transit(self) -> None:
        rng = self._seeds.rng("topology.content_transit")
        tier1s = self._by_type[ASType.TRANSIT_GLOBAL]
        for asn in self._by_type[ASType.CONTENT] + self._by_type[ASType.CLOUD]:
            n_providers = int(rng.integers(1, 3))
            chosen = rng.choice(len(tier1s), size=min(n_providers, len(tier1s)), replace=False)
            for idx in chosen:
                provider = tier1s[idx]
                self._graph.add_c2p(asn, provider, self._interconnect_cities(rng, asn, provider))

    def _wire_research(self) -> None:
        rng = self._seeds.rng("topology.research_wire")
        backbones = list(self._backbones_by_continent.values())
        regionals = self._by_type[ASType.TRANSIT_REGIONAL]
        tier1s = self._by_type[ASType.TRANSIT_GLOBAL]
        # backbones peer among themselves where they share hubs, and each
        # buys commercial transit from one tier-1
        content_cloud = self._by_type[ASType.CONTENT] + self._by_type[ASType.CLOUD]
        for i, a in enumerate(backbones):
            for b in backbones[i + 1 :]:
                shared = self._shared_cities(a, b)
                if shared:
                    self._graph.add_p2p(a, b, shared[:2])
            provider = tier1s[int(rng.integers(len(tier1s)))]
            self._graph.add_c2p(a, provider, self._interconnect_cities(rng, a, provider))
            # NRENs peer openly at hub exchanges with content and regionals
            for other in content_cloud:
                shared = self._shared_cities(a, other)
                if shared and rng.random() < 0.8:
                    self._graph.add_p2p(a, other, shared[:2])
            for other in regionals:
                if self._graph.are_adjacent(a, other):
                    continue
                shared = self._shared_cities(a, other)
                if shared and rng.random() < 0.7:
                    self._graph.add_p2p(a, other, shared[:2])
        # national NRENs are customers of their continental backbone, and
        # sometimes of a commercial regional as well
        for asn in self._by_type[ASType.RESEARCH]:
            if asn in self._backbones_by_continent.values():
                continue
            asys = self._graph.get_as(asn)
            continent = city_of(asys.primary_city).continent
            backbone = self._backbones_by_continent.get(continent)
            if backbone is not None:
                self._graph.add_c2p(asn, backbone, self._interconnect_cities(rng, asn, backbone))
            if rng.random() < 0.5 and regionals:
                provider = regionals[int(rng.integers(len(regionals)))]
                if not self._graph.are_adjacent(asn, provider):
                    self._graph.add_c2p(
                        asn, provider, self._interconnect_cities(rng, asn, provider)
                    )

    def _wire_enterprises(self) -> None:
        rng = self._seeds.rng("topology.enterprise_wire")
        regionals = self._by_type[ASType.TRANSIT_REGIONAL]
        eyeballs = self._by_type[ASType.EYEBALL]
        for asn in self._by_type[ASType.ENTERPRISE]:
            asys = self._graph.get_as(asn)
            same_cc = [r for r in regionals if self._graph.get_as(r).cc == asys.cc]
            pool = same_cc if same_cc else regionals
            provider = pool[int(rng.integers(len(pool)))]
            self._graph.add_c2p(asn, provider, self._interconnect_cities(rng, asn, provider))
            # some enterprises also buy from a local eyeball ISP
            local_eyeballs = [e for e in eyeballs if self._graph.get_as(e).cc == asys.cc]
            if local_eyeballs and rng.random() < 0.4:
                provider = local_eyeballs[int(rng.integers(len(local_eyeballs)))]
                if not self._graph.are_adjacent(asn, provider):
                    self._graph.add_c2p(
                        asn, provider, self._interconnect_cities(rng, asn, provider)
                    )

    def _wire_peering(self, ixps: dict[int, IXP]) -> None:
        """IXP-driven public peering: the Internet-flattening edges."""
        rng = self._seeds.rng("topology.peering")
        cfg = self._cfg
        # regional <-> regional at shared hub PoPs
        regionals = self._by_type[ASType.TRANSIT_REGIONAL]
        for i, a in enumerate(regionals):
            for b in regionals[i + 1 :]:
                if self._graph.are_adjacent(a, b):
                    continue
                shared = [k for k in self._shared_cities(a, b) if city_of(k).is_hub]
                if shared and rng.random() < cfg.regional_peering_prob:
                    self._graph.add_p2p(a, b, shared[:2])
        # IXP multilateral peering
        for ixp in ixps.values():
            members = sorted(ixp.members)
            for i, a in enumerate(members):
                type_a = self._graph.get_as(a).as_type
                for b in members[i + 1 :]:
                    if self._graph.are_adjacent(a, b):
                        continue
                    type_b = self._graph.get_as(b).as_type
                    pair = {type_a, type_b}
                    if pair <= {ASType.EYEBALL} and rng.random() < cfg.eyeball_eyeball_peering_prob:
                        self._graph.add_p2p(a, b, [ixp.city_key])
                    elif (
                        ASType.EYEBALL in pair
                        and (pair & {ASType.CONTENT, ASType.CLOUD})
                        and rng.random() < cfg.eyeball_content_peering_prob
                    ):
                        self._graph.add_p2p(a, b, [ixp.city_key])
                    elif (
                        ASType.TRANSIT_REGIONAL in pair
                        and (pair & {ASType.CONTENT, ASType.CLOUD})
                        and rng.random() < cfg.content_regional_peering_prob
                    ):
                        self._graph.add_p2p(a, b, [ixp.city_key])
                    elif (
                        pair <= {ASType.CONTENT, ASType.CLOUD}
                        and rng.random() < 0.6
                    ):
                        self._graph.add_p2p(a, b, [ixp.city_key])
