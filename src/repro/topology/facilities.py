"""Colocation facilities and Internet exchange points.

A facility houses router/server equipment of *member* ASes and is attached
to zero or more IXPs; an IXP operates a peering fabric out of one or more
facilities.  These are the entities behind PeeringDB (the paper's source for
facility membership, Sec 2.2 filters 1 & 4, and for Table 1's feature
columns) and behind the Colo relay pool itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError
from repro.geo.cities import city as _city


@dataclass(frozen=True, slots=True)
class Facility:
    """A colocation facility.

    Attributes:
        fac_id: Unique facility id (the simulation's PeeringDB id).
        name: Facility name, e.g. ``'Equinix LD5'``.
        operator: Facility operator, e.g. ``'Equinix'``.
        city_key: City the facility is in (``'Name/CC'``).
        members: ASNs with equipment in the facility.
        ixp_ids: IXPs reachable from inside the facility.
        cloud_services: True if the facility itself or a colocated provider
            sells cloud/VM services (Table 1's "Cloud Services" column).
    """

    fac_id: int
    name: str
    operator: str
    city_key: str
    members: frozenset[int]
    ixp_ids: frozenset[int]
    cloud_services: bool

    def __post_init__(self) -> None:
        if self.fac_id <= 0:
            raise TopologyError(f"facility id must be positive, got {self.fac_id}")
        _city(self.city_key)
        if not self.members:
            raise TopologyError(f"facility {self.name} has no members")

    @property
    def cc(self) -> str:
        """Country code of the facility's city."""
        return self.city_key.rsplit("/", 1)[1]

    @property
    def num_networks(self) -> int:
        """Number of colocated member networks (Table 1 ``#Nets``)."""
        return len(self.members)

    @property
    def num_ixps(self) -> int:
        """Number of attached IXPs (Table 1 ``#IXPs``)."""
        return len(self.ixp_ids)

    def __str__(self) -> str:
        return f"{self.name} ({self.city_key}, {self.num_networks} nets)"


@dataclass(frozen=True, slots=True)
class IXP:
    """An Internet exchange point.

    Attributes:
        ixp_id: Unique IXP id.
        name: IXP name, e.g. ``'LINX'``.
        city_key: Main city of the exchange.
        facility_ids: Facilities the fabric extends into.
        members: ASNs peering over the fabric.
    """

    ixp_id: int
    name: str
    city_key: str
    facility_ids: frozenset[int]
    members: frozenset[int]

    def __post_init__(self) -> None:
        if self.ixp_id <= 0:
            raise TopologyError(f"IXP id must be positive, got {self.ixp_id}")
        _city(self.city_key)
        if not self.facility_ids:
            raise TopologyError(f"IXP {self.name} is not attached to any facility")

    def __str__(self) -> str:
        return f"{self.name} ({self.city_key}, {len(self.members)} members)"
