"""Command-line interface.

Mirrors how the paper's published artifact is used: run the measurement
campaign, store the raw results, and run each analysis/figure over the
stored data.

Usage (also via ``python -m repro``)::

    repro summary     --seed 11 [--countries 24]
    repro funnel      --seed 11
    repro campaign    --seed 11 --rounds 4 --out result.json
    repro campaign    --scenario lossy --out result.json
    repro sweep       --num-seeds 4 --seed 11 --rounds 4 --out sweep.json
    repro sweep       --scenario lossy spike-storm --seeds 11 12 --out sweep.json
    repro montecarlo  --regime tiny-mc --countries 8 --rounds 1 --out mc.json
    repro montecarlo  --regime baseline-mc --max-draws 48 --workers 4
    repro montecarlo  --list
    repro scenarios
    repro scenarios   --verify sweep.json
    repro analyze     result.json --report fig2
    repro analyze     result.json --report table1 --seed 11
    repro serve-bench
    repro serve-bench --scenario paper-scale --rounds 12 --queries 200000
    repro serve-bench --workers 2 --min-scaleout-efficiency 0.55
    repro serve-bench --seeds 11 12 13
    repro campaign    --seed 11 --rounds 6 --out r.json --metrics m.json --trace t.json
    repro metrics summarize m.json

The world/history knobs are shared parent parsers, so ``--seed``,
``--countries``, ``--rounds``, ``--max-countries`` and ``--scenario``
spell and behave identically on ``campaign``, ``sweep`` and
``serve-bench`` (deprecated spellings — ``--base-seed``, ``--zipf`` —
keep working with a warning).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro import obs
from repro.core.campaign import MeasurementCampaign
from repro.core.colo import ColoRelayPipeline
from repro.core.config import CampaignConfig
from repro.core.io import load_result, save_result
from repro.core.types import RELAY_TYPE_ORDER
from repro.errors import ReproError
from repro.topology.config import TopologyConfig
from repro.world import WorldConfig, build_world

_REPORTS = ("fig2", "fig3", "fig4", "table1", "countries", "voip", "stability", "summary", "full")


class _DeprecatedAlias(argparse.Action):
    """A renamed flag's old spelling: warn, then store into the new dest."""

    def __init__(self, option_strings, dest, replacement, **kwargs):
        self._replacement = replacement
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        print(
            f"warning: {option_string} is deprecated; use {self._replacement}",
            file=sys.stderr,
        )
        setattr(namespace, self.dest, values)


def _single_scenario(args: argparse.Namespace) -> str | None:
    """The one scenario a non-sweep command accepts (None when unset)."""
    if args.scenario is None:
        return None
    if len(args.scenario) != 1:
        raise ReproError(
            f"this command takes exactly one --scenario, got {args.scenario}"
        )
    return args.scenario[0]


def _world_cache_kwargs(args: argparse.Namespace) -> dict:
    """``build_world`` cache kwargs from the shared --world-cache flags.

    ``getattr`` defaults keep commands whose parsers predate the flags
    (``analyze`` declares --seed/--countries itself) on the env-driven
    default path."""
    return {
        "world_cache": getattr(args, "world_cache", None),
        "use_world_cache": not getattr(args, "no_world_cache", False),
    }


def _build_world_from_args(args: argparse.Namespace):
    topology = TopologyConfig(country_limit=args.countries)
    return build_world(
        seed=args.seed,
        config=WorldConfig(topology=topology),
        **_world_cache_kwargs(args),
    )


def _cmd_summary(args: argparse.Namespace) -> int:
    world = _build_world_from_args(args)
    for key, value in world.summary().items():
        print(f"{key:>28}: {value}")
    return 0


def _cmd_funnel(args: argparse.Namespace) -> int:
    from repro.analysis.plotting import render_funnel

    world = _build_world_from_args(args)
    pipeline = ColoRelayPipeline(world)
    _, report = pipeline.run()
    stages = [("initial", report.initial)] + list(report.stages)
    print(render_funnel(stages))
    facilities = pipeline.facilities_covered()
    cities = {world.peeringdb.city_of(f) for f in facilities}
    print(f"\nverified pool: {report.funnel()[-1]} IPs / {len(facilities)} "
          f"facilities / {len(cities)} cities")
    return 0


def _run_workload_campaign(args: argparse.Namespace, seed: int, default_rounds: int):
    """One campaign under the shared world/history/scenario flags.

    Returns ``(result, campaign, scenario, workload)`` — the scenario and
    the campaign object are None/campaign-less only in spirit: scenario is
    None without ``--scenario``, and ``campaign`` always carries the
    timeline for chaos-aware callers.
    """
    scenario_name = _single_scenario(args)
    if scenario_name is not None:
        from repro.scenarios import get_scenario, scenario_with

        scenario = scenario_with(
            get_scenario(scenario_name),
            rounds=args.rounds,
            countries=args.countries,
            max_countries=args.max_countries,
        )
        world = build_world(
            seed=seed, config=scenario.world, **_world_cache_kwargs(args)
        )
        campaign = MeasurementCampaign(world, scenario.campaign)
        workload = (
            f"scenario {scenario_name}, seed {seed}, "
            f"{scenario.campaign.num_rounds} rounds"
        )
    else:
        scenario = None
        countries = args.countries
        rounds = args.rounds if args.rounds is not None else default_rounds
        topology = TopologyConfig(country_limit=countries)
        world = build_world(
            seed=seed,
            config=WorldConfig(topology=topology),
            **_world_cache_kwargs(args),
        )
        campaign = MeasurementCampaign(
            world,
            CampaignConfig(num_rounds=rounds, max_countries=args.max_countries),
        )
        scope = f"{countries}-country world" if countries else "full world"
        workload = f"{scope}, seed {seed}, {rounds} rounds"
    return campaign.run(), campaign, scenario, workload


def _cmd_campaign(args: argparse.Namespace) -> int:
    scenario_name = _single_scenario(args)
    if scenario_name is not None:
        from repro.scenarios import get_scenario, scenario_with

        scenario = scenario_with(
            get_scenario(scenario_name),
            rounds=args.rounds,
            countries=args.countries,
            max_countries=args.max_countries,
        )
        world = build_world(
            seed=args.seed, config=scenario.world, **_world_cache_kwargs(args)
        )
        config = scenario.campaign
    else:
        world = _build_world_from_args(args)
        rounds = args.rounds if args.rounds is not None else 4
        config = CampaignConfig(num_rounds=rounds, max_countries=args.max_countries)
    campaign = MeasurementCampaign(world, config)
    result = campaign.run(
        progress=lambda i, rnd: print(
            f"round {i}: {rnd.num_pairs()} pairs, {rnd.pings_sent} pings",
            file=sys.stderr,
        )
    )
    save_result(result, args.out)
    print(f"wrote {result.total_cases} observations to {args.out}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.sweep import SweepRequest, run_sweep

    if args.seeds is not None:
        seeds = tuple(args.seeds)
    else:
        seeds = tuple(range(args.seed, args.seed + args.num_seeds))
    request = SweepRequest.from_scenario(
        tuple(args.scenario) if args.scenario else ("baseline",),
        seeds=seeds,
        rounds=args.rounds if args.rounds is not None else 4,
        countries=args.countries,
        max_countries=args.max_countries,
        workers=args.workers,
        world_cache=args.world_cache,
        use_world_cache=not args.no_world_cache,
    )
    result = run_sweep(request)
    artifact = result.as_dict()
    timing = artifact["timing"]
    print(
        f"{artifact['workload']}: {timing['wall_clock_s']} s "
        f"({timing['workers']} worker{'s' if timing['workers'] != 1 else ''})",
        file=sys.stderr,
    )
    for metric in ("world_build", "campaign"):
        pooled = timing.get(metric)
        if pooled:
            print(
                f"  {metric.replace('_', '-')} per seed: min {pooled['min']} / "
                f"median {pooled['median']} / max {pooled['max']} s",
                file=sys.stderr,
            )
    if args.out is None:
        # no output file: the deterministic artifact goes to stdout, byte
        # identical across worker counts (timing is the one section that
        # is not, so it stays on stderr above)
        deterministic = {k: v for k, v in artifact.items() if k != "timing"}
        json.dump(deterministic, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2)
        fh.write("\n")
    for name, section in artifact["scenarios"].items():
        for key, value in section["aggregate"].items():
            if key.startswith("win_rate_") and value is not None:
                print(
                    f"{name + ' ' + key:>36}: mean {value['mean']:.4f} "
                    f"[{value['min']:.4f}, {value['max']:.4f}]"
                )
        verdict = section["expectations"]
        print(f"{name + ' paper shapes':>36}: {'ok' if verdict['ok'] else 'FAILED'}")
    print(f"wrote {len(artifact['per_seed'])} campaign summaries to {args.out}")
    return 0


def _cmd_montecarlo(args: argparse.Namespace) -> int:
    from repro.analysis.montecarlo import summary_converged
    from repro.core.montecarlo import MonteCarloConfig, run_montecarlo
    from repro.scenarios.regimes import list_regimes

    if args.list:
        for regime in list_regimes():
            print(f"{regime.name:>16}: {regime.description}")
        return 0
    config = MonteCarloConfig(
        regime=args.regime,
        seed=args.seed,
        batch_size=args.batch_size,
        max_draws=args.max_draws,
        confidence=args.confidence,
        target_half_width=args.target_half_width,
        rounds=args.rounds if args.rounds is not None else 2,
        countries=args.countries,
        max_countries=args.max_countries,
        workers=args.workers,
        world_cache=args.world_cache,
        use_world_cache=not args.no_world_cache,
        bootstrap_resamples=args.bootstrap_resamples,
    )
    artifact = run_montecarlo(config)
    convergence = artifact["convergence"]
    timing = artifact["timing"]
    print(
        f"montecarlo {args.regime}: {convergence['draws']} draws in "
        f"{convergence['batches']} batch(es), {timing['wall_clock_s']} s "
        f"({timing['workers']} worker{'s' if timing['workers'] != 1 else ''}); "
        f"{convergence['reason']}",
        file=sys.stderr,
    )
    for name, row in artifact["risk"]["claims"].items():
        print(
            f"{name:>28}: holds {row['probability']:.3f} "
            f"[{row['ci_low']:.3f}, {row['ci_high']:.3f}] "
            f"({row['holds']}/{row['draws']} draws)",
            file=sys.stderr,
        )
    if args.out is None:
        # deterministic artifact to stdout, byte identical across runs
        # and worker counts (timing stays on stderr above)
        deterministic = {k: v for k, v in artifact.items() if k != "timing"}
        json.dump(deterministic, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=2)
            fh.write("\n")
        print(f"wrote {convergence['draws']} draws to {args.out}", file=sys.stderr)
    if args.require_converged and not summary_converged(artifact["risk"]):
        print(
            f"montecarlo: FAILED: not converged within "
            f"{config.max_draws} draws (too wide: "
            f"{', '.join(convergence['too_wide'])})",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import all_scenarios

    if args.verify is not None:
        with open(args.verify, encoding="utf-8") as fh:
            artifact = json.load(fh)
        sections = artifact.get("scenarios", {})
        if not sections:
            print("error: artifact has no scenarios section", file=sys.stderr)
            return 2
        ok = True
        for name, section in sections.items():
            verdict = section["expectations"]
            status = "ok" if verdict["ok"] else "FAILED"
            print(f"{name:>16}: {status}")
            for failure in verdict["failed"]:
                ok = False
                print(
                    f"{'':>16}  {failure['shape']}: expected "
                    f"{failure['expected']}, observed {failure['observed']}"
                )
        return 0 if ok else 1
    for scenario in all_scenarios():
        print(f"{scenario.name:>16}: {scenario.description}")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import io
    import time

    from repro.core.types import RelayType
    from repro.service import LoadgenConfig, ShortcutService, replay
    from repro.service.cluster import ClusterService, cross_world_service

    scenario = None
    campaign = None
    cross_world = None
    if args.result is None and args.scenario is None and args.countries is None:
        # the default "tiny world" serving workload: small, fast, enough
        # history for every fallback tier to fire
        args.countries = 8
    if args.result is not None:
        if args.scenario is not None or args.rounds is not None or (
            args.countries is not None
        ) or args.seeds is not None:
            print(
                "error: --result replays stored measurements; it cannot be "
                "combined with --scenario/--rounds/--countries/--seeds",
                file=sys.stderr,
            )
            return 2
        result = load_result(args.result)
        workload = f"stored result {args.result}"
        start = time.perf_counter()
        service = ShortcutService.from_campaign(
            result,
            max_rounds=args.max_rounds,
            liveness_rounds=args.liveness_rounds,
            spill=args.spill,
        )
        compile_s = time.perf_counter() - start
        total_cases, num_rounds = result.total_cases, len(result.rounds)
    elif args.seeds is not None:
        # cross-world serving: one campaign per seed, relay identities
        # unified, one pooled directory behind the service
        results = []
        for seed in args.seeds:
            result, _, scenario, seed_workload = _run_workload_campaign(
                args, seed, default_rounds=3
            )
            results.append(result)
        start = time.perf_counter()
        service, _, cross_world = cross_world_service(
            results,
            max_rounds=args.max_rounds,
            liveness_rounds=args.liveness_rounds,
            spill=args.spill,
        )
        compile_s = time.perf_counter() - start
        workload = (
            f"cross-world x{len(results)} (seeds {', '.join(map(str, args.seeds))}): "
            + seed_workload
        )
        result = results[-1]
        total_cases = sum(r.total_cases for r in results)
        num_rounds = len(results[0].rounds)
    else:
        result, campaign, scenario, workload = _run_workload_campaign(
            args, args.seed, default_rounds=3
        )
        start = time.perf_counter()
        service = ShortcutService.from_campaign(
            result,
            max_rounds=args.max_rounds,
            liveness_rounds=args.liveness_rounds,
            spill=args.spill,
        )
        compile_s = time.perf_counter() - start
        total_cases, num_rounds = result.total_cases, len(result.rounds)

    # snapshot round-trip: restart cost, and a live determinism check
    buffer = io.BytesIO()
    service.save(buffer)
    snapshot_bytes = len(buffer.getvalue())
    buffer.seek(0)
    start = time.perf_counter()
    restored = ShortcutService.load(buffer)
    restore_s = time.perf_counter() - start
    snapshot_ok = (
        restored.directory.block_signature() == service.directory.block_signature()
    )

    config = LoadgenConfig(
        num_queries=args.queries,
        batch_size=args.batch_size,
        zipf_exponent=args.zipf_exponent,
        seed=args.loadgen_seed,
        k=args.k,
        relay_type=RelayType[args.relay_type],
        workers=args.loadgen_workers,
    )
    stats = replay(service, config)

    # sharded multi-process serving: replay the same stream against a
    # 1-worker cluster and an N-worker cluster and score the scale-out
    # on CPU-clock critical paths (see benchmarks/README.md — wall-clock
    # parallelism is not measurable on shared-core CI hosts)
    cluster_report = None
    if args.workers:
        with ClusterService.from_service(
            service, workers=1, num_shards=args.num_shards
        ) as cluster:
            single = replay(cluster, config)
            cluster.collect_obs()
        cluster_report = {
            "num_shards": args.num_shards,
            "workers": args.workers,
            "single": single.as_dict(),
            "digest_match": single.answers_digest == stats.answers_digest,
        }
        if args.workers > 1:
            with ClusterService.from_service(
                service, workers=args.workers, num_shards=args.num_shards
            ) as cluster:
                scaled = replay(cluster, config)
                cluster.collect_obs()
            agg_1 = single.scale_out["aggregate_queries_per_s"]
            agg_n = scaled.scale_out["aggregate_queries_per_s"]
            speedup = round(agg_n / agg_1, 3) if agg_1 and agg_n else None
            cluster_report["scaled"] = scaled.as_dict()
            cluster_report["speedup"] = speedup
            cluster_report["efficiency"] = (
                round(speedup / args.workers, 3) if speedup is not None else None
            )
            cluster_report["digest_match"] = cluster_report["digest_match"] and (
                scaled.answers_digest == stats.answers_digest
            )

    # fault-timeline workloads additionally replay traffic round by round
    # against a churn-aware service, scoring availability and staleness
    # against the compiled timeline's ground truth
    chaos = None
    if (
        campaign is not None
        and campaign.timeline is not None
        and campaign.timeline.has_events
    ):
        from repro.timeline.chaos import ChaosConfig, chaos_replay

        chaos = chaos_replay(
            result,
            campaign.timeline,
            ChaosConfig(
                max_rounds=args.max_rounds if args.max_rounds is not None else 3,
                liveness_rounds=(
                    args.liveness_rounds if args.liveness_rounds is not None else 1
                ),
                spill=args.spill,
                seed=args.loadgen_seed,
                zipf_exponent=args.zipf_exponent,
                k=args.k,
                relay_type=RelayType[args.relay_type],
            ),
        )

    print(f"serve-bench: {workload}", file=sys.stderr)
    print(
        f"  compile: {compile_s:.3f} s over {total_cases} cases "
        f"({num_rounds} rounds); snapshot {snapshot_bytes} bytes, "
        f"restore {restore_s:.3f} s, round-trip "
        f"{'ok' if snapshot_ok else 'MISMATCH'}",
        file=sys.stderr,
    )
    tiers = stats.tier_counts
    print(
        f"  replay: {stats.queries} queries x k={config.k} in "
        f"{stats.wall_clock_s} s -> {stats.queries_per_s:,} queries/s "
        f"(tiers: pair {tiers['pair']}, country {tiers['country']}, "
        f"direct {tiers['direct']}; relay answers "
        f"{100 * stats.relay_answer_frac:.1f}%)",
        file=sys.stderr,
    )
    if stats.degradation is not None:
        deg = stats.degradation
        print(
            f"  degradation: {deg['stale_top_answers']} stale top answers, "
            f"{deg['candidates_evicted']} candidates evicted, "
            f"{deg['fallback_country']} country fallbacks, "
            f"{deg['direct']} direct fallbacks, "
            f"{deg['unanswerable']} unanswerable "
            f"(liveness window {args.liveness_rounds} rounds, "
            f"{service.dead_relay_count()} relays presumed dead)",
            file=sys.stderr,
        )
    if cluster_report is not None:
        agg = cluster_report["single"]["scale_out"]["aggregate_queries_per_s"]
        line = (
            f"  cluster: {cluster_report['num_shards']} shards, "
            f"1 worker {agg:,} queries/s"
        )
        if "scaled" in cluster_report:
            agg_n = cluster_report["scaled"]["scale_out"]["aggregate_queries_per_s"]
            line += (
                f"; {cluster_report['workers']} workers {agg_n:,} queries/s "
                f"(speedup {cluster_report['speedup']}x, efficiency "
                f"{cluster_report['efficiency']})"
            )
        line += (
            f"; answers {'match' if cluster_report['digest_match'] else 'DIFFER'}"
        )
        print(line, file=sys.stderr)

    if chaos is not None:
        summary = chaos["summary"]
        ctiers = summary["tier_counts"]
        cdeg = summary["degradation"]
        print(
            f"  chaos: {summary['replayed_rounds']} faulted rounds, "
            f"min availability {summary['min_availability']}, "
            f"max stale-answer rate {summary['max_stale_answer_rate']} "
            f"(tiers: pair {ctiers['pair']}, country {ctiers['country']}, "
            f"direct {ctiers['direct']}; "
            f"{cdeg['candidates_evicted']} candidates evicted, "
            f"{cdeg['fallback_country']} country fallbacks, "
            f"{cdeg['unanswerable']} unanswerable)",
            file=sys.stderr,
        )

    failures: list[str] = []
    if not snapshot_ok:
        failures.append("snapshot round-trip changed the compiled directory")
    if args.min_qps is not None and stats.queries_per_s < args.min_qps:
        failures.append(
            f"{stats.queries_per_s} queries/s under the "
            f"--min-qps {args.min_qps} floor"
        )
    if cluster_report is not None and not cluster_report["digest_match"]:
        failures.append(
            "cluster answers differ from the in-process service's"
        )
    if args.min_scaleout_efficiency is not None:
        if cluster_report is None or "scaled" not in cluster_report:
            failures.append(
                "--min-scaleout-efficiency needs --workers >= 2"
            )
        elif (
            cluster_report["efficiency"] is None
            or cluster_report["efficiency"] < args.min_scaleout_efficiency
        ):
            failures.append(
                f"scale-out efficiency {cluster_report['efficiency']} under "
                f"the {args.min_scaleout_efficiency} floor"
            )
    if scenario is not None:
        floor = scenario.service_expect.get("min_relay_answer_frac")
        if floor is not None and stats.relay_answer_frac < floor:
            failures.append(
                f"relay answer fraction {stats.relay_answer_frac} under "
                f"the scenario's {floor} expectation"
            )
    availability_floor = args.min_availability
    if scenario is not None and availability_floor is None:
        availability_floor = scenario.service_expect.get("min_availability")
    if availability_floor is not None:
        if chaos is None:
            failures.append(
                "an availability floor needs a fault-timeline workload "
                "(scenario with timeline events)"
            )
        elif (
            chaos["summary"]["min_availability"] is not None
            and chaos["summary"]["min_availability"] < availability_floor
        ):
            failures.append(
                f"availability {chaos['summary']['min_availability']} under "
                f"the {availability_floor} floor"
            )
    report = {
        "workload": workload,
        "compile_s": round(compile_s, 4),
        "snapshot_bytes": snapshot_bytes,
        "restore_s": round(restore_s, 4),
        "snapshot_roundtrip_ok": snapshot_ok,
        "directory": service.stats(),
        "replay": stats.as_dict(),
        "cluster": cluster_report,
        "cross_world": cross_world,
        "chaos": chaos,
        "failures": failures,
        "ok": not failures,
    }
    if args.json_out is not None:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    else:
        json.dump(report, sys.stdout, indent=2)
        sys.stdout.write("\n")
    for failure in failures:
        print(f"serve-bench: FAILED: {failure}", file=sys.stderr)
    return 0 if not failures else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    result = load_result(args.result)
    report = args.report
    if report == "summary":
        for key, value in result.summary().items():
            print(f"{key:>28}: {value}")
    elif report == "fig2":
        from repro.analysis.improvements import ImprovementAnalysis
        from repro.analysis.plotting import render_cdf

        analysis = ImprovementAnalysis(result)
        for key, value in analysis.summary().items():
            print(f"{key:>36}: {value}")
        series = {
            t.display_name: analysis.fig2_cdf(t)
            for t in RELAY_TYPE_ORDER
            if analysis.fig2_cdf(t)
        }
        if series:
            print()
            print(render_cdf(series, x_label="improvement (ms)"))
    elif report == "fig3":
        from repro.analysis.plotting import render_lines
        from repro.analysis.ranking import TopRelayAnalysis

        analysis = TopRelayAnalysis(result)
        series = {
            t.display_name: analysis.fig3_curve(t, max_n=args.top_n)
            for t in RELAY_TYPE_ORDER
        }
        print(
            render_lines(
                series, x_label="top-N relays", y_label="% of total cases improved"
            )
        )
    elif report == "fig4":
        from repro.analysis.ranking import TopRelayAnalysis

        analysis = TopRelayAnalysis(result)
        thresholds = [0.0, 10.0, 20.0, 50.0, 100.0]
        print(f"{'series':>16} " + " ".join(f">{int(t):>3}ms" for t in thresholds))
        for relay_type in RELAY_TYPE_ORDER:
            for top_n, label in ((10, "TOP10"), (None, "ALL")):
                curve = dict(analysis.fig4_curve(relay_type, thresholds, top_n=top_n))
                print(
                    f"{relay_type.value + '-' + label:>16} "
                    + " ".join(f"{curve[t]:>5.1f}" for t in thresholds)
                )
    elif report == "table1":
        if args.seed is None:
            print("--seed is required for table1 (rebuilds the world)", file=sys.stderr)
            return 2
        from repro.analysis.facilities import FacilityTable

        world = _build_world_from_args(args)
        print(FacilityTable(result, world).render())
    elif report == "countries":
        from repro.analysis.countries import CountryChangeAnalysis

        analysis = CountryChangeAnalysis(result)
        for relay_type in RELAY_TYPE_ORDER:
            rates = analysis.group_rates(relay_type)
            print(
                f"{relay_type.value:>10}: different-country "
                f"{rates.different_rate} vs same-country {rates.same_rate}"
            )
        print(f"intercontinental: {analysis.intercontinental_fraction():.3f}")
    elif report == "voip":
        from repro.analysis.voip import VoipAnalysis

        for key, value in VoipAnalysis(result).summary().items():
            print(f"{key:>28}: {value}")
    elif report == "stability":
        from repro.analysis.stability import StabilityAnalysis

        for key, value in StabilityAnalysis(result, min_occurrences=2).summary().items():
            print(f"{key:>28}: {value}")
    elif report == "full":
        from repro.analysis.report import full_report

        world = _build_world_from_args(args) if args.seed is not None else None
        print(full_report(result, world))
    return 0


def _cmd_metrics_summarize(args: argparse.Namespace) -> int:
    from repro.obs.summarize import summarize_metrics

    artifact = obs.load_artifact(args.artifact)
    print(summarize_metrics(artifact))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests).

    ``campaign``, ``sweep`` and ``serve-bench`` share the world/history
    flags through common parent parsers, so ``--seed``, ``--countries``,
    ``--rounds``, ``--max-countries`` and ``--scenario`` are spelled and
    defaulted identically everywhere they appear.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Shortcuts through Colocation Facilities' (IMC 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    world_parent = argparse.ArgumentParser(add_help=False)
    world_parent.add_argument(
        "--seed", type=int, default=11,
        help="world seed (sweep: first of the --num-seeds consecutive seeds)",
    )
    world_parent.add_argument(
        "--countries", type=int, default=None,
        help="limit each world to N countries (default: command-specific)",
    )
    world_parent.add_argument(
        "--world-cache", default=None, metavar="DIR",
        help="world-snapshot cache directory: restore expensive world state "
             "(topology, routing fabric, delay grid) from deterministic "
             ".npz snapshots and capture misses for next time; defaults to "
             "$REPRO_WORLD_CACHE when set",
    )
    world_parent.add_argument(
        "--no-world-cache", action="store_true",
        help="force the from-scratch reference path, ignoring --world-cache "
             "and $REPRO_WORLD_CACHE",
    )

    history_parent = argparse.ArgumentParser(add_help=False)
    history_parent.add_argument(
        "--rounds", type=int, default=None,
        help="measurement rounds (default: command-specific)",
    )
    history_parent.add_argument(
        "--max-countries", type=int, default=None,
        help="endpoint countries per round",
    )

    scenario_parent = argparse.ArgumentParser(add_help=False)
    scenario_parent.add_argument(
        "--scenario", nargs="+", default=None, metavar="NAME",
        help="scenario preset(s) — see 'repro scenarios'; campaign and "
             "serve-bench take exactly one, sweep fans out over all",
    )

    obs_parent = argparse.ArgumentParser(add_help=False)
    obs_parent.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write a deterministic metrics artifact (counters, gauges, "
             "quantized phase timings) here; inspect it with "
             "'repro metrics summarize PATH'",
    )
    obs_parent.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome trace-event JSON of the run's spans here "
             "(open in chrome://tracing or https://ui.perfetto.dev); "
             "worker processes appear as separate timeline lanes",
    )

    p_summary = sub.add_parser(
        "summary", parents=[world_parent], help="print world entity counts"
    )
    p_summary.set_defaults(func=_cmd_summary)

    p_funnel = sub.add_parser(
        "funnel", parents=[world_parent],
        help="run the Sec 2.2 relay filter pipeline",
    )
    p_funnel.set_defaults(func=_cmd_funnel)

    p_campaign = sub.add_parser(
        "campaign",
        parents=[world_parent, history_parent, scenario_parent, obs_parent],
        help="run a measurement campaign",
    )
    p_campaign.add_argument("--out", required=True, help="output JSON path")
    p_campaign.add_argument(
        "--profile", default=None, metavar="PATH",
        help="cProfile the run and write merged pstats here "
             "(inspect with 'python -m pstats PATH')",
    )
    p_campaign.set_defaults(func=_cmd_campaign)

    p_sweep = sub.add_parser(
        "sweep",
        parents=[world_parent, history_parent, scenario_parent, obs_parent],
        help="run the campaign for several seeds and aggregate metrics",
    )
    p_sweep.add_argument(
        "--profile", default=None, metavar="PATH",
        help="cProfile driver and pool workers, merged into one pstats file",
    )
    p_sweep.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="explicit seed list (overrides --num-seeds/--seed)",
    )
    p_sweep.add_argument("--num-seeds", type=int, default=4)
    p_sweep.add_argument(
        "--base-seed", type=int, dest="seed", action=_DeprecatedAlias,
        replacement="--seed", default=argparse.SUPPRESS, help=argparse.SUPPRESS,
    )
    p_sweep.add_argument(
        "--workers", type=int, default=1, help="process-pool size (1 = inline)"
    )
    p_sweep.add_argument(
        "--out", default=None,
        help="output JSON path (default: deterministic artifact to stdout)",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_mc = sub.add_parser(
        "montecarlo", parents=[world_parent, history_parent, obs_parent],
        help="sample a regime's config distributions until the paper-claim "
             "confidence intervals converge",
    )
    p_mc.add_argument(
        "--regime", default="baseline-mc", metavar="NAME",
        help="Monte-Carlo regime preset — see --list",
    )
    p_mc.add_argument(
        "--list", action="store_true", help="list regime presets and exit"
    )
    p_mc.add_argument(
        "--batch-size", type=int, default=8,
        help="draws per adaptive batch (affects scheduling only: the draw "
             "stream and risk summary are batch-size invariant)",
    )
    p_mc.add_argument(
        "--max-draws", type=int, default=64,
        help="hard draw cap; hitting it ends the run unconverged",
    )
    p_mc.add_argument(
        "--confidence", type=float, default=0.95,
        help="confidence level of the bootstrap/Wilson intervals",
    )
    p_mc.add_argument(
        "--target-half-width", type=float, default=0.1,
        help="convergence target for every claim-hold probability interval",
    )
    p_mc.add_argument(
        "--bootstrap-resamples", type=int, default=2000,
        help="resamples per bootstrap interval",
    )
    p_mc.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size for each batch's fan-out (1 = inline)",
    )
    p_mc.add_argument(
        "--require-converged", action="store_true",
        help="exit 1 when the draw cap trips before the half-width targets",
    )
    p_mc.add_argument(
        "--out", default=None,
        help="output JSON path (default: deterministic artifact to stdout)",
    )
    p_mc.set_defaults(func=_cmd_montecarlo)

    p_scenarios = sub.add_parser(
        "scenarios", help="list scenario presets / verify a sweep artifact"
    )
    p_scenarios.add_argument(
        "--verify", default=None, metavar="ARTIFACT",
        help="check a sweep artifact's paper-shape expectations "
             "(exit 1 on any failure)",
    )
    p_scenarios.set_defaults(func=_cmd_scenarios)

    p_serve = sub.add_parser(
        "serve-bench",
        parents=[world_parent, history_parent, scenario_parent, obs_parent],
        help="compile the serving layer and replay synthetic traffic against it",
    )
    p_serve.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="cross-world serving: one campaign per seed, relay identities "
             "unified into one pooled directory",
    )
    p_serve.add_argument(
        "--result", default=None, metavar="FILE",
        help="compile from a stored campaign result instead of measuring",
    )
    p_serve.add_argument(
        "--max-rounds", type=int, default=None,
        help="staleness window: retain only the newest N rounds",
    )
    p_serve.add_argument(
        "--liveness-rounds", type=int, default=None,
        help="churn awareness: relays unseen in the newest N ingested rounds "
             "are demoted as dead; enables degradation counters on the "
             "replayed service (chaos replay defaults to 1 when unset)",
    )
    p_serve.add_argument(
        "--spill", type=int, default=2,
        help="chaos replay: extra candidates over-fetched per lane so dead "
             "relays spill to the next-ranked live one",
    )
    p_serve.add_argument(
        "--min-availability", type=float, default=None,
        help="fail (exit 1) when chaos-replay availability drops under this "
             "floor (scenarios may also set it via service_expect)",
    )
    p_serve.add_argument("--queries", type=int, default=100_000)
    p_serve.add_argument("--batch-size", type=int, default=1024)
    p_serve.add_argument("--k", type=int, default=3, help="relay candidates per query")
    p_serve.add_argument(
        "--relay-type", default="COR",
        choices=[t.value for t in RELAY_TYPE_ORDER],
    )
    p_serve.add_argument(
        "--zipf-exponent", type=float, default=1.1,
        help="country-popularity Zipf exponent",
    )
    p_serve.add_argument(
        "--zipf", type=float, dest="zipf_exponent", action=_DeprecatedAlias,
        replacement="--zipf-exponent", default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    p_serve.add_argument(
        "--loadgen-seed", type=int, default=0, help="query-stream seed"
    )
    p_serve.add_argument(
        "--workers", type=int, default=0,
        help="serving worker processes (0 = in-process service only; N >= 1 "
             "additionally replays against an N-worker sharded cluster)",
    )
    p_serve.add_argument(
        "--num-shards", type=int, default=16,
        help="segment count of the cluster snapshot",
    )
    p_serve.add_argument(
        "--loadgen-workers", type=int, default=1,
        help="query-synthesis shards (stream is identical for any count)",
    )
    p_serve.add_argument(
        "--min-qps", type=int, default=None,
        help="fail (exit 1) under this sustained in-process queries/s floor",
    )
    p_serve.add_argument(
        "--min-scaleout-efficiency", type=float, default=None,
        help="fail (exit 1) when the N-worker cluster's CPU-clock speedup "
             "over 1 worker is under N * this floor (needs --workers >= 2)",
    )
    p_serve.add_argument(
        "--json-out", default=None,
        help="write the JSON report here instead of stdout",
    )
    p_serve.set_defaults(func=_cmd_serve_bench)

    p_metrics = sub.add_parser(
        "metrics", help="inspect observability artifacts"
    )
    metrics_sub = p_metrics.add_subparsers(dest="metrics_command", required=True)
    p_msummarize = metrics_sub.add_parser(
        "summarize",
        help="print the phase-time/counter tables of a --metrics artifact",
    )
    p_msummarize.add_argument(
        "artifact", help="metrics JSON written by a --metrics run"
    )
    p_msummarize.set_defaults(func=_cmd_metrics_summarize)

    p_analyze = sub.add_parser("analyze", help="analyse a stored campaign result")
    p_analyze.add_argument("result", help="result JSON written by 'campaign'")
    p_analyze.add_argument("--report", choices=_REPORTS, default="summary")
    p_analyze.add_argument("--top-n", type=int, default=50, help="fig3 x-range")
    p_analyze.add_argument("--seed", type=int, default=None, help="for table1")
    p_analyze.add_argument("--countries", type=int, default=None, help="for table1")
    p_analyze.set_defaults(func=_cmd_analyze)
    return parser


def _run_command(args: argparse.Namespace) -> int:
    """Dispatch one subcommand under its observability/profiling flags.

    With no ``--metrics``/``--trace``/``--profile`` flag set (or on
    commands that do not declare them) this is exactly ``args.func(args)``
    — the recorders stay the module-level null handles and the run is
    byte-identical to the uninstrumented path.
    """
    metrics_path = getattr(args, "metrics", None)
    trace_path = getattr(args, "trace", None)
    profile_path = getattr(args, "profile", None)
    if metrics_path or trace_path:
        obs.enable(
            metrics=metrics_path is not None, trace=trace_path is not None
        )
    try:
        if profile_path:
            from repro.obs.profile import profile_to

            with profile_to(
                profile_path, workers=args.command == "sweep"
            ):
                code = args.func(args)
            print(f"wrote profile to {profile_path}", file=sys.stderr)
        else:
            code = args.func(args)
        if metrics_path:
            obs.write_metrics(metrics_path)
            print(f"wrote metrics to {metrics_path}", file=sys.stderr)
        if trace_path:
            obs.write_trace(trace_path)
            print(f"wrote trace to {trace_path}", file=sys.stderr)
        return code
    finally:
        if metrics_path or trace_path:
            obs.disable()


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _run_command(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
