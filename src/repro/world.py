"""World assembly: one seed, one complete synthetic Internet.

:func:`build_world` wires every subsystem together in dependency order —
topology, routing, latency, measurement infrastructure, dataset substrates —
and returns a :class:`World` handle the measurement methodology
(:mod:`repro.core`) runs against.  Two worlds built from the same seed and
config are identical in every observable way.

World construction is cacheable: pass ``world_cache`` (or set
``$REPRO_WORLD_CACHE``) and the expensive state — topology, routing
fabric, attachment delay grid — is restored from a deterministic on-disk
snapshot keyed by ``(config, seed)`` when one exists, and captured into
the cache the first time :meth:`World.ensure_routing_fabric` computes it.
A cache-restored world's campaign output is byte-identical to a freshly
built one's (see :mod:`repro.core.worldcache`); ``use_world_cache=False``
forces the reference from-scratch path regardless of the environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import obs
from repro.datasets.apnic import ApnicCoverage
from repro.datasets.config import DatasetConfig
from repro.datasets.facility_mapping import FacilityMappingDataset
from repro.datasets.peeringdb import PeeringDB
from repro.datasets.periscope import Periscope
from repro.datasets.prefix2as import Prefix2AS
from repro.errors import TopologyError
from repro.geo.matrix import CityDelayMatrix
from repro.latency.backbone import BackboneStretch
from repro.latency.model import LatencyConfig, LatencyModel
from repro.latency.ping import PingEngine
from repro.latency.traceroute import TracerouteEngine
from repro.measurement.atlas import RipeAtlasEmulator
from repro.measurement.colo import ColoInterfacePool
from repro.measurement.config import InfrastructureConfig
from repro.measurement.nodes import HostAddressBook, MeasurementNode
from repro.measurement.planetlab import PlanetLabEmulator
from repro.net.ipv4 import IPv4Address
from repro.routing.bgp import BGPRouting
from repro.routing.fabric import RoutingFabric
from repro.routing.geopath import GeoPathWalker
from repro.topology.builder import Topology, TopologyBuilder
from repro.topology.config import TopologyConfig
from repro.topology.types import ASType
from repro.util.rand import SeedSequenceFactory

if TYPE_CHECKING:
    from repro.core.worldcache import WorldCache, WorldSnapshot


@dataclass(frozen=True, slots=True)
class WorldConfig:
    """Aggregated configuration of every subsystem."""

    topology: TopologyConfig = field(default_factory=TopologyConfig)
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    infrastructure: InfrastructureConfig = field(default_factory=InfrastructureConfig)
    datasets: DatasetConfig = field(default_factory=DatasetConfig)


class World:
    """A fully-built synthetic Internet plus its measurement ecosystem.

    Instances are produced by :func:`build_world`; all attributes are
    read-only by convention.
    """

    def __init__(
        self,
        seed: int,
        config: WorldConfig,
        *,
        snapshot: "WorldSnapshot | None" = None,
    ) -> None:
        self.seed = seed
        self.config = config
        self.seeds = SeedSequenceFactory(seed)

        #: With a snapshot, the topology is restored from arrays instead of
        #: generated; every insertion order is preserved, and the builder's
        #: seed streams are simply never drawn (streams are named, so no
        #: other subsystem shifts).
        self.topology: Topology = (
            snapshot.restore_topology(config.topology)
            if snapshot is not None
            else TopologyBuilder(config.topology, self.seeds).build()
        )
        self.graph = self.topology.graph
        #: This world's precomputed routing fabric.  Created empty (CSR
        #: adjacency arrays only); destination tables are bulk-computed by
        #: :meth:`ensure_routing_fabric` when a campaign starts, and served
        #: through :attr:`routing` transparently.
        self.fabric = RoutingFabric(self.graph)
        self.routing = BGPRouting(self.graph, fabric=self.fabric)
        self.backbone_stretch = BackboneStretch(self.graph)
        #: This world's vectorized city-geometry cache; shared by the path
        #: walker and the campaign's feasibility filter so delay rows are
        #: computed once per world (no module-global state).
        self.delay_matrix = CityDelayMatrix()
        self.walker = GeoPathWalker(
            self.graph,
            stretch_of=self.backbone_stretch.factor,
            delay_matrix=self.delay_matrix,
            walk_memo=self.fabric.walk_memo,
        )
        self.latency = LatencyModel(self.routing, self.walker, config.latency)
        self.ping_engine = PingEngine(self.latency)
        self.traceroute_engine = TracerouteEngine(self.latency, self.walker)

        book = HostAddressBook(self.graph)
        self.atlas = RipeAtlasEmulator(
            self.topology, book, config.infrastructure, self.seeds
        )
        self.planetlab = PlanetLabEmulator(
            self.topology, book, config.infrastructure, self.seeds
        )
        self.colo_pool = ColoInterfacePool(
            self.topology, book, config.infrastructure, self.seeds
        )

        self.peeringdb = PeeringDB(
            self.topology,
            config.datasets,
            self.seeds,
            churn=snapshot.peeringdb_churn() if snapshot is not None else None,
        )
        self.prefix2as = Prefix2AS(self.topology, config.datasets, self.seeds)
        self.facility_mapping = FacilityMappingDataset(
            self.topology, self.colo_pool, config.datasets, self.seeds
        )
        self.periscope = Periscope(
            self.topology, self.traceroute_engine, book, config.infrastructure, self.seeds
        )
        self.apnic = ApnicCoverage(self.topology, self.seeds)

        self._nodes_by_id: dict[str, MeasurementNode] = {}
        self._nodes_by_ip: dict[IPv4Address, MeasurementNode] = {}
        self._index_nodes()
        self._fabric_ready = False
        #: Cache to capture into once the fabric is computed (set by
        #: :func:`build_world` on a miss; never set on a restored world).
        self._world_cache: "WorldCache | None" = None
        if snapshot is not None:
            snapshot.attach_routing(self)

    def _index_nodes(self) -> None:
        nodes: list[MeasurementNode] = [p.node for p in self.atlas.all_probes()]
        nodes.extend(n.node for n in self.planetlab.all_nodes())
        nodes.extend(i.node for i in self.colo_pool.interfaces())
        for city in self.periscope.covered_cities():
            nodes.extend(lg.node for lg in self.periscope.lgs_in(city))
        for node in nodes:
            if node.node_id in self._nodes_by_id:
                raise TopologyError(f"duplicate node id {node.node_id}")
            if node.ip in self._nodes_by_ip:
                raise TopologyError(f"duplicate node IP {node.ip}")
            self._nodes_by_id[node.node_id] = node
            self._nodes_by_ip[node.ip] = node

    # ----------------------------------------------------------------- nodes

    def node(self, node_id: str) -> MeasurementNode:
        """Look a node up by id.

        Raises:
            KeyError: if unknown.
        """
        return self._nodes_by_id[node_id]

    def node_by_ip(self, ip: IPv4Address) -> MeasurementNode | None:
        """Look a node up by IP address; None for unassigned addresses."""
        return self._nodes_by_ip.get(ip)

    def num_nodes(self) -> int:
        """Total number of indexed vantage points."""
        return len(self._nodes_by_id)

    # ---------------------------------------------------------------- routing

    def campaign_destination_asns(self) -> list[int]:
        """Every ASN a measurement campaign can ping toward.

        The union of the hosting ASes of all Atlas probes (endpoints and
        RAR relays), PlanetLab nodes (PLR relays) and colo interfaces (COR
        relays) — the destination set of every direct pair and relay leg a
        campaign can measure.
        """
        return sorted({node.asn for node in self._campaign_nodes()})

    def ensure_routing_fabric(self) -> RoutingFabric:
        """Bulk-precompute routing for the campaign destination set.

        Computes every destination routing table in one batched pass, then
        the attachment-to-attachment one-way delay grid (vectorized
        wavefront walks over the predecessor arrays) that the latency model
        serves base RTTs from.  Idempotent on coverage, not just per
        session: if the fabric already covers the destination set and the
        installed grid's rows match the attachment list — a snapshot-
        restored world, or a fabric warmed by an earlier caller — nothing
        is recomputed.  Called eagerly by
        :class:`~repro.core.campaign.MeasurementCampaign` so no round pays
        for first-time routing computation.

        On the first computation of a world built with a cache
        (:func:`build_world` ``world_cache=``), the finished state is
        captured into the cache for future processes.
        """
        if self._fabric_ready:
            return self.fabric
        with obs.span("world.fabric"):
            attachments = self._grid_attachments()
            self.fabric.ensure(sorted({asn for asn, _ in attachments}))
            if not self.latency.attachment_grid_covers(attachments):
                grid, att_ids = self.fabric.build_attachment_grid(
                    self.walker, attachments, self.config.latency.per_hop_ms
                )
                self.latency.set_attachment_grid(grid, att_ids)
                if self._world_cache is not None:
                    self._world_cache.store(self)
        self._fabric_ready = True
        return self.fabric

    def _grid_attachments(self) -> list[tuple[int, str]]:
        """Every ``(asn, city)`` attachment the delay grid precomputes.

        Campaign nodes (endpoints and relays) plus the fixed measurement
        vantages whose legs the colo pipeline resolves every run — the
        Periscope looking glasses and the pipeline monitor's tier-1
        attachment — so that one-time verification is grid gathers instead
        of scalar walks.
        """
        attachments = {(n.asn, n.city_key) for n in self._campaign_nodes()}
        for city in self.periscope.covered_cities():
            for lg in self.periscope.lgs_in(city):
                attachments.add((lg.node.asn, lg.node.city_key))
        tier1s = self.topology.asns_of_type(ASType.TRANSIT_GLOBAL)
        if tier1s:
            monitor_as = self.graph.get_as(tier1s[0])
            attachments.add((monitor_as.asn, monitor_as.primary_city))
        return sorted(attachments)

    def _campaign_nodes(self):
        for probe in self.atlas.all_probes():
            yield probe.node
        for pl_node in self.planetlab.all_nodes():
            yield pl_node.node
        for interface in self.colo_pool.interfaces():
            yield interface.node

    def summary(self) -> dict[str, int]:
        """Entity counts across the world, for logging and sanity checks."""
        info = self.topology.summary()
        info["atlas_probes"] = len(self.atlas.all_probes())
        info["planetlab_nodes"] = len(self.planetlab.all_nodes())
        info["colo_interfaces"] = len(self.colo_pool.interfaces())
        info["looking_glasses"] = self.periscope.num_lgs()
        info["facility_mapping_records"] = len(self.facility_mapping)
        return info


def build_world(
    seed: int = 0,
    config: WorldConfig | None = None,
    *,
    world_cache: str | None = None,
    use_world_cache: bool = True,
) -> World:
    """Build a complete world from a seed (the package's main entry point).

    ``world_cache`` names an on-disk snapshot directory (falling back to
    ``$REPRO_WORLD_CACHE`` when None): a snapshot keyed to ``(config,
    seed)`` restores the topology, routing fabric and delay grid instead
    of rebuilding them, and a miss arms the world to capture its state
    once :meth:`World.ensure_routing_fabric` first computes it.
    ``use_world_cache=False`` is the reference path — always build from
    scratch, never read or write a cache.
    """
    from repro.core.worldcache import resolve_cache

    config = config or WorldConfig()
    cache = resolve_cache(world_cache) if use_world_cache else None
    if cache is None:
        obs.inc("world.builds")
        with obs.span("world.build"):
            return World(seed, config)
    snapshot = cache.load(seed, config)
    if snapshot is not None:
        obs.inc("world.cache.hits")
        with obs.span("world.restore"):
            return World(seed, config, snapshot=snapshot)
    obs.inc("world.cache.misses")
    obs.inc("world.builds")
    with obs.span("world.build"):
        world = World(seed, config)
    world._world_cache = cache
    return world
