"""World assembly: one seed, one complete synthetic Internet.

:func:`build_world` wires every subsystem together in dependency order —
topology, routing, latency, measurement infrastructure, dataset substrates —
and returns a :class:`World` handle the measurement methodology
(:mod:`repro.core`) runs against.  Two worlds built from the same seed and
config are identical in every observable way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.apnic import ApnicCoverage
from repro.datasets.config import DatasetConfig
from repro.datasets.facility_mapping import FacilityMappingDataset
from repro.datasets.peeringdb import PeeringDB
from repro.datasets.periscope import Periscope
from repro.datasets.prefix2as import Prefix2AS
from repro.errors import TopologyError
from repro.geo.matrix import CityDelayMatrix
from repro.latency.backbone import BackboneStretch
from repro.latency.model import LatencyConfig, LatencyModel
from repro.latency.ping import PingEngine
from repro.latency.traceroute import TracerouteEngine
from repro.measurement.atlas import RipeAtlasEmulator
from repro.measurement.colo import ColoInterfacePool
from repro.measurement.config import InfrastructureConfig
from repro.measurement.nodes import HostAddressBook, MeasurementNode
from repro.measurement.planetlab import PlanetLabEmulator
from repro.net.ipv4 import IPv4Address
from repro.routing.bgp import BGPRouting
from repro.routing.fabric import RoutingFabric
from repro.routing.geopath import GeoPathWalker
from repro.topology.builder import Topology, TopologyBuilder
from repro.topology.config import TopologyConfig
from repro.util.rand import SeedSequenceFactory


@dataclass(frozen=True, slots=True)
class WorldConfig:
    """Aggregated configuration of every subsystem."""

    topology: TopologyConfig = field(default_factory=TopologyConfig)
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    infrastructure: InfrastructureConfig = field(default_factory=InfrastructureConfig)
    datasets: DatasetConfig = field(default_factory=DatasetConfig)


class World:
    """A fully-built synthetic Internet plus its measurement ecosystem.

    Instances are produced by :func:`build_world`; all attributes are
    read-only by convention.
    """

    def __init__(self, seed: int, config: WorldConfig) -> None:
        self.seed = seed
        self.config = config
        self.seeds = SeedSequenceFactory(seed)

        self.topology: Topology = TopologyBuilder(config.topology, self.seeds).build()
        self.graph = self.topology.graph
        #: This world's precomputed routing fabric.  Created empty (CSR
        #: adjacency arrays only); destination tables are bulk-computed by
        #: :meth:`ensure_routing_fabric` when a campaign starts, and served
        #: through :attr:`routing` transparently.
        self.fabric = RoutingFabric(self.graph)
        self.routing = BGPRouting(self.graph, fabric=self.fabric)
        self.backbone_stretch = BackboneStretch(self.graph)
        #: This world's vectorized city-geometry cache; shared by the path
        #: walker and the campaign's feasibility filter so delay rows are
        #: computed once per world (no module-global state).
        self.delay_matrix = CityDelayMatrix()
        self.walker = GeoPathWalker(
            self.graph,
            stretch_of=self.backbone_stretch.factor,
            delay_matrix=self.delay_matrix,
            walk_memo=self.fabric.walk_memo,
        )
        self.latency = LatencyModel(self.routing, self.walker, config.latency)
        self.ping_engine = PingEngine(self.latency)
        self.traceroute_engine = TracerouteEngine(self.latency, self.walker)

        book = HostAddressBook(self.graph)
        self.atlas = RipeAtlasEmulator(
            self.topology, book, config.infrastructure, self.seeds
        )
        self.planetlab = PlanetLabEmulator(
            self.topology, book, config.infrastructure, self.seeds
        )
        self.colo_pool = ColoInterfacePool(
            self.topology, book, config.infrastructure, self.seeds
        )

        self.peeringdb = PeeringDB(self.topology, config.datasets, self.seeds)
        self.prefix2as = Prefix2AS(self.topology, config.datasets, self.seeds)
        self.facility_mapping = FacilityMappingDataset(
            self.topology, self.colo_pool, config.datasets, self.seeds
        )
        self.periscope = Periscope(
            self.topology, self.traceroute_engine, book, config.infrastructure, self.seeds
        )
        self.apnic = ApnicCoverage(self.topology, self.seeds)

        self._nodes_by_id: dict[str, MeasurementNode] = {}
        self._nodes_by_ip: dict[IPv4Address, MeasurementNode] = {}
        self._index_nodes()
        self._fabric_ready = False

    def _index_nodes(self) -> None:
        nodes: list[MeasurementNode] = [p.node for p in self.atlas.all_probes()]
        nodes.extend(n.node for n in self.planetlab.all_nodes())
        nodes.extend(i.node for i in self.colo_pool.interfaces())
        for city in self.periscope.covered_cities():
            nodes.extend(lg.node for lg in self.periscope.lgs_in(city))
        for node in nodes:
            if node.node_id in self._nodes_by_id:
                raise TopologyError(f"duplicate node id {node.node_id}")
            if node.ip in self._nodes_by_ip:
                raise TopologyError(f"duplicate node IP {node.ip}")
            self._nodes_by_id[node.node_id] = node
            self._nodes_by_ip[node.ip] = node

    # ----------------------------------------------------------------- nodes

    def node(self, node_id: str) -> MeasurementNode:
        """Look a node up by id.

        Raises:
            KeyError: if unknown.
        """
        return self._nodes_by_id[node_id]

    def node_by_ip(self, ip: IPv4Address) -> MeasurementNode | None:
        """Look a node up by IP address; None for unassigned addresses."""
        return self._nodes_by_ip.get(ip)

    def num_nodes(self) -> int:
        """Total number of indexed vantage points."""
        return len(self._nodes_by_id)

    # ---------------------------------------------------------------- routing

    def campaign_destination_asns(self) -> list[int]:
        """Every ASN a measurement campaign can ping toward.

        The union of the hosting ASes of all Atlas probes (endpoints and
        RAR relays), PlanetLab nodes (PLR relays) and colo interfaces (COR
        relays) — the destination set of every direct pair and relay leg a
        campaign can measure.
        """
        return sorted({node.asn for node in self._campaign_nodes()})

    def ensure_routing_fabric(self) -> RoutingFabric:
        """Bulk-precompute routing for the campaign destination set.

        Computes every destination routing table in one batched pass, then
        the attachment-to-attachment one-way delay grid (vectorized
        wavefront walks over the predecessor arrays) that the latency model
        serves base RTTs from.  Idempotent; returns the fabric.  Called
        eagerly by :class:`~repro.core.campaign.MeasurementCampaign` so no
        round pays for first-time routing computation.
        """
        if self._fabric_ready:
            return self.fabric
        self.fabric.ensure(self.campaign_destination_asns())
        attachments = sorted(
            {(n.asn, n.city_key) for n in self._campaign_nodes()}
        )
        grid, att_ids = self.fabric.build_attachment_grid(
            self.walker, attachments, self.config.latency.per_hop_ms
        )
        self.latency.set_attachment_grid(grid, att_ids)
        self._fabric_ready = True
        return self.fabric

    def _campaign_nodes(self):
        for probe in self.atlas.all_probes():
            yield probe.node
        for pl_node in self.planetlab.all_nodes():
            yield pl_node.node
        for interface in self.colo_pool.interfaces():
            yield interface.node

    def summary(self) -> dict[str, int]:
        """Entity counts across the world, for logging and sanity checks."""
        info = self.topology.summary()
        info["atlas_probes"] = len(self.atlas.all_probes())
        info["planetlab_nodes"] = len(self.planetlab.all_nodes())
        info["colo_interfaces"] = len(self.colo_pool.interfaces())
        info["looking_glasses"] = self.periscope.num_lgs()
        info["facility_mapping_records"] = len(self.facility_mapping)
        return info


def build_world(seed: int = 0, config: WorldConfig | None = None) -> World:
    """Build a complete world from a seed (the package's main entry point)."""
    return World(seed, config or WorldConfig())
