"""From-scratch IPv4 substrate: addresses, prefixes, longest-prefix-match
trie and a deterministic address allocator.

The paper's Sec 2.2 filter pipeline needs IP-to-ASN mapping (CAIDA
prefix2as) and MOAS detection; this package provides the machinery those
dataset substrates are built on, without relying on ``ipaddress`` internals
for the routing-table semantics (we still accept dotted-quad strings)."""

from repro.net.ipv4 import IPv4Address, IPv4Prefix
from repro.net.trie import PrefixTrie
from repro.net.allocator import PrefixAllocator

__all__ = ["IPv4Address", "IPv4Prefix", "PrefixTrie", "PrefixAllocator"]
