"""Deterministic IPv4 prefix allocation for the synthetic topology.

Every AS in the generated world is assigned one or more /20-/24 prefixes out
of a private supernet, and every node (probe, relay, router interface) gets
a host address inside one of its AS's prefixes.  Allocation order is
deterministic, so the same seed always yields the same addressing plan.
"""

from __future__ import annotations

from repro.errors import AddressError
from repro.net.ipv4 import IPv4Address, IPv4Prefix


class PrefixAllocator:
    """Sequentially carves prefixes and host addresses out of a supernet."""

    def __init__(self, supernet: IPv4Prefix | str = "10.0.0.0/8") -> None:
        if isinstance(supernet, str):
            supernet = IPv4Prefix.parse(supernet)
        self._supernet = supernet
        self._next_network = supernet.network.value
        self._limit = supernet.network.value + supernet.num_addresses()
        self._host_cursor: dict[IPv4Prefix, int] = {}

    @property
    def supernet(self) -> IPv4Prefix:
        """The pool every allocation comes from."""
        return self._supernet

    def allocate_prefix(self, length: int) -> IPv4Prefix:
        """Return the next free prefix of ``length`` bits.

        Raises:
            AddressError: if the supernet is exhausted or ``length`` is
                shorter than the supernet's own length.
        """
        if length < self._supernet.length:
            raise AddressError(
                f"cannot allocate /{length} out of {self._supernet}"
            )
        size = 1 << (32 - length)
        # align the cursor to the requested size
        aligned = (self._next_network + size - 1) & ~(size - 1)
        if aligned + size > self._limit:
            raise AddressError(f"supernet {self._supernet} exhausted")
        self._next_network = aligned + size
        return IPv4Prefix(IPv4Address(aligned), length)

    def allocate_host(self, prefix: IPv4Prefix) -> IPv4Address:
        """Return the next free host address inside ``prefix``.

        Skips the network address (offset 0); raises when full.
        """
        cursor = self._host_cursor.get(prefix, 1)
        if cursor >= prefix.num_addresses():
            raise AddressError(f"prefix {prefix} has no free host addresses")
        self._host_cursor[prefix] = cursor + 1
        return prefix.host(cursor)
