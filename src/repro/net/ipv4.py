"""IPv4 address and prefix value types.

Both types are immutable, hashable and totally ordered, so they can be used
as dict keys and sorted into routing-table order.  Internally an address is
a 32-bit integer; prefixes are ``(network_int, length)`` with the host bits
required to be zero (strict CIDR form).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering

from repro.errors import AddressError

_MAX32 = 0xFFFFFFFF


def _parse_dotted_quad(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressError(f"{text!r} is not a dotted-quad IPv4 address")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"{text!r} contains non-numeric octet {part!r}")
        if len(part) > 1 and part[0] == "0":
            raise AddressError(f"{text!r} contains zero-padded octet {part!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"{text!r} contains octet {octet} > 255")
        value = (value << 8) | octet
    return value


@total_ordering
@dataclass(frozen=True, slots=True)
class IPv4Address:
    """A single IPv4 address backed by a 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not isinstance(self.value, int):
            raise AddressError(f"address value must be int, got {type(self.value).__name__}")
        if not 0 <= self.value <= _MAX32:
            raise AddressError(f"address value {self.value:#x} outside 32-bit range")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse a dotted-quad string such as ``'192.0.2.7'``."""
        return cls(_parse_dotted_quad(text))

    def bit(self, index: int) -> int:
        """Return bit ``index`` (0 = most significant) of the address."""
        if not 0 <= index <= 31:
            raise AddressError(f"bit index {index} outside [0, 31]")
        return (self.value >> (31 - index)) & 1

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, IPv4Address):
            return NotImplemented
        return self.value < other.value


@total_ordering
@dataclass(frozen=True, slots=True)
class IPv4Prefix:
    """A CIDR prefix in strict form (host bits zero)."""

    network: IPv4Address
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length {self.length} outside [0, 32]")
        if self.network.value & ~self.netmask_int() & _MAX32:
            raise AddressError(
                f"{self.network}/{self.length} has host bits set; not a valid CIDR prefix"
            )

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        """Parse ``'a.b.c.d/len'`` notation."""
        if "/" not in text:
            raise AddressError(f"{text!r} is missing a /length")
        addr_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise AddressError(f"{text!r} has non-numeric prefix length")
        return cls(IPv4Address.parse(addr_text), int(len_text))

    def netmask_int(self) -> int:
        """Return the netmask as a 32-bit integer."""
        if self.length == 0:
            return 0
        return (_MAX32 << (32 - self.length)) & _MAX32

    def contains(self, address: IPv4Address) -> bool:
        """True if ``address`` falls inside this prefix."""
        return (address.value & self.netmask_int()) == self.network.value

    def contains_prefix(self, other: "IPv4Prefix") -> bool:
        """True if ``other`` is equal to or more specific than this prefix."""
        return other.length >= self.length and self.contains(other.network)

    def num_addresses(self) -> int:
        """Number of addresses covered (2^(32-length))."""
        return 1 << (32 - self.length)

    def host(self, offset: int) -> IPv4Address:
        """Return the address at ``offset`` within the prefix.

        Raises:
            AddressError: if ``offset`` does not fit in the prefix.
        """
        if not 0 <= offset < self.num_addresses():
            raise AddressError(f"host offset {offset} outside {self}")
        return IPv4Address(self.network.value + offset)

    def subnets(self, new_length: int) -> list["IPv4Prefix"]:
        """Split into all subnets of ``new_length`` (>= current length)."""
        if new_length < self.length:
            raise AddressError(f"cannot split /{self.length} into shorter /{new_length}")
        if new_length > 32:
            raise AddressError(f"prefix length {new_length} > 32")
        step = 1 << (32 - new_length)
        count = 1 << (new_length - self.length)
        base = self.network.value
        return [IPv4Prefix(IPv4Address(base + i * step), new_length) for i in range(count)]

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, IPv4Prefix):
            return NotImplemented
        return (self.network.value, self.length) < (other.network.value, other.length)
