"""Binary prefix trie with longest-prefix-match lookup.

This is the routing-table data structure behind the CAIDA prefix2as
substrate (:mod:`repro.datasets.prefix2as`): insert ``IPv4Prefix -> value``
bindings, then ask for the most specific prefix covering an address.
Multiple inserts of the same prefix accumulate values, which is how MOAS
(multi-origin AS) prefixes are represented.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

from repro.net.ipv4 import IPv4Address, IPv4Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "values", "prefix")

    def __init__(self) -> None:
        self.children: list["_Node[V] | None"] = [None, None]
        self.values: list[V] | None = None
        self.prefix: IPv4Prefix | None = None


class PrefixTrie(Generic[V]):
    """Maps IPv4 prefixes to lists of values with longest-prefix-match."""

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        """Number of distinct prefixes stored."""
        return self._size

    def insert(self, prefix: IPv4Prefix, value: V) -> None:
        """Bind ``value`` to ``prefix``; repeated inserts accumulate values."""
        node = self._root
        for i in range(prefix.length):
            bit = prefix.network.bit(i)
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if node.values is None:
            node.values = []
            node.prefix = prefix
            self._size += 1
        node.values.append(value)

    def exact(self, prefix: IPv4Prefix) -> list[V] | None:
        """Return the values bound to exactly ``prefix``, or None."""
        node = self._root
        for i in range(prefix.length):
            child = node.children[prefix.network.bit(i)]
            if child is None:
                return None
            node = child
        return list(node.values) if node.values is not None else None

    def longest_match(self, address: IPv4Address) -> tuple[IPv4Prefix, list[V]] | None:
        """Return the most specific ``(prefix, values)`` covering ``address``.

        Returns None when no stored prefix covers the address.
        """
        node = self._root
        best: tuple[IPv4Prefix, list[V]] | None = None
        if node.values is not None and node.prefix is not None:
            best = (node.prefix, node.values)
        for i in range(32):
            child = node.children[address.bit(i)]
            if child is None:
                break
            node = child
            if node.values is not None and node.prefix is not None:
                best = (node.prefix, node.values)
        if best is None:
            return None
        prefix, values = best
        return prefix, list(values)

    def all_matches(self, address: IPv4Address) -> list[tuple[IPv4Prefix, list[V]]]:
        """Return every stored prefix covering ``address``, shortest first."""
        node = self._root
        matches: list[tuple[IPv4Prefix, list[V]]] = []
        if node.values is not None and node.prefix is not None:
            matches.append((node.prefix, list(node.values)))
        for i in range(32):
            child = node.children[address.bit(i)]
            if child is None:
                break
            node = child
            if node.values is not None and node.prefix is not None:
                matches.append((node.prefix, list(node.values)))
        return matches

    def items(self) -> Iterator[tuple[IPv4Prefix, list[V]]]:
        """Iterate over ``(prefix, values)`` pairs in trie (address) order."""
        stack: list[_Node[V]] = [self._root]
        while stack:
            node = stack.pop()
            if node.values is not None and node.prefix is not None:
                yield node.prefix, list(node.values)
            # push right (bit 1) first so left (bit 0) pops first
            right, left = node.children[1], node.children[0]
            if right is not None:
                stack.append(right)
            if left is not None:
                stack.append(left)
