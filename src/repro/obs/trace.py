"""Span tracing with Chrome trace-event JSON export.

:class:`SpanTracer` records *complete* (``"ph": "X"``) events — name,
wall-clock start, duration, CPU time — on one timeline lane (a Chrome
``tid``).  Sweep and cluster workers run their own tracer on their own
lane; the driver merges their payloads, so a multi-process run renders
as one timeline with per-worker swim-lanes in ``chrome://tracing`` or
Perfetto.

Timestamps are absolute microseconds (``time.time`` epoch anchored at
tracer construction, advanced by ``perf_counter``), so payloads from
processes sharing a system clock align without negotiation; the export
re-bases everything to the earliest event.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

__all__ = ["SpanHandle", "SpanTracer"]


class SpanTracer:
    """Append-only span recorder for one process/lane."""

    def __init__(self, lane: int = 0, lane_name: str = "main"):
        self.lane = int(lane)
        self.lane_name = lane_name
        # wall-clock anchor: epoch seconds at perf_counter() == 0
        self._anchor = time.time() - time.perf_counter()
        # (name, start_us, dur_us, cpu_us, lane) tuples
        self._events: list[tuple[str, int, int, int, int]] = []
        self._lane_names: dict[int, str] = {self.lane: lane_name}

    # ------------------------------------------------------ recording
    def add_complete(
        self, name: str, start_perf: float, dur_s: float, cpu_s: float
    ) -> None:
        start_us = int((self._anchor + start_perf) * 1e6)
        self._events.append(
            (name, start_us, int(dur_s * 1e6), int(cpu_s * 1e6), self.lane)
        )

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------ worker payloads
    def to_payload(self) -> dict[str, Any]:
        """Compact picklable snapshot for cross-process merging."""
        return {
            "events": list(self._events),
            "lane_names": dict(self._lane_names),
        }

    def merge_payload(self, payload: dict[str, Any]) -> None:
        """Fold one worker tracer's :meth:`to_payload` snapshot in."""
        self._events.extend(tuple(event) for event in payload.get("events", ()))
        for lane, name in payload.get("lane_names", {}).items():
            self._lane_names.setdefault(int(lane), name)

    # -------------------------------------------------------- export
    def to_chrome(self) -> dict[str, Any]:
        """The merged span set as a Chrome trace-event JSON object."""
        if not self._events:
            return {"traceEvents": [], "displayTimeUnit": "ms"}
        pid = os.getpid()
        base = min(event[1] for event in self._events)
        trace_events: list[dict[str, Any]] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": "repro"},
            }
        ]
        for lane in sorted(self._lane_names):
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": lane,
                    "args": {"name": self._lane_names[lane]},
                }
            )
        for name, start_us, dur_us, cpu_us, lane in self._events:
            trace_events.append(
                {
                    "ph": "X",
                    "name": name,
                    "cat": "repro",
                    "ts": start_us - base,
                    "dur": dur_us,
                    "pid": pid,
                    "tid": lane,
                    "args": {"cpu_ms": round(cpu_us / 1000.0, 3)},
                }
            )
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_chrome(), fh)
            fh.write("\n")


class SpanHandle:
    """One instrumented region: wall + CPU time into tracer and registry.

    Reusable (bind once, enter per iteration) but not reentrant — nested
    regions use distinct handles.  Entering costs two clock reads; on
    exit the duration lands in the tracer's event list and, when metrics
    are live, in the registry's timing histogram under the same name.
    """

    __slots__ = ("_name", "_metrics", "_tracer", "_t0", "_c0")

    def __init__(self, name: str, metrics: Any, tracer: SpanTracer | None):
        self._name = name
        self._metrics = metrics
        self._tracer = tracer
        self._t0 = 0.0
        self._c0 = 0.0

    def __enter__(self) -> "SpanHandle":
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def __exit__(self, *exc: object) -> bool:
        dur = time.perf_counter() - self._t0
        if self._metrics is not None:
            self._metrics.observe(self._name, dur)
        if self._tracer is not None:
            self._tracer.add_complete(
                self._name, self._t0, dur, time.process_time() - self._c0
            )
        return False
