"""Human-readable rendering of a ``--metrics`` artifact.

Backs ``repro metrics summarize ARTIFACT``: a phase-time table (timer
histograms sorted by total time) followed by the structural counter and
gauge tables.
"""

from __future__ import annotations

from typing import Any

__all__ = ["summarize_metrics"]


def summarize_metrics(artifact: dict[str, Any]) -> str:
    """Render a metrics artifact as an aligned phase-time/counter table."""
    schema = artifact.get("schema")
    if schema != "repro.obs.metrics/1":
        raise ValueError(f"not a repro.obs metrics artifact (schema={schema!r})")
    structural = artifact.get("structural", {})
    counters: dict[str, int] = structural.get("counters", {})
    gauges: dict[str, float] = structural.get("gauges", {})
    timings: dict[str, dict[str, Any]] = artifact.get("timings", {})

    lines: list[str] = []
    if timings:
        width = max(len(name) for name in timings)
        lines.append("phase timings (quantized):")
        lines.append(
            f"  {'phase':<{width}}  {'count':>7}  {'total_ms':>10}  "
            f"{'mean_ms':>9}  {'min_ms':>9}  {'max_ms':>9}"
        )
        by_total = sorted(
            timings.items(), key=lambda item: (-item[1]["total_ms"], item[0])
        )
        for name, row in by_total:
            lines.append(
                f"  {name:<{width}}  {row['count']:>7}  {row['total_ms']:>10.3f}  "
                f"{row['mean_ms']:>9.3f}  {row['min_ms']:>9.3f}  "
                f"{row['max_ms']:>9.3f}"
            )
    if counters:
        width = max(len(name) for name in counters)
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]:>12}")
    if gauges:
        width = max(len(name) for name in gauges)
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {gauges[name]:>12}")
    if not lines:
        lines.append("(empty metrics artifact)")
    return "\n".join(lines)
