"""cProfile plumbing behind ``repro campaign/sweep --profile PATH``.

:func:`profile_to` profiles the driver with :mod:`cProfile` and dumps a
merged :mod:`pstats` file.  With ``workers=True`` it additionally opens
a scratch directory that sweep workers discover through
:func:`active_worker_dir`; each worker job dumps its own profile there
(:func:`profile_worker_job`) and the exit path folds every per-worker
dump into the final stats file, so a multi-process sweep profiles as
one merged call graph.
"""

from __future__ import annotations

import cProfile
import glob
import os
import pstats
import shutil
import tempfile
from contextlib import contextmanager
from typing import Iterator

__all__ = ["active_worker_dir", "profile_to", "profile_worker_job"]

#: Scratch directory for per-worker profile dumps (None: not profiling).
_worker_dir: str | None = None


def active_worker_dir() -> str | None:
    """The per-worker profile scratch dir, when a sweep profile is live."""
    return _worker_dir


@contextmanager
def profile_worker_job(profile_dir: str | None, tag: str) -> Iterator[None]:
    """Profile one worker job into ``profile_dir/<tag>.prof`` (no-op on None)."""
    if profile_dir is None:
        yield
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profiler.dump_stats(os.path.join(profile_dir, f"{tag}.prof"))


@contextmanager
def profile_to(path: str, *, workers: bool = False) -> Iterator[cProfile.Profile]:
    """Profile the enclosed block, writing merged pstats to ``path``."""
    global _worker_dir
    profiler = cProfile.Profile()
    scratch = tempfile.mkdtemp(prefix="repro-profile-") if workers else None
    _worker_dir = scratch
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        _worker_dir = None
        stats = pstats.Stats(profiler)
        if scratch is not None:
            for dump in sorted(glob.glob(os.path.join(scratch, "*.prof"))):
                try:
                    stats.add(dump)
                except Exception:  # a truncated dump must not eat the run
                    pass
            shutil.rmtree(scratch, ignore_errors=True)
        stats.dump_stats(path)
