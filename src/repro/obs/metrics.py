"""Deterministic metrics registry (counters, gauges, histogram timers).

The registry is the storage half of :mod:`repro.obs`: instrumented code
holds *handles* bound either to a live registry or to the shared
:data:`NULL_HANDLE` singleton, so the disabled path allocates nothing
and never touches a random stream.  Counters and gauges hold
deterministic *structural* values (query counts, cache hits, claim
half-widths); timer histograms hold wall-clock observations.  The JSON
artifact keeps the two strictly apart — the ``structural`` section is
byte-stable across runs of the same command, the ``timings`` section is
quantized but inherently run-dependent.
"""

from __future__ import annotations

import json
import time
from typing import Any

__all__ = [
    "CounterHandle",
    "GaugeHandle",
    "MetricsRegistry",
    "NULL_HANDLE",
    "NullHandle",
    "TimerHandle",
]

#: Millisecond decimals kept in the timings section of the artifact.
_QUANTUM_DECIMALS = 3


class NullHandle:
    """The disabled-path recorder: every operation is a no-op.

    One shared instance stands in for counters, gauges, timers, spans
    and decorators alike, so binding instrumentation while observability
    is off costs a single attribute load and zero allocations.  It is
    falsy so hot paths can guard optional extra work with
    ``if self._handle:``.
    """

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, seconds: float) -> None:
        pass

    def __enter__(self) -> "NullHandle":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def __bool__(self) -> bool:
        return False


#: The module-level null recorder handed out whenever obs is disabled.
NULL_HANDLE = NullHandle()


class CounterHandle:
    """Pre-bound monotonically-increasing integer counter."""

    __slots__ = ("_counters", "_name")

    def __init__(self, counters: dict[str, int], name: str):
        self._counters = counters
        self._name = name

    def inc(self, n: int = 1) -> None:
        self._counters[self._name] += int(n)


class GaugeHandle:
    """Pre-bound last-write-wins gauge (deterministic values only)."""

    __slots__ = ("_gauges", "_name")

    def __init__(self, gauges: dict[str, float], name: str):
        self._gauges = gauges
        self._name = name

    def set(self, value: float) -> None:
        value = float(value)
        self._gauges[self._name] = int(value) if value.is_integer() else value


class TimerHandle:
    """Pre-bound histogram timer; reusable as a context manager.

    Not reentrant: one handle times one region at a time (sequential
    re-use across loop iterations is the intended pattern).
    """

    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name
        self._t0 = 0.0

    def observe(self, seconds: float) -> None:
        self._registry.observe(self._name, seconds)

    def __enter__(self) -> "TimerHandle":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._registry.observe(self._name, time.perf_counter() - self._t0)
        return False


class MetricsRegistry:
    """In-memory metric store with a deterministic JSON artifact.

    Counters are ints, gauges are numbers, timings are per-name
    ``[count, total_s, min_s, max_s]`` histograms.  Structural values
    (counters + gauges) must be deterministic for a given command —
    merging worker payloads sums counters and takes the last gauge
    write, both order-independent for the payload streams the engine
    produces.
    """

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._timings: dict[str, list[float]] = {}

    # ------------------------------------------------------- handles
    def counter(self, name: str) -> CounterHandle:
        self._counters.setdefault(name, 0)
        return CounterHandle(self._counters, name)

    def gauge(self, name: str) -> GaugeHandle:
        return GaugeHandle(self._gauges, name)

    def timer(self, name: str) -> TimerHandle:
        return TimerHandle(self, name)

    # ------------------------------------------------- direct writes
    def inc(self, name: str, n: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + int(n)

    def set_gauge(self, name: str, value: float) -> None:
        value = float(value)
        self._gauges[name] = int(value) if value.is_integer() else value

    def observe(self, name: str, seconds: float) -> None:
        slot = self._timings.get(name)
        if slot is None:
            self._timings[name] = [1, seconds, seconds, seconds]
        else:
            slot[0] += 1
            slot[1] += seconds
            if seconds < slot[2]:
                slot[2] = seconds
            if seconds > slot[3]:
                slot[3] = seconds

    # ------------------------------------------------ worker payloads
    def to_payload(self) -> dict[str, Any]:
        """Compact picklable snapshot for cross-process merging."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "timings": {k: list(v) for k, v in self._timings.items()},
        }

    def merge_payload(self, payload: dict[str, Any]) -> None:
        """Fold one worker's :meth:`to_payload` snapshot in."""
        for name, value in payload.get("counters", {}).items():
            self._counters[name] = self._counters.get(name, 0) + value
        self._gauges.update(payload.get("gauges", {}))
        for name, (count, total, lo, hi) in payload.get("timings", {}).items():
            slot = self._timings.get(name)
            if slot is None:
                self._timings[name] = [count, total, lo, hi]
            else:
                slot[0] += count
                slot[1] += total
                if lo < slot[2]:
                    slot[2] = lo
                if hi > slot[3]:
                    slot[3] = hi

    # -------------------------------------------------------- artifact
    def as_artifact(self) -> dict[str, Any]:
        """JSON-ready artifact: byte-stable structural, quantized timings."""

        def _ms(seconds: float) -> float:
            return round(seconds * 1000.0, _QUANTUM_DECIMALS)

        timings = {
            name: {
                "count": int(count),
                "total_ms": _ms(total),
                "mean_ms": _ms(total / count) if count else 0.0,
                "min_ms": _ms(lo),
                "max_ms": _ms(hi),
            }
            for name, (count, total, lo, hi) in sorted(self._timings.items())
        }
        return {
            "schema": "repro.obs.metrics/1",
            "structural": {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
            },
            "timings": timings,
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_artifact(), fh, indent=2, sort_keys=True)
            fh.write("\n")
