"""Unified observability layer: metrics, span tracing, profiling.

One module-level recorder state backs the whole engine.  It starts
**disabled**: every handle the instrumented subsystems bind
(:func:`counter`, :func:`gauge`, :func:`timer`, :func:`span`) is then
the shared :data:`~repro.obs.metrics.NULL_HANDLE` singleton whose
operations are empty methods — no allocation, no RNG access, no control
-flow change, so a metrics-off run is byte-identical to the
uninstrumented engine.

``repro campaign/sweep/serve-bench/montecarlo --metrics PATH --trace
PATH`` call :func:`enable` before building any instrumented object and
:func:`write_metrics`/:func:`write_trace` on the way out.  Worker
processes (sweep pool jobs, cluster serving workers) record into their
own lane via :func:`begin_worker` and ship a :func:`worker_payload`
snapshot back for :func:`merge_worker_payload`, which is how one Chrome
trace file ends up with per-worker ``tid`` swim-lanes.

Determinism contract: counters and gauges only ever receive values that
are themselves deterministic for a given command line, so the
``structural`` section of the metrics artifact is byte-stable across
runs; wall-clock observations live only in span/timer histograms and
the segregated ``timings`` section.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.metrics import (
    NULL_HANDLE,
    CounterHandle,
    GaugeHandle,
    MetricsRegistry,
    NullHandle,
    TimerHandle,
)
from repro.obs.profile import profile_to
from repro.obs.summarize import summarize_metrics
from repro.obs.trace import SpanHandle, SpanTracer

__all__ = [
    "MetricsRegistry",
    "NullHandle",
    "SpanTracer",
    "active",
    "begin_worker",
    "counter",
    "disable",
    "enable",
    "gauge",
    "inc",
    "merge_worker_payload",
    "metrics_on",
    "metrics_registry",
    "observe",
    "profile_to",
    "set_gauge",
    "span",
    "summarize_metrics",
    "timer",
    "traced",
    "tracer",
    "tracing_on",
    "worker_payload",
    "write_metrics",
    "write_trace",
]

#: Live recorder state (module-level; None == disabled).
_metrics: MetricsRegistry | None = None
_tracer: SpanTracer | None = None


# ----------------------------------------------------------- lifecycle
def enable(*, metrics: bool = True, trace: bool = False) -> None:
    """Install a fresh registry and/or tracer as the live recorders."""
    global _metrics, _tracer
    _metrics = MetricsRegistry() if metrics else None
    _tracer = SpanTracer() if trace else None


def disable() -> None:
    """Drop the live recorders; all new handles are null again."""
    global _metrics, _tracer
    _metrics = None
    _tracer = None


def active() -> bool:
    """True when either metrics or tracing is live."""
    return _metrics is not None or _tracer is not None


def metrics_on() -> bool:
    return _metrics is not None


def tracing_on() -> bool:
    return _tracer is not None


def metrics_registry() -> MetricsRegistry | None:
    """The live registry (None when metrics are off)."""
    return _metrics


def tracer() -> SpanTracer | None:
    """The live span tracer (None when tracing is off)."""
    return _tracer


# ------------------------------------------------------------- handles
def counter(name: str) -> CounterHandle | NullHandle:
    """A pre-bound counter handle (null singleton when metrics are off)."""
    if _metrics is None:
        return NULL_HANDLE
    return _metrics.counter(name)


def gauge(name: str) -> GaugeHandle | NullHandle:
    """A pre-bound gauge handle (null singleton when metrics are off)."""
    if _metrics is None:
        return NULL_HANDLE
    return _metrics.gauge(name)


def timer(name: str) -> TimerHandle | NullHandle:
    """A pre-bound metrics-only timer (null singleton when metrics are off)."""
    if _metrics is None:
        return NULL_HANDLE
    return _metrics.timer(name)


def span(name: str) -> SpanHandle | NullHandle:
    """A span handle: trace event + timing histogram under one name.

    Bind once near construction (hot paths) or call inline around a
    cold region; returns the null singleton when obs is fully off.
    """
    if _metrics is None and _tracer is None:
        return NULL_HANDLE
    return SpanHandle(name, _metrics, _tracer)


def traced(name: str):
    """Decorator form of :func:`span`, resolving state per call.

    Unlike binding ``span(name)`` at definition time, a ``@traced``
    function picks up recorders enabled after the module was imported.
    """

    def decorate(fn):
        import functools

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


# -------------------------------------------------------- direct writes
def inc(name: str, n: int = 1) -> None:
    """Increment a counter by name (no-op when metrics are off)."""
    if _metrics is not None:
        _metrics.inc(name, n)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge by name (no-op when metrics are off)."""
    if _metrics is not None:
        _metrics.set_gauge(name, value)


def observe(name: str, seconds: float) -> None:
    """Record one timing observation by name (no-op when metrics are off)."""
    if _metrics is not None:
        _metrics.observe(name, seconds)


# ------------------------------------------------------ worker plumbing
def begin_worker(lane: int, lane_name: str | None = None) -> None:
    """Start fresh recorders for a worker process on its own trace lane.

    Keeps the current on/off modes but replaces any (fork-inherited)
    state, so a worker never re-ships the driver's pre-fork events.
    No-op when obs is fully off (e.g. spawn-started workers).
    """
    global _metrics, _tracer
    if _metrics is not None:
        _metrics = MetricsRegistry()
    if _tracer is not None:
        _tracer = SpanTracer(lane=lane, lane_name=lane_name or f"worker-{lane}")


def worker_payload(reset: bool = True) -> dict[str, Any] | None:
    """Snapshot this process's recorders for shipping to the driver.

    With ``reset`` (default) the recorders are emptied afterwards so a
    long-lived worker answering repeated collections never double-ships.
    Returns None when obs is off.
    """
    global _metrics, _tracer
    if _metrics is None and _tracer is None:
        return None
    payload: dict[str, Any] = {
        "metrics": _metrics.to_payload() if _metrics is not None else None,
        "trace": _tracer.to_payload() if _tracer is not None else None,
        "lane": _tracer.lane if _tracer is not None else None,
    }
    if reset:
        if _metrics is not None:
            _metrics = MetricsRegistry()
        if _tracer is not None:
            _tracer = SpanTracer(lane=_tracer.lane, lane_name=_tracer.lane_name)
    return payload


def merge_worker_payload(payload: dict[str, Any] | None) -> None:
    """Fold one :func:`worker_payload` snapshot into the live recorders."""
    if payload is None:
        return
    if _metrics is not None and payload.get("metrics") is not None:
        _metrics.merge_payload(payload["metrics"])
    if _tracer is not None and payload.get("trace") is not None:
        _tracer.merge_payload(payload["trace"])


# -------------------------------------------------------------- export
def write_metrics(path: str) -> None:
    """Write the live registry's artifact (empty artifact when off)."""
    registry = _metrics if _metrics is not None else MetricsRegistry()
    registry.write(path)


def write_trace(path: str) -> None:
    """Write the live tracer's Chrome trace file (empty trace when off)."""
    live = _tracer if _tracer is not None else SpanTracer()
    live.write(path)


def load_artifact(path: str) -> dict[str, Any]:
    """Read a metrics artifact back (for ``repro metrics summarize``)."""
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
