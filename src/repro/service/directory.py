"""The relay directory: campaign observations compiled for online lookup.

The offline campaign answers "which relays improved which pairs"; a
serving layer needs the transpose — "given a pair, which relay should
carry the next call" — answered in microseconds, refreshed as new rounds
arrive, and restartable from a snapshot.  :class:`RelayDirectory` is that
structure: every retained measurement round is reduced to per-*lane*
relay statistics (a lane is a canonical unordered endpoint or country
pair, packed into one int64 key), and the retained rounds are merged into
dense ranked lookup blocks:

* **pair tier** — lanes keyed by endpoint pair: the exact-history answer;
* **country tier** — lanes keyed by country pair: the VIA-style fallback
  (the same ``(-count, relay)`` ranking
  :class:`~repro.core.oracle.LaneHistory` computes, plus the mean observed
  RTT reduction per relay as the expected gain);
* **direct tier** — no history at all: the caller keeps the direct path.

Incremental ingestion (:meth:`ingest_round`) recompiles only *touched*
lanes — lanes the new round observed plus lanes that lost a round to the
retention window (``max_rounds``, the staleness TTL) — and splices them
into the compiled blocks; the result is byte-identical to recompiling the
whole directory from the retained rounds, because every lane's statistics
are reduced from the same per-round rows in the same ascending-round
order either way (asserted in ``tests/test_service.py``).

Snapshots (:meth:`save` / :meth:`load`) are a single ``.npz`` of flat
arrays: the string pools, the per-round lane rows and the retention
configuration.  Loading replays a full recompile, so a restored directory
is bit-identical to the one that saved it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, Any

import numpy as np

from repro import obs
from repro.core.oracle import csr_top_k, rank_lane_entries
from repro.core.results import RoundResult
from repro.core.table import NUM_RELAY_TYPES, Interner, ObservationTable
from repro.core.types import RELAY_TYPE_ORDER, RelayType
from repro.errors import (
    EmptyDirectoryError,
    ServiceError,
    UnknownCountryError,
    UnknownEndpointError,
)

#: Fallback tiers a query resolves through, in preference order.
TIER_PAIR = 0
TIER_COUNTRY = 1
TIER_DIRECT = 2
TIER_NAMES = ("pair", "country", "direct")

#: Snapshot format version (bumped on incompatible layout changes).
#: v2 added the relay last-seen arrays that back churn-aware health.
SNAPSHOT_VERSION = 2

_TIERS = (TIER_PAIR, TIER_COUNTRY)

#: Canonical unordered-pair key packing — the table's, so directory lane
#: keys and table lane keys can never drift apart.
_pack = ObservationTable.pack_pairs


@dataclass(frozen=True, slots=True)
class LaneBlock:
    """One tier's compiled lanes: a CSR of ranked relay candidates.

    Attributes:
        keys: ``(L,) int64`` sorted canonical lane keys.
        indptr: ``(L+1,) int64`` CSR pointer into the entry arrays.
        relays: ``(E,) int32`` relay registry indices, ranked
            ``(-count, relay)`` within each lane.
        counts: ``(E,) int32`` improvement count behind each entry.
        reduction_ms: ``(E,) float64`` mean observed RTT reduction of the
            relay on the lane (the "expected gain" a query returns).
    """

    keys: np.ndarray
    indptr: np.ndarray
    relays: np.ndarray
    counts: np.ndarray
    reduction_ms: np.ndarray

    @classmethod
    def empty(cls) -> LaneBlock:
        return cls(
            keys=np.zeros(0, np.int64),
            indptr=np.zeros(1, np.int64),
            relays=np.zeros(0, np.int32),
            counts=np.zeros(0, np.int32),
            reduction_ms=np.zeros(0, float),
        )

    @classmethod
    def from_rows(
        cls,
        lanes: np.ndarray,
        relays: np.ndarray,
        counts: np.ndarray,
        gains: np.ndarray,
    ) -> LaneBlock:
        """Compile occurrence rows into ranked lanes.

        Rows may repeat a ``(lane, relay)`` across rounds; callers must
        order them round-ascending so the float gain sums accumulate in a
        fixed order (what makes incremental recompiles bit-identical to
        full ones).  Reduction and ranking run through the oracle's shared
        :func:`~repro.core.oracle.rank_lane_entries` kernel, so the
        service ranks exactly as the history predictor does.
        """
        if lanes.size == 0:
            return cls.empty()
        keys, indptr, ranked_relays, ranked_counts, gain_sums = rank_lane_entries(
            lanes, relays, counts=counts, gains=gains
        )
        return cls(
            keys=keys,
            indptr=indptr,
            relays=ranked_relays,
            counts=ranked_counts,
            reduction_ms=gain_sums / ranked_counts,
        )

    @property
    def num_lanes(self) -> int:
        return self.keys.shape[0]

    def lane_index(self, keys: np.ndarray) -> np.ndarray:
        """Per query key: the lane's row, or -1 when unknown."""
        if self.keys.size == 0:
            return np.full(keys.shape, -1, np.intp)
        pos = np.searchsorted(self.keys, keys)
        pos_c = np.minimum(pos, self.keys.size - 1)
        return np.where(self.keys[pos_c] == keys, pos_c, -1)

    def top_k(self, lane_rows: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """``(m, k)`` ranked relays and expected reductions per lane row.

        Relays pad with -1 and reductions with NaN past a lane's candidate
        count; rows with ``lane_rows == -1`` are entirely padding.
        """
        return csr_top_k(
            self.indptr, lane_rows, k,
            (self.relays, self.reduction_ms), (-1, np.nan),
        )

    def equal(self, other: LaneBlock) -> bool:
        """Exact array equality (used by the incremental-vs-full tests)."""
        return (
            np.array_equal(self.keys, other.keys)
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.relays, other.relays)
            and np.array_equal(self.counts, other.counts)
            and np.array_equal(self.reduction_ms, other.reduction_ms, equal_nan=True)
        )


def validate_query_codes(
    src_codes: np.ndarray, dst_codes: np.ndarray, known: int
) -> tuple[np.ndarray, np.ndarray]:
    """Check a query batch against a directory's known endpoint range.

    Shared by :meth:`RelayDirectory.lookup_many` and the cluster front
    (which validates *before* dispatching to shard workers), so both
    paths reject malformed batches with identical errors.  Returns the
    queries as parallel ``int64`` arrays.

    Raises:
        ServiceError: on mismatched / non-1D query shapes.
        EmptyDirectoryError: when ``known`` is 0 — no ingested history.
        UnknownEndpointError: for codes outside ``[-1, known)``; those
            are caller bugs, not unobserved endpoints.
    """
    src = np.asarray(src_codes, np.int64)
    dst = np.asarray(dst_codes, np.int64)
    if src.shape != dst.shape or src.ndim != 1:
        raise ServiceError(
            f"query shapes differ: {src.shape} vs {dst.shape}"
        )
    if known == 0:
        raise EmptyDirectoryError(
            "directory has no ingested history to resolve queries against"
        )
    out_of_range = (src < -1) | (src >= known) | (dst < -1) | (dst >= known)
    if out_of_range.any():
        bad = np.unique(
            np.concatenate([src[out_of_range], dst[out_of_range]])
        )
        raise UnknownEndpointError(
            f"endpoint codes {bad.tolist()[:8]} outside the directory's "
            f"known range [-1, {known})"
        )
    return src, dst


def _merge_blocks(
    old: LaneBlock, fresh: LaneBlock, touched: np.ndarray
) -> LaneBlock:
    """Splice recompiled ``touched`` lanes into an existing block.

    ``fresh`` holds the recomputed versions of every touched lane that
    still has entries (a touched lane whose rounds were all evicted simply
    disappears).  Untouched lanes keep their exact arrays.
    """
    keep = ~np.isin(old.keys, touched)
    src_keys = np.concatenate([old.keys[keep], fresh.keys])
    order = np.argsort(src_keys, kind="stable")
    old_lengths = np.diff(old.indptr)
    src_lengths = np.concatenate([old_lengths[keep], np.diff(fresh.indptr)])[order]
    src_starts = np.concatenate(
        [old.indptr[:-1][keep], fresh.indptr[:-1] + old.relays.size]
    )[order]
    indptr = np.concatenate(([0], np.cumsum(src_lengths))).astype(np.int64)
    total = int(indptr[-1])
    gather = (
        np.repeat(src_starts, src_lengths)
        + np.arange(total)
        - np.repeat(indptr[:-1], src_lengths)
    )
    relays = np.concatenate([old.relays, fresh.relays])[gather]
    counts = np.concatenate([old.counts, fresh.counts])[gather]
    reduction = np.concatenate([old.reduction_ms, fresh.reduction_ms])[gather]
    return LaneBlock(
        keys=src_keys[order],
        indptr=indptr,
        relays=relays.astype(np.int32),
        counts=counts.astype(np.int32),
        reduction_ms=reduction,
    )


class RelayDirectory:
    """Compiled relay-lookup lanes over a window of measurement rounds.

    One directory serves one campaign's relay registry: relay ids in the
    compiled lanes are that campaign's registry indices.  Rounds must be
    ingested in ascending round order (the staleness window evicts from
    the front).
    """

    def __init__(self, max_rounds: int | None = None) -> None:
        if max_rounds is not None and max_rounds < 1:
            raise ServiceError(f"max_rounds must be >= 1, got {max_rounds}")
        self.max_rounds = max_rounds
        self._endpoints = Interner()
        self._countries = Interner()
        self._endpoint_cc = np.zeros(0, np.int32)
        # round id -> {(tier, type_code): (lane, relay, count, gain)} rows,
        # insertion order == ascending round id (enforced by ingest_round)
        self._rounds: dict[int, dict[tuple[int, int], tuple[np.ndarray, ...]]] = {}
        self._blocks: dict[tuple[int, int], LaneBlock] = {}
        # relay registry idx -> newest round id whose improving entries
        # contained it: the liveness signal behind stale_relay_mask.  Kept
        # across eviction (like endpoint identities) so health questions
        # about long-dark relays stay answerable.
        self._relay_last_seen: dict[int, int] = {}

    # ------------------------------------------------------------ constructors

    @classmethod
    def from_result(
        cls, result, max_rounds: int | None = None, rounds=None
    ) -> RelayDirectory:
        """Compile a directory from a campaign result's rounds.

        ``rounds`` restricts ingestion to a subset (e.g. all but the
        evaluation round); default is every round of the result.
        """
        directory = cls(max_rounds=max_rounds)
        with obs.span("service.directory.compile"):
            for rnd in result.rounds if rounds is None else rounds:
                directory.ingest_round(rnd)
        return directory

    @classmethod
    def from_table(
        cls, table: ObservationTable, max_rounds: int | None = None
    ) -> RelayDirectory:
        """Compile a directory from one concatenated campaign table.

        The sweep-artifact direction: the table's ``round_idx`` column
        splits it back into rounds, ingested in ascending round order.
        """
        directory = cls(max_rounds=max_rounds)
        with obs.span("service.directory.compile"):
            for round_id in table.round_values().tolist():
                directory.ingest_round(table, round_id=round_id)
        return directory

    # -------------------------------------------------------------- ingestion

    def ingest_round(
        self,
        source: RoundResult | ObservationTable,
        round_id: int | None = None,
    ) -> dict[str, int]:
        """Fold one measurement round into the directory.

        ``source`` is a campaign :class:`~repro.core.results.RoundResult`
        (round id implied) or an :class:`ObservationTable`; for a
        multi-round table, ``round_id`` selects the round to ingest.
        Recompiles only lanes the round touched (plus lanes evicted by the
        ``max_rounds`` window) and returns ingest statistics.

        Staleness: measurement-derived lanes decay with the window —
        evicting a round removes its contribution exactly — but *identity*
        metadata (endpoint ids and their countries) persists, like a
        user-directory cache would; an endpoint last measured in an
        evicted round still resolves through the country tier.

        Raises:
            ServiceError: on out-of-order or duplicate round ids.
        """
        with obs.span("service.directory.ingest"):
            stats = self._ingest_round(source, round_id)
        obs.inc("service.directory.ingested_rounds")
        obs.inc("service.directory.evicted_rounds", stats["evicted_rounds"])
        obs.inc("service.directory.touched_lanes", stats["touched_lanes"])
        return stats

    def _ingest_round(
        self,
        source: RoundResult | ObservationTable,
        round_id: int | None = None,
    ) -> dict[str, int]:
        if isinstance(source, RoundResult):
            table = source.table
            rid = source.round_index if round_id is None else round_id
            mask = None
        else:
            table = source
            if round_id is None:
                present = table.round_values()
                if present.size != 1:
                    raise ServiceError(
                        f"table holds rounds {present.tolist()}; pass round_id"
                    )
                rid = int(present[0])
            else:
                rid = int(round_id)
            mask = table.round_mask(rid)
        if self._rounds and rid <= next(reversed(self._rounds)):
            raise ServiceError(
                f"round {rid} not after retained rounds {list(self._rounds)}"
            )

        ep_map, cc_map = self._register_pools(table)
        aggregate: dict[tuple[int, int], tuple[np.ndarray, ...]] = {}
        for type_code in range(NUM_RELAY_TYPES):
            cases, relays, gains = table.type_entries(type_code)
            if mask is not None and cases.size:
                keep = mask[cases]
                cases, relays, gains = cases[keep], relays[keep], gains[keep]
            if cases.size == 0:
                continue
            for tier in _TIERS:
                if tier == TIER_PAIR:
                    a = ep_map[table.e1_id[cases]]
                    b = ep_map[table.e2_id[cases]]
                else:
                    a = cc_map[table.e1_cc[cases]]
                    b = cc_map[table.e2_cc[cases]]
                aggregate[(tier, type_code)] = self._reduce_round_rows(
                    _pack(a, b), relays, gains
                )
        self._rounds[rid] = aggregate
        if aggregate:
            seen = np.unique(
                np.concatenate([rows[1] for rows in aggregate.values()])
            )
            for relay in seen.tolist():
                self._relay_last_seen[int(relay)] = rid

        evicted: list[dict[tuple[int, int], tuple[np.ndarray, ...]]] = []
        if self.max_rounds is not None:
            while len(self._rounds) > self.max_rounds:
                oldest = next(iter(self._rounds))
                evicted.append(self._rounds.pop(oldest))

        touched_keys = set(aggregate)
        for old in evicted:
            touched_keys |= set(old)
        entries = 0
        for tier, type_code in sorted(touched_keys):
            lanes = [
                agg[(tier, type_code)][0]
                for agg in [aggregate, *evicted]
                if (tier, type_code) in agg
            ]
            touched = np.unique(np.concatenate(lanes))
            entries += int(touched.size)
            self._recompute(tier, type_code, touched)
        return {
            "round_id": rid,
            "retained_rounds": len(self._rounds),
            "evicted_rounds": len(evicted),
            "touched_lanes": entries,
        }

    def _register_pools(
        self, table: ObservationTable
    ) -> tuple[np.ndarray, np.ndarray]:
        """Map a table's codes into directory codes; learn endpoint countries."""
        ep_map = self._endpoints.codes(table.pools.endpoint_ids.values)
        cc_map = self._countries.codes(table.pools.countries.values)
        if len(self._endpoints) > self._endpoint_cc.size:
            grown = np.full(len(self._endpoints), -1, np.int32)
            grown[: self._endpoint_cc.size] = self._endpoint_cc
            self._endpoint_cc = grown
        if table.num_cases:
            self._endpoint_cc[ep_map[table.e1_id]] = cc_map[table.e1_cc]
            self._endpoint_cc[ep_map[table.e2_id]] = cc_map[table.e2_cc]
        if ep_map.size == 0:
            ep_map = np.zeros(0, np.int32)
        if cc_map.size == 0:
            cc_map = np.zeros(0, np.int32)
        return ep_map, cc_map

    @staticmethod
    def _reduce_round_rows(
        lanes: np.ndarray, relays: np.ndarray, gains: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One round's ``(lane, relay)`` rows: occurrence counts + gain sums.

        The shared ranking kernel does the group-reduce; the CSR comes
        back flattened because round aggregates are stored (and
        snapshotted) as flat row lists.
        """
        keys, indptr, ranked_relays, ranked_counts, gain_sums = rank_lane_entries(
            lanes, relays, gains=gains
        )
        return (
            np.repeat(keys, np.diff(indptr)),
            ranked_relays,
            ranked_counts,
            gain_sums,
        )

    def _round_rows_for(
        self, tier: int, type_code: int, touched: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Retained rounds' rows for a block, round-ascending, optionally
        restricted to a touched-lane subset."""
        lanes, relays, counts, gains = [], [], [], []
        for rid in self._rounds:
            agg = self._rounds[rid].get((tier, type_code))
            if agg is None:
                continue
            lane, relay, count, gain = agg
            if touched is not None:
                keep = np.isin(lane, touched)
                if not keep.any():
                    continue
                lane, relay, count, gain = (
                    lane[keep], relay[keep], count[keep], gain[keep]
                )
            lanes.append(lane)
            relays.append(relay)
            counts.append(count)
            gains.append(gain)
        if not lanes:
            empty64 = np.zeros(0, np.int64)
            empty32 = np.zeros(0, np.int32)
            return empty64, empty32, empty32, np.zeros(0, float)
        return (
            np.concatenate(lanes),
            np.concatenate(relays),
            np.concatenate(counts),
            np.concatenate(gains),
        )

    def _recompute(
        self, tier: int, type_code: int, touched: np.ndarray | None = None
    ) -> None:
        fresh = LaneBlock.from_rows(*self._round_rows_for(tier, type_code, touched))
        if touched is None:
            self._blocks[(tier, type_code)] = fresh
            return
        old = self._blocks.get((tier, type_code))
        if old is None or old.num_lanes == 0:
            self._blocks[(tier, type_code)] = fresh
            return
        self._blocks[(tier, type_code)] = _merge_blocks(old, fresh, touched)

    def recompile(self) -> None:
        """Rebuild every compiled block from the retained rounds."""
        with obs.span("service.directory.recompile"):
            keys = sorted({key for agg in self._rounds.values() for key in agg})
            self._blocks = {}
            for tier, type_code in keys:
                self._recompute(tier, type_code)

    # ---------------------------------------------------------------- queries

    def block(self, tier: int, relay_type: RelayType) -> LaneBlock:
        """A tier's compiled lanes for a relay type (empty when unbuilt)."""
        code = RELAY_TYPE_ORDER.index(relay_type)
        return self._blocks.get((tier, code), LaneBlock.empty())

    def lookup_many(
        self,
        src_codes: np.ndarray,
        dst_codes: np.ndarray,
        relay_type: RelayType,
        k: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Resolve queries through the fallback tiers, fully batched.

        ``src_codes`` / ``dst_codes`` are directory endpoint codes (-1 =
        unknown, resolved structurally to the direct tier).  Returns
        ``(relays (n, k) int32, reductions (n, k) float64, tier (n,)
        int8)`` — -1/NaN padded, with :data:`TIER_DIRECT` rows entirely
        padding (keep the direct path).

        Raises:
            EmptyDirectoryError: when no round was ever ingested — there
                is no history to resolve against, distinct from a miss.
            UnknownEndpointError: for codes outside ``[-1, endpoints)``;
                those are caller bugs, not unobserved endpoints.
        """
        if k < 1:
            raise ServiceError(f"k must be >= 1, got {k}")
        src, dst = validate_query_codes(
            src_codes, dst_codes, len(self._endpoint_cc)
        )
        n = src.shape[0]
        relays = np.full((n, k), -1, np.int32)
        reductions = np.full((n, k), np.nan)
        tier = np.full(n, TIER_DIRECT, np.int8)
        unresolved = (src >= 0) & (dst >= 0) & (src != dst)
        code = RELAY_TYPE_ORDER.index(relay_type)

        pair_block = self._blocks.get((TIER_PAIR, code))
        if pair_block is not None and pair_block.num_lanes and unresolved.any():
            rows = pair_block.lane_index(_pack(src, dst))
            hit = unresolved & (rows >= 0)
            if hit.any():
                r, g = pair_block.top_k(rows[hit], k)
                relays[hit], reductions[hit] = r, g
                tier[hit] = TIER_PAIR
                unresolved &= ~hit

        cc_block = self._blocks.get((TIER_COUNTRY, code))
        if cc_block is not None and cc_block.num_lanes and unresolved.any():
            scc = self._endpoint_cc[np.maximum(src, 0)]
            dcc = self._endpoint_cc[np.maximum(dst, 0)]
            rows = cc_block.lane_index(_pack(scc, dcc))
            hit = unresolved & (rows >= 0) & (scc >= 0) & (dcc >= 0)
            if hit.any():
                r, g = cc_block.top_k(rows[hit], k)
                relays[hit], reductions[hit] = r, g
                tier[hit] = TIER_COUNTRY
        return relays, reductions, tier

    # ----------------------------------------------------------------- health

    def relay_last_seen(self) -> dict[int, int]:
        """Relay registry idx -> newest round id it improved any lane in."""
        return dict(self._relay_last_seen)

    def stale_relay_mask(self, liveness_rounds: int) -> np.ndarray:
        """Boolean mask over relay ids: True = presumed dead.

        A relay is *stale* when it appeared in no improving entry of the
        newest ``liveness_rounds`` retained rounds — under churn that is
        the serving layer's only liveness signal (lanes only ever contain
        improving relays, so "not seen lately" means "not sampled or not
        improving lately").  The mask is indexed by relay registry id and
        sized to cover every relay the directory ever saw; compiled-lane
        relay ids always fall inside it.
        """
        if liveness_rounds < 1:
            raise ServiceError(
                f"liveness_rounds must be >= 1, got {liveness_rounds}"
            )
        if not self._relay_last_seen:
            return np.zeros(0, bool)
        rounds = list(self._rounds)
        ids = np.fromiter(self._relay_last_seen, np.int64)
        mask = np.zeros(int(ids.max()) + 1, bool)
        if not rounds:
            mask[ids] = True  # everything it knew was evicted
            return mask
        cutoff = rounds[max(len(rounds) - liveness_rounds, 0)]
        seen = np.fromiter(self._relay_last_seen.values(), np.int64)
        mask[ids[seen < cutoff]] = True
        return mask

    # ------------------------------------------------------------- identities

    def endpoint_code(self, endpoint_id: str) -> int:
        """The directory code of an endpoint id (-1 when never observed)."""
        return self._endpoints.lookup(endpoint_id)

    def encode_endpoints(self, endpoint_ids) -> np.ndarray:
        """Directory codes for an endpoint-id sequence (-1 = unknown)."""
        lookup = self._endpoints.lookup
        return np.fromiter((lookup(e) for e in endpoint_ids), np.int64)

    def endpoint_ids(self) -> list[str]:
        """Every endpoint id the directory has observed, in code order."""
        return list(self._endpoints.values)

    def country_of_code(self, endpoint_code: int) -> str | None:
        """Country string of an endpoint code (None when never learned).

        Raises:
            UnknownEndpointError: for codes outside the known range.
        """
        if not 0 <= endpoint_code < self._endpoint_cc.size:
            raise UnknownEndpointError(
                f"endpoint code {endpoint_code} outside the directory's "
                f"known range [0, {self._endpoint_cc.size})"
            )
        cc = int(self._endpoint_cc[endpoint_code])
        return None if cc < 0 else self._countries[cc]

    def country_code(self, country: str) -> int:
        """The directory code of a country string.

        Raises:
            UnknownCountryError: for countries never observed.
        """
        code = self._countries.lookup(country)
        if code < 0:
            raise UnknownCountryError(
                f"country {country!r} not observed by the directory"
            )
        return code

    def countries(self) -> list[str]:
        """Every country the directory has observed, in code order."""
        return list(self._countries.values)

    def endpoint_country_codes(self) -> np.ndarray:
        """``(num_endpoints,) int32`` country code per endpoint code."""
        return self._endpoint_cc.copy()

    def retained_rounds(self) -> list[int]:
        """Round ids currently inside the staleness window, ascending."""
        return list(self._rounds)

    def stats(self) -> dict[str, Any]:
        """Shape summary: pools, retained rounds, lanes per tier and type."""
        lanes = {
            f"lanes_{TIER_NAMES[tier]}_{relay_type.value}": self._blocks.get(
                (tier, code), LaneBlock.empty()
            ).num_lanes
            for tier in _TIERS
            for code, relay_type in enumerate(RELAY_TYPE_ORDER)
        }
        return {
            "endpoints": len(self._endpoints),
            "countries": len(self._countries),
            "retained_rounds": self.retained_rounds(),
            "max_rounds": self.max_rounds,
            "relays_seen": len(self._relay_last_seen),
            **lanes,
        }

    # -------------------------------------------------------------- snapshots

    def snapshot_arrays(self) -> dict[str, np.ndarray]:
        """The v2 snapshot as a flat name -> array dict, in write order.

        The cluster's v3 format extends this dict with per-shard segment
        arrays (see :mod:`repro.service.cluster`), so both formats agree
        on the base layout by construction.
        """
        arrays: dict[str, np.ndarray] = {
            "meta": np.asarray(
                [
                    SNAPSHOT_VERSION,
                    -1 if self.max_rounds is None else self.max_rounds,
                ],
                np.int64,
            ),
            "endpoints": np.asarray(self._endpoints.values, dtype=np.str_),
            "countries": np.asarray(self._countries.values, dtype=np.str_),
            "endpoint_cc": self._endpoint_cc,
            "round_ids": np.asarray(list(self._rounds), np.int64),
            "relay_seen_ids": np.asarray(
                sorted(self._relay_last_seen), np.int64
            ),
            "relay_seen_rounds": np.asarray(
                [self._relay_last_seen[r] for r in sorted(self._relay_last_seen)],
                np.int64,
            ),
        }
        for rid in self._rounds:
            for tier, type_code in sorted(self._rounds[rid]):
                lane, relay, count, gain = self._rounds[rid][(tier, type_code)]
                prefix = f"r{rid}_t{tier}_{type_code}"
                arrays[f"{prefix}_lane"] = lane
                arrays[f"{prefix}_relay"] = relay
                arrays[f"{prefix}_count"] = count
                arrays[f"{prefix}_gain"] = gain
        return arrays

    def save(self, file: str | IO[bytes]) -> None:
        """Write the directory to a compact ``.npz`` snapshot.

        Deterministic: the same directory state always produces the same
        bytes (arrays are written in a fixed order and ``np.savez`` stamps
        a constant timestamp), so snapshot equality is state equality.
        """
        np.savez(file, **self.snapshot_arrays())

    @classmethod
    def _from_arrays(cls, data) -> RelayDirectory:
        """Rebuild from a snapshot's base arrays (version already checked).

        ``data`` is any name -> array mapping holding the v2 base layout;
        extra names (the v3 segment arrays) are ignored, which is what
        lets the cluster loader reuse this for migration.
        """
        meta = data["meta"]
        max_rounds = int(meta[1])
        directory = cls(max_rounds=None if max_rounds < 0 else max_rounds)
        directory._endpoints = Interner(np.asarray(data["endpoints"]).tolist())
        directory._countries = Interner(np.asarray(data["countries"]).tolist())
        directory._endpoint_cc = np.asarray(data["endpoint_cc"]).astype(np.int32)
        directory._relay_last_seen = dict(
            zip(
                np.asarray(data["relay_seen_ids"]).tolist(),
                np.asarray(data["relay_seen_rounds"]).tolist(),
            )
        )
        for rid in np.asarray(data["round_ids"]).tolist():
            aggregate = {}
            for tier in _TIERS:
                for type_code in range(NUM_RELAY_TYPES):
                    prefix = f"r{rid}_t{tier}_{type_code}"
                    if f"{prefix}_lane" not in data:
                        continue
                    aggregate[(tier, type_code)] = (
                        np.asarray(data[f"{prefix}_lane"]),
                        np.asarray(data[f"{prefix}_relay"]),
                        np.asarray(data[f"{prefix}_count"]),
                        np.asarray(data[f"{prefix}_gain"]),
                    )
            directory._rounds[rid] = aggregate
        directory.recompile()
        return directory

    @classmethod
    def load(cls, file: str | IO[bytes]) -> RelayDirectory:
        """Rebuild a directory from a :meth:`save` snapshot.

        Raises:
            ServiceError: on unknown snapshot versions, including the
                cluster's sharded v3 format (load those through
                :func:`repro.service.cluster.load_cluster_snapshot`).
        """
        with np.load(file) as data:
            version = int(data["meta"][0])
            if version == SNAPSHOT_VERSION + 1:
                raise ServiceError(
                    f"snapshot version {version} is a sharded cluster "
                    "snapshot; load it with "
                    "repro.service.cluster.load_cluster_snapshot / "
                    "ClusterService.from_snapshot"
                )
            if version != SNAPSHOT_VERSION:
                raise ServiceError(f"unknown snapshot version {version}")
            return cls._from_arrays(data)

    @classmethod
    def segment_view(
        cls,
        *,
        blocks: dict[tuple[int, int], LaneBlock],
        endpoint_cc: np.ndarray,
        endpoints: list[str] | None = None,
        countries: list[str] | None = None,
        round_ids: list[int] | None = None,
        relay_last_seen: dict[int, int] | None = None,
        max_rounds: int | None = None,
    ) -> RelayDirectory:
        """A queryable directory over prebuilt lane blocks (one shard).

        Shard workers serve these: the compiled ``blocks`` are a lane
        subset of some full directory, the identity arrays are shared
        with it, and lookups behave exactly as the full directory does
        for queries whose lanes live in this shard.  Views carry no
        per-round rows, so they cannot ingest — swaps replace the whole
        view instead (the cluster's zero-downtime path).
        """
        view = cls(max_rounds=max_rounds)
        view._blocks = dict(blocks)
        view._endpoint_cc = np.asarray(endpoint_cc, np.int32)
        if endpoints is not None:
            view._endpoints = Interner(list(endpoints))
        if countries is not None:
            view._countries = Interner(list(countries))
        if relay_last_seen is not None:
            view._relay_last_seen = dict(relay_last_seen)
        # placeholder per-round keys keep retained_rounds()/stale_relay_mask
        # cutoffs correct without shipping the round rows to every worker
        for rid in round_ids or []:
            view._rounds[int(rid)] = {}
        return view

    def block_signature(self) -> str:
        """BLAKE2 digest over every compiled block's arrays.

        Two directories with equal signatures answer every query
        identically; the incremental-vs-full and snapshot tests compare
        these (and the underlying arrays) directly.
        """
        import hashlib

        digest = hashlib.blake2b(digest_size=16)
        for key in sorted(self._blocks):
            block = self._blocks[key]
            digest.update(repr(key).encode())
            for arr in (block.keys, block.indptr, block.relays, block.counts,
                        block.reduction_ms):
                digest.update(np.ascontiguousarray(arr).tobytes())
        return digest.hexdigest()
