"""Traffic replay: deterministic query streams and a serving benchmark.

A serving layer is only credible under load that *looks like* user
traffic, and overlay traffic is famously skewed: a few populous eyeball
country pairs dominate call volume.  The generator models that directly —
countries are ranked by their observed eyeball population (how many
distinct endpoint probes the directory saw there, the stand-in for the
scenario's APNIC user weights) and country *pairs* get Zipf-shaped
probabilities from the two ranks; endpoints are drawn uniformly inside
each chosen country.

Determinism is block-structured: the stream is cut into fixed-size blocks
and block ``b`` is synthesised from its own seeded generator
(``SeedSequence([seed, b])``), so any number of workers can synthesise
disjoint block ranges in parallel and the concatenated stream is
byte-identical regardless of the worker count (asserted in the tests).

:func:`replay` drives a :class:`~repro.service.service.ShortcutService`
with the stream in batches, measuring sustained queries/sec and the tier
mix, and digests the answers so two replays can be compared exactly.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro import obs
from repro.core.types import RelayType
from repro.errors import EmptyDirectoryError, ServiceError, UnknownCountryError
from repro.service.directory import RelayDirectory, TIER_NAMES
from repro.service.results import ServiceStats
from repro.service.service import ShortcutService

#: Queries per determinism block (the unit of parallel synthesis).
BLOCK_SIZE = 4096


@dataclass(frozen=True, slots=True)
class LoadgenConfig:
    """Knobs of the query generator and the replay harness."""

    num_queries: int = 100_000
    """Total queries to synthesise and replay."""

    batch_size: int = 1024
    """Queries per :meth:`ShortcutService.route_many` call."""

    zipf_exponent: float = 1.1
    """Zipf exponent over the country popularity ranks (higher = more
    skew toward the most populous eyeball countries)."""

    seed: int = 0
    """Root seed of the block-structured query synthesis."""

    k: int = 3
    """Relay candidates requested per query."""

    relay_type: RelayType = RelayType.COR
    """Relay lane the replay queries."""

    workers: int = 1
    """Parallel synthesis shards.  Purely a partitioning knob: the stream
    is identical for every worker count."""

    country_weights: Mapping[str, float] | None = None
    """Optional per-country multipliers on the Zipf weights (the fault
    timeline's traffic-shift hook): a country's weight is scaled before
    pair probabilities normalise, 0 silences it entirely.  Countries not
    named keep multiplier 1.  Naming a country the directory never
    observed raises :class:`~repro.errors.UnknownCountryError`; weights
    that silence every pair produce a deterministic *empty* stream, not
    an error."""

    def __post_init__(self) -> None:
        if self.num_queries < 1:
            raise ServiceError("num_queries must be >= 1")
        if self.country_weights is not None:
            for country, weight in self.country_weights.items():
                if not weight >= 0.0:
                    raise ServiceError(
                        f"country weight for {country!r} must be >= 0, "
                        f"got {weight}"
                    )
        if self.batch_size < 1:
            raise ServiceError("batch_size must be >= 1")
        if self.zipf_exponent <= 0:
            raise ServiceError("zipf_exponent must be positive")
        if self.k < 1:
            raise ServiceError("k must be >= 1")
        if self.workers < 1:
            raise ServiceError("workers must be >= 1")


def country_rank_order(directory: RelayDirectory) -> list[str]:
    """The directory's countries ranked by eyeball popularity.

    Rank 0 is the country with the most distinct observed endpoints, ties
    broken stably by country string — the order the Zipf head follows and
    the one rank-targeted traffic shifts resolve against.

    Raises:
        EmptyDirectoryError: when the directory knows no endpoints.
    """
    ep_cc = directory.endpoint_country_codes()
    ccs = ep_cc[ep_cc >= 0]
    if ccs.size == 0:
        raise EmptyDirectoryError("directory has no endpoints to rank")
    population = np.bincount(ccs)
    names = directory.countries()
    active = np.flatnonzero(population > 0)
    return [
        names[c]
        for c in sorted(
            active.tolist(), key=lambda c: (-int(population[c]), names[c])
        )
    ]


class QueryStream:
    """Deterministic endpoint-pair query synthesis over a directory."""

    def __init__(self, directory: RelayDirectory, config: LoadgenConfig) -> None:
        self._config = config
        ep_cc = directory.endpoint_country_codes()
        known = np.flatnonzero(ep_cc >= 0)
        if known.size == 0:
            raise EmptyDirectoryError(
                "directory has no endpoints to synthesise from"
            )
        ccs = ep_cc[known]
        # eyeball population per country = distinct endpoints observed there
        num_cc = int(ccs.max()) + 1
        population = np.bincount(ccs, minlength=num_cc)
        names = directory.countries()
        active = np.flatnonzero(population > 0)
        if active.size < 2:
            raise ServiceError("need endpoints in >= 2 countries for pairs")
        # rank countries by (-population, name): the Zipf head is the most
        # populous eyeball country, ties broken stably by country string
        rank_order = sorted(
            active.tolist(), key=lambda c: (-int(population[c]), names[c])
        )
        weights = 1.0 / np.power(
            np.arange(1, len(rank_order) + 1, dtype=float), config.zipf_exponent
        )
        if config.country_weights:
            multipliers = dict(config.country_weights)
            by_name = {names[c]: pos for pos, c in enumerate(rank_order)}
            for country, mult in multipliers.items():
                if country not in by_name:
                    raise UnknownCountryError(
                        f"country {country!r} has no observed endpoints to "
                        "re-weight"
                    )
                weights[by_name[country]] *= mult
        # country pairs (i != j) with product-of-Zipf weights
        c = len(rank_order)
        src_idx, dst_idx = np.meshgrid(np.arange(c), np.arange(c), indexing="ij")
        off_diag = src_idx != dst_idx
        self._pair_src = np.asarray(rank_order, np.int32)[src_idx[off_diag]]
        self._pair_dst = np.asarray(rank_order, np.int32)[dst_idx[off_diag]]
        pair_w = (weights[:, np.newaxis] * weights[np.newaxis, :])[off_diag]
        total = pair_w.sum()
        # weights can silence every pair (e.g. one country left with any
        # traffic): the stream is then deterministically empty — never a
        # division by zero in the normalisation
        self._pair_p = pair_w / total if total > 0 else None
        # country -> endpoint codes, CSR over sorted (cc, endpoint) pairs
        order = np.lexsort((known, ccs))
        self._ep_codes = known[order].astype(np.int64)
        self._ep_indptr = np.concatenate(
            ([0], np.cumsum(np.bincount(ccs, minlength=num_cc)))
        )

    @property
    def is_empty(self) -> bool:
        """True when re-weighting silenced every country pair."""
        return self._pair_p is None

    @property
    def num_blocks(self) -> int:
        return 0 if self.is_empty else -(-self._config.num_queries // BLOCK_SIZE)

    def block(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """Synthesise block ``index``: parallel (src, dst) endpoint codes."""
        cfg = self._config
        if self._pair_p is None:
            return np.zeros(0, np.int64), np.zeros(0, np.int64)
        size = min(BLOCK_SIZE, cfg.num_queries - index * BLOCK_SIZE)
        rng = np.random.default_rng(np.random.SeedSequence([cfg.seed, index]))
        pair = rng.choice(self._pair_p.size, size=size, p=self._pair_p)
        src_cc = self._pair_src[pair]
        dst_cc = self._pair_dst[pair]
        u = rng.random((2, size))
        src_n = self._ep_indptr[src_cc + 1] - self._ep_indptr[src_cc]
        dst_n = self._ep_indptr[dst_cc + 1] - self._ep_indptr[dst_cc]
        src = self._ep_codes[
            self._ep_indptr[src_cc] + (u[0] * src_n).astype(np.int64)
        ]
        dst = self._ep_codes[
            self._ep_indptr[dst_cc] + (u[1] * dst_n).astype(np.int64)
        ]
        return src, dst

    def generate(self) -> tuple[np.ndarray, np.ndarray]:
        """The full stream, assembled from per-worker block shards.

        Worker ``w`` of ``workers`` synthesises blocks ``w, w + workers,
        ...``; reassembly orders blocks by index, so the result is
        invariant in the worker count.
        """
        if self.num_blocks == 0:
            return np.zeros(0, np.int64), np.zeros(0, np.int64)
        blocks: list[tuple[np.ndarray, np.ndarray] | None] = [None] * self.num_blocks
        for worker in range(self._config.workers):
            for index in range(worker, self.num_blocks, self._config.workers):
                blocks[index] = self.block(index)
        src = np.concatenate([b[0] for b in blocks])
        dst = np.concatenate([b[1] for b in blocks])
        return src, dst


def replay(
    service: ShortcutService,
    config: LoadgenConfig | None = None,
) -> ServiceStats:
    """Synthesise a query stream and drive the service with it, batched.

    Synthesis is excluded from the timed section; the measured loop is
    exactly ``route_many`` over consecutive batches.  Returns a
    :class:`~repro.service.results.ServiceStats`: sustained queries/sec,
    the tier mix, the fraction of queries answered with a relay, and a
    BLAKE2 digest of every answer (relay ids + tiers) for exact
    cross-run comparison.  (``ServiceStats`` also supports the old
    replay-dict ``stats["key"]`` access.)

    Works on anything with the service query surface: an in-process
    :class:`~repro.service.service.ShortcutService` or a
    :class:`~repro.service.cluster.ClusterService` fleet — for the
    latter the cluster's CPU-clock scale-out accounting is reset before
    the timed loop and reported under :attr:`ServiceStats.scale_out`.
    """
    config = config or LoadgenConfig()
    stream = QueryStream(service.directory, config)
    src, dst = stream.generate()
    n = src.shape[0]
    tier_counts = np.zeros(len(TIER_NAMES), np.int64)
    no_relay = 0
    digest = hashlib.blake2b(digest_size=16)
    reset_clocks = getattr(service, "reset_clocks", None)
    if reset_clocks is not None:
        reset_clocks()
    start = time.perf_counter()
    with obs.span("loadgen.replay"):
        for lo in range(0, n, config.batch_size):
            hi = min(lo + config.batch_size, n)
            batch = service.route_many(
                src[lo:hi], dst[lo:hi], config.relay_type, config.k
            )
            tier_counts += np.bincount(batch.tier, minlength=len(TIER_NAMES))
            no_relay += int(np.count_nonzero(batch.relay_ids[:, 0] < 0))
            digest.update(batch.relay_ids.tobytes())
            digest.update(batch.tier.tobytes())
    wall = time.perf_counter() - start
    obs.inc("loadgen.queries", n)
    obs.inc("loadgen.batches", -(-n // config.batch_size) if n else 0)
    obs.set_gauge("loadgen.batch_size", config.batch_size)
    degradation = getattr(service, "degradation_summary", lambda: None)()
    scale_out = getattr(service, "scale_out_summary", lambda: None)()
    return ServiceStats(
        queries=n,
        batch_size=config.batch_size,
        batches=-(-n // config.batch_size),
        k=config.k,
        relay_type=config.relay_type.value,
        zipf_exponent=config.zipf_exponent,
        seed=config.seed,
        loadgen_workers=config.workers,
        wall_clock_s=round(wall, 4),
        queries_per_s=int(n / wall) if n and wall > 0 else None,
        tier_counts={
            name: int(tier_counts[code]) for code, name in enumerate(TIER_NAMES)
        },
        relay_answer_frac=round(1.0 - no_relay / n, 4) if n else None,
        answers_digest=digest.hexdigest(),
        degradation=degradation,
        scale_out=scale_out,
    )
