"""The sharded multi-process serving tier.

One :class:`~repro.service.service.ShortcutService` replays ~2M
queries/s on a single core; the "millions of users" architecture needs
more cores and more worlds.  This module provides both halves:

**Cross-world directories.**  :func:`cross_world_service` pools several
campaigns (different world seeds) into one service: relay identities are
unified by node id first (:func:`repro.core.results.unify_relay_identities`),
so the pooled :class:`~repro.core.table.ObservationTable` compiles into
one directory whose relay indices mean the same relay regardless of
which world observed it.

**Sharded serving.**  Compiled lookup lanes are partitioned by a hash of
their canonical *country-pair* key (:func:`shard_of_pair_keys`) into
``num_shards`` segments.  A query's shard is the hash of its endpoints'
country pair — the same key that names its country-tier lane, and the
pair-tier lane of the same two endpoints lands in the same shard by
construction — so every query resolves entirely inside one shard and
sharded answers are byte-identical to the unsharded directory's for any
worker count (asserted in ``tests/test_cluster.py``).

Segments ship as **snapshot v3** (:func:`save_cluster_snapshot`): a
strict superset of the v2 single-process format (same base arrays, so
migration is a load + reshard) plus per-shard compiled lane blocks and a
shard manifest.  ``np.savez`` stores members uncompressed, so
:func:`load_cluster_snapshot` maps each array region straight off disk
(``np.memmap``) — N worker processes share one read-only copy of the
page cache instead of N heap copies.

:class:`ClusterService` is the batching front: it validates each query
batch once, partitions it by shard, writes the partitioned queries into
shared scratch buffers, and coalesces per-shard spans into one
``route_many`` command per worker process; workers write answers back
into shared buffers and the front reassembles them in query order.
Ingest goes through a master directory: fold the round in, write a fresh
v3 snapshot, and broadcast a ``swap`` — workers remap atomically between
serve commands (their command queues are FIFO), so no in-flight batch
ever sees half-new state.

Scale-out accounting is CPU-clock based: each worker reports its busy
time (``time.process_time``) per command, and the front adds its own
partition/reassembly CPU.  ``aggregate_queries_per_s`` is queries over
the *critical path* (front CPU + the busiest worker's CPU) — the
throughput a deployment with one core per process would sustain — which
measures real work division even on a single-core CI box where
wall-clock parallelism is physically impossible.  See
``benchmarks/README.md`` for the protocol.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import shutil
import struct
import tempfile
import time
import zipfile
from queue import Empty
from typing import IO, Any

import numpy as np

from repro import obs
from repro.core.results import CampaignResult, RelayRegistry, unify_relay_identities
from repro.core.table import ObservationTable
from repro.core.types import RelayType
from repro.errors import ServiceError
from repro.service.directory import (
    SNAPSHOT_VERSION,
    TIER_COUNTRY,
    TIER_NAMES,
    TIER_PAIR,
    LaneBlock,
    RelayDirectory,
    validate_query_codes,
)
from repro.service.results import DegradationCounters, RouteAnswer, RouteBatch
from repro.service.service import ShortcutService

__all__ = [
    "CLUSTER_SNAPSHOT_VERSION",
    "NUM_SHARDS",
    "ClusterService",
    "ClusterSnapshot",
    "cross_world_service",
    "load_cluster_snapshot",
    "migrate_snapshot",
    "save_cluster_snapshot",
    "shard_of_pair_keys",
    "shard_of_queries",
    "split_directory_blocks",
]

#: Default shard count.  Fixed independently of the worker count — every
#: worker maps every segment (memmap views are free) and the front
#: assigns whole shards to workers per batch by greedy load balancing —
#: so answers and segment layout never depend on how many processes
#: serve them.
NUM_SHARDS = 16

#: Snapshot format version of the sharded cluster layout (v2 + segments).
CLUSTER_SNAPSHOT_VERSION = SNAPSHOT_VERSION + 1

_pack = ObservationTable.pack_pairs

_TIERS = (TIER_PAIR, TIER_COUNTRY)

#: Per-segment array suffixes, in write order.
_SEGMENT_FIELDS = ("keys", "indptr", "relays", "counts", "red")


# --------------------------------------------------------------------- shards


def shard_of_pair_keys(keys: np.ndarray, num_shards: int) -> np.ndarray:
    """Shard index per canonical country-pair key (splitmix64 finalizer).

    The avalanche mix keeps shards balanced even though packed pair keys
    share long common prefixes (small country codes in the high word).
    """
    x = np.asarray(keys, np.int64).astype(np.uint64)
    x = x ^ (x >> np.uint64(30))
    x = x * np.uint64(0xBF58476D1CE4E5B9)
    x = x ^ (x >> np.uint64(27))
    x = x * np.uint64(0x94D049BB133111EB)
    x = x ^ (x >> np.uint64(31))
    return (x % np.uint64(num_shards)).astype(np.int64)


def shard_of_queries(
    endpoint_cc: np.ndarray,
    src_codes: np.ndarray,
    dst_codes: np.ndarray,
    num_shards: int,
) -> np.ndarray:
    """Owning shard per query: the hash of its endpoints' country pair.

    Unknown endpoints (code -1, or a code whose country was never
    learned) clamp to country 0 — any shard resolves them to the direct
    tier structurally, so the clamp only has to be deterministic.
    """
    src = np.asarray(src_codes, np.int64)
    dst = np.asarray(dst_codes, np.int64)
    scc = endpoint_cc[np.maximum(src, 0)].astype(np.int64)
    dcc = endpoint_cc[np.maximum(dst, 0)].astype(np.int64)
    scc = np.where(src >= 0, scc, -1)
    dcc = np.where(dst >= 0, dcc, -1)
    keys = _pack(np.maximum(scc, 0), np.maximum(dcc, 0))
    return shard_of_pair_keys(keys, num_shards)


def _subset_block(block: LaneBlock, lane_mask: np.ndarray) -> LaneBlock | None:
    """The block restricted to masked lanes (order preserved), or None."""
    if not lane_mask.any():
        return None
    lengths = np.diff(block.indptr)[lane_mask]
    indptr = np.concatenate(([0], np.cumsum(lengths))).astype(np.int64)
    total = int(indptr[-1])
    gather = (
        np.repeat(block.indptr[:-1][lane_mask], lengths)
        + np.arange(total)
        - np.repeat(indptr[:-1], lengths)
    )
    return LaneBlock(
        keys=block.keys[lane_mask],
        indptr=indptr,
        relays=block.relays[gather],
        counts=block.counts[gather],
        reduction_ms=block.reduction_ms[gather],
    )


def split_directory_blocks(
    directory: RelayDirectory, num_shards: int
) -> list[dict[tuple[int, int], LaneBlock]]:
    """Partition a directory's compiled blocks into per-shard segments.

    Country-tier lanes shard by their own pair key; pair-tier lanes
    shard by their endpoints' *country* pair — the same mapping
    :func:`shard_of_queries` applies — so a query's pair and country
    lanes always live in its own shard.  Lane order inside each segment
    is the global order restricted to the shard, keeping per-shard
    lookups binary-searchable and answers identical.
    """
    if num_shards < 1:
        raise ServiceError(f"num_shards must be >= 1, got {num_shards}")
    ep_cc = directory.endpoint_country_codes()
    shards: list[dict[tuple[int, int], LaneBlock]] = [
        {} for _ in range(num_shards)
    ]
    from repro.core.types import RELAY_TYPE_ORDER

    for tier in _TIERS:
        for code, relay_type in enumerate(RELAY_TYPE_ORDER):
            block = directory.block(tier, relay_type)
            if block.num_lanes == 0:
                continue
            if tier == TIER_COUNTRY:
                lane_shard = shard_of_pair_keys(block.keys, num_shards)
            else:
                a = (block.keys >> np.int64(32)).astype(np.int64)
                b = (block.keys & np.int64(0xFFFFFFFF)).astype(np.int64)
                keys = _pack(
                    np.maximum(ep_cc[a], 0).astype(np.int64),
                    np.maximum(ep_cc[b], 0).astype(np.int64),
                )
                lane_shard = shard_of_pair_keys(keys, num_shards)
            for shard in np.unique(lane_shard).tolist():
                subset = _subset_block(block, lane_shard == shard)
                if subset is not None:
                    shards[shard][(tier, code)] = subset
    return shards


# ------------------------------------------------------------ snapshot v3


def save_cluster_snapshot(
    source: RelayDirectory | ShortcutService,
    file: str | IO[bytes],
    *,
    num_shards: int = NUM_SHARDS,
) -> None:
    """Write a sharded v3 snapshot: the v2 base layout plus segments.

    Deterministic like v2: fixed array order, constant zip timestamps.
    The base arrays are exactly what :meth:`RelayDirectory.save` writes
    (modulo the ``meta`` version row), so a v3 snapshot can always
    rebuild the full unsharded directory for ingest.
    """
    directory = getattr(source, "directory", source)
    arrays = directory.snapshot_arrays()
    arrays["meta"] = np.asarray(
        [
            CLUSTER_SNAPSHOT_VERSION,
            -1 if directory.max_rounds is None else directory.max_rounds,
            num_shards,
        ],
        np.int64,
    )
    manifest: list[tuple[int, int, int, int, int]] = []
    for shard, blocks in enumerate(split_directory_blocks(directory, num_shards)):
        for tier, code in sorted(blocks):
            block = blocks[(tier, code)]
            manifest.append(
                (shard, tier, code, block.num_lanes, int(block.relays.size))
            )
            prefix = f"s{shard}_t{tier}_{code}"
            arrays[f"{prefix}_keys"] = block.keys
            arrays[f"{prefix}_indptr"] = block.indptr
            arrays[f"{prefix}_relays"] = block.relays
            arrays[f"{prefix}_counts"] = block.counts
            arrays[f"{prefix}_red"] = block.reduction_ms
    arrays["shard_manifest"] = np.asarray(manifest, np.int64).reshape(-1, 5)
    np.savez(file, **arrays)


def _mmap_npz(path: str) -> dict[str, np.ndarray]:
    """Map every member of an uncompressed ``.npz`` without copying.

    ``np.savez`` stores members ``ZIP_STORED``, so each ``.npy`` payload
    is a contiguous byte range of the archive: parse the zip local file
    header for the data offset, the npy header for dtype/shape, and
    ``np.memmap`` the rest.  Raises on compressed or exotic members; the
    caller falls back to an eager ``np.load``.
    """
    members: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise ServiceError(f"member {info.filename} is compressed")
            raw.seek(info.header_offset)
            local = raw.read(30)
            if local[:4] != b"PK\x03\x04":
                raise ServiceError(f"bad local header for {info.filename}")
            name_len, extra_len = struct.unpack("<HH", local[26:30])
            raw.seek(info.header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(raw)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(raw)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(raw)
            else:
                raise ServiceError(f"unsupported npy version {version}")
            if dtype.hasobject:
                raise ServiceError(f"member {info.filename} holds objects")
            name = info.filename
            if name.endswith(".npy"):
                name = name[:-4]
            if int(np.prod(shape)) == 0:
                members[name] = np.zeros(shape, dtype)
            else:
                members[name] = np.memmap(
                    path,
                    dtype=dtype,
                    mode="r",
                    offset=raw.tell(),
                    shape=shape,
                    order="F" if fortran else "C",
                )
    return members


class ClusterSnapshot:
    """A parsed v3 snapshot: identity arrays plus per-shard segments.

    Arrays may be lazily ``np.memmap``-backed (the worker path) or eager
    (buffer loads); accessors never care which.
    """

    def __init__(self, arrays: dict[str, np.ndarray]) -> None:
        meta = np.asarray(arrays["meta"])
        version = int(meta[0])
        if version == SNAPSHOT_VERSION:
            raise ServiceError(
                f"snapshot version {version} is the single-process format; "
                "migrate it with migrate_snapshot / "
                "ClusterService.from_snapshot"
            )
        if version != CLUSTER_SNAPSHOT_VERSION:
            raise ServiceError(f"unknown snapshot version {version}")
        self._arrays = arrays
        self.max_rounds: int | None = None if int(meta[1]) < 0 else int(meta[1])
        self.num_shards = int(meta[2])
        self._manifest = np.asarray(arrays["shard_manifest"], np.int64)

    @property
    def arrays(self) -> dict[str, np.ndarray]:
        return self._arrays

    def endpoint_country_codes(self) -> np.ndarray:
        return np.asarray(self._arrays["endpoint_cc"]).astype(np.int32)

    def endpoints(self) -> list[str]:
        return np.asarray(self._arrays["endpoints"]).tolist()

    def countries(self) -> list[str]:
        return np.asarray(self._arrays["countries"]).tolist()

    def round_ids(self) -> list[int]:
        return np.asarray(self._arrays["round_ids"]).tolist()

    def relay_last_seen(self) -> dict[int, int]:
        return dict(
            zip(
                np.asarray(self._arrays["relay_seen_ids"]).tolist(),
                np.asarray(self._arrays["relay_seen_rounds"]).tolist(),
            )
        )

    def shard_blocks(self, shard: int) -> dict[tuple[int, int], LaneBlock]:
        """The compiled lane blocks of one shard, possibly memmap-backed."""
        blocks: dict[tuple[int, int], LaneBlock] = {}
        for row in self._manifest:
            if int(row[0]) != shard:
                continue
            tier, code = int(row[1]), int(row[2])
            prefix = f"s{shard}_t{tier}_{code}"
            blocks[(tier, code)] = LaneBlock(
                keys=self._arrays[f"{prefix}_keys"],
                indptr=self._arrays[f"{prefix}_indptr"],
                relays=self._arrays[f"{prefix}_relays"],
                counts=self._arrays[f"{prefix}_counts"],
                reduction_ms=self._arrays[f"{prefix}_red"],
            )
        return blocks

    def segment_service(
        self,
        shard: int,
        *,
        k: int = 3,
        liveness_rounds: int | None = None,
        spill: int = 2,
    ) -> ShortcutService:
        """A queryable service over one shard's segment (worker side).

        Shares the global identity arrays (endpoint countries, relay
        health), so health filtering and validation behave exactly as
        the full directory's.
        """
        view = RelayDirectory.segment_view(
            blocks=self.shard_blocks(shard),
            endpoint_cc=self.endpoint_country_codes(),
            countries=self.countries(),
            round_ids=self.round_ids(),
            relay_last_seen=self.relay_last_seen(),
            max_rounds=self.max_rounds,
        )
        return ShortcutService.from_directory(
            view, k=k, liveness_rounds=liveness_rounds, spill=spill
        )

    def identity_directory(self) -> RelayDirectory:
        """A lanes-free directory view holding only identities (front side)."""
        return RelayDirectory.segment_view(
            blocks={},
            endpoint_cc=self.endpoint_country_codes(),
            endpoints=self.endpoints(),
            countries=self.countries(),
            round_ids=self.round_ids(),
            relay_last_seen=self.relay_last_seen(),
            max_rounds=self.max_rounds,
        )

    def full_directory(self) -> RelayDirectory:
        """Rebuild the complete unsharded directory (the ingest master).

        v3 carries every v2 base array, so this is the v2 load path with
        the segment arrays ignored.
        """
        return RelayDirectory._from_arrays(self._arrays)


def load_cluster_snapshot(
    file: str | IO[bytes], *, mmap: bool = True
) -> ClusterSnapshot:
    """Parse a v3 snapshot, memory-mapping arrays when given a path.

    Raises:
        ServiceError: for v2 snapshots (migrate first) and unknown
            versions.
    """
    if mmap and isinstance(file, (str, os.PathLike)):
        try:
            return ClusterSnapshot(_mmap_npz(os.fspath(file)))
        except (ServiceError, OSError, ValueError):
            pass  # compressed / exotic member: fall back to eager load
    with np.load(file) as data:
        arrays = {name: data[name] for name in data.files}
    return ClusterSnapshot(arrays)


def migrate_snapshot(
    src: str | IO[bytes],
    dst: str | IO[bytes],
    *,
    num_shards: int = NUM_SHARDS,
) -> None:
    """Rewrite a v2 single-process snapshot as a sharded v3 snapshot."""
    save_cluster_snapshot(RelayDirectory.load(src), dst, num_shards=num_shards)


# ----------------------------------------------------------------- workers


def _build_shard_services(
    snapshot_path: str,
    shard_ids: tuple[int, ...],
    knobs: dict[str, Any],
    previous: dict[int, ShortcutService] | None = None,
) -> dict[int, ShortcutService]:
    """(Re)load a worker's shard services from a snapshot path.

    On swap, degradation counters carry over from the previous services
    — the in-process analog (``ingest_round`` on one service) keeps its
    cumulative counters too.
    """
    snapshot = load_cluster_snapshot(snapshot_path)
    services: dict[int, ShortcutService] = {}
    for shard in shard_ids:
        if shard >= snapshot.num_shards:
            continue
        service = snapshot.segment_service(shard, **knobs)
        if previous is not None and shard in previous:
            service.counters = previous[shard].counters
        services[shard] = service
    return services


def _worker_main(
    widx: int,
    snapshot_path: str,
    shard_ids: tuple[int, ...],
    scratch_dir: str,
    capacity: int,
    max_k: int,
    knobs: dict[str, Any],
    cmd_q,
    done_q,
) -> None:
    """One worker process: serve owned shards from shared scratch buffers."""
    try:
        # under fork the child inherits the front's enabled obs state;
        # swap in fresh recorders on this worker's own trace lane *before*
        # building shard services, so their handles bind to worker state
        obs.begin_worker(lane=widx + 1, lane_name=f"worker-{widx}")
        sp_serve = obs.span("cluster.worker.serve")
        services = _build_shard_services(snapshot_path, shard_ids, knobs)
        qsrc = np.memmap(
            os.path.join(scratch_dir, "qsrc.dat"), np.int64, "r", shape=(capacity,)
        )
        qdst = np.memmap(
            os.path.join(scratch_dir, "qdst.dat"), np.int64, "r", shape=(capacity,)
        )
        qshard = np.memmap(
            os.path.join(scratch_dir, "qshard.dat"), np.int64, "r", shape=(capacity,)
        )
        arel = np.memmap(
            os.path.join(scratch_dir, "arel.dat"),
            np.int32, "r+", shape=(capacity, max_k),
        )
        ared = np.memmap(
            os.path.join(scratch_dir, "ared.dat"),
            np.float64, "r+", shape=(capacity, max_k),
        )
        atier = np.memmap(
            os.path.join(scratch_dir, "atier.dat"), np.int8, "r+", shape=(capacity,)
        )
        done_q.put(("ready", widx))
        while True:
            msg = cmd_q.get()
            op = msg[0]
            if op == "serve":
                _, m, shards, relay_value, k = msg
                relay_type = RelayType(relay_value)
                start = time.process_time()
                # the front ships queries unsorted plus each row's shard
                # code; the worker selects its own rows and scatters
                # answers back to original positions, so the O(n) row
                # bookkeeping runs in parallel (proportional to the
                # shards this worker was assigned) instead of as a
                # serial argsort on the front
                with sp_serve:
                    h = np.asarray(qshard[:m])
                    for shard in shards:
                        idx = np.flatnonzero(h == shard)
                        batch = services[shard].route_many(
                            qsrc[idx], qdst[idx], relay_type, k
                        )
                        arel[idx, :k] = batch.relay_ids
                        ared[idx, :k] = batch.reduction_ms
                        atier[idx] = batch.tier
                done_q.put(("done", widx, time.process_time() - start))
            elif op == "swap":
                services = _build_shard_services(
                    msg[1], shard_ids, knobs, previous=services
                )
                done_q.put(("swapped", widx))
            elif op == "counters":
                total = DegradationCounters()
                for service in services.values():
                    total.merge(service.counters.as_dict())
                done_q.put(("counters", widx, total.as_dict()))
            elif op == "obs":
                done_q.put(("obs", widx, obs.worker_payload()))
            elif op == "stop":
                done_q.put(("stopped", widx))
                return
            else:  # pragma: no cover - defensive
                raise ServiceError(f"unknown worker command {op!r}")
    except Exception:  # pragma: no cover - surfaced front-side as ServiceError
        import traceback

        done_q.put(("error", widx, traceback.format_exc()))


# ------------------------------------------------------------------- front


class ClusterService:
    """N worker processes serving one sharded snapshot, batch-coalesced.

    Built via :meth:`from_service` (shard a live service) or
    :meth:`from_snapshot` (serve a snapshot file; v2 snapshots migrate
    transparently).  Implements the same query surface as
    :class:`ShortcutService` — ``route_many`` / ``route`` /
    ``encode_endpoints`` / ``ingest_round`` — so :func:`~repro.service.
    loadgen.replay` drives either interchangeably, and answers are
    byte-identical to the in-process service by construction.

    Use as a context manager (or call :meth:`close`): the cluster owns
    worker processes and a scratch directory.
    """

    _TIMEOUT_S = 120.0

    def __init__(
        self,
        snapshot_path: str,
        *,
        workers: int = 2,
        k: int = 3,
        liveness_rounds: int | None = None,
        spill: int = 2,
        capacity: int = 32768,
        master: ShortcutService | None = None,
        workdir: str | None = None,
        owns_snapshot: bool = False,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if capacity < 1:
            raise ServiceError(f"capacity must be >= 1, got {capacity}")
        if k < 1:
            raise ServiceError(f"k must be >= 1, got {k}")
        if liveness_rounds is not None and liveness_rounds < 1:
            raise ServiceError(
                f"liveness_rounds must be >= 1, got {liveness_rounds}"
            )
        if spill < 0:
            raise ServiceError(f"spill must be >= 0, got {spill}")
        self._closed = False
        self._procs: list = []
        self._snapshot_path = os.fspath(snapshot_path)
        self._owns_snapshot = owns_snapshot
        self._workdir = workdir or tempfile.mkdtemp(prefix="repro-cluster-")
        self._workers = workers
        self._k = k
        self._max_k = max(16, k)
        self._liveness_rounds = liveness_rounds
        self._spill = spill
        self._capacity = capacity
        self._master = master
        self._epoch = 0
        # front-side observability handles, bound once (no-ops when off)
        self._obs_on = obs.metrics_on()
        self._sp_route = obs.span("cluster.route_many")
        self._sp_swap = obs.span("cluster.snapshot_swap")
        self._c_batches = obs.counter("cluster.batches")
        self._c_queries = obs.counter("cluster.queries")

        snapshot = load_cluster_snapshot(self._snapshot_path)
        self._num_shards = snapshot.num_shards
        self._front = snapshot.identity_directory()
        self._endpoint_cc = self._front.endpoint_country_codes()

        scratch = os.path.join(self._workdir, "scratch")
        os.makedirs(scratch, exist_ok=True)
        self._scratch_dir = scratch
        self._qsrc = np.memmap(
            os.path.join(scratch, "qsrc.dat"), np.int64, "w+", shape=(capacity,)
        )
        self._qdst = np.memmap(
            os.path.join(scratch, "qdst.dat"), np.int64, "w+", shape=(capacity,)
        )
        self._qshard = np.memmap(
            os.path.join(scratch, "qshard.dat"), np.int64, "w+", shape=(capacity,)
        )
        self._arel = np.memmap(
            os.path.join(scratch, "arel.dat"),
            np.int32, "w+", shape=(capacity, self._max_k),
        )
        self._ared = np.memmap(
            os.path.join(scratch, "ared.dat"),
            np.float64, "w+", shape=(capacity, self._max_k),
        )
        self._atier = np.memmap(
            os.path.join(scratch, "atier.dat"), np.int8, "w+", shape=(capacity,)
        )

        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else None)
        self._done_q = self._ctx.Queue()
        self._cmd_qs = [self._ctx.Queue() for _ in range(workers)]
        knobs = {"k": k, "liveness_rounds": liveness_rounds, "spill": spill}
        try:
            for widx in range(workers):
                # every worker maps every shard (segment arrays are shared
                # read-only mmaps, so this costs views, not copies); the
                # front balances whole shards across workers per batch
                shard_ids = tuple(range(self._num_shards))
                proc = self._ctx.Process(
                    target=_worker_main,
                    args=(
                        widx, self._snapshot_path, shard_ids, scratch,
                        capacity, self._max_k, knobs,
                        self._cmd_qs[widx], self._done_q,
                    ),
                    daemon=True,
                )
                proc.start()
                self._procs.append(proc)
            pending = set(range(workers))
            while pending:
                msg = self._get_done()
                if msg[0] == "ready":
                    pending.discard(msg[1])
                elif msg[0] == "error":
                    self._raise_worker_error(msg)
        except BaseException:
            self.close()
            raise
        self.reset_clocks()

    # --------------------------------------------------------- constructors

    @classmethod
    def from_service(
        cls,
        service: ShortcutService | RelayDirectory,
        *,
        workers: int = 2,
        num_shards: int = NUM_SHARDS,
        capacity: int = 32768,
    ) -> ClusterService:
        """Shard a live service into a worker fleet.

        Tuning knobs (``k``, ``liveness_rounds``, ``spill``) are
        inherited from the service; the service stays attached as the
        ingest master, so :meth:`ingest_round` folds rounds into it and
        republishes.
        """
        if isinstance(service, RelayDirectory):
            service = ShortcutService.from_directory(service)
        workdir = tempfile.mkdtemp(prefix="repro-cluster-")
        try:
            path = os.path.join(workdir, "snapshot-0.npz")
            save_cluster_snapshot(
                service.directory, path, num_shards=num_shards
            )
            return cls(
                path,
                workers=workers,
                k=service.default_k,
                liveness_rounds=service.liveness_rounds,
                spill=service.spill,
                capacity=capacity,
                master=service,
                workdir=workdir,
                owns_snapshot=True,
            )
        except BaseException:
            shutil.rmtree(workdir, ignore_errors=True)
            raise

    @classmethod
    def from_snapshot(
        cls,
        file: str | IO[bytes],
        *,
        workers: int = 2,
        num_shards: int = NUM_SHARDS,
        k: int = 3,
        liveness_rounds: int | None = None,
        spill: int = 2,
        capacity: int = 32768,
    ) -> ClusterService:
        """Serve a snapshot file: v3 directly, v2 via transparent migration.

        A v2 (single-process) snapshot is loaded, resharded into
        ``num_shards`` segments and republished as v3; a v3 snapshot is
        served as-is (``num_shards`` then comes from the snapshot).
        """
        if hasattr(file, "seek"):
            file.seek(0)
        with np.load(file) as data:
            version = int(data["meta"][0])
        if hasattr(file, "seek"):
            file.seek(0)
        if version == SNAPSHOT_VERSION:
            service = ShortcutService.from_snapshot(
                file, k=k, liveness_rounds=liveness_rounds, spill=spill
            )
            return cls.from_service(
                service,
                workers=workers,
                num_shards=num_shards,
                capacity=capacity,
            )
        if version != CLUSTER_SNAPSHOT_VERSION:
            raise ServiceError(f"unknown snapshot version {version}")
        if isinstance(file, (str, os.PathLike)):
            return cls(
                os.fspath(file),
                workers=workers,
                k=k,
                liveness_rounds=liveness_rounds,
                spill=spill,
                capacity=capacity,
            )
        # buffer: give the workers a real file to mmap
        workdir = tempfile.mkdtemp(prefix="repro-cluster-")
        try:
            path = os.path.join(workdir, "snapshot-0.npz")
            with open(path, "wb") as out:
                shutil.copyfileobj(file, out)
            return cls(
                path,
                workers=workers,
                k=k,
                liveness_rounds=liveness_rounds,
                spill=spill,
                capacity=capacity,
                workdir=workdir,
                owns_snapshot=True,
            )
        except BaseException:
            shutil.rmtree(workdir, ignore_errors=True)
            raise

    # -------------------------------------------------------------- queries

    @property
    def directory(self) -> RelayDirectory:
        """Identity-only directory view (endpoints, countries, health)."""
        return self._front

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def default_k(self) -> int:
        return self._k

    @property
    def liveness_rounds(self) -> int | None:
        return self._liveness_rounds

    @property
    def snapshot_path(self) -> str:
        """The snapshot the workers currently serve."""
        return self._snapshot_path

    def encode_endpoints(self, endpoint_ids) -> np.ndarray:
        """Directory codes for endpoint ids (-1 = never observed)."""
        return self._front.encode_endpoints(endpoint_ids)

    def route_many(
        self,
        src_codes: np.ndarray,
        dst_codes: np.ndarray,
        relay_type: RelayType = RelayType.COR,
        k: int | None = None,
    ) -> RouteBatch:
        """Relay choices for a whole query batch, served by the fleet.

        Validates once, partitions by shard, dispatches one coalesced
        command per owning worker, and reassembles answers in query
        order.  Byte-identical to the in-process ``route_many`` over the
        unsharded directory.
        """
        self._check_open()
        if k is None:
            k = self._k
        if k < 1:
            raise ServiceError(f"k must be >= 1, got {k}")
        if k > self._max_k:
            raise ServiceError(
                f"k={k} exceeds the cluster's answer-buffer width "
                f"{self._max_k}"
            )
        with self._sp_route:
            batch = self._route_many(src_codes, dst_codes, relay_type, k)
        if self._obs_on:
            self._c_batches.inc()
            self._c_queries.inc(int(batch.tier.shape[0]))
        return batch

    def _route_many(
        self,
        src_codes: np.ndarray,
        dst_codes: np.ndarray,
        relay_type: RelayType,
        k: int,
    ) -> RouteBatch:
        start = time.process_time()
        src, dst = validate_query_codes(
            src_codes, dst_codes, int(self._endpoint_cc.size)
        )
        self._front_cpu_s += time.process_time() - start
        n = src.shape[0]
        relay_ids = np.empty((n, k), np.int32)
        reduction_ms = np.empty((n, k), np.float64)
        tier = np.empty(n, np.int8)
        for lo in range(0, n, self._capacity):
            hi = min(lo + self._capacity, n)
            m = hi - lo
            start = time.process_time()
            shard = shard_of_queries(
                self._endpoint_cc, src[lo:hi], dst[lo:hi], self._num_shards
            )
            # queries ship unsorted (plain copies) plus each row's shard
            # code; every worker selects its own rows and scatters answers
            # back to original positions, so the per-row bookkeeping runs
            # in parallel instead of as a serial sort on the front
            self._qsrc[:m] = src[lo:hi]
            self._qdst[:m] = dst[lo:hi]
            self._qshard[:m] = shard
            counts = np.bincount(shard, minlength=self._num_shards)
            if self._obs_on:
                for s in np.flatnonzero(counts).tolist():
                    obs.inc(f"cluster.shard.{s}.queries", int(counts[s]))
            # greedy LPT: heaviest shards first onto the least-loaded
            # worker — real traffic is Zipf-skewed, so static s % W
            # assignment would leave one worker owning the hot shard
            shards_by_worker: dict[int, list[int]] = {}
            loads = [0] * self._workers
            occupied = sorted(
                np.flatnonzero(counts).tolist(),
                key=lambda s: (-int(counts[s]), s),
            )
            for s in occupied:
                widx = min(range(self._workers), key=loads.__getitem__)
                loads[widx] += int(counts[s])
                shards_by_worker.setdefault(widx, []).append(int(s))
            self._front_cpu_s += time.process_time() - start
            for widx, shards in shards_by_worker.items():
                self._cmd_qs[widx].put(("serve", m, shards, relay_type.value, k))
                self._dispatches += 1
            pending = set(shards_by_worker)
            while pending:
                msg = self._get_done()
                if msg[0] == "done":
                    self._busy[msg[1]] += msg[2]
                    pending.discard(msg[1])
                elif msg[0] == "error":
                    self._raise_worker_error(msg)
                else:  # pragma: no cover - defensive
                    raise ServiceError(f"unexpected worker reply {msg[0]!r}")
            start = time.process_time()
            relay_ids[lo:hi] = self._arel[:m, :k]
            reduction_ms[lo:hi] = self._ared[:m, :k]
            tier[lo:hi] = self._atier[:m]
            self._front_cpu_s += time.process_time() - start
            self._queries_served += m
        return RouteBatch(
            relay_ids=relay_ids, reduction_ms=reduction_ms, tier=tier
        )

    def route(
        self,
        src_id: str,
        dst_id: str,
        relay_type: RelayType = RelayType.COR,
        k: int | None = None,
    ) -> RouteAnswer:
        """One call-setup decision, by endpoint id (a one-query batch)."""
        codes = self.encode_endpoints((src_id, dst_id))
        batch = self.route_many(codes[:1], codes[1:], relay_type, k)
        valid = batch.relay_ids[0] >= 0
        return RouteAnswer(
            src_id=src_id,
            dst_id=dst_id,
            relay_type=relay_type,
            relay_ids=tuple(int(r) for r in batch.relay_ids[0][valid]),
            reduction_ms=tuple(float(g) for g in batch.reduction_ms[0][valid]),
            tier=TIER_NAMES[int(batch.tier[0])],
        )

    # --------------------------------------------------------------- ingest

    def ingest_round(self, source, round_id: int | None = None) -> dict[str, int]:
        """Fold a round into the master directory and swap with no downtime.

        The master ingests incrementally (byte-identical to a full
        recompile, as always), a fresh v3 snapshot is written next to
        the current one, and every worker remaps to it between serve
        commands; the previous snapshot is deleted only after all
        workers acknowledged the swap.
        """
        self._check_open()
        master = self._ensure_master()
        stats = master.ingest_round(source, round_id)
        self._publish(master.directory)
        return stats

    def _ensure_master(self) -> ShortcutService:
        if self._master is None:
            snapshot = load_cluster_snapshot(self._snapshot_path)
            self._master = ShortcutService.from_directory(
                snapshot.full_directory(),
                k=self._k,
                liveness_rounds=self._liveness_rounds,
                spill=self._spill,
            )
        return self._master

    def _publish(self, directory: RelayDirectory) -> None:
        with self._sp_swap:
            self._epoch += 1
            path = os.path.join(self._workdir, f"snapshot-{self._epoch}.npz")
            save_cluster_snapshot(directory, path, num_shards=self._num_shards)
            for cmd_q in self._cmd_qs:
                cmd_q.put(("swap", path))
            pending = set(range(self._workers))
            while pending:
                msg = self._get_done()
                if msg[0] == "swapped":
                    pending.discard(msg[1])
                elif msg[0] == "error":
                    self._raise_worker_error(msg)
            previous = self._snapshot_path
            self._snapshot_path = path
            if self._owns_snapshot:
                try:
                    os.unlink(previous)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
            self._owns_snapshot = True
            self._front = load_cluster_snapshot(path).identity_directory()
            self._endpoint_cc = self._front.endpoint_country_codes()
        obs.inc("cluster.snapshot_swaps")

    # ------------------------------------------------------------ telemetry

    def degradation_summary(self) -> dict[str, int] | None:
        """Aggregated worker degradation counters (None when health off)."""
        if self._liveness_rounds is None:
            return None
        self._check_open()
        for cmd_q in self._cmd_qs:
            cmd_q.put(("counters",))
        total = DegradationCounters()
        pending = set(range(self._workers))
        while pending:
            msg = self._get_done()
            if msg[0] == "counters":
                total.merge(msg[2])
                pending.discard(msg[1])
            elif msg[0] == "error":
                self._raise_worker_error(msg)
        return total.as_dict()

    def collect_obs(self) -> None:
        """Drain every worker's metrics/trace payload into the driver.

        Each worker records onto its own trace lane (``begin_worker``);
        this merges those lanes into the driver's recorders so one
        Chrome trace file shows the front and every worker as parallel
        timelines.  No-op when observability is disabled (workers then
        ship ``None`` payloads); call before :meth:`close`.
        """
        if not obs.active():
            return
        self._check_open()
        for cmd_q in self._cmd_qs:
            cmd_q.put(("obs",))
        pending = set(range(self._workers))
        while pending:
            msg = self._get_done()
            if msg[0] == "obs":
                if msg[2] is not None:
                    obs.merge_worker_payload(msg[2])
                pending.discard(msg[1])
            elif msg[0] == "error":
                self._raise_worker_error(msg)

    def reset_clocks(self) -> None:
        """Zero the scale-out accounting (start of a measured replay)."""
        self._front_cpu_s = 0.0
        self._busy = [0.0] * self._workers
        self._queries_served = 0
        self._dispatches = 0

    def scale_out_summary(self) -> dict[str, Any]:
        """CPU-clock scale-out accounting since :meth:`reset_clocks`.

        ``critical_path_s`` = front CPU + the busiest worker's CPU: the
        wall clock a one-core-per-process deployment would see, which is
        what ``aggregate_queries_per_s`` divides by.  See
        ``benchmarks/README.md`` for why this (and not wall clock) is
        the scale-out metric on shared-core CI hosts.
        """
        max_busy = max(self._busy) if self._busy else 0.0
        critical = self._front_cpu_s + max_busy
        return {
            "workers": self._workers,
            "num_shards": self._num_shards,
            "queries": int(self._queries_served),
            "dispatches": int(self._dispatches),
            "front_cpu_s": round(self._front_cpu_s, 6),
            "worker_busy_s": [round(b, 6) for b in self._busy],
            "max_worker_busy_s": round(max_busy, 6),
            "critical_path_s": round(critical, 6),
            "aggregate_queries_per_s": (
                int(self._queries_served / critical)
                if critical > 0 and self._queries_served
                else None
            ),
        }

    def stats(self) -> dict[str, Any]:
        """Cluster shape summary (front-side; no worker round-trip)."""
        return {
            "workers": self._workers,
            "num_shards": self._num_shards,
            "capacity": self._capacity,
            "default_k": self._k,
            "liveness_rounds": self._liveness_rounds,
            "spill": self._spill,
            "endpoints": int(self._endpoint_cc.size),
            "countries": len(self._front.countries()),
            "retained_rounds": self._front.retained_rounds(),
            "snapshot_path": self._snapshot_path,
        }

    # ------------------------------------------------------------- lifecycle

    def _get_done(self):
        try:
            return self._done_q.get(timeout=self._TIMEOUT_S)
        except Empty:
            raise ServiceError(
                f"cluster worker timed out after {self._TIMEOUT_S}s"
            ) from None

    def _raise_worker_error(self, msg) -> None:
        raise ServiceError(f"cluster worker {msg[1]} failed:\n{msg[2]}")

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("cluster service is closed")

    def close(self) -> None:
        """Stop the workers and remove the scratch directory (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for cmd_q in getattr(self, "_cmd_qs", []):
            try:
                cmd_q.put(("stop",))
            except Exception:  # pragma: no cover - teardown best-effort
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)
        for attr in ("_qsrc", "_qdst", "_qshard", "_arel", "_ared", "_atier"):
            if hasattr(self, attr):
                setattr(self, attr, None)
        if getattr(self, "_workdir", None):
            shutil.rmtree(self._workdir, ignore_errors=True)

    def __enter__(self) -> ClusterService:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


# ------------------------------------------------------------- cross-world


def cross_world_service(
    results: list[CampaignResult],
    *,
    max_rounds: int | None = None,
    k: int = 3,
    liveness_rounds: int | None = None,
    spill: int = 2,
) -> tuple[ShortcutService, RelayRegistry, dict[str, int]]:
    """Compile one service over several campaigns' unified history.

    Relay identities unify by node id across the worlds (see
    :func:`repro.core.results.unify_relay_identities`), the remapped
    tables pool into one cross-world :class:`ObservationTable` (string
    pools union-re-coded by ``concat``), and the pooled table compiles
    round-by-round — worlds share round ids, so round ``r`` of every
    world merges into one directory round.

    Returns ``(service, unified_registry, unify_info)``.
    """
    if not results:
        raise ServiceError("cross_world_service needs at least one campaign")
    remapped, registry, info = unify_relay_identities(
        [result.table for result in results],
        [result.registry for result in results],
    )
    pooled = ObservationTable.concat(remapped)
    service = ShortcutService.from_table(
        pooled,
        max_rounds,
        k=k,
        liveness_rounds=liveness_rounds,
        spill=spill,
    )
    return service, registry, info
