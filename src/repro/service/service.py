"""The shortcut service: batched online relay selection.

:class:`ShortcutService` is the query front-end over a
:class:`~repro.service.directory.RelayDirectory` — what a Skype/Hola-style
overlay (the paper's motivating application) would run next to its call
setup path.  The serving contract:

* :meth:`route_many` answers a whole query batch (parallel src/dst
  endpoint-code arrays) in a handful of NumPy passes;
* :meth:`route` is the scalar convenience for one call setup, implemented
  *on top of* the batched path so the two can never diverge (asserted in
  the tests);
* :meth:`ingest_round` folds a freshly measured round in incrementally;
* :meth:`save` / :meth:`from_snapshot` snapshot the service for operator
  restarts.

Construction goes through the classmethods — :meth:`from_campaign`,
:meth:`from_table`, :meth:`from_snapshot`, :meth:`from_directory`,
:meth:`empty` — all sharing the same keyword-only tuning knobs
(``k``, ``max_rounds``, ``liveness_rounds``, ``spill``).  Calling the
class directly is a deprecated shim kept byte-identical to the old
behavior (asserted in ``tests/test_service_api.py``).

Answers are deterministic: the same directory state returns the same
relays for the same queries, batched or scalar, before or after a
snapshot round-trip.

Churn awareness is opt-in via ``liveness_rounds``: the service then
treats relays unseen in the newest ``liveness_rounds`` ingested rounds as
dead, over-fetches each lane by ``spill`` candidates, demotes dead
candidates to the end of the answer (bounded retry: the next-ranked live
relay takes their place) and falls back to the direct tier when a lane
has no live candidate left.  Degradation is observable through
:class:`DegradationCounters` (stale top answers, candidates evicted,
fallback-tier hits, unanswerable queries).  With ``liveness_rounds=None``
(the default) the health path is never entered and answers are
byte-identical to a health-unaware service.
"""

from __future__ import annotations

import warnings
from typing import IO, Any

import numpy as np

from repro import obs
from repro.core.results import CampaignResult, RoundResult
from repro.core.table import ObservationTable
from repro.core.types import RelayType
from repro.errors import ServiceError
from repro.service.directory import (
    TIER_COUNTRY,
    TIER_DIRECT,
    TIER_NAMES,
    RelayDirectory,
)
from repro.service.results import (
    DegradationCounters,
    RouteAnswer,
    RouteBatch,
    RouteDecision,
)

__all__ = [
    "DegradationCounters",
    "RouteAnswer",
    "RouteBatch",
    "RouteDecision",
    "ShortcutService",
]


class ShortcutService:
    """Online relay selection over a compiled :class:`RelayDirectory`.

    Built via the ``from_*`` classmethods; every constructor shares the
    keyword-only tuning knobs:

    * ``k`` — default relay candidates per query when ``route`` /
      ``route_many`` are called without an explicit ``k``;
    * ``max_rounds`` — the directory's retention window (staleness TTL);
    * ``liveness_rounds`` — enables churn awareness (see the module
      docstring);
    * ``spill`` — how many extra candidates each lookup over-fetches so
      dead relays can be replaced without a second pass.
    """

    def __init__(
        self,
        directory: RelayDirectory | None = None,
        max_rounds: int | None = None,
        *,
        liveness_rounds: int | None = None,
        spill: int = 2,
    ) -> None:
        """Deprecated: use :meth:`from_directory` / :meth:`empty`.

        Kept as a thin shim over the redesigned constructors; behavior is
        byte-identical to the pre-redesign class (asserted in
        ``tests/test_service_api.py``).
        """
        warnings.warn(
            "calling ShortcutService(...) directly is deprecated; use "
            "ShortcutService.from_campaign / from_table / from_snapshot / "
            "from_directory / empty",
            DeprecationWarning,
            stacklevel=2,
        )
        if directory is not None and max_rounds is not None:
            raise ServiceError("pass either a directory or max_rounds, not both")
        self._init(
            directory or RelayDirectory(max_rounds=max_rounds),
            k=3,
            liveness_rounds=liveness_rounds,
            spill=spill,
        )

    def _init(
        self,
        directory: RelayDirectory,
        *,
        k: int,
        liveness_rounds: int | None,
        spill: int,
    ) -> None:
        """The real initializer every constructor funnels through."""
        if k < 1:
            raise ServiceError(f"k must be >= 1, got {k}")
        if liveness_rounds is not None and liveness_rounds < 1:
            raise ServiceError(
                f"liveness_rounds must be >= 1, got {liveness_rounds}"
            )
        if spill < 0:
            raise ServiceError(f"spill must be >= 0, got {spill}")
        self._directory = directory
        self._default_k = k
        self._liveness_rounds = liveness_rounds
        self._spill = spill
        self.counters = DegradationCounters()
        self._dead: np.ndarray | None = None
        # observability handles are bound once here so the hot path pays a
        # single attribute load (and nothing at all when obs is disabled)
        self._obs_on = obs.metrics_on()
        self._sp_route = obs.span("service.route_many")
        self._c_queries = obs.counter("service.queries")
        self._c_batches = obs.counter("service.batches")
        self._c_tiers = tuple(
            obs.counter(f"service.answers.{name}") for name in TIER_NAMES
        )
        self._refresh_health()

    def _refresh_health(self) -> None:
        if self._liveness_rounds is not None:
            self._dead = self._directory.stale_relay_mask(self._liveness_rounds)

    @property
    def directory(self) -> RelayDirectory:
        """The underlying compiled directory."""
        return self._directory

    # ------------------------------------------------------------ construction

    @classmethod
    def from_directory(
        cls,
        directory: RelayDirectory,
        *,
        k: int = 3,
        liveness_rounds: int | None = None,
        spill: int = 2,
    ) -> ShortcutService:
        """Wrap an already-compiled directory (the canonical constructor)."""
        service = object.__new__(cls)
        service._init(
            directory, k=k, liveness_rounds=liveness_rounds, spill=spill
        )
        return service

    @classmethod
    def empty(
        cls,
        *,
        max_rounds: int | None = None,
        k: int = 3,
        liveness_rounds: int | None = None,
        spill: int = 2,
    ) -> ShortcutService:
        """A service with no history yet; feed it via :meth:`ingest_round`."""
        return cls.from_directory(
            RelayDirectory(max_rounds=max_rounds),
            k=k,
            liveness_rounds=liveness_rounds,
            spill=spill,
        )

    @classmethod
    def from_campaign(
        cls,
        result: CampaignResult,
        *,
        rounds=None,
        max_rounds: int | None = None,
        k: int = 3,
        liveness_rounds: int | None = None,
        spill: int = 2,
    ) -> ShortcutService:
        """Compile a service from a campaign result.

        ``rounds`` restricts ingestion to a subset of the result's rounds
        (e.g. everything but the round being predicted).
        """
        return cls.from_directory(
            RelayDirectory.from_result(result, max_rounds, rounds),
            k=k,
            liveness_rounds=liveness_rounds,
            spill=spill,
        )

    @classmethod
    def from_table(
        cls,
        table: ObservationTable,
        max_rounds: int | None = None,
        *,
        k: int = 3,
        liveness_rounds: int | None = None,
        spill: int = 2,
    ) -> ShortcutService:
        """Compile a service from a concatenated campaign/sweep table."""
        return cls.from_directory(
            RelayDirectory.from_table(table, max_rounds),
            k=k,
            liveness_rounds=liveness_rounds,
            spill=spill,
        )

    @classmethod
    def from_snapshot(
        cls,
        file: str | IO[bytes],
        *,
        k: int = 3,
        liveness_rounds: int | None = None,
        spill: int = 2,
    ) -> ShortcutService:
        """Restore a service from a :meth:`save` snapshot.

        Health telemetry (relay last-seen rounds) restores with the
        snapshot; the counters are runtime state and start at zero.
        """
        return cls.from_directory(
            RelayDirectory.load(file),
            k=k,
            liveness_rounds=liveness_rounds,
            spill=spill,
        )

    @classmethod
    def from_result(
        cls,
        result: CampaignResult,
        max_rounds: int | None = None,
        rounds=None,
        *,
        liveness_rounds: int | None = None,
        spill: int = 2,
    ) -> ShortcutService:
        """Legacy spelling of :meth:`from_campaign` (positional knobs)."""
        return cls.from_campaign(
            result,
            rounds=rounds,
            max_rounds=max_rounds,
            liveness_rounds=liveness_rounds,
            spill=spill,
        )

    @classmethod
    def load(
        cls,
        file: str | IO[bytes],
        *,
        liveness_rounds: int | None = None,
        spill: int = 2,
    ) -> ShortcutService:
        """Legacy spelling of :meth:`from_snapshot`."""
        return cls.from_snapshot(
            file, liveness_rounds=liveness_rounds, spill=spill
        )

    def ingest_round(
        self,
        source: RoundResult | ObservationTable,
        round_id: int | None = None,
    ) -> dict[str, int]:
        """Fold one new measurement round in (see
        :meth:`RelayDirectory.ingest_round`); refreshes relay health."""
        stats = self._directory.ingest_round(source, round_id)
        self._refresh_health()
        return stats

    # ---------------------------------------------------------------- queries

    def encode_endpoints(self, endpoint_ids) -> np.ndarray:
        """Directory codes for endpoint ids (-1 = never observed)."""
        return self._directory.encode_endpoints(endpoint_ids)

    def route_many(
        self,
        src_codes: np.ndarray,
        dst_codes: np.ndarray,
        relay_type: RelayType = RelayType.COR,
        k: int | None = None,
    ) -> RouteBatch:
        """Relay choices for a whole query batch.

        ``src_codes`` / ``dst_codes`` are parallel directory endpoint-code
        arrays (:meth:`encode_endpoints`).  Each query resolves through the
        fallback tiers — exact endpoint-pair history, then country-pair
        history, then the direct path.  ``k`` defaults to the service's
        construction-time knob.  With ``liveness_rounds`` set, dead relays
        are demoted out of the answers first (see the module docstring);
        counters accumulate on :attr:`counters`.
        """
        with self._sp_route:
            batch = self._route_many(src_codes, dst_codes, relay_type, k)
        if self._obs_on:
            self._c_batches.inc()
            self._c_queries.inc(int(batch.tier.shape[0]))
            per_tier = np.bincount(batch.tier, minlength=len(TIER_NAMES))
            for handle, n in zip(self._c_tiers, per_tier):
                handle.inc(int(n))
        return batch

    def _route_many(
        self,
        src_codes: np.ndarray,
        dst_codes: np.ndarray,
        relay_type: RelayType,
        k: int | None,
    ) -> RouteBatch:
        if k is None:
            k = self._default_k
        if self._liveness_rounds is None:
            relays, reductions, tier = self._directory.lookup_many(
                src_codes, dst_codes, relay_type, k
            )
            return RouteBatch(relay_ids=relays, reduction_ms=reductions, tier=tier)
        if k < 1:
            raise ServiceError(f"k must be >= 1, got {k}")
        # over-fetch so dead candidates can spill to the next-ranked live
        # relay without a second directory pass
        relays, reductions, tier = self._directory.lookup_many(
            src_codes, dst_codes, relay_type, k + self._spill
        )
        dead = self._dead
        if dead is not None and dead.size:
            is_dead = (relays >= 0) & dead[np.maximum(relays, 0)]
            if is_dead.any():
                # stable argsort floats live candidates (and their pads)
                # left in rank order and pushes dead entries right
                order = np.argsort(is_dead, axis=1, kind="stable")
                relays = np.take_along_axis(relays, order, axis=1)
                reductions = np.take_along_axis(reductions, order, axis=1)
                dead_sorted = np.take_along_axis(is_dead, order, axis=1)
                relays[dead_sorted] = -1
                reductions[dead_sorted] = np.nan
                counters = self.counters
                counters.candidates_evicted += int(is_dead.sum())
                counters.stale_top_answers += int(
                    np.count_nonzero(is_dead[:, 0] & (tier != TIER_DIRECT))
                )
                # a lane whose every candidate died has no answer left:
                # structurally fall back to the direct verdict
                unanswerable = (tier != TIER_DIRECT) & (relays[:, 0] < 0)
                counters.unanswerable += int(np.count_nonzero(unanswerable))
                tier = np.where(unanswerable, TIER_DIRECT, tier).astype(np.int8)
        relays = relays[:, :k]
        reductions = reductions[:, :k]
        self.counters.queries += int(tier.shape[0])
        self.counters.fallback_country += int(
            np.count_nonzero(tier == TIER_COUNTRY)
        )
        self.counters.direct += int(np.count_nonzero(tier == TIER_DIRECT))
        return RouteBatch(relay_ids=relays, reduction_ms=reductions, tier=tier)

    def route(
        self,
        src_id: str,
        dst_id: str,
        relay_type: RelayType = RelayType.COR,
        k: int | None = None,
    ) -> RouteAnswer:
        """One call-setup decision, by endpoint id.

        A thin shell over :meth:`route_many` (a one-query batch), so scalar
        and batched answers are identical by construction.
        """
        codes = self.encode_endpoints((src_id, dst_id))
        batch = self.route_many(codes[:1], codes[1:], relay_type, k)
        valid = batch.relay_ids[0] >= 0
        return RouteAnswer(
            src_id=src_id,
            dst_id=dst_id,
            relay_type=relay_type,
            relay_ids=tuple(int(r) for r in batch.relay_ids[0][valid]),
            reduction_ms=tuple(float(g) for g in batch.reduction_ms[0][valid]),
            tier=TIER_NAMES[int(batch.tier[0])],
        )

    # -------------------------------------------------------------- snapshots

    def save(self, file: str | IO[bytes]) -> None:
        """Snapshot the service state to ``.npz`` (operator restarts)."""
        self._directory.save(file)

    # ------------------------------------------------------------------ stats

    @property
    def default_k(self) -> int:
        """Relay candidates returned when a query names no explicit ``k``."""
        return self._default_k

    @property
    def liveness_rounds(self) -> int | None:
        """The health window (None = churn awareness disabled)."""
        return self._liveness_rounds

    @property
    def spill(self) -> int:
        """Extra candidates over-fetched per lookup for the health path."""
        return self._spill

    def dead_relay_count(self) -> int:
        """Relays currently presumed dead (0 when health is disabled)."""
        return 0 if self._dead is None else int(self._dead.sum())

    def degradation_summary(self) -> dict[str, int] | None:
        """Counter snapshot when churn awareness is on (else None)."""
        if self._liveness_rounds is None:
            return None
        return self.counters.as_dict()

    def stats(self) -> dict[str, Any]:
        """The directory's shape summary, plus degradation telemetry when
        churn awareness is enabled."""
        stats = self._directory.stats()
        if self._liveness_rounds is not None:
            stats["liveness_rounds"] = self._liveness_rounds
            stats["spill"] = self._spill
            stats["dead_relays"] = self.dead_relay_count()
            stats["degradation"] = self.counters.as_dict()
        return stats
