"""The shortcut service: batched online relay selection.

:class:`ShortcutService` is the query front-end over a
:class:`~repro.service.directory.RelayDirectory` — what a Skype/Hola-style
overlay (the paper's motivating application) would run next to its call
setup path.  The serving contract:

* :meth:`route_many` answers a whole query batch (parallel src/dst
  endpoint-code arrays) in a handful of NumPy passes;
* :meth:`route` is the scalar convenience for one call setup, implemented
  *on top of* the batched path so the two can never diverge (asserted in
  the tests);
* :meth:`ingest_round` folds a freshly measured round in incrementally;
* :meth:`save` / :meth:`load` snapshot the service for operator restarts.

Answers are deterministic: the same directory state returns the same
relays for the same queries, batched or scalar, before or after a
snapshot round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, Any

import numpy as np

from repro.core.results import CampaignResult, RoundResult
from repro.core.table import ObservationTable
from repro.core.types import RelayType
from repro.errors import ServiceError
from repro.service.directory import TIER_NAMES, RelayDirectory


@dataclass(frozen=True, slots=True)
class RouteBatch:
    """Answers for one :meth:`ShortcutService.route_many` call.

    Attributes:
        relay_ids: ``(n, k) int32`` ranked relay registry indices, -1
            padded past a lane's candidate count.
        reduction_ms: ``(n, k) float64`` expected RTT reduction per
            candidate (mean observed improvement), NaN padded.
        tier: ``(n,) int8`` tier each query resolved through (index into
            :data:`~repro.service.directory.TIER_NAMES`).
    """

    relay_ids: np.ndarray
    reduction_ms: np.ndarray
    tier: np.ndarray

    def __len__(self) -> int:
        return self.tier.shape[0]

    @property
    def best_relay(self) -> np.ndarray:
        """``(n,) int32`` top-ranked relay per query (-1 = direct path)."""
        return self.relay_ids[:, 0]

    def tier_counts(self) -> dict[str, int]:
        """Queries answered per tier, keyed by tier name."""
        return {
            name: int(np.count_nonzero(self.tier == code))
            for code, name in enumerate(TIER_NAMES)
        }

    def relay_answer_fraction(self) -> float:
        """Fraction of queries that got a relay (resolved above direct)."""
        if len(self) == 0:
            return 0.0
        return 1.0 - int(np.count_nonzero(self.relay_ids[:, 0] < 0)) / len(self)


@dataclass(frozen=True, slots=True)
class RouteDecision:
    """One scalar routing decision (see :meth:`ShortcutService.route`).

    Attributes:
        src_id / dst_id: The queried endpoint ids.
        relay_type: Relay lane the query ran against.
        relay_ids: Ranked candidate relays (may be empty: keep direct).
        reduction_ms: Expected RTT reduction per candidate, aligned with
            ``relay_ids``.
        tier: ``"pair"``, ``"country"`` or ``"direct"``.
    """

    src_id: str
    dst_id: str
    relay_type: RelayType
    relay_ids: tuple[int, ...]
    reduction_ms: tuple[float, ...]
    tier: str

    @property
    def relay_id(self) -> int | None:
        """The top-ranked relay, or None for the direct path."""
        return self.relay_ids[0] if self.relay_ids else None

    @property
    def expected_reduction_ms(self) -> float | None:
        """Expected gain of the top-ranked relay, or None for direct."""
        return self.reduction_ms[0] if self.reduction_ms else None


class ShortcutService:
    """Online relay selection over a compiled :class:`RelayDirectory`."""

    def __init__(self, directory: RelayDirectory | None = None,
                 max_rounds: int | None = None) -> None:
        if directory is not None and max_rounds is not None:
            raise ServiceError("pass either a directory or max_rounds, not both")
        self._directory = directory or RelayDirectory(max_rounds=max_rounds)

    @property
    def directory(self) -> RelayDirectory:
        """The underlying compiled directory."""
        return self._directory

    # ------------------------------------------------------------ construction

    @classmethod
    def from_result(
        cls,
        result: CampaignResult,
        max_rounds: int | None = None,
        rounds=None,
    ) -> ShortcutService:
        """Compile a service from a campaign result (optionally a subset of
        its rounds, e.g. everything but the round being predicted)."""
        return cls(RelayDirectory.from_result(result, max_rounds, rounds))

    @classmethod
    def from_table(
        cls, table: ObservationTable, max_rounds: int | None = None
    ) -> ShortcutService:
        """Compile a service from a concatenated campaign/sweep table."""
        return cls(RelayDirectory.from_table(table, max_rounds))

    def ingest_round(
        self,
        source: RoundResult | ObservationTable,
        round_id: int | None = None,
    ) -> dict[str, int]:
        """Fold one new measurement round in (see
        :meth:`RelayDirectory.ingest_round`)."""
        return self._directory.ingest_round(source, round_id)

    # ---------------------------------------------------------------- queries

    def encode_endpoints(self, endpoint_ids) -> np.ndarray:
        """Directory codes for endpoint ids (-1 = never observed)."""
        return self._directory.encode_endpoints(endpoint_ids)

    def route_many(
        self,
        src_codes: np.ndarray,
        dst_codes: np.ndarray,
        relay_type: RelayType = RelayType.COR,
        k: int = 3,
    ) -> RouteBatch:
        """Relay choices for a whole query batch.

        ``src_codes`` / ``dst_codes`` are parallel directory endpoint-code
        arrays (:meth:`encode_endpoints`).  Each query resolves through the
        fallback tiers — exact endpoint-pair history, then country-pair
        history, then the direct path.
        """
        relays, reductions, tier = self._directory.lookup_many(
            src_codes, dst_codes, relay_type, k
        )
        return RouteBatch(relay_ids=relays, reduction_ms=reductions, tier=tier)

    def route(
        self,
        src_id: str,
        dst_id: str,
        relay_type: RelayType = RelayType.COR,
        k: int = 3,
    ) -> RouteDecision:
        """One call-setup decision, by endpoint id.

        A thin shell over :meth:`route_many` (a one-query batch), so scalar
        and batched answers are identical by construction.
        """
        codes = self.encode_endpoints((src_id, dst_id))
        batch = self.route_many(codes[:1], codes[1:], relay_type, k)
        valid = batch.relay_ids[0] >= 0
        return RouteDecision(
            src_id=src_id,
            dst_id=dst_id,
            relay_type=relay_type,
            relay_ids=tuple(int(r) for r in batch.relay_ids[0][valid]),
            reduction_ms=tuple(float(g) for g in batch.reduction_ms[0][valid]),
            tier=TIER_NAMES[int(batch.tier[0])],
        )

    # -------------------------------------------------------------- snapshots

    def save(self, file: str | IO[bytes]) -> None:
        """Snapshot the service state to ``.npz`` (operator restarts)."""
        self._directory.save(file)

    @classmethod
    def load(cls, file: str | IO[bytes]) -> ShortcutService:
        """Restore a service from a :meth:`save` snapshot."""
        return cls(RelayDirectory.load(file))

    # ------------------------------------------------------------------ stats

    def stats(self) -> dict[str, Any]:
        """The directory's shape summary."""
        return self._directory.stats()
