"""The shortcut service: batched online relay selection.

:class:`ShortcutService` is the query front-end over a
:class:`~repro.service.directory.RelayDirectory` — what a Skype/Hola-style
overlay (the paper's motivating application) would run next to its call
setup path.  The serving contract:

* :meth:`route_many` answers a whole query batch (parallel src/dst
  endpoint-code arrays) in a handful of NumPy passes;
* :meth:`route` is the scalar convenience for one call setup, implemented
  *on top of* the batched path so the two can never diverge (asserted in
  the tests);
* :meth:`ingest_round` folds a freshly measured round in incrementally;
* :meth:`save` / :meth:`load` snapshot the service for operator restarts.

Answers are deterministic: the same directory state returns the same
relays for the same queries, batched or scalar, before or after a
snapshot round-trip.

Churn awareness is opt-in via ``liveness_rounds``: the service then
treats relays unseen in the newest ``liveness_rounds`` ingested rounds as
dead, over-fetches each lane by ``spill`` candidates, demotes dead
candidates to the end of the answer (bounded retry: the next-ranked live
relay takes their place) and falls back to the direct tier when a lane
has no live candidate left.  Degradation is observable through
:class:`DegradationCounters` (stale top answers, candidates evicted,
fallback-tier hits, unanswerable queries).  With ``liveness_rounds=None``
(the default) the health path is never entered and answers are
byte-identical to a health-unaware service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, Any

import numpy as np

from repro.core.results import CampaignResult, RoundResult
from repro.core.table import ObservationTable
from repro.core.types import RelayType
from repro.errors import ServiceError
from repro.service.directory import (
    TIER_COUNTRY,
    TIER_DIRECT,
    TIER_NAMES,
    RelayDirectory,
)


@dataclass(frozen=True, slots=True)
class RouteBatch:
    """Answers for one :meth:`ShortcutService.route_many` call.

    Attributes:
        relay_ids: ``(n, k) int32`` ranked relay registry indices, -1
            padded past a lane's candidate count.
        reduction_ms: ``(n, k) float64`` expected RTT reduction per
            candidate (mean observed improvement), NaN padded.
        tier: ``(n,) int8`` tier each query resolved through (index into
            :data:`~repro.service.directory.TIER_NAMES`).
    """

    relay_ids: np.ndarray
    reduction_ms: np.ndarray
    tier: np.ndarray

    def __len__(self) -> int:
        return self.tier.shape[0]

    @property
    def best_relay(self) -> np.ndarray:
        """``(n,) int32`` top-ranked relay per query (-1 = direct path)."""
        return self.relay_ids[:, 0]

    def tier_counts(self) -> dict[str, int]:
        """Queries answered per tier, keyed by tier name."""
        return {
            name: int(np.count_nonzero(self.tier == code))
            for code, name in enumerate(TIER_NAMES)
        }

    def relay_answer_fraction(self) -> float:
        """Fraction of queries that got a relay (resolved above direct)."""
        if len(self) == 0:
            return 0.0
        return 1.0 - int(np.count_nonzero(self.relay_ids[:, 0] < 0)) / len(self)


@dataclass(frozen=True, slots=True)
class RouteDecision:
    """One scalar routing decision (see :meth:`ShortcutService.route`).

    Attributes:
        src_id / dst_id: The queried endpoint ids.
        relay_type: Relay lane the query ran against.
        relay_ids: Ranked candidate relays (may be empty: keep direct).
        reduction_ms: Expected RTT reduction per candidate, aligned with
            ``relay_ids``.
        tier: ``"pair"``, ``"country"`` or ``"direct"``.
    """

    src_id: str
    dst_id: str
    relay_type: RelayType
    relay_ids: tuple[int, ...]
    reduction_ms: tuple[float, ...]
    tier: str

    @property
    def relay_id(self) -> int | None:
        """The top-ranked relay, or None for the direct path."""
        return self.relay_ids[0] if self.relay_ids else None

    @property
    def expected_reduction_ms(self) -> float | None:
        """Expected gain of the top-ranked relay, or None for direct."""
        return self.reduction_ms[0] if self.reduction_ms else None


@dataclass(slots=True)
class DegradationCounters:
    """Cumulative graceful-degradation telemetry of one service.

    Attributes:
        queries: Queries routed since construction (health path only).
        stale_top_answers: Queries whose top-ranked candidate was dead
            and was replaced by the next-ranked live relay (the spill).
        candidates_evicted: Dead candidate entries demoted out of
            answers, summed over all ranks.
        unanswerable: Queries whose lane had history but no live
            candidate left — structurally downgraded to the direct tier.
        fallback_country: Queries answered from the country tier.
        direct: Queries that left with the direct verdict (no history,
            same endpoint, or unanswerable after health filtering).
    """

    queries: int = 0
    stale_top_answers: int = 0
    candidates_evicted: int = 0
    unanswerable: int = 0
    fallback_country: int = 0
    direct: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "queries": self.queries,
            "stale_top_answers": self.stale_top_answers,
            "candidates_evicted": self.candidates_evicted,
            "unanswerable": self.unanswerable,
            "fallback_country": self.fallback_country,
            "direct": self.direct,
        }


class ShortcutService:
    """Online relay selection over a compiled :class:`RelayDirectory`.

    ``liveness_rounds`` enables churn awareness (see the module
    docstring); ``spill`` bounds how many extra candidates each lookup
    over-fetches so dead relays can be replaced without a second pass.
    """

    def __init__(
        self,
        directory: RelayDirectory | None = None,
        max_rounds: int | None = None,
        *,
        liveness_rounds: int | None = None,
        spill: int = 2,
    ) -> None:
        if directory is not None and max_rounds is not None:
            raise ServiceError("pass either a directory or max_rounds, not both")
        if liveness_rounds is not None and liveness_rounds < 1:
            raise ServiceError(
                f"liveness_rounds must be >= 1, got {liveness_rounds}"
            )
        if spill < 0:
            raise ServiceError(f"spill must be >= 0, got {spill}")
        self._directory = directory or RelayDirectory(max_rounds=max_rounds)
        self._liveness_rounds = liveness_rounds
        self._spill = spill
        self.counters = DegradationCounters()
        self._dead: np.ndarray | None = None
        self._refresh_health()

    def _refresh_health(self) -> None:
        if self._liveness_rounds is not None:
            self._dead = self._directory.stale_relay_mask(self._liveness_rounds)

    @property
    def directory(self) -> RelayDirectory:
        """The underlying compiled directory."""
        return self._directory

    # ------------------------------------------------------------ construction

    @classmethod
    def from_result(
        cls,
        result: CampaignResult,
        max_rounds: int | None = None,
        rounds=None,
        *,
        liveness_rounds: int | None = None,
        spill: int = 2,
    ) -> ShortcutService:
        """Compile a service from a campaign result (optionally a subset of
        its rounds, e.g. everything but the round being predicted)."""
        return cls(
            RelayDirectory.from_result(result, max_rounds, rounds),
            liveness_rounds=liveness_rounds,
            spill=spill,
        )

    @classmethod
    def from_table(
        cls,
        table: ObservationTable,
        max_rounds: int | None = None,
        *,
        liveness_rounds: int | None = None,
        spill: int = 2,
    ) -> ShortcutService:
        """Compile a service from a concatenated campaign/sweep table."""
        return cls(
            RelayDirectory.from_table(table, max_rounds),
            liveness_rounds=liveness_rounds,
            spill=spill,
        )

    def ingest_round(
        self,
        source: RoundResult | ObservationTable,
        round_id: int | None = None,
    ) -> dict[str, int]:
        """Fold one new measurement round in (see
        :meth:`RelayDirectory.ingest_round`); refreshes relay health."""
        stats = self._directory.ingest_round(source, round_id)
        self._refresh_health()
        return stats

    # ---------------------------------------------------------------- queries

    def encode_endpoints(self, endpoint_ids) -> np.ndarray:
        """Directory codes for endpoint ids (-1 = never observed)."""
        return self._directory.encode_endpoints(endpoint_ids)

    def route_many(
        self,
        src_codes: np.ndarray,
        dst_codes: np.ndarray,
        relay_type: RelayType = RelayType.COR,
        k: int = 3,
    ) -> RouteBatch:
        """Relay choices for a whole query batch.

        ``src_codes`` / ``dst_codes`` are parallel directory endpoint-code
        arrays (:meth:`encode_endpoints`).  Each query resolves through the
        fallback tiers — exact endpoint-pair history, then country-pair
        history, then the direct path.  With ``liveness_rounds`` set, dead
        relays are demoted out of the answers first (see the module
        docstring); counters accumulate on :attr:`counters`.
        """
        if self._liveness_rounds is None:
            relays, reductions, tier = self._directory.lookup_many(
                src_codes, dst_codes, relay_type, k
            )
            return RouteBatch(relay_ids=relays, reduction_ms=reductions, tier=tier)
        if k < 1:
            raise ServiceError(f"k must be >= 1, got {k}")
        # over-fetch so dead candidates can spill to the next-ranked live
        # relay without a second directory pass
        relays, reductions, tier = self._directory.lookup_many(
            src_codes, dst_codes, relay_type, k + self._spill
        )
        dead = self._dead
        if dead is not None and dead.size:
            is_dead = (relays >= 0) & dead[np.maximum(relays, 0)]
            if is_dead.any():
                # stable argsort floats live candidates (and their pads)
                # left in rank order and pushes dead entries right
                order = np.argsort(is_dead, axis=1, kind="stable")
                relays = np.take_along_axis(relays, order, axis=1)
                reductions = np.take_along_axis(reductions, order, axis=1)
                dead_sorted = np.take_along_axis(is_dead, order, axis=1)
                relays[dead_sorted] = -1
                reductions[dead_sorted] = np.nan
                counters = self.counters
                counters.candidates_evicted += int(is_dead.sum())
                counters.stale_top_answers += int(
                    np.count_nonzero(is_dead[:, 0] & (tier != TIER_DIRECT))
                )
                # a lane whose every candidate died has no answer left:
                # structurally fall back to the direct verdict
                unanswerable = (tier != TIER_DIRECT) & (relays[:, 0] < 0)
                counters.unanswerable += int(np.count_nonzero(unanswerable))
                tier = np.where(unanswerable, TIER_DIRECT, tier).astype(np.int8)
        relays = relays[:, :k]
        reductions = reductions[:, :k]
        self.counters.queries += int(tier.shape[0])
        self.counters.fallback_country += int(
            np.count_nonzero(tier == TIER_COUNTRY)
        )
        self.counters.direct += int(np.count_nonzero(tier == TIER_DIRECT))
        return RouteBatch(relay_ids=relays, reduction_ms=reductions, tier=tier)

    def route(
        self,
        src_id: str,
        dst_id: str,
        relay_type: RelayType = RelayType.COR,
        k: int = 3,
    ) -> RouteDecision:
        """One call-setup decision, by endpoint id.

        A thin shell over :meth:`route_many` (a one-query batch), so scalar
        and batched answers are identical by construction.
        """
        codes = self.encode_endpoints((src_id, dst_id))
        batch = self.route_many(codes[:1], codes[1:], relay_type, k)
        valid = batch.relay_ids[0] >= 0
        return RouteDecision(
            src_id=src_id,
            dst_id=dst_id,
            relay_type=relay_type,
            relay_ids=tuple(int(r) for r in batch.relay_ids[0][valid]),
            reduction_ms=tuple(float(g) for g in batch.reduction_ms[0][valid]),
            tier=TIER_NAMES[int(batch.tier[0])],
        )

    # -------------------------------------------------------------- snapshots

    def save(self, file: str | IO[bytes]) -> None:
        """Snapshot the service state to ``.npz`` (operator restarts)."""
        self._directory.save(file)

    @classmethod
    def load(
        cls,
        file: str | IO[bytes],
        *,
        liveness_rounds: int | None = None,
        spill: int = 2,
    ) -> ShortcutService:
        """Restore a service from a :meth:`save` snapshot.

        Health telemetry (relay last-seen rounds) restores with the
        snapshot; the counters are runtime state and start at zero.
        """
        return cls(
            RelayDirectory.load(file),
            liveness_rounds=liveness_rounds,
            spill=spill,
        )

    # ------------------------------------------------------------------ stats

    @property
    def liveness_rounds(self) -> int | None:
        """The health window (None = churn awareness disabled)."""
        return self._liveness_rounds

    def dead_relay_count(self) -> int:
        """Relays currently presumed dead (0 when health is disabled)."""
        return 0 if self._dead is None else int(self._dead.sum())

    def stats(self) -> dict[str, Any]:
        """The directory's shape summary, plus degradation telemetry when
        churn awareness is enabled."""
        stats = self._directory.stats()
        if self._liveness_rounds is not None:
            stats["liveness_rounds"] = self._liveness_rounds
            stats["spill"] = self._spill
            stats["dead_relays"] = self.dead_relay_count()
            stats["degradation"] = self.counters.as_dict()
        return stats
