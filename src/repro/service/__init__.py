"""The serving layer: online relay selection over campaign history.

The offline side of the system (``repro.core``) measures; this package
*serves*: :class:`RelayDirectory` compiles observation tables into dense
ranked lookup lanes, :class:`ShortcutService` answers batched relay
queries with pair → country → direct fallback and ingests new rounds
incrementally, and :mod:`repro.service.loadgen` replays Zipf-shaped
synthetic user traffic against it to measure sustained queries/sec
(``repro serve-bench``).

Scale-out lives in :mod:`repro.service.cluster`: compiled lanes shard by
country-pair hash into snapshot segments, :class:`ClusterService` serves
them from N worker processes over one shared memory-mapped snapshot
(answers byte-identical to the in-process service for any worker count),
and :func:`cross_world_service` pools several world seeds' campaigns
behind one directory via node-identity unification.

Construct services with the keyword-only classmethods —
:meth:`ShortcutService.from_campaign` / ``from_table`` /
``from_snapshot`` / ``empty`` — and consume the typed results
(:class:`RouteAnswer`, :class:`RouteBatch`, :class:`ServiceStats`).
The bare ``ShortcutService(...)`` constructor is a deprecated shim.
"""

from repro.service.cluster import (
    CLUSTER_SNAPSHOT_VERSION,
    NUM_SHARDS,
    ClusterService,
    cross_world_service,
    load_cluster_snapshot,
    migrate_snapshot,
    save_cluster_snapshot,
)
from repro.service.directory import (
    SNAPSHOT_VERSION,
    TIER_COUNTRY,
    TIER_DIRECT,
    TIER_NAMES,
    TIER_PAIR,
    LaneBlock,
    RelayDirectory,
)
from repro.service.loadgen import (
    BLOCK_SIZE,
    LoadgenConfig,
    QueryStream,
    country_rank_order,
    replay,
)
from repro.service.results import (
    DegradationCounters,
    RouteAnswer,
    RouteBatch,
    RouteDecision,
    ServiceStats,
)
from repro.service.service import ShortcutService

__all__ = [
    "BLOCK_SIZE",
    "CLUSTER_SNAPSHOT_VERSION",
    "ClusterService",
    "DegradationCounters",
    "LaneBlock",
    "LoadgenConfig",
    "NUM_SHARDS",
    "QueryStream",
    "RelayDirectory",
    "RouteAnswer",
    "RouteBatch",
    "RouteDecision",
    "SNAPSHOT_VERSION",
    "ServiceStats",
    "ShortcutService",
    "TIER_COUNTRY",
    "TIER_DIRECT",
    "TIER_NAMES",
    "TIER_PAIR",
    "country_rank_order",
    "cross_world_service",
    "load_cluster_snapshot",
    "migrate_snapshot",
    "replay",
    "save_cluster_snapshot",
]
