"""The serving layer: online relay selection over campaign history.

The offline side of the system (``repro.core``) measures; this package
*serves*: :class:`RelayDirectory` compiles observation tables into dense
ranked lookup lanes, :class:`ShortcutService` answers batched relay
queries with pair → country → direct fallback and ingests new rounds
incrementally, and :mod:`repro.service.loadgen` replays Zipf-shaped
synthetic user traffic against it to measure sustained queries/sec
(``repro serve-bench``).
"""

from repro.service.directory import (
    TIER_COUNTRY,
    TIER_DIRECT,
    TIER_NAMES,
    TIER_PAIR,
    LaneBlock,
    RelayDirectory,
)
from repro.service.loadgen import (
    BLOCK_SIZE,
    LoadgenConfig,
    QueryStream,
    country_rank_order,
    replay,
)
from repro.service.service import (
    DegradationCounters,
    RouteBatch,
    RouteDecision,
    ShortcutService,
)

__all__ = [
    "BLOCK_SIZE",
    "DegradationCounters",
    "LaneBlock",
    "LoadgenConfig",
    "QueryStream",
    "RelayDirectory",
    "RouteBatch",
    "RouteDecision",
    "ShortcutService",
    "TIER_COUNTRY",
    "TIER_DIRECT",
    "TIER_NAMES",
    "TIER_PAIR",
    "country_rank_order",
    "replay",
]
