"""Typed result objects of the serving layer.

The service's query surface returns three shapes, each matched to its
call volume:

* :class:`RouteBatch` — the zero-copy answer of :meth:`route_many`:
  plain ``(n, k)`` NumPy arrays, because the batched path is the hot
  path and must never materialize per-query objects;
* :class:`RouteAnswer` — one scalar :meth:`route` decision, a frozen
  dataclass callers can log or assert on field by field;
* :class:`ServiceStats` — one replay's summary (throughput, tier mix,
  degradation counters, scale-out accounting), attribute-typed but with
  a read-only mapping bridge so JSON-minded callers can keep indexing
  it like the dict it used to be.

:class:`DegradationCounters` is the churn-awareness telemetry the
service accumulates (see :mod:`repro.service.service`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.core.types import RelayType
from repro.service.directory import TIER_NAMES


@dataclass(frozen=True, slots=True)
class RouteBatch:
    """Answers for one :meth:`ShortcutService.route_many` call.

    Attributes:
        relay_ids: ``(n, k) int32`` ranked relay registry indices, -1
            padded past a lane's candidate count.
        reduction_ms: ``(n, k) float64`` expected RTT reduction per
            candidate (mean observed improvement), NaN padded.
        tier: ``(n,) int8`` tier each query resolved through (index into
            :data:`~repro.service.directory.TIER_NAMES`).
    """

    relay_ids: np.ndarray
    reduction_ms: np.ndarray
    tier: np.ndarray

    def __len__(self) -> int:
        return self.tier.shape[0]

    @property
    def best_relay(self) -> np.ndarray:
        """``(n,) int32`` top-ranked relay per query (-1 = direct path)."""
        return self.relay_ids[:, 0]

    def tier_counts(self) -> dict[str, int]:
        """Queries answered per tier, keyed by tier name."""
        return {
            name: int(np.count_nonzero(self.tier == code))
            for code, name in enumerate(TIER_NAMES)
        }

    def relay_answer_fraction(self) -> float:
        """Fraction of queries that got a relay (resolved above direct)."""
        if len(self) == 0:
            return 0.0
        return 1.0 - int(np.count_nonzero(self.relay_ids[:, 0] < 0)) / len(self)


@dataclass(frozen=True, slots=True)
class RouteAnswer:
    """One scalar routing decision (see :meth:`ShortcutService.route`).

    Attributes:
        src_id / dst_id: The queried endpoint ids.
        relay_type: Relay lane the query ran against.
        relay_ids: Ranked candidate relays (may be empty: keep direct).
        reduction_ms: Expected RTT reduction per candidate, aligned with
            ``relay_ids``.
        tier: ``"pair"``, ``"country"`` or ``"direct"``.
    """

    src_id: str
    dst_id: str
    relay_type: RelayType
    relay_ids: tuple[int, ...]
    reduction_ms: tuple[float, ...]
    tier: str

    @property
    def relay_id(self) -> int | None:
        """The top-ranked relay, or None for the direct path."""
        return self.relay_ids[0] if self.relay_ids else None

    @property
    def expected_reduction_ms(self) -> float | None:
        """Expected gain of the top-ranked relay, or None for direct."""
        return self.reduction_ms[0] if self.reduction_ms else None

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready view of the decision."""
        return {
            "src_id": self.src_id,
            "dst_id": self.dst_id,
            "relay_type": self.relay_type.value,
            "relay_ids": list(self.relay_ids),
            "reduction_ms": list(self.reduction_ms),
            "tier": self.tier,
        }


#: Backwards-compatible name of :class:`RouteAnswer` (pre-redesign API).
RouteDecision = RouteAnswer


@dataclass(slots=True)
class DegradationCounters:
    """Cumulative graceful-degradation telemetry of one service.

    Attributes:
        queries: Queries routed since construction (health path only).
        stale_top_answers: Queries whose top-ranked candidate was dead
            and was replaced by the next-ranked live relay (the spill).
        candidates_evicted: Dead candidate entries demoted out of
            answers, summed over all ranks.
        unanswerable: Queries whose lane had history but no live
            candidate left — structurally downgraded to the direct tier.
        fallback_country: Queries answered from the country tier.
        direct: Queries that left with the direct verdict (no history,
            same endpoint, or unanswerable after health filtering).
    """

    queries: int = 0
    stale_top_answers: int = 0
    candidates_evicted: int = 0
    unanswerable: int = 0
    fallback_country: int = 0
    direct: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "queries": self.queries,
            "stale_top_answers": self.stale_top_answers,
            "candidates_evicted": self.candidates_evicted,
            "unanswerable": self.unanswerable,
            "fallback_country": self.fallback_country,
            "direct": self.direct,
        }

    def merge(self, other: dict[str, int]) -> None:
        """Fold another service's counter dict in (cluster aggregation)."""
        self.queries += other.get("queries", 0)
        self.stale_top_answers += other.get("stale_top_answers", 0)
        self.candidates_evicted += other.get("candidates_evicted", 0)
        self.unanswerable += other.get("unanswerable", 0)
        self.fallback_country += other.get("fallback_country", 0)
        self.direct += other.get("direct", 0)


@dataclass(frozen=True, slots=True)
class ServiceStats:
    """One replay's summary (see :func:`repro.service.loadgen.replay`).

    Attribute-typed, with a read-only mapping bridge (``stats["key"]``,
    ``"key" in stats``, ``dict(stats)``) over :meth:`as_dict` so callers
    that treated the old replay dict as JSON keep working.

    Attributes:
        queries: Queries replayed.
        batch_size: Queries per ``route_many`` call.
        batches: Number of ``route_many`` calls.
        k: Relay candidates requested per query.
        relay_type: Relay lane queried (the type's string value).
        zipf_exponent: Popularity skew of the synthesized stream.
        seed: Root seed of the stream synthesis.
        loadgen_workers: Parallel synthesis shards (stream-invariant).
        wall_clock_s: Wall-clock time of the timed replay loop.
        queries_per_s: Sustained throughput (None on empty streams).
        tier_counts: Queries answered per tier, keyed by tier name.
        relay_answer_frac: Fraction of queries that got a relay.
        answers_digest: BLAKE2 digest of every answer (relay ids +
            tiers) for exact cross-run comparison.
        degradation: Degradation-counter dict when churn awareness was
            on (None otherwise).
        scale_out: Cluster scale-out accounting when the replay drove a
            :class:`~repro.service.cluster.ClusterService` (None for
            in-process replays).
    """

    queries: int
    batch_size: int
    batches: int
    k: int
    relay_type: str
    zipf_exponent: float
    seed: int
    loadgen_workers: int
    wall_clock_s: float
    queries_per_s: int | None
    tier_counts: dict[str, int]
    relay_answer_frac: float | None
    answers_digest: str
    degradation: dict[str, int] | None = None
    scale_out: dict[str, Any] | None = None
    _extra: dict[str, Any] = field(default_factory=dict, repr=False)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready view (the old replay-dict shape plus new fields)."""
        out: dict[str, Any] = {
            "queries": self.queries,
            "batch_size": self.batch_size,
            "batches": self.batches,
            "k": self.k,
            "relay_type": self.relay_type,
            "zipf_exponent": self.zipf_exponent,
            "seed": self.seed,
            "loadgen_workers": self.loadgen_workers,
            "wall_clock_s": self.wall_clock_s,
            "queries_per_s": self.queries_per_s,
            "tier_counts": dict(self.tier_counts),
            "relay_answer_frac": self.relay_answer_frac,
            "answers_digest": self.answers_digest,
        }
        if self.degradation is not None:
            out["degradation"] = dict(self.degradation)
        if self.scale_out is not None:
            out["scale_out"] = dict(self.scale_out)
        out.update(self._extra)
        return out

    # ------------------------------------------------- mapping bridge
    def __getitem__(self, key: str) -> Any:
        if key == "workers":  # pre-redesign spelling of the synthesis knob
            return self.loadgen_workers
        return self.as_dict()[key]

    def __contains__(self, key: object) -> bool:
        return key == "workers" or key in self.as_dict()

    def __iter__(self) -> Iterator[str]:
        return iter(self.as_dict())

    def keys(self):
        return self.as_dict().keys()

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default
