"""Named world/latency/workload regimes for campaigns and sweeps.

See :mod:`repro.scenarios.registry` for the :class:`Scenario` model and
the preset definitions, and :mod:`repro.analysis.scenarios` for the
paper-shape reductions the expectations are checked against.
"""

from repro.scenarios.registry import (
    Scenario,
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
    scenario_with,
)

__all__ = [
    "Scenario",
    "all_scenarios",
    "get_scenario",
    "register",
    "scenario_names",
    "scenario_with",
]
