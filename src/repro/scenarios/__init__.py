"""Named world/latency/workload regimes for campaigns and sweeps.

See :mod:`repro.scenarios.registry` for the :class:`Scenario` model and
the preset definitions, :mod:`repro.scenarios.regimes` for the
Monte-Carlo :class:`Regime` presets (scenarios with parameter
distributions), and :mod:`repro.analysis.scenarios` for the paper-shape
reductions the expectations are checked against.
"""

from repro.scenarios.registry import (
    Scenario,
    all_scenarios,
    get_scenario,
    list_scenarios,
    register,
    scenario_names,
    scenario_with,
)

#: Regime symbols resolved lazily (PEP 562): the regimes module depends
#: on :mod:`repro.core.montecarlo`, which imports the sweep runner, which
#: imports this package — importing it eagerly here would close that loop
#: mid-initialisation.
_REGIME_EXPORTS = (
    "Regime",
    "get_regime",
    "list_regimes",
    "regime_names",
    "register_regime",
)

__all__ = [
    "Regime",
    "Scenario",
    "all_scenarios",
    "get_regime",
    "get_scenario",
    "list_regimes",
    "list_scenarios",
    "regime_names",
    "register",
    "register_regime",
    "scenario_names",
    "scenario_with",
]


def __getattr__(name: str):
    if name in _REGIME_EXPORTS:
        from repro.scenarios import regimes

        return getattr(regimes, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_REGIME_EXPORTS))
