"""Monte-Carlo regimes: scenarios with parameter *distributions*.

A :class:`Regime` is to the Monte-Carlo manager what a
:class:`~repro.scenarios.Scenario` is to the sweep runner: a named,
registered preset.  Where a scenario fixes every configuration knob, a
regime starts from a base scenario and attaches
:class:`~repro.core.montecarlo.ParamSpec` distributions to the knobs that
are *uncertain* — the manager samples a complete configuration per draw
(plus a world seed from ``seed_pool``) and asks how often the paper's
claims survive.

``claims`` lists the shapes whose hold-probability the run bounds
(``None`` inherits the base scenario's expectations); ``metric_targets``
names the metrics whose bootstrap confidence intervals gate convergence,
mapped to their half-width targets.  Lookups raise
:class:`~repro.errors.UnknownScenarioError`, same as the scenario
registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.analysis.montecarlo import SHAPE_KEYS
from repro.core.montecarlo import ParamSpec
from repro.errors import ConfigError, UnknownScenarioError
from repro.scenarios.registry import get_scenario


@dataclass(frozen=True)
class Regime:
    """One named Monte-Carlo sampling regime.

    Attributes:
        name: Registry key (kebab-case, conventionally ``*-mc``).
        description: One-line summary shown by ``repro montecarlo --list``.
        base: Name of the registered scenario the draws perturb.
        params: Distributions over the base scenario's config knobs,
            sampled in order on each draw.
        seed_pool: World seeds are drawn uniformly from
            ``[0, seed_pool)``; a small pool makes draws *collide* on
            (config digest, seed) and reuse world snapshots.
        claims: Shapes whose hold-probability the run reports, mapped to
            the expected boolean (``None`` = the base scenario's
            ``expect``).  Keys must be draw shape keys
            (:data:`~repro.analysis.montecarlo.SHAPE_KEYS`).
        metric_targets: Draw metrics whose bootstrap CIs gate
            convergence, mapped to half-width targets.
    """

    name: str
    description: str
    base: str = "baseline"
    params: tuple[ParamSpec, ...] = ()
    seed_pool: int = 1000
    claims: Mapping[str, bool] | None = None
    metric_targets: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.strip().lower():
            raise ConfigError(f"regime name must be lowercase, got {self.name!r}")
        get_scenario(self.base)  # unknown base fails at definition time
        targets = [spec.target for spec in self.params]
        if len(set(targets)) != len(targets):
            raise ConfigError(f"regime {self.name!r} has duplicate param targets")
        if self.seed_pool < 1:
            raise ConfigError("seed_pool must be >= 1")
        if self.claims is not None:
            unknown = set(self.claims) - set(SHAPE_KEYS)
            if unknown:
                raise ConfigError(
                    f"regime {self.name!r} claims unknown shapes: "
                    f"{sorted(unknown)}; known: {SHAPE_KEYS}"
                )
            object.__setattr__(self, "claims", MappingProxyType(dict(self.claims)))
        for metric, target in self.metric_targets.items():
            if target <= 0:
                raise ConfigError(
                    f"regime {self.name!r}: metric target for {metric!r} "
                    f"must be positive, got {target}"
                )
        object.__setattr__(
            self, "metric_targets", MappingProxyType(dict(self.metric_targets))
        )


_REGISTRY: dict[str, Regime] = {}


def register_regime(regime: Regime) -> Regime:
    """Add a regime to the registry (returns it for chaining).

    Raises:
        ConfigError: if the name is already taken.
    """
    if regime.name in _REGISTRY:
        raise ConfigError(f"regime {regime.name!r} already registered")
    _REGISTRY[regime.name] = regime
    return regime


def get_regime(name: str) -> Regime:
    """Look a regime up by name.

    Raises:
        UnknownScenarioError: for unknown names (message lists what
            exists; subclasses :class:`~repro.errors.ConfigError`).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(
            f"unknown regime {name!r}; registered: {', '.join(regime_names())}"
        ) from None


def regime_names() -> tuple[str, ...]:
    """Registered regime names, in registration order."""
    return tuple(_REGISTRY)


def list_regimes() -> tuple[Regime, ...]:
    """Every registered regime, in registration order."""
    return tuple(_REGISTRY.values())


# --------------------------------------------------------------- presets

register_regime(
    Regime(
        name="baseline-mc",
        description="Paper defaults with uncertain jitter, queueing, loss "
                    "and ping budget.",
        base="baseline",
        params=(
            ParamSpec("world.latency.jitter_sigma", "uniform", 0.015, 0.04),
            ParamSpec("world.latency.queueing_scale_ms", "log_uniform", 0.2, 1.0),
            ParamSpec("world.latency.base_loss_prob", "log_uniform", 0.001, 0.02),
            ParamSpec(
                "campaign.pings_per_pair", "uniform", 6, 10, integer=True
            ),
        ),
        seed_pool=1000,
        metric_targets={
            "win_rate_COR": 0.05,
            "top10_cor_coverage": 0.08,
        },
    )
)

register_regime(
    Regime(
        name="lossy-mc",
        description="Degraded networks with uncertain loss floor and spike "
                    "pressure.",
        base="lossy",
        params=(
            ParamSpec("world.latency.base_loss_prob", "log_uniform", 0.01, 0.08),
            ParamSpec("world.latency.spike_prob", "uniform", 0.01, 0.08),
            ParamSpec("world.latency.queueing_scale_ms", "log_uniform", 0.3, 1.5),
        ),
        seed_pool=1000,
        metric_targets={"win_rate_COR": 0.06},
    )
)

register_regime(
    Regime(
        name="tiny-mc",
        description="CI smoke regime: baseline shapes on small perturbed "
                    "worlds, loose targets.",
        base="baseline",
        # campaign-only perturbations keep the world digest constant, so
        # the 4-seed pool collides on (digest, seed) and draws restore
        # snapshots instead of rebuilding — the cache-reuse path CI gates
        params=(
            ParamSpec("campaign.pings_per_pair", "uniform", 6, 9, integer=True),
            ParamSpec(
                "campaign.relay_mix",
                "choice",
                choices=(
                    ("COR", "PLR", "RAR_OTHER", "RAR_EYE"),
                    ("COR", "PLR", "RAR_OTHER"),
                ),
            ),
        ),
        seed_pool=4,
        claims={
            "cases_observed": True,
            "cor_wins_majority": True,
            "voip_no_worse_with_cor": True,
        },
        metric_targets={"win_rate_COR": 0.2},
    )
)
