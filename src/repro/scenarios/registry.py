"""Named measurement regimes: the scenario registry.

The paper's claims (colo relays win most pairs, median RTT reductions in
the tens of milliseconds) are only credible if they survive *regimes*,
not just seeds.  A :class:`Scenario` bundles a complete world
configuration (topology, latency model, measurement infrastructure) with
a campaign configuration and a set of paper-shape expectations — which of
the headline results should still hold under that regime, and which are
expected to bend (a probes-free deployment observes no RAR cases; an
intra-EU world has little room for tens-of-ms gains).

The sweep runner fans out (scenario × seed), so one artifact answers
"does the shape hold across worlds *and* regimes"; CI runs every
registered preset and asserts its expectations against the pooled
observation columns (see :mod:`repro.analysis.scenarios`).

Adding a preset is one :func:`register` call — see the definitions at the
bottom of this module for the idiom.  Registered names must be unique;
lookups are by name via :func:`get_scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Mapping

from repro.core.config import CampaignConfig
from repro.errors import ConfigError, UnknownScenarioError
from repro.latency.model import LatencyConfig
from repro.measurement.config import InfrastructureConfig
from repro.timeline.events import (
    RelayOutage,
    TimelineConfig,
    TrafficShift,
    rolling_outages,
)
from repro.topology.config import TopologyConfig
from repro.world import WorldConfig


@dataclass(frozen=True)
class Scenario:
    """One named measurement regime.

    Attributes:
        name: Registry key (kebab-case).
        description: One-line summary shown by ``repro scenarios``.
        world: Complete world configuration (topology + latency +
            infrastructure + datasets).
        campaign: Campaign configuration (rounds are typically overridden
            by the sweep; the preset's other knobs — ping profile, relay
            mix, country caps — are the regime).
        expect: Paper-shape expectations, mapping a shape key produced by
            :func:`repro.analysis.scenarios.paper_shapes` to the boolean
            the regime should exhibit.  Keys absent from the mapping are
            not asserted for the scenario.
        service_expect: Serving-layer expectations checked by
            ``repro serve-bench --scenario`` against the traffic-replay
            stats (:func:`repro.service.loadgen.replay`).  Like
            ``expect``, keys absent from the mapping are not asserted.
            Keys: ``min_relay_answer_frac`` — minimum fraction of
            replayed queries that must resolve to a relay (above the
            direct tier).
    """

    name: str
    description: str
    world: WorldConfig = field(default_factory=WorldConfig)
    campaign: CampaignConfig = field(default_factory=CampaignConfig)
    expect: Mapping[str, bool] = field(default_factory=dict)
    service_expect: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.strip().lower():
            raise ConfigError(f"scenario name must be lowercase, got {self.name!r}")
        # freeze the expectation mappings so presets are safely shareable
        object.__setattr__(self, "expect", MappingProxyType(dict(self.expect)))
        object.__setattr__(
            self, "service_expect", MappingProxyType(dict(self.service_expect))
        )


_REGISTRY: dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (returns it for chaining).

    Raises:
        ConfigError: if the name is already taken.
    """
    if scenario.name in _REGISTRY:
        raise ConfigError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name.

    Raises:
        UnknownScenarioError: for unknown names (message lists what
            exists; subclasses :class:`~repro.errors.ConfigError`).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; registered: {', '.join(scenario_names())}"
        ) from None


def scenario_names() -> tuple[str, ...]:
    """Registered scenario names, in registration order."""
    return tuple(_REGISTRY)


def list_scenarios() -> tuple[Scenario, ...]:
    """Every registered scenario, in registration order."""
    return tuple(_REGISTRY.values())


#: Backwards-compatible name of :func:`list_scenarios`.
all_scenarios = list_scenarios


# --------------------------------------------------------------- presets
#
# The baseline expectations every regime starts from: the paper's headline
# shapes.  Presets that bend a shape override the entry (or drop it when
# the regime makes the shape meaningless).

_HEADLINE = {
    "cases_observed": True,
    "cor_wins_majority": True,
    "cor_leads_relay_types": True,
    "cor_reduction_tens_of_ms": True,
    "voip_no_worse_with_cor": True,
    "rar_relays_observed": True,
}

register(
    Scenario(
        name="baseline",
        description="The paper's defaults: full world, calibrated latency model.",
        expect=_HEADLINE,
        # a few rounds of baseline history should answer most replayed
        # traffic with a relay; sparse/degraded regimes opt out entirely
        service_expect={"min_relay_answer_frac": 0.5},
    )
)

register(
    Scenario(
        name="lossy",
        description="Degraded networks: ~10x path loss, flakier probes and relays.",
        world=WorldConfig(
            latency=LatencyConfig(base_loss_prob=0.04),
            infrastructure=InfrastructureConfig(
                probe_loss_prob=(0.01, 0.08),
                planetlab_loss_prob=(0.02, 0.10),
                colo_loss_prob=(0.002, 0.02),
            ),
        ),
        expect=_HEADLINE,
    )
)

register(
    Scenario(
        name="spike-storm",
        description="Congestion storms: frequent large latency spikes, heavy queueing.",
        world=WorldConfig(
            latency=LatencyConfig(
                spike_prob=0.12,
                spike_range_ms=(50.0, 500.0),
                queueing_scale_ms=1.2,
            ),
        ),
        expect=_HEADLINE,
    )
)

register(
    Scenario(
        name="regional-eu",
        description="Intra-EU deployment: endpoints, relays and facilities in Europe only.",
        world=WorldConfig(
            topology=TopologyConfig(continent_scope=("EU",)),
        ),
        # short intra-continental paths leave little room for tens-of-ms
        # gains; the win-rate shapes must still hold
        expect={**_HEADLINE, "cor_reduction_tens_of_ms": False},
    )
)

register(
    Scenario(
        name="colo-sparse",
        description="Thin colo ecosystem: one facility per hub, few pingable tenants.",
        world=WorldConfig(
            topology=TopologyConfig(
                max_facilities_per_hub=1,
                facility_base_membership_prob=0.25,
            ),
            infrastructure=InfrastructureConfig(colo_member_interface_prob=0.15),
        ),
        expect=_HEADLINE,
    )
)

register(
    Scenario(
        name="voip-heavy",
        description="Interactive-voice workload: 12-ping windows, jittery access paths.",
        world=WorldConfig(
            latency=LatencyConfig(jitter_sigma=0.04, queueing_scale_ms=0.8),
        ),
        campaign=CampaignConfig(pings_per_pair=12, min_valid_rtts=6),
        expect=_HEADLINE,
    )
)

register(
    Scenario(
        name="mega-world",
        description="Dense deployment: more eyeball ASes and probes per country.",
        world=WorldConfig(
            topology=TopologyConfig(max_eyeballs_per_country=12),
            infrastructure=InfrastructureConfig(probes_per_eyeball_lambda=2.6),
        ),
        expect=_HEADLINE,
        service_expect={"min_relay_answer_frac": 0.5},
    )
)

register(
    Scenario(
        name="no-probes",
        description="No probe-hosted relays: COR and PLR only (dedicated infrastructure).",
        campaign=CampaignConfig(relay_mix=("COR", "PLR")),
        expect={**_HEADLINE, "rar_relays_observed": False},
    )
)

register(
    Scenario(
        name="paper-scale",
        description="The paper's full horizon: 45 rounds at 12-hour spacing "
                    "(stability/temporal analyses, service ingestion).",
        # the regime *is* the round count: one month of measurements, the
        # long-horizon input the stability analyses and the serving layer's
        # staleness window need.  Sweeps/CI override rounds downward via
        # scenario_with; `repro serve-bench --scenario paper-scale` runs it
        # as configured.
        campaign=CampaignConfig(num_rounds=45),
        expect=_HEADLINE,
        # a month of history should answer nearly all replayed traffic
        service_expect={"min_relay_answer_frac": 0.6},
    )
)

# Fault-injected regimes: the campaign runs through a timeline
# (:mod:`repro.timeline`) and ``repro serve-bench --scenario`` replays
# traffic against the churn-aware service while the faults unfold.
# Measurement-shape expectations stay conservative for the outage
# presets — sparse rounds bend the win-rate shapes — but serving
# availability must hold: dead relays demote into fallback tiers.

register(
    Scenario(
        name="relay-outage",
        description="Chaos: 40% of colo+PlanetLab relays dark for rounds 2-3, "
                    "then recovered.",
        campaign=CampaignConfig(
            num_rounds=6,
            timeline=TimelineConfig(
                name="relay-outage",
                events=(
                    RelayOutage(start_round=2, end_round=4, fraction=0.4),
                ),
            ),
        ),
        # probe-hosted relays are untouched; observation volume survives
        expect={"cases_observed": True, "rar_relays_observed": True},
        service_expect={"min_availability": 0.99},
    )
)

register(
    Scenario(
        name="rolling-failure",
        description="Chaos: three consecutive waves, each failing a fresh 25% "
                    "of the relay pools.",
        campaign=CampaignConfig(
            num_rounds=6,
            timeline=TimelineConfig(
                name="rolling-failure",
                events=rolling_outages(start_round=1, num_waves=3, fraction=0.25),
            ),
        ),
        expect={"cases_observed": True, "rar_relays_observed": True},
        service_expect={"min_availability": 0.99},
    )
)

register(
    Scenario(
        name="flash-crowd",
        description="Chaos: traffic to the most popular eyeball country "
                    "surges 8x for rounds 2-4.",
        campaign=CampaignConfig(
            num_rounds=6,
            timeline=TimelineConfig(
                name="flash-crowd",
                events=(
                    TrafficShift(
                        start_round=2, end_round=5, weight_mult=8.0, rank=0
                    ),
                ),
            ),
        ),
        # traffic shifts only touch the replayed load, never the
        # measurements: every headline shape must survive unchanged
        expect=_HEADLINE,
        service_expect={
            "min_relay_answer_frac": 0.5,
            "min_availability": 0.99,
        },
    )
)


def scenario_with(
    base: Scenario,
    *,
    rounds: int | None = None,
    countries: int | None = None,
    max_countries: int | None = None,
) -> Scenario:
    """A copy of ``base`` with sweep-level overrides applied.

    The sweep runner owns round counts and world-size caps (they are
    workload knobs, not regime knobs), so it rewrites them into the
    scenario's configs just before building the world.
    """
    world = base.world
    campaign = base.campaign
    if countries is not None:
        world = replace(world, topology=replace(world.topology, country_limit=countries))
    updates: dict = {}
    if rounds is not None:
        updates["num_rounds"] = rounds
    if max_countries is not None:
        updates["max_countries"] = max_countries
    if updates:
        campaign = replace(campaign, **updates)
    return replace(base, world=world, campaign=campaign)
