"""The RTT model.

An RTT between two endpoints decomposes as::

    rtt = 2 * (propagation + per_hop_processing + access_src + access_dst)
          * (1 +- direction_asymmetry)
          + jitter                                  (per packet)

* **propagation** — fiber delay along the geographic waypoints of the BGP
  path between the endpoints' ASes (:mod:`repro.routing.geopath`);
* **per-hop processing** — a small per-AS-hop cost (router processing and
  intra-AS queueing);
* **access** — the endpoint's host/last-mile latency: large for home
  probes, tiny for router interfaces inside a facility.  This term is why
  eyeball-hosted relays underperform in the paper: a relayed path pays the
  relay's access latency twice (once per stitched segment);
* **asymmetry** — a deterministic, pair-specific few-percent skew between
  the two ping directions, matching the paper's observation that direction
  changes the measured RTT by <5% in ~80% of cases;
* **jitter** — per-packet multiplicative noise plus exponential queueing
  and rare heavy spikes (the outliers that justify median-of-6 batches).

Base RTTs are deterministic given the world seed; only the per-packet terms
consume random numbers at measurement time.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.routing.bgp import BGPRouting
from repro.routing.geopath import GeoPathWalker


@dataclass(frozen=True, slots=True)
class Endpoint:
    """A pingable interface somewhere in the simulated Internet.

    Attributes:
        node_id: Stable unique identifier (used for deterministic hashing).
        asn: AS originating the interface's address.
        city_key: City the interface is physically in.
        access_ms: One-way host/access latency added at this endpoint.
        loss_prob: Per-packet loss probability contributed by this endpoint.
    """

    node_id: str
    asn: int
    city_key: str
    access_ms: float
    loss_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.access_ms < 0:
            raise ConfigError(f"negative access_ms for {self.node_id}")
        if not 0.0 <= self.loss_prob < 1.0:
            raise ConfigError(f"loss_prob {self.loss_prob} outside [0, 1) for {self.node_id}")


@dataclass(frozen=True, slots=True)
class LatencyConfig:
    """Tunables of the RTT model."""

    per_hop_ms: float = 0.35
    """One-way processing cost per AS-level hop."""

    jitter_sigma: float = 0.025
    """Sigma of the per-packet lognormal multiplicative jitter."""

    queueing_scale_ms: float = 0.4
    """Scale of the per-packet exponential queueing term (ms)."""

    spike_prob: float = 0.015
    """Probability a packet hits a congestion spike."""

    spike_range_ms: tuple[float, float] = (30.0, 300.0)
    """Uniform range of spike magnitude (ms)."""

    base_loss_prob: float = 0.004
    """Path loss probability independent of the endpoints."""

    asymmetry_frac: float = 0.045
    """Maximum deterministic per-direction measurement skew (host timer and
    scheduling effects).  Each ordered pair gets an independent skew in
    [-frac, +frac]; with 0.045 the two directions of a pair agree within 5%
    for ~80% of pairs, matching the paper's Sec 2.5 observation."""

    def __post_init__(self) -> None:
        if self.per_hop_ms < 0 or self.queueing_scale_ms < 0:
            raise ConfigError("per-hop and queueing costs must be non-negative")
        if not 0.0 <= self.spike_prob < 1.0:
            raise ConfigError(f"spike_prob {self.spike_prob} outside [0, 1)")
        if not 0.0 <= self.base_loss_prob < 1.0:
            raise ConfigError(f"base_loss_prob {self.base_loss_prob} outside [0, 1)")
        if self.spike_range_ms[0] > self.spike_range_ms[1]:
            raise ConfigError("spike_range_ms must be (low, high)")
        if not 0.0 <= self.asymmetry_frac < 0.5:
            raise ConfigError(f"asymmetry_frac {self.asymmetry_frac} outside [0, 0.5)")


def _pair_unit_hash(a: str, b: str) -> float:
    """Deterministic value in [0, 1) specific to the ordered pair (a, b)."""
    digest = hashlib.blake2b(f"{a}|{b}".encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


class LatencyModel:
    """Computes base and sampled RTTs between :class:`Endpoint` objects."""

    def __init__(
        self,
        routing: BGPRouting,
        walker: GeoPathWalker,
        config: LatencyConfig | None = None,
    ) -> None:
        self._routing = routing
        self._walker = walker
        self._cfg = config or LatencyConfig()
        # path-RTT cache keyed by (src_asn, src_city, dst_asn, dst_city)
        self._path_cache: dict[tuple[int, str, int, str], float | None] = {}
        # (base RTT or NaN-if-unrouted, loss probability) per (hashable)
        # endpoint pair; both are deterministic, and the campaign
        # re-measures the same pairs twice per round (steps 2 and 4) and
        # the same legs round after round, so the batch sampler's per-leg
        # loop is one dict hit on a batch-ready entry.
        self._pair_cache: dict[tuple[Endpoint, Endpoint], tuple[float, float]] = {}

    @property
    def config(self) -> LatencyConfig:
        """The model's tunables."""
        return self._cfg

    # ----------------------------------------------------------- base RTT

    def path_one_way_ms(
        self, src_asn: int, src_city: str, dst_asn: int, dst_city: str
    ) -> float | None:
        """One-way network delay between two (ASN, city) attachment points.

        Excludes endpoint access latency.  Returns None when no valley-free
        route exists.  Cached; deterministic.
        """
        key = (src_asn, src_city, dst_asn, dst_city)
        if key in self._path_cache:
            return self._path_cache[key]
        as_path = self._routing.path(src_asn, dst_asn)
        if as_path is None:
            self._path_cache[key] = None
            return None
        delay = self._walker.propagation_ms(src_city, as_path, dst_city)
        delay += self._cfg.per_hop_ms * max(0, len(as_path) - 1)
        self._path_cache[key] = delay
        return delay

    def base_rtt_ms(self, src: Endpoint, dst: Endpoint) -> float | None:
        """Deterministic RTT between two endpoints, before jitter.

        The round trip rides the forward BGP path *and* the (possibly
        different) reverse path — the same wire path regardless of which
        side initiates the ping — plus both endpoints' access latency twice.
        A small ordered-pair-specific skew models host-side measurement
        effects, which is all that distinguishes the two ping directions.
        Returns None when either direction lacks a valley-free route.
        """
        base = self._pair_entry((src, dst))[0]
        return None if base != base else base

    def _pair_entry(self, pair: tuple[Endpoint, Endpoint]) -> tuple[float, float]:
        entry = self._pair_cache.get(pair)
        if entry is None:
            src, dst = pair
            base = self._base_rtt_uncached(src, dst)
            entry = (
                float("nan") if base is None else base,
                self.loss_probability(src, dst),
            )
            self._pair_cache[pair] = entry
        return entry

    def _base_rtt_uncached(self, src: Endpoint, dst: Endpoint) -> float | None:
        forward = self.path_one_way_ms(src.asn, src.city_key, dst.asn, dst.city_key)
        if forward is None:
            return None
        reverse = self.path_one_way_ms(dst.asn, dst.city_key, src.asn, src.city_key)
        if reverse is None:
            return None
        rtt = forward + reverse + 2.0 * (src.access_ms + dst.access_ms)
        skew = (2.0 * _pair_unit_hash(src.node_id, dst.node_id) - 1.0) * self._cfg.asymmetry_frac
        return rtt * (1.0 + skew)

    # --------------------------------------------------------- sampled RTT

    def loss_probability(self, src: Endpoint, dst: Endpoint) -> float:
        """Per-packet loss probability for the pair."""
        p_deliver = (
            (1.0 - self._cfg.base_loss_prob)
            * (1.0 - src.loss_prob)
            * (1.0 - dst.loss_prob)
        )
        return 1.0 - p_deliver

    def sample_rtt_ms(
        self, src: Endpoint, dst: Endpoint, rng: np.random.Generator
    ) -> float | None:
        """One ping outcome: an RTT in ms, or None for a lost packet.

        ``rng`` is advanced exactly once per loss decision and per delivered
        packet's jitter draw, so the caller controls determinism by handing
        in a named stream.
        """
        base = self.base_rtt_ms(src, dst)
        if base is None:
            return None
        if rng.random() < self.loss_probability(src, dst):
            return None
        cfg = self._cfg
        rtt = base * float(rng.lognormal(mean=0.0, sigma=cfg.jitter_sigma))
        rtt += float(rng.exponential(cfg.queueing_scale_ms))
        if rng.random() < cfg.spike_prob:
            low, high = cfg.spike_range_ms
            rtt += float(rng.uniform(low, high))
        return rtt

    def sample_rtt_batch(
        self, src: Endpoint, dst: Endpoint, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        """``count`` ping outcomes for one pair in vectorized RNG draws.

        Returns a ``(count,)`` float array; NaN marks a lost packet (or, for
        every entry, an unrouted pair).  The per-packet model is identical to
        :meth:`sample_rtt_ms` — same base RTT, same jitter / queueing / spike
        / loss distributions — but all packets' terms come from five
        vectorized draws, so the random stream is consumed in a different
        order than ``count`` scalar calls would consume it.
        """
        return self.sample_rtt_matrix([(src, dst)], rng, count)[0]

    def sample_rtt_matrix(
        self,
        pairs: Sequence[tuple[Endpoint, Endpoint]],
        rng: np.random.Generator,
        count: int,
    ) -> np.ndarray:
        """Ping outcomes for a whole leg list in vectorized RNG draws.

        Returns a ``(len(pairs) × count)`` float array; NaN marks a lost
        packet, and every entry of an unrouted pair's row.  One call draws
        the loss, jitter, queueing and spike terms of *all* packets of *all*
        pairs in five RNG calls total.
        """
        n = len(pairs)
        out = np.full((n, count), np.nan)
        if n == 0:
            return out
        pair_cache = self._pair_cache
        pair_entry = self._pair_entry
        base_loss = np.asarray(
            [pair_cache.get(pair) or pair_entry(pair) for pair in pairs]
        )
        base = base_loss[:, 0]
        loss = base_loss[:, 1]
        routed = ~np.isnan(base)
        m = int(np.count_nonzero(routed))
        if m == 0:
            return out
        cfg = self._cfg
        shape = (m, count)
        u_loss = rng.random(shape)
        jitter = rng.lognormal(mean=0.0, sigma=cfg.jitter_sigma, size=shape)
        queue = rng.exponential(cfg.queueing_scale_ms, size=shape)
        u_spike = rng.random(shape)
        low, high = cfg.spike_range_ms
        spike = rng.uniform(low, high, size=shape)
        rtt = base[routed, np.newaxis] * jitter + queue
        rtt += np.where(u_spike < cfg.spike_prob, spike, 0.0)
        rtt[u_loss < loss[routed, np.newaxis]] = np.nan
        out[routed] = rtt
        return out

    # ------------------------------------------------------------- insight

    def as_path(self, src: Endpoint, dst: Endpoint) -> list[int] | None:
        """The BGP AS path the pair's traffic follows (None if unrouted)."""
        path = self._routing.path(src.asn, dst.asn)
        # copy: the routing layer caches and reuses its path lists
        return None if path is None else list(path)

    def waypoints(self, src: Endpoint, dst: Endpoint) -> list[str] | None:
        """The city waypoints the pair's traffic follows (None if unrouted)."""
        as_path = self._routing.path(src.asn, dst.asn)
        if as_path is None:
            return None
        return self._walker.waypoints(src.city_key, as_path, dst.city_key)
